"""Tests for the deterministic fault-injection registry."""

import threading

import pytest

from repro.testing import faults
from repro.testing.faults import (
    POINTS,
    FaultPlan,
    InjectedFault,
    delay,
    disk_full,
    reset_connection,
)


class TestRegistry:
    def test_disabled_fire_is_a_no_op(self):
        assert not faults.active()
        faults.fire("protocol.send", sock=None, frame=b"", message={})  # nothing raises

    def test_unknown_point_rejected_at_registration(self):
        with pytest.raises(ValueError, match="unknown injection point"):
            FaultPlan().on("protocol.teleport", reset_connection)

    def test_every_documented_point_registers(self):
        plan = FaultPlan()
        for point in POINTS:
            plan.on(point, reset_connection)
        assert len(plan.rules) == len(POINTS)

    def test_arming_and_disarming(self):
        plan = FaultPlan().on("store.append", disk_full)
        with plan:
            assert faults.active()
            with pytest.raises(OSError):
                faults.fire("store.append", path="x", handle=None, line="")
        assert not faults.active()
        faults.fire("store.append", path="x", handle=None, line="")  # disarmed

    def test_double_arming_rejected(self):
        plan = FaultPlan()
        with plan:
            with pytest.raises(RuntimeError, match="already armed"):
                plan.__enter__()

    def test_plans_nest(self):
        outer = FaultPlan().on("store.lock", delay(0.0))
        inner = FaultPlan().on("store.append", disk_full)
        with outer, inner:
            faults.fire("store.lock", path="x")
            with pytest.raises(OSError):
                faults.fire("store.append", path="x", handle=None, line="")
        assert outer.fired("store.lock") == 1
        assert inner.fired("store.append") == 1


class TestRuleSemantics:
    def test_times_caps_firings(self):
        with FaultPlan() as plan:
            plan.on("store.lock", reset_connection, times=2)
            for _ in range(2):
                with pytest.raises(ConnectionResetError):
                    faults.fire("store.lock", path="x")
            faults.fire("store.lock", path="x")  # third match: rule exhausted
        assert plan.fired("store.lock") == 2

    def test_after_skips_early_matches(self):
        with FaultPlan() as plan:
            plan.on("store.append", disk_full, after=2)
            faults.fire("store.append", path="x", handle=None, line="")
            faults.fire("store.append", path="x", handle=None, line="")
            with pytest.raises(OSError):  # the *third* append fails
                faults.fire("store.append", path="x", handle=None, line="")
        assert plan.fired() == 1

    def test_when_predicate_filters_on_context(self):
        with FaultPlan() as plan:
            plan.on(
                "store.append",
                disk_full,
                when=lambda context: "shard-03" in str(context["path"]),
            )
            faults.fire("store.append", path="shard-01.jsonl", handle=None, line="")
            with pytest.raises(OSError):
                faults.fire("store.append", path="shard-03.jsonl", handle=None, line="")
        assert plan.fired() == 1

    def test_unlimited_times(self):
        with FaultPlan() as plan:
            plan.on("store.lock", delay(0.0), times=None)
            for _ in range(10):
                faults.fire("store.lock", path="x")
        assert plan.fired() == 10

    def test_validation(self):
        with pytest.raises(ValueError, match="times"):
            FaultPlan().on("store.lock", delay(0.0), times=0)
        with pytest.raises(ValueError, match="after"):
            FaultPlan().on("store.lock", delay(0.0), after=-1)
        with pytest.raises(ValueError, match="probability"):
            FaultPlan().chance(1.5)

    def test_injection_log_carries_context_and_hit_count(self):
        with FaultPlan() as plan:
            plan.on("store.lock", delay(0.0), times=None)
            faults.fire("store.lock", path="a")
            faults.fire("store.lock", path="b")
        assert [injection.hits for injection in plan.log] == [1, 2]
        assert [injection.context["path"] for injection in plan.log] == ["a", "b"]


class TestDeterminism:
    def _schedule(self, seed):
        with FaultPlan(seed=seed) as plan:
            plan.on("store.lock", delay(0.0), times=None, when=plan.chance(0.5))
            for _ in range(64):
                faults.fire("store.lock", path="x")
            return plan.fired()

    def test_chance_is_a_pure_function_of_the_seed(self):
        assert self._schedule(7) == self._schedule(7)

    def test_different_seeds_give_different_schedules(self):
        assert len({self._schedule(seed) for seed in range(8)}) > 1

    def test_chance_does_not_touch_global_rng(self):
        import random

        random.seed(1234)
        expected = random.random()
        random.seed(1234)
        self._schedule(0)
        assert random.random() == expected


class TestThreadSafety:
    def test_concurrent_fire_counts_exactly(self):
        with FaultPlan() as plan:
            plan.on("store.lock", delay(0.0), times=100)
            threads = [
                threading.Thread(
                    target=lambda: [faults.fire("store.lock", path="x") for _ in range(50)]
                )
                for _ in range(8)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        assert plan.fired() == 100  # the cap held under contention


class TestCannedActions:
    def test_injected_fault_is_distinct_from_production_errors(self):
        assert issubclass(InjectedFault, RuntimeError)
        assert not issubclass(InjectedFault, OSError)

    def test_reset_connection_raises_econnreset(self):
        import errno

        with pytest.raises(ConnectionResetError) as info:
            reset_connection(faults.Injection("protocol.send", 1, {}))
        assert info.value.errno == errno.ECONNRESET

    def test_disk_full_raises_enospc(self):
        import errno

        with pytest.raises(OSError) as info:
            disk_full(faults.Injection("store.compact", 1, {}))
        assert info.value.errno == errno.ENOSPC
