"""Tests for the analytical CPU machine model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hwsim import CASCADE_LAKE, GRAVITON2, CpuKernelModel, plan_parallel, plan_unroll
from repro.isa import get_intrinsic
from repro.rewriter import CpuTuningConfig
from repro.workloads import Conv2DParams, DenseParams, conv3d_from_conv2d, table1_layer


def _model(machine=CASCADE_LAKE, name="x86.avx512.vpdpbusd", **kw):
    return CpuKernelModel(machine, get_intrinsic(name), **kw)


class TestPlans:
    def test_unroll_plan_perfect(self):
        plan = plan_unroll([2, 14, 14], 8)
        assert plan.factor == 7 and not plan.has_residue_guard

    def test_unroll_plan_combines_loops(self):
        plan = plan_unroll([4, 2, 2], 8)
        assert plan.factor == 8

    def test_unroll_plan_prime_extent_uses_residue(self):
        plan = plan_unroll([24, 17, 17], 8)
        assert plan.factor == 8
        assert plan.has_residue_guard
        assert plan.wasted_fraction > 0

    def test_unroll_disabled(self):
        plan = plan_unroll([4, 4], 1)
        assert plan.factor == 1 and not plan.has_residue_guard

    def test_parallel_plan_balance(self):
        plan = plan_parallel([2, 14, 14], 3000, cores=24)
        assert plan.iterations <= 3000
        assert plan.threads == 24
        assert 0 < plan.balance <= 1.0

    def test_parallel_plan_few_iterations(self):
        plan = plan_parallel([4], 3000, cores=24)
        assert plan.threads == 4 and plan.balance == 1.0

    def test_parallel_disabled(self):
        plan = plan_parallel([64, 64], 3000, cores=24, enable=False)
        assert plan.threads == 1


class TestLatencyBehaviour:
    def test_unrolling_improves_latency(self, tiny_conv_params):
        layer = table1_layer(5)
        model = _model()
        no_unroll = model.conv2d_latency(layer, CpuTuningConfig(enable_unroll=False))
        unrolled = model.conv2d_latency(layer, CpuTuningConfig())
        assert unrolled.seconds < no_unroll.seconds

    def test_parallelism_improves_latency(self):
        layer = table1_layer(5)
        model = _model()
        serial = model.conv2d_latency(layer, CpuTuningConfig(enable_parallel=False))
        parallel = model.conv2d_latency(layer, CpuTuningConfig())
        assert parallel.seconds < serial.seconds / 4

    def test_residue_layers_are_penalised(self):
        """Layers 1 and 4 (prime output widths) lose efficiency (Figure 10)."""
        model = _model()
        cfg = CpuTuningConfig()

        def macs_per_second(layer):
            return layer.macs / model.conv2d_latency(layer, cfg).seconds

        good = macs_per_second(table1_layer(5))
        bad1 = macs_per_second(table1_layer(1))
        bad4 = macs_per_second(table1_layer(4))
        assert bad1 < 0.9 * good
        assert bad4 < 0.95 * good

    def test_never_exceeds_machine_peak(self):
        model = _model()
        cfg = CpuTuningConfig()
        for index in range(1, 17):
            layer = table1_layer(index)
            cost = model.conv2d_latency(layer, cfg)
            peak = CASCADE_LAKE.cores * 2 * 64 * CASCADE_LAKE.frequency_ghz * 1e9
            assert layer.macs / cost.seconds < peak

    def test_widening_overhead_slows_down(self):
        layer = table1_layer(5)
        dot = CpuKernelModel(GRAVITON2, get_intrinsic("arm.neon.sdot"))
        neon = CpuKernelModel(
            GRAVITON2,
            get_intrinsic("arm.neon.mla.int8.widened"),
            instruction_overhead_factor=3.0,
        )
        cfg = CpuTuningConfig()
        assert neon.conv2d_latency(layer, cfg).seconds > 3 * dot.conv2d_latency(layer, cfg).seconds

    def test_dense_and_conv3d_paths(self):
        model = _model()
        cfg = CpuTuningConfig()
        dense = model.dense_latency(DenseParams(batch=1, in_features=2048, out_features=1000), cfg)
        assert dense.seconds > 0
        conv3d = conv3d_from_conv2d(table1_layer(5), depth=8)
        c3 = model.conv3d_latency(conv3d, cfg)
        c2 = model.conv2d_latency(table1_layer(5), cfg)
        assert c3.seconds > c2.seconds  # 8x the work

    def test_breakdown_fields(self):
        cost = _model().conv2d_latency(table1_layer(5), CpuTuningConfig())
        assert cost.seconds >= max(cost.compute_seconds, cost.memory_seconds)
        assert cost.detail["unroll_factor"] >= 1
        assert cost.microseconds == pytest.approx(cost.seconds * 1e6)


@given(
    st.integers(16, 1024),
    st.sampled_from([7, 14, 16, 28, 56]),
    st.integers(16, 512),
    st.sampled_from([1, 3]),
)
@settings(max_examples=30, deadline=None)
def test_property_latency_positive_and_monotone_in_macs(c, ihw, k, kernel):
    """Latency is positive, and quadrupling the channels never makes it faster."""
    if ihw <= kernel:
        return
    model = _model()
    cfg = CpuTuningConfig()
    small = Conv2DParams(in_channels=c, in_height=ihw, in_width=ihw, out_channels=k, kernel=kernel)
    big = Conv2DParams(in_channels=4 * c, in_height=ihw, in_width=ihw, out_channels=k, kernel=kernel)
    t_small = model.conv2d_latency(small, cfg).seconds
    t_big = model.conv2d_latency(big, cfg).seconds
    assert t_small > 0
    assert t_big >= t_small
