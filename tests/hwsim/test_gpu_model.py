"""Tests for the analytical GPU machine model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hwsim import V100, GpuKernelModel
from repro.isa import get_intrinsic
from repro.rewriter import GpuTuningConfig
from repro.workloads import table1_layer


def _model():
    return GpuKernelModel(V100, get_intrinsic("nvvm.wmma.m16n16k16.mma.row.row.f32.f32"))


class TestGemmModel:
    def test_positive_and_bounded_by_peak(self):
        model = _model()
        cost = model.gemm_latency(1024, 1024, 1024, GpuTuningConfig())
        assert cost.seconds > 0
        flops = 2.0 * 1024**3
        assert flops / cost.seconds < V100.tensor_fp16_tflops * 1e12

    def test_outer_product_reuse_helps_large_gemm(self):
        model = _model()
        p1 = model.gemm_latency(2048, 2048, 2048, GpuTuningConfig(outer_product_p=1))
        p2 = model.gemm_latency(2048, 2048, 2048, GpuTuningConfig(outer_product_p=2))
        assert p2.seconds < p1.seconds

    def test_excessive_p_hits_register_pressure(self):
        """p > 2 overwhelms the register file (the paper's observation):
        the sustained WMMA rate collapses once the accumulators spill."""
        model = _model()
        p2 = model.gemm_latency(4096, 4096, 512, GpuTuningConfig(outer_product_p=2))
        p8 = model.gemm_latency(4096, 4096, 512, GpuTuningConfig(outer_product_p=8))
        assert p8.detail["rate_wmma_per_cycle"] < 0.5 * p2.detail["rate_wmma_per_cycle"]
        assert p8.compute_seconds > p2.compute_seconds

    def test_split_k_helps_deep_reduction_small_output(self):
        """Deep channels + small spatial outputs benefit from SplitK (Figure 11)."""
        layer = table1_layer(3)  # C=1056, 7x7, K=192, 1x1
        model = _model()
        base = model.conv2d_latency(layer, GpuTuningConfig(outer_product_p=2))
        split = model.conv2d_latency(
            layer, GpuTuningConfig(outer_product_p=2, split_k=64)
        )
        assert split.seconds < base.seconds

    def test_fusedim_helps_small_spatial(self):
        layer = table1_layer(2)  # 9x9 input, 7x7 output
        model = _model()
        plain = model.conv2d_latency(layer, GpuTuningConfig(outer_product_p=2))
        fused = model.conv2d_latency(
            layer, GpuTuningConfig(outer_product_p=2, fuse_spatial=True)
        )
        assert fused.detail.get("m_eff", 0) <= plain.detail.get("m_eff", 1e18)

    def test_strided_conv_is_penalised(self):
        model = _model()
        cfg = GpuTuningConfig(outer_product_p=2, fuse_spatial=True)
        stride1 = table1_layer(5)
        stride2 = table1_layer(15)
        eff1 = stride1.macs / model.conv2d_latency(stride1, cfg).seconds
        eff2 = stride2.macs / model.conv2d_latency(stride2, cfg).seconds
        assert eff2 < eff1

    def test_simd_paths(self):
        model = _model()
        fp32 = model.simd_gemm_latency(512, 512, 512, dtype="float32")
        fp16 = model.simd_gemm_latency(512, 512, 512, dtype="float16", cast_overhead=0.8)
        assert fp32.seconds > 0 and fp16.seconds > 0


@given(st.integers(64, 2048), st.integers(64, 2048), st.integers(64, 2048))
@settings(max_examples=30, deadline=None)
def test_property_gemm_latency_monotone_in_k(m, n, k):
    model = _model()
    cfg = GpuTuningConfig()
    t1 = model.gemm_latency(m, n, k, cfg).seconds
    t2 = model.gemm_latency(m, n, 2 * k, cfg).seconds
    assert t1 > 0 and t2 >= t1


class TestMachines:
    def test_lookup(self):
        from repro.hwsim import machine_by_name

        assert machine_by_name("cascade-lake").cores == 24
        assert machine_by_name("graviton2").cores == 32
        assert machine_by_name("v100").sms == 80
        with pytest.raises(KeyError):
            machine_by_name("tpu-v4")

    def test_peak_helpers(self):
        from repro.hwsim import CASCADE_LAKE

        tops = CASCADE_LAKE.peak_int8_tops(macs_per_instr=64, throughput=2.0)
        assert 5.0 < tops < 20.0

    def test_geometric_mean(self):
        from repro.hwsim import geometric_mean

        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)
        with pytest.raises(ValueError):
            geometric_mean([])
        with pytest.raises(ValueError):
            geometric_mean([1.0, -1.0])
