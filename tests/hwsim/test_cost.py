"""Tests for the shared cost-model datatypes."""

import pytest

from repro.hwsim import CostBreakdown, RATIO_DETAIL_KEYS


class TestCostBreakdownAdd:
    def test_add_sums_headline_fields(self):
        a = CostBreakdown(seconds=1.0, compute_seconds=0.6, memory_seconds=0.3,
                          overhead_seconds=0.1)
        b = CostBreakdown(seconds=2.0, compute_seconds=1.0, memory_seconds=0.5,
                          overhead_seconds=0.5)
        total = a + b
        assert total.seconds == pytest.approx(3.0)
        assert total.compute_seconds == pytest.approx(1.6)
        assert total.memory_seconds == pytest.approx(0.8)
        assert total.overhead_seconds == pytest.approx(0.6)

    def test_add_merges_detail_by_key_summation(self):
        """Regression: __add__ used to drop the detail dict entirely."""
        a = CostBreakdown(seconds=1.0, detail={"macs": 100.0, "bytes": 64.0})
        b = CostBreakdown(seconds=2.0, detail={"macs": 50.0, "launches": 1.0})
        total = a + b
        assert total.detail == {"macs": 150.0, "bytes": 64.0, "launches": 1.0}

    def test_add_does_not_mutate_operands(self):
        a = CostBreakdown(seconds=1.0, detail={"macs": 1.0})
        b = CostBreakdown(seconds=1.0, detail={"macs": 2.0})
        _ = a + b
        assert a.detail == {"macs": 1.0}
        assert b.detail == {"macs": 2.0}

    def test_scaled_scales_counter_details(self):
        """Regression: ``scaled`` used to leave counter-like detail entries
        (macs, traffic bytes) unscaled while ``__add__`` sums them, so
        ``cost.scaled(2)`` and ``cost + cost`` disagreed."""
        a = CostBreakdown(seconds=1.0, detail={"macs": 100.0, "bytes": 64.0})
        scaled = a.scaled(2.0)
        assert scaled.seconds == pytest.approx(2.0)
        assert scaled.detail == {"macs": 200.0, "bytes": 128.0}
        assert scaled.detail is not a.detail
        assert a.detail == {"macs": 100.0, "bytes": 64.0}

    def test_scaled_matches_repeated_addition(self):
        a = CostBreakdown(seconds=0.5, compute_seconds=0.25, detail={"macs": 10.0})
        tripled = a.scaled(3)
        summed = a + a + a
        assert tripled.seconds == pytest.approx(summed.seconds)
        assert tripled.compute_seconds == pytest.approx(summed.compute_seconds)
        assert tripled.detail == pytest.approx(summed.detail)

    def test_add_preserves_ratio_details(self):
        """Summing ratio entries is meaningless; addition keeps the left
        operand's value, consistent with ``scaled``."""
        a = CostBreakdown(seconds=1.0, detail={"ipc": 2.5, "macs": 4.0})
        b = CostBreakdown(seconds=1.0, detail={"ipc": 3.5, "macs": 6.0})
        total = a + b
        assert total.detail == {"ipc": 2.5, "macs": 10.0}

    def test_scaled_preserves_ratio_details(self):
        """Ratio-like entries are work-independent and must not scale."""
        assert "ipc" in RATIO_DETAIL_KEYS
        a = CostBreakdown(seconds=1.0, detail={"ipc": 2.5, "efficiency": 0.8, "macs": 4.0})
        scaled = a.scaled(4.0)
        assert scaled.detail == {"ipc": 2.5, "efficiency": 0.8, "macs": 16.0}

    def test_unit_conversions(self):
        cost = CostBreakdown(seconds=2.5e-3)
        assert cost.milliseconds == pytest.approx(2.5)
        assert cost.microseconds == pytest.approx(2500.0)
