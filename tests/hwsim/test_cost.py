"""Tests for the shared cost-model datatypes."""

import pytest

from repro.hwsim import CostBreakdown


class TestCostBreakdownAdd:
    def test_add_sums_headline_fields(self):
        a = CostBreakdown(seconds=1.0, compute_seconds=0.6, memory_seconds=0.3,
                          overhead_seconds=0.1)
        b = CostBreakdown(seconds=2.0, compute_seconds=1.0, memory_seconds=0.5,
                          overhead_seconds=0.5)
        total = a + b
        assert total.seconds == pytest.approx(3.0)
        assert total.compute_seconds == pytest.approx(1.6)
        assert total.memory_seconds == pytest.approx(0.8)
        assert total.overhead_seconds == pytest.approx(0.6)

    def test_add_merges_detail_by_key_summation(self):
        """Regression: __add__ used to drop the detail dict entirely."""
        a = CostBreakdown(seconds=1.0, detail={"macs": 100.0, "bytes": 64.0})
        b = CostBreakdown(seconds=2.0, detail={"macs": 50.0, "launches": 1.0})
        total = a + b
        assert total.detail == {"macs": 150.0, "bytes": 64.0, "launches": 1.0}

    def test_add_does_not_mutate_operands(self):
        a = CostBreakdown(seconds=1.0, detail={"macs": 1.0})
        b = CostBreakdown(seconds=1.0, detail={"macs": 2.0})
        _ = a + b
        assert a.detail == {"macs": 1.0}
        assert b.detail == {"macs": 2.0}

    def test_scaled_preserves_detail(self):
        a = CostBreakdown(seconds=1.0, detail={"macs": 100.0})
        scaled = a.scaled(2.0)
        assert scaled.seconds == pytest.approx(2.0)
        assert scaled.detail == {"macs": 100.0}
        assert scaled.detail is not a.detail

    def test_unit_conversions(self):
        cost = CostBreakdown(seconds=2.5e-3)
        assert cost.milliseconds == pytest.approx(2.5)
        assert cost.microseconds == pytest.approx(2500.0)
