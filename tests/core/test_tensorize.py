"""Integration tests: the full UNIT pipeline on real workloads, checked numerically.

These are the headline correctness tests of the reproduction: for each
platform's instruction, a realistic (small-shape) operator is inspected,
reorganized, tuned, lowered, rewritten with the intrinsic, executed through the
instruction's hardware model, and compared against a numpy reference.
"""

import numpy as np
import pytest

from repro.core import tensorize
from repro.rewriter import CpuTuningConfig, GpuTuningConfig, TensorizeError
from repro.tir import IntrinsicCall, alloc_buffers, collect, execute
from repro.workloads import (
    Conv2DParams,
    conv2d_hwc,
    conv2d_nchwc,
    conv3d_from_conv2d,
    conv3d_ncdhwc,
    dense_int8,
    DenseParams,
    matmul_fp16,
    matmul_int8,
)
from tests.conftest import conv2d_hwc_reference, matmul_reference


def _run_and_count_calls(result, rng):
    # Execute through the vectorized engine — the default validation oracle.
    # tests/tir/test_engine.py asserts the engine is bit-identical to the
    # scalar interpreter on these same workload shapes.
    buffers = alloc_buffers(result.func, rng)
    out = execute(result.func, buffers)
    calls = collect(result.func.body, lambda s: isinstance(s, IntrinsicCall))
    return out, buffers, calls


class TestVnniIntegration:
    def test_conv_hwc_figure5_walkthrough(self, rng):
        params = Conv2DParams(in_channels=8, in_height=9, in_width=9, out_channels=32, kernel=3)
        conv = conv2d_hwc(params)
        result = tensorize(conv, "x86.avx512.vpdpbusd", config=CpuTuningConfig())
        out, buffers, calls = _run_and_count_calls(result, rng)
        assert len(calls) == 1
        data, weight = (buffers[t] for t in result.func.inputs)
        assert np.array_equal(out, conv2d_hwc_reference(data, weight))

    def test_blocked_nchwc_conv(self, rng):
        from tests.conftest import conv2d_nchwc_reference

        params = Conv2DParams(in_channels=8, in_height=8, in_width=8, out_channels=16, kernel=3)
        conv = conv2d_nchwc(params, lanes=16, reduction=4)
        result = tensorize(conv, "x86.avx512.vpdpbusd")
        out, buffers, _ = _run_and_count_calls(result, rng)
        by_name = {t.name: buffers[t] for t in result.func.inputs}
        ref = conv2d_nchwc_reference(by_name["data"], by_name["weight"])
        assert np.array_equal(out, ref)

    def test_dense_layer(self, rng):
        dense = dense_int8(DenseParams(batch=2, in_features=64, out_features=32))
        result = tensorize(dense, "x86.avx512.vpdpbusd")
        out, buffers, _ = _run_and_count_calls(result, rng)
        by_name = {t.name: buffers[t] for t in result.func.inputs}
        ref = matmul_reference(by_name["data"], by_name["weight"], transpose_b=True)
        assert np.array_equal(out, ref)

    def test_conv3d_extensibility(self, rng):
        """Section VI-C: a brand-new operator needs no changes to UNIT."""
        params = Conv2DParams(in_channels=8, in_height=6, in_width=6, out_channels=16, kernel=3)
        conv3d = conv3d_ncdhwc(conv3d_from_conv2d(params, depth=5))
        result = tensorize(conv3d, "x86.avx512.vpdpbusd")
        out, buffers, _ = _run_and_count_calls(result, rng)
        by_name = {t.name: buffers[t] for t in result.func.inputs}
        data = by_name["data"].astype(np.int64)
        weight = by_name["weight"].astype(np.int64)
        # direct 3-D reference
        c_outer, d, h, w, ci = data.shape
        k_outer, _, kk, _, _, ki, _ = weight.shape
        od, oh, ow = d - kk + 1, h - kk + 1, w - kk + 1
        ref = np.zeros((k_outer, od, oh, ow, ki), dtype=np.int64)
        for ko in range(k_outer):
            for z in range(od):
                for y in range(oh):
                    for x in range(ow):
                        patch = data[:, z : z + kk, y : y + kk, x : x + kk, :]
                        ref[ko, z, y, x, :] = np.einsum(
                            "cdhwi,cdhwki->k", patch, weight[ko]
                        )
        assert np.array_equal(out, ref.astype(np.int32))

    def test_int16_extension_instruction(self, rng):
        """The vpdpwssd (int16) extension maps onto an int16 matmul."""
        from repro.dsl import cast, compute, placeholder, reduce_axis, sum_reduce

        a = placeholder((4, 32), "int16", "A")
        b = placeholder((16, 32), "int16", "B")
        rk = reduce_axis(0, 32, "rk")
        mm = compute(
            (4, 16),
            lambda i, j: sum_reduce(cast("int32", a[i, rk]) * cast("int32", b[j, rk]), rk),
            name="mm_i16",
        )
        result = tensorize(mm, "x86.avx512.vpdpwssd")
        out, buffers, _ = _run_and_count_calls(result, rng)
        by_name = {t.name: buffers[t] for t in result.func.inputs}
        assert np.array_equal(out, matmul_reference(by_name["A"], by_name["B"], transpose_b=True))


class TestArmDotIntegration:
    def test_matmul_sdot(self, rng):
        from repro.dsl import cast, compute, placeholder, reduce_axis, sum_reduce

        a = placeholder((4, 16), "int8", "A")
        b = placeholder((8, 16), "int8", "B")
        rk = reduce_axis(0, 16, "rk")
        mm = compute(
            (4, 8),
            lambda i, j: sum_reduce(cast("int32", a[i, rk]) * cast("int32", b[j, rk]), rk),
            name="mm_s8",
        )
        result = tensorize(mm, "arm.neon.sdot")
        out, buffers, _ = _run_and_count_calls(result, rng)
        by_name = {t.name: buffers[t] for t in result.func.inputs}
        assert np.array_equal(out, matmul_reference(by_name["A"], by_name["B"], transpose_b=True))

    def test_blocked_conv_udot(self, rng):
        from tests.conftest import conv2d_nchwc_reference

        params = Conv2DParams(in_channels=8, in_height=7, in_width=7, out_channels=8, kernel=3)
        conv = conv2d_nchwc(params, lanes=4, reduction=4, in_dtype="uint8", weight_dtype="uint8")
        result = tensorize(conv, "arm.neon.udot")
        out, buffers, _ = _run_and_count_calls(result, rng)
        by_name = {t.name: buffers[t] for t in result.func.inputs}
        assert np.array_equal(out, conv2d_nchwc_reference(by_name["data"], by_name["weight"]))


class TestTensorCoreIntegration:
    def test_matmul_wmma(self, rng):
        mm = matmul_fp16(48, 32, 32)
        result = tensorize(mm, target="cuda", config=GpuTuningConfig(outer_product_p=1))
        out, buffers, _ = _run_and_count_calls(result, rng)
        a, b = (buffers[t] for t in result.func.inputs)
        np.testing.assert_allclose(
            out, a.astype(np.float32) @ b.astype(np.float32), rtol=1e-2, atol=1e-2
        )

    def test_gemm_formulated_conv(self, rng):
        params = Conv2DParams(in_channels=16, in_height=6, in_width=6, out_channels=32, kernel=1)
        gemm = tensorize(
            __import__("repro.workloads", fromlist=["conv2d_gemm"]).conv2d_gemm(params),
            "nvvm.wmma.m16n16k16.mma.row.row.f32.f32",
        )
        out, buffers, _ = _run_and_count_calls(gemm, rng)
        a, b = (buffers[t] for t in gemm.func.inputs)
        np.testing.assert_allclose(
            out, a.astype(np.float32) @ b.astype(np.float32), rtol=1e-2, atol=1e-2
        )


class TestFailureModes:
    def test_target_selection(self):
        mm = matmul_int8(4, 16, 8)
        result = tensorize(mm, target="x86")
        assert result.intrinsic.name == "x86.avx512.vpdpbusd"

    def test_fp32_op_has_no_tensorized_instruction_on_cuda(self):
        from repro.workloads import matmul_fp32

        with pytest.raises(TensorizeError):
            tensorize(matmul_fp32(32, 32, 32), target="cuda")

    def test_missing_intrinsic_and_target(self):
        mm = matmul_int8(4, 16, 8)
        with pytest.raises(ValueError):
            tensorize(mm)

    def test_bad_mapping_index(self):
        mm = matmul_int8(4, 16, 8)
        with pytest.raises(IndexError):
            tensorize(mm, "x86.avx512.vpdpbusd", mapping_index=99)
