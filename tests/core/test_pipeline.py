"""Tests for the end-to-end compilation pipeline and UNIT operator runners."""

import pytest

from repro.core import UnitCpuRunner, UnitGpuRunner, compile_model
from repro.graph import TensorShape
from repro.hwsim import GRAVITON2
from repro.models import GraphBuilder, get_model
from repro.workloads import DenseParams, table1_layer


def _toy_model():
    builder = GraphBuilder("toy", TensorShape(3, 32, 32))
    builder.conv(16, 3)
    builder.conv(32, 3, stride=2)
    builder.depthwise(3)
    return builder.classifier(10)


class TestUnitRunners:
    def test_cpu_tuning_modes_ordering(self):
        layer = table1_layer(5)
        t_parallel = UnitCpuRunner(tuning="parallel").conv2d_latency(layer).seconds
        t_first = UnitCpuRunner(tuning="first_pair").conv2d_latency(layer).seconds
        t_full = UnitCpuRunner(tuning="full").conv2d_latency(layer).seconds
        assert t_full <= t_first <= t_parallel

    def test_cpu_runner_caches(self):
        runner = UnitCpuRunner(tuning="full")
        layer = table1_layer(5)
        first = runner.conv2d_latency(layer)
        second = runner.conv2d_latency(layer)
        assert first is second
        assert len(runner.tuning_results) == 1

    def test_gpu_modes_ordering(self):
        layer = table1_layer(8)
        generic = UnitGpuRunner(mode="generic").conv2d_latency(layer).seconds
        tuned = UnitGpuRunner(mode="tune").conv2d_latency(layer).seconds
        assert tuned <= generic

    def test_arm_runner(self):
        runner = UnitCpuRunner(GRAVITON2, "arm.neon.sdot")
        assert runner.conv2d_latency(table1_layer(5)).seconds > 0

    def test_dense_and_depthwise_paths(self):
        from repro.graph import DepthwiseConv2DNode, TensorShape as TS

        runner = UnitCpuRunner()
        assert runner.dense_latency(DenseParams(1, 2048, 1000)).seconds > 0
        node = DepthwiseConv2DNode(name="dw", inputs=["x"], kernel=3, stride=1)
        node.in_shape = TS(32, 14, 14)
        assert runner.depthwise_conv2d_latency(node).seconds > 0

    def test_invalid_modes_rejected(self):
        with pytest.raises(ValueError):
            UnitCpuRunner(tuning="magic")
        with pytest.raises(ValueError):
            UnitGpuRunner(mode="magic")


class TestCompileModel:
    def test_toy_model_x86(self):
        compiled = compile_model(_toy_model(), target="x86")
        assert compiled.latency_ms > 0
        assert compiled.target == "x86"
        assert compiled.layout_decisions  # layout planned for conv/dense nodes
        # Quantization + fusion happened: compiled graph differs from input.
        assert any(n.dtype == "int8" for n in compiled.graph.conv_nodes())

    def test_toy_model_cuda_and_arm(self):
        cuda = compile_model(_toy_model(), target="cuda")
        arm = compile_model(_toy_model(), target="arm")
        assert cuda.latency_ms > 0 and arm.latency_ms > 0
        assert any(n.dtype == "float16" for n in cuda.graph.conv_nodes())

    def test_unknown_target(self):
        with pytest.raises(ValueError):
            compile_model(_toy_model(), target="fpga")

    def test_resnet18_end_to_end_plausible(self):
        compiled = compile_model(get_model("resnet-18", fresh=True), target="x86")
        # Latency should be sub-100ms and more than a few hundred microseconds.
        assert 0.1 < compiled.latency_ms < 100.0

    def test_baseline_runner_injection(self):
        from repro.baselines import MxnetOneDnnRunner

        unit = compile_model(_toy_model(), target="x86")
        baseline = compile_model(
            _toy_model(), target="x86", runner=MxnetOneDnnRunner(), fuse=False
        )
        assert baseline.latency_ms > unit.latency_ms


class TestTrialValidation:
    """Functional trial validation: the engine as the tuning oracle."""

    def test_cpu_runner_validates_fresh_searches(self):
        from repro.core.pipeline import UnitCpuRunner
        from repro.workloads import Conv2DParams

        runner = UnitCpuRunner(tuning="first_pair", validate=True)
        params = Conv2DParams(
            in_channels=8, in_height=6, in_width=6, out_channels=16, kernel=3, name="v"
        )
        cost = runner.conv2d_latency(params)
        assert cost.seconds > 0
        # A cache hit must not re-validate (validation only guards fresh
        # records); this just exercises the hit path.
        again = runner.conv2d_latency(params)
        assert again.seconds == cost.seconds

    def test_validation_failure_rejects_record(self):
        from repro.core.pipeline import UnitCpuRunner
        from repro.rewriter.loop_reorg import TensorizeError
        from repro.workloads import Conv2DParams

        import pytest as _pytest

        class BrokenValidation(UnitCpuRunner):
            def _validator(self, kind, params):
                def check(config):
                    raise TensorizeError("injected validation failure")

                return check

        runner = BrokenValidation(tuning="first_pair", validate=True)
        params = Conv2DParams(
            in_channels=8, in_height=6, in_width=6, out_channels=16, kernel=3, name="b"
        )
        with _pytest.raises(TensorizeError):
            runner.conv2d_latency(params)
        # The rejected record must not have entered the cache.
        assert runner.session.cache.stats.size == 0

    def test_gpu_runner_validates(self):
        from repro.core.pipeline import UnitGpuRunner
        from repro.workloads import DenseParams

        runner = UnitGpuRunner(mode="generic", validate=True)
        cost = runner.dense_latency(
            DenseParams(batch=1, in_features=32, out_features=32, name="gd")
        )
        assert cost.seconds > 0


    def test_arm_runner_validates_dense(self):
        """Regression: dense validation must use the intrinsic's operand
        dtypes (sdot is int8 x int8, not the VNNI uint8 x int8 default)."""
        from repro.core.pipeline import UnitCpuRunner
        from repro.hwsim.machine import GRAVITON2
        from repro.workloads import DenseParams

        runner = UnitCpuRunner(
            GRAVITON2, "arm.neon.sdot", tuning="first_pair", validate=True
        )
        cost = runner.dense_latency(
            DenseParams(batch=1, in_features=32, out_features=8, name="ad")
        )
        assert cost.seconds > 0


class TestStoreBackedCompilation:
    def test_compile_model_store_kwarg_publishes_and_rereads(self, tmp_path):
        from repro.rewriter import ShardedTuningStore, TuningSession

        store = ShardedTuningStore(tmp_path / "s", shards=4)
        cold = compile_model(_toy_model(), target="x86", store=store)
        assert len(store.load()) > 0  # fresh searches were published

        warm_session = TuningSession(store=store)
        warm = compile_model(_toy_model(), target="x86", session=warm_session)
        assert warm_session.trials_run == 0
        assert warm.latency_ms == cold.latency_ms

    def test_compile_model_rejects_conflicting_session_and_store(self, tmp_path):
        from repro.rewriter import ShardedTuningStore, TuningSession

        store = ShardedTuningStore(tmp_path / "s", shards=2)
        other = TuningSession()  # bound to no store
        with pytest.raises(ValueError):
            compile_model(_toy_model(), target="x86", session=other, store=store)
        # A session constructed with the store passes through untouched.
        bound = TuningSession(store=store)
        compiled = compile_model(_toy_model(), target="x86", session=bound, store=store)
        assert compiled.latency_ms > 0

    def test_compile_model_batch_workers_matches_serial(self, tmp_path):
        from repro.core import compile_model_batch
        from repro.rewriter import ShardedTuningStore

        store = ShardedTuningStore(tmp_path / "s", shards=8)
        distributed = compile_model_batch(
            [_toy_model()], targets=("x86",), store=store, workers=2
        )
        serial = compile_model_batch([_toy_model()], targets=("x86",))
        assert [c.latency_ms for c in distributed] == [c.latency_ms for c in serial]

    def test_compile_model_batch_workers_requires_store(self):
        from repro.core import compile_model_batch

        with pytest.raises(ValueError):
            compile_model_batch([_toy_model()], targets=("x86",), workers=2)


class TestStoreConveniences:
    def test_store_accepts_a_path(self, tmp_path):
        """A path coerces to a ShardedTuningStore at the API boundary."""
        root = str(tmp_path / "s")
        cold = compile_model(_toy_model(), target="x86", store=root)
        from repro.rewriter import ShardedTuningStore

        assert len(ShardedTuningStore(root).load()) > 0
        warm = compile_model(_toy_model(), target="x86", store=root)
        assert warm.latency_ms == cold.latency_ms

    def test_store_with_explicit_runner_rejected(self, tmp_path):
        runner = UnitCpuRunner(tuning="full")
        with pytest.raises(ValueError):
            compile_model(_toy_model(), target="x86", runner=runner, store=str(tmp_path / "s"))

    def test_batch_pretune_matches_session_strategy(self, tmp_path):
        """Workers must publish under the keys the session will look up —
        including an approximate strategy's namespaced keys."""
        from repro.core import compile_model_batch
        from repro.rewriter import ShardedTuningStore, TuningSession

        store = ShardedTuningStore(tmp_path / "s", shards=4)
        session = TuningSession(store=store, strategy="early_exit", early_exit_k=4)
        compile_model_batch([_toy_model()], targets=("x86",), session=session, workers=2)
        assert session.trials_run == 0  # every compile lookup hit the store
        assert session.store_hits > 0


class TestStaticPrecheck:
    """The static verification tier as the candidate-screening oracle."""

    def test_precheck_built_only_when_validating(self):
        from repro.core.pipeline import UnitCpuRunner
        from repro.workloads import Conv2DParams

        params = Conv2DParams(
            in_channels=8, in_height=6, in_width=6, out_channels=16, kernel=3, name="p"
        )
        plain = UnitCpuRunner(tuning="first_pair")
        assert plain._precheck("conv2d", params) is None
        checking = UnitCpuRunner(tuning="first_pair", validate=True)
        assert checking._precheck("conv2d", params) is not None

    def test_sound_candidates_survive_the_precheck(self):
        from repro.core.pipeline import UnitCpuRunner
        from repro.workloads import Conv2DParams

        runner = UnitCpuRunner(tuning="full", validate=True)
        params = Conv2DParams(
            in_channels=8, in_height=6, in_width=6, out_channels=16, kernel=3, name="ok"
        )
        cost = runner.conv2d_latency(params)
        assert cost.seconds > 0
        # Every candidate of the full space verifies: nothing rejected.
        assert runner.session.candidates_rejected == 0

    def test_rejected_candidates_counted_in_record(self):
        from repro.core.pipeline import UnitCpuRunner
        from repro.rewriter.loop_reorg import TensorizeError
        from repro.workloads import Conv2DParams

        class RejectFirst(UnitCpuRunner):
            """Wrap the real precheck, vetoing the first candidate seen."""

            def _precheck(self, kind, params):
                real = super()._precheck(kind, params)
                seen = []

                def check(config):
                    if not seen:
                        seen.append(config)
                        raise TensorizeError("injected precheck rejection")
                    if real is not None:
                        real(config)

                return check

        runner = RejectFirst(tuning="full", validate=True)
        params = Conv2DParams(
            in_channels=8, in_height=6, in_width=6, out_channels=16, kernel=3, name="rj"
        )
        cost = runner.conv2d_latency(params)
        assert cost.seconds > 0
        assert runner.session.candidates_rejected == 1
        record = next(iter(runner.session.cache._records.values()))
        assert record.result.rejected == 1
