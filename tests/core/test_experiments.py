"""Shape tests for the experiment drivers: the paper's qualitative findings.

Absolute numbers are not expected to match the paper (the machines are
analytical models), but the *shape* of every figure — who wins, by roughly
what factor, where the crossovers are — must hold.  EXPERIMENTS.md documents
the side-by-side numbers.
"""

import pytest

from repro.core import experiments
from repro.hwsim import geometric_mean

_FAST_MODELS = ["resnet-18", "resnet-50", "mobilenet-v2"]


class TestFigure1:
    def test_fp16_without_tensor_core_is_a_slowdown(self):
        rows = experiments.figure1_fp16_without_tensor_core(_FAST_MODELS)
        body = [r for r in rows if r["model"] != "geomean"]
        assert all(r["relative_fp16_vs_fp32"] < 1.0 for r in body)


class TestFigure8:
    def test_unit_beats_mxnet_and_tvm(self):
        rows = experiments.figure8_cpu_end_to_end(_FAST_MODELS)
        geo = rows[-1]
        assert geo["model"] == "geomean"
        # Paper: 1.3x over MXNet+oneDNN and 1.18x over hand-written TVM.
        assert 1.1 < geo["rel_unit"] < 3.0
        assert 1.05 < geo["unit_vs_tvm"] < 1.8
        body = [r for r in rows if r["model"] != "geomean"]
        assert all(r["rel_unit"] > 1.0 for r in body)


class TestFigure9:
    def test_unit_beats_cudnn_tensor_core(self):
        rows = experiments.figure9_gpu_end_to_end(_FAST_MODELS)
        geo = rows[-1]
        # Paper: mean 1.75x, up to 2.2x.
        assert 1.3 < geo["rel_unit"] < 3.0
        body = [r for r in rows if r["model"] != "geomean"]
        assert all(r["rel_unit"] > 1.0 for r in body)


class TestFigure10:
    @pytest.fixture(scope="class")
    def rows(self):
        return experiments.figure10_cpu_ablation()

    def test_most_layers_beat_onednn_after_tuning(self, rows):
        wins = [r for r in rows if r["rel_tune"] > 1.0]
        assert len(wins) >= 12

    def test_layers_1_and_4_lose(self, rows):
        """The residue-guard layers stay below oneDNN (the paper's observation)."""
        by_layer = {r["layer"]: r for r in rows}
        assert by_layer[1]["rel_tune"] < 1.0
        assert by_layer[4]["rel_tune"] < 1.0

    def test_unroll_contributes_most_of_the_speedup(self, rows):
        gains_unroll = geometric_mean(r["rel_unroll"] / r["rel_parallel"] for r in rows)
        gains_tune = geometric_mean(r["rel_tune"] / r["rel_unroll"] for r in rows)
        assert gains_unroll > gains_tune

    def test_tuning_never_hurts(self, rows):
        assert all(r["rel_tune"] >= r["rel_unroll"] * 0.999 for r in rows)


class TestFigure11:
    @pytest.fixture(scope="class")
    def rows(self):
        return experiments.figure11_gpu_ablation()

    def test_most_layers_beat_cudnn_after_tuning(self, rows):
        wins = [r for r in rows if r["rel_tune"] > 1.0]
        assert len(wins) >= 12

    def test_strided_layer_1_loses(self, rows):
        by_layer = {r["layer"]: r for r in rows}
        assert by_layer[1]["rel_tune"] < 1.05

    def test_tune_is_best_variant(self, rows):
        for r in rows:
            assert r["rel_tune"] >= max(r["rel_generic"], r["rel_fusedim"], r["rel_splitk"]) * 0.999


class TestFigure12:
    def test_arm_ordering(self):
        rows = experiments.figure12_arm_end_to_end(_FAST_MODELS)
        geo = rows[-1]
        # UNIT > hand-written DOT schedules > plain NEON; paper: 1.13x over manual.
        assert geo["rel_unit"] > geo["rel_manual"] > 1.5
        assert 1.02 < geo["unit_vs_manual"] < 1.5


class TestFigure13:
    def test_conv3d_mean_speedup(self):
        rows = experiments.figure13_conv3d()
        gmean = [r for r in rows if r["layer"] == "gmean"][0]
        # Paper: average 1.2x over oneDNN with per-layer spread.
        assert 1.0 < gmean["rel_unit"] < 2.0
        body = [r for r in rows if r["layer"] != "gmean"]
        assert len(body) == 11


class TestTable1AndConvergence:
    def test_table1_rows(self):
        rows = experiments.table1_characteristics()
        assert len(rows) == 16
        assert rows[0]["C"] == 288

    def test_tuning_convergence_claims(self):
        data = experiments.tuning_convergence()
        # Paper: >50% of kernels optimal at the first pair, >95% within 8.
        assert data["optimal_at_first_pair"] >= 0.5
        assert data["optimal_within_8_pairs"] >= 0.75
        assert data["num_layers"] == 16

    def test_resnet18_unique_convs(self):
        convs = experiments.resnet18_unique_convs()
        assert 8 <= len(convs) <= 11


class TestWholeModelExecution:
    def test_engine_backed_model_run(self):
        rows = experiments.whole_model_execution(models=["resnet-18"], input_hw=16)
        (row,) = rows
        assert row["model"] == "resnet-18"
        assert row["deterministic"] is True
        # The repeated residual blocks must ride the plan cache: the warm run
        # compiles nothing and every distinct layer compiled exactly once.
        assert row["warm_plan_hit_rate"] == 1.0
        assert 0 < row["plan_compiles"] < row["nodes"]
        # The liveness-planned arena must beat per-op fresh allocation.
        assert row["memory_reuse"] > 2.0
        assert row["arena_mb"] < row["naive_mb"]
