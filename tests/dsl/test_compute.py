"""Unit tests for tensors, axes and the ComputeOp data structure."""

import pytest

from repro.dsl import (
    AxisKind,
    ComputeOp,
    Const,
    cast,
    compute,
    loop_axis,
    op_to_str,
    placeholder,
    reduce_axis,
    sum_reduce,
)
from tests.conftest import small_conv_hwc


class TestTensor:
    def test_placeholder_metadata(self):
        t = placeholder((4, 8), "uint8", "t")
        assert t.shape == (4, 8)
        assert t.ndim == 2
        assert t.num_elements == 32
        assert t.size_bytes == 32
        assert t.is_placeholder

    def test_invalid_shape(self):
        with pytest.raises(ValueError):
            placeholder((0, 4), "int8", "bad")

    def test_indexing_produces_load(self):
        t = placeholder((4, 8), "int8", "t")
        i = loop_axis(0, 4, "i")
        load = t[i, 3]
        assert load.tensor is t
        assert len(load.indices) == 2


class TestAxis:
    def test_kinds(self):
        assert loop_axis(0, 4).kind == AxisKind.DATA_PARALLEL
        assert reduce_axis(0, 4).kind == AxisKind.REDUCE

    def test_single_argument_form(self):
        assert loop_axis(7).extent == 7

    def test_non_canonical_range_rejected(self):
        with pytest.raises(ValueError):
            loop_axis(1, 4)

    def test_non_positive_extent_rejected(self):
        with pytest.raises(ValueError):
            reduce_axis(0, 0)


class TestComputeOp:
    def test_vnni_style_description(self):
        a = placeholder((64,), "uint8", "a")
        b = placeholder((64,), "int8", "b")
        c = placeholder((16,), "int32", "c")
        j = reduce_axis(0, 4, "j")
        d = compute(
            (16,),
            lambda i: c[i]
            + sum_reduce(cast("int32", a[i * 4 + j]) * cast("int32", b[i * 4 + j]), j),
            name="d",
        )
        op = d.op
        assert isinstance(op, ComputeOp)
        assert d.shape == (16,)
        assert d.dtype.name == "int32"
        assert sorted(t.name for t in op.input_tensors) == ["a", "b", "c"]
        assert [ax.name for ax in op.reduce_axes] == ["j"]
        assert op.has_reduction

    def test_conv_structure(self):
        conv = small_conv_hwc()
        op = conv.op
        assert conv.shape == (6, 6, 16)
        assert len(op.axes) == 3
        assert len(op.reduce_axes) == 3
        assert len(op.all_axes) == 6

    def test_unbound_variable_rejected(self):
        from repro.dsl import Var

        stray = Var("stray")
        with pytest.raises(ValueError):
            compute((4,), lambda i: i + stray)

    def test_elementwise_has_no_reduction(self):
        a = placeholder((4,), "float32", "a")
        out = compute((4,), lambda i: a[i] * 2.0, name="scale")
        assert not out.op.has_reduction
        assert out.op.reduce_axes == []

    def test_accumulate_flag(self):
        a = placeholder((4, 4), "float16", "a")
        b = placeholder((4, 4), "float16", "b")
        k = reduce_axis(0, 4, "k")
        c = compute(
            (4, 4),
            lambda i, j: sum_reduce(cast("float32", a[i, k]) * cast("float32", b[k, j]), k),
            name="c",
            accumulate=True,
            output_dtype="float32",
        )
        assert c.op.accumulate
        assert c.dtype.name == "float32"

    def test_printer_round_trip_contains_structure(self):
        conv = small_conv_hwc()
        text = op_to_str(conv.op)
        assert "reduce_axis" in text
        assert "conv[" in text
        assert "sum(" in text
