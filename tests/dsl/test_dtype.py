"""Unit tests for the scalar data-type system."""

import numpy as np
import pytest

from repro.dsl import dtype as dt


class TestBasics:
    def test_names(self):
        assert dt.int8.name == "int8"
        assert dt.uint8.name == "uint8"
        assert dt.float16.name == "float16"
        assert dt.bool_.name == "bool"

    def test_from_string_canonical_and_aliases(self):
        assert dt.from_string("int32") is dt.int32
        assert dt.from_string("i32") is dt.int32
        assert dt.from_string("u8") is dt.uint8
        assert dt.from_string("fp16") is dt.float16
        assert dt.from_string(dt.float32) is dt.float32

    def test_from_string_unknown(self):
        with pytest.raises(ValueError):
            dt.from_string("int7")

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            dt.DType("complex", 32)
        with pytest.raises(ValueError):
            dt.DType("int", 12)

    def test_bytes(self):
        assert dt.int8.bytes == 1
        assert dt.int32.bytes == 4
        assert dt.float16.bytes == 2
        assert dt.bool_.bytes == 1

    def test_classification(self):
        assert dt.uint8.is_integer and not dt.uint8.is_signed
        assert dt.int8.is_integer and dt.int8.is_signed
        assert dt.float32.is_float and dt.float32.is_signed
        assert dt.bool_.is_bool


class TestRangesAndNumpy:
    def test_integer_ranges(self):
        assert dt.int8.min_value == -128 and dt.int8.max_value == 127
        assert dt.uint8.min_value == 0 and dt.uint8.max_value == 255
        assert dt.int32.max_value == 2**31 - 1

    def test_numpy_dtypes(self):
        assert dt.int8.np_dtype == np.dtype(np.int8)
        assert dt.float16.np_dtype == np.dtype(np.float16)
        assert dt.bool_.np_dtype == np.dtype(np.bool_)

    def test_can_hold(self):
        assert dt.int32.can_hold(dt.int8)
        assert dt.int32.can_hold(dt.uint8)
        assert not dt.int8.can_hold(dt.int32)
        assert not dt.uint8.can_hold(dt.int8)  # sign mismatch
        assert dt.float32.can_hold(dt.int16)
        assert not dt.float16.can_hold(dt.int32)
        assert dt.float32.can_hold(dt.float16)


class TestCommonType:
    def test_same(self):
        assert dt.common_type(dt.int8, dt.int8) is dt.int8

    def test_integer_widening(self):
        assert dt.common_type(dt.int8, dt.int32) == dt.int32
        assert dt.common_type(dt.uint8, dt.int32) == dt.int32

    def test_float_wins(self):
        assert dt.common_type(dt.int32, dt.float32) == dt.float32
        assert dt.common_type(dt.float16, dt.float32) == dt.float32
