"""Property-based tests (hypothesis) for the expression layer."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dsl import (
    Add,
    Const,
    FloorDiv,
    Max,
    Min,
    Mod,
    Mul,
    Sub,
    Var,
    extract_linear,
    free_vars,
    simplify,
    structural_equal,
    substitute,
)

_VAR_POOL = [Var(name) for name in ("i", "j", "k")]


@st.composite
def int_exprs(draw, depth=0):
    """Random integer expressions over a small pool of variables."""
    if depth > 3 or draw(st.booleans()):
        if draw(st.booleans()):
            return draw(st.sampled_from(_VAR_POOL)), set()
        value = draw(st.integers(min_value=-20, max_value=20))
        return Const(value), set()
    op = draw(st.sampled_from([Add, Sub, Mul, Min, Max]))
    lhs, lv = draw(int_exprs(depth=depth + 1))
    rhs, rv = draw(int_exprs(depth=depth + 1))
    return op(lhs, rhs), lv | rv


def _evaluate(expr, env):
    """Reference evaluator for the random expression trees."""
    if isinstance(expr, Const):
        return expr.value
    if isinstance(expr, Var):
        return env[expr]
    a, b = _evaluate(expr.a, env), _evaluate(expr.b, env)
    if isinstance(expr, Add):
        return a + b
    if isinstance(expr, Sub):
        return a - b
    if isinstance(expr, Mul):
        return a * b
    if isinstance(expr, Min):
        return min(a, b)
    if isinstance(expr, Max):
        return max(a, b)
    if isinstance(expr, FloorDiv):
        return a // b
    if isinstance(expr, Mod):
        return a % b
    raise TypeError(type(expr))


@given(int_exprs(), st.lists(st.integers(-50, 50), min_size=3, max_size=3))
@settings(max_examples=200, deadline=None)
def test_simplify_preserves_value(expr_and_vars, values):
    """simplify() must never change the value of an expression."""
    expr, _ = expr_and_vars
    env = dict(zip(_VAR_POOL, values))
    assert _evaluate(simplify(expr), env) == _evaluate(expr, env)


@given(int_exprs())
@settings(max_examples=200, deadline=None)
def test_simplify_idempotent(expr_and_vars):
    expr, _ = expr_and_vars
    once = simplify(expr)
    twice = simplify(once)
    assert structural_equal(once, twice)


@given(int_exprs())
@settings(max_examples=200, deadline=None)
def test_structural_equal_reflexive(expr_and_vars):
    expr, _ = expr_and_vars
    assert structural_equal(expr, expr)


@given(
    st.integers(-8, 8),
    st.integers(-8, 8),
    st.integers(-20, 20),
    st.lists(st.integers(-30, 30), min_size=2, max_size=2),
)
@settings(max_examples=200, deadline=None)
def test_extract_linear_matches_evaluation(ci, cj, k, values):
    """The extracted (coefficients, constant) must reproduce the expression."""
    i, j = _VAR_POOL[0], _VAR_POOL[1]
    expr = i * ci + j * cj + k
    result = extract_linear(expr, [i, j])
    assert result is not None
    coeffs, const = result
    env = {i: values[0], j: values[1]}
    linear_value = sum(coeffs.get(v, 0) * env[v] for v in (i, j)) + const
    assert linear_value == _evaluate(expr, env)


@given(int_exprs(), st.integers(-10, 10))
@settings(max_examples=150, deadline=None)
def test_substitute_removes_variable(expr_and_vars, value):
    expr, _ = expr_and_vars
    target = _VAR_POOL[0]
    out = substitute(expr, {target: Const(value)})
    assert target not in free_vars(out)
