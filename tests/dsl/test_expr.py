"""Unit tests for the expression tree: construction, analysis, simplification."""

import pytest

from repro.dsl import (
    Add,
    Cast,
    Compare,
    Const,
    Mul,
    Reduce,
    Select,
    TensorLoad,
    Var,
    cast,
    expr_to_str,
    extract_linear,
    free_vars,
    loop_axis,
    placeholder,
    reduce_axis,
    simplify,
    structural_equal,
    substitute,
    sum_reduce,
    tensors_referenced,
)


class TestConstruction:
    def test_operator_overloading(self):
        i = Var("i")
        e = i * 4 + 1
        assert isinstance(e, Add)
        assert isinstance(e.a, Mul)
        assert expr_to_str(e) == "((i * 4) + 1)"

    def test_axis_participates_in_arithmetic(self):
        i = loop_axis(0, 16, "i")
        j = reduce_axis(0, 4, "j")
        e = i * 4 + j
        assert sorted(v.name for v in free_vars(e)) == ["i", "j"]

    def test_tensor_load_checks_rank(self):
        t = placeholder((4, 4), "int8", "t")
        with pytest.raises(ValueError):
            TensorLoad(t, [Var("i")])

    def test_cast_folds_noop_and_constant(self):
        assert cast("int32", Const(3, "int32")) is not None
        c = cast("int32", Const(3, "int8"))
        assert isinstance(c, Const) and c.dtype.name == "int32"
        v = Var("x", "int32")
        assert cast("int32", v) is v

    def test_reduce_requires_reduce_axis(self):
        i = loop_axis(0, 4, "i")
        with pytest.raises(ValueError):
            sum_reduce(Const(1), i)

    def test_nested_reduce_detected_via_compute(self):
        from repro.dsl import compute

        j = reduce_axis(0, 4, "j")
        k = reduce_axis(0, 4, "k")
        with pytest.raises(ValueError):
            compute((4,), lambda i: sum_reduce(sum_reduce(Const(1, "int32"), k), j))


class TestAnalysis:
    def test_free_vars_and_tensors(self):
        a = placeholder((8,), "int8", "a")
        b = placeholder((8,), "int8", "b")
        i = Var("i")
        e = cast("int32", a[i]) * cast("int32", b[i])
        assert free_vars(e) == [i]
        assert tensors_referenced(e) == [a, b]

    def test_structural_equal_with_var_map(self):
        a = placeholder((8,), "int8", "a")
        i, j = Var("i"), Var("j")
        e1 = a[i] + 1
        e2 = a[j] + 1
        assert not structural_equal(e1, e2)
        assert structural_equal(e1, e2, {i: j})

    def test_structural_equal_different_tensors(self):
        a = placeholder((8,), "int8", "a")
        b = placeholder((8,), "int8", "b")
        i = Var("i")
        assert not structural_equal(a[i], b[i])

    def test_substitute(self):
        a = placeholder((8, 8), "int8", "a")
        i, j, x = Var("i"), Var("j"), Var("x")
        e = a[i, j] + i
        out = substitute(e, {i: x * 2})
        names = {v.name for v in free_vars(out)}
        assert names == {"x", "j"}


class TestSimplify:
    def test_constant_folding(self):
        e = Const(2) * Const(3) + Const(4)
        s = simplify(e)
        assert isinstance(s, Const) and s.value == 10

    def test_identities(self):
        x = Var("x")
        assert simplify(x + 0) is x
        assert simplify(x * 1) is x
        mul_zero = simplify(x * 0)
        assert isinstance(mul_zero, Const) and mul_zero.value == 0
        assert simplify(x // 1) is x

    def test_select_folding(self):
        x = Var("x")
        s = simplify(Select(Compare("<", Const(1), Const(2)), x, x + 1))
        assert s is x

    def test_compare_folding(self):
        c = simplify(Compare(">=", Const(4), Const(2)))
        assert isinstance(c, Const) and c.value is True


class TestExtractLinear:
    def test_affine(self):
        i, j = Var("i"), Var("j")
        coeffs, const = extract_linear(i * 4 + j + 2, [i, j])
        assert coeffs == {i: 4, j: 1}
        assert const == 2

    def test_nested_scaling(self):
        i, j = Var("i"), Var("j")
        coeffs, const = extract_linear((i + j) * 3, [i, j])
        assert coeffs == {i: 3, j: 3} and const == 0

    def test_non_affine_returns_none(self):
        i, j = Var("i"), Var("j")
        assert extract_linear(i * j, [i, j]) is None

    def test_unknown_variable_returns_none(self):
        i, j = Var("i"), Var("j")
        assert extract_linear(i + j, [i]) is None

    def test_cast_transparent(self):
        i = Var("i")
        coeffs, const = extract_linear(cast("int32", i * 2), [i])
        assert coeffs == {i: 2} and const == 0


class TestInterning:
    """Hash-consing / memoization layer: cached hashes, memoized traversals."""

    def test_structural_hash_consistent_with_equality(self):
        from repro.dsl import structural_hash

        a = placeholder((8,), "int32", "a")
        i, j = Var("i"), Var("j")
        e1 = a[i] * 2 + 1
        e2 = a[i] * 2 + 1
        assert structural_equal(e1, e2)
        assert structural_hash(e1) == structural_hash(e2)
        # Variable identity is abstracted (soundness under var_map):
        e3 = a[j] * 2 + 1
        assert structural_hash(e1) == structural_hash(e3)
        # Differing structure must (here) differ in hash:
        assert structural_hash(e1) != structural_hash(a[i] * 3 + 1)

    def test_structural_hash_cached_on_node(self):
        from repro.dsl import structural_hash

        a = placeholder((8,), "int32", "a")
        e = a[Var("i")] + 5
        h1 = structural_hash(e)
        assert e._shash == h1
        assert structural_hash(e) == h1

    def test_structural_equal_memoized(self):
        from repro.dsl import expr_cache_stats, reset_expr_cache_stats

        a = placeholder((8,), "int32", "a")
        i = Var("i")
        e1 = a[i] * 2 + 1
        e2 = a[i] * 2 + 1
        reset_expr_cache_stats()
        assert structural_equal(e1, e2)
        first_walks = expr_cache_stats().equal_full_walks
        assert structural_equal(e1, e2)  # second call served from the memo
        assert expr_cache_stats().equal_full_walks == first_walks
        assert expr_cache_stats().equal_fast_paths >= 1

    def test_structural_equal_var_map_still_exact(self):
        a = placeholder((8,), "int32", "a")
        i, j = Var("i"), Var("j")
        assert not structural_equal(a[i], a[j])
        assert structural_equal(a[i], a[j], {i: j})

    def test_simplify_memoized_and_idempotent(self):
        from repro.dsl import expr_cache_stats, reset_expr_cache_stats

        i = Var("i")
        e = i * 1 + 0
        reset_expr_cache_stats()
        s1 = simplify(e)
        s2 = simplify(e)
        assert s1 is s2
        assert simplify(s1) is s1
        stats = expr_cache_stats()
        assert stats.simplify_hits >= 1

    def test_extract_linear_memoized_returns_fresh_dicts(self):
        from repro.dsl import expr_cache_stats, reset_expr_cache_stats

        i, j = Var("i"), Var("j")
        e = i * 4 + j
        reset_expr_cache_stats()
        coeffs1, const1 = extract_linear(e, [i, j])
        coeffs2, const2 = extract_linear(e, [i, j])
        assert coeffs1 == coeffs2 and const1 == const2
        assert coeffs1 is not coeffs2  # callers may mutate their copy
        coeffs1[i] = 999
        coeffs3, _ = extract_linear(e, [i, j])
        assert coeffs3[i] == 4
        assert expr_cache_stats().linear_hits >= 2
        # A different variable set is a different cache entry:
        assert extract_linear(e, [i]) is None

    def test_arith_signature_matches_isomorphic_shapes(self):
        from repro.dsl import arith_signature

        a = placeholder((64,), "uint8", "a")
        b = placeholder((64,), "int8", "b")
        c = placeholder((16, 4), "uint8", "c")
        d = placeholder((16, 4), "int8", "d")
        i, p, q = Var("i"), Var("p"), Var("q")
        e1 = cast("int32", a[i * 4 + 1]) * cast("int32", b[i])
        e2 = cast("int32", c[p, q]) * cast("int32", d[q, p])
        # Same topology/dtypes/opcodes -> same signature, despite different
        # tensors and index expressions (what register binding may vary).
        assert arith_signature(e1) == arith_signature(e2)
        # Operand dtype flip changes the signature:
        e3 = cast("int32", b[i]) * cast("int32", a[i])
        assert arith_signature(e1) != arith_signature(e3)
