"""Unit tests for the expression tree: construction, analysis, simplification."""

import pytest

from repro.dsl import (
    Add,
    Cast,
    Compare,
    Const,
    Mul,
    Reduce,
    Select,
    TensorLoad,
    Var,
    cast,
    expr_to_str,
    extract_linear,
    free_vars,
    loop_axis,
    placeholder,
    reduce_axis,
    simplify,
    structural_equal,
    substitute,
    sum_reduce,
    tensors_referenced,
)


class TestConstruction:
    def test_operator_overloading(self):
        i = Var("i")
        e = i * 4 + 1
        assert isinstance(e, Add)
        assert isinstance(e.a, Mul)
        assert expr_to_str(e) == "((i * 4) + 1)"

    def test_axis_participates_in_arithmetic(self):
        i = loop_axis(0, 16, "i")
        j = reduce_axis(0, 4, "j")
        e = i * 4 + j
        assert sorted(v.name for v in free_vars(e)) == ["i", "j"]

    def test_tensor_load_checks_rank(self):
        t = placeholder((4, 4), "int8", "t")
        with pytest.raises(ValueError):
            TensorLoad(t, [Var("i")])

    def test_cast_folds_noop_and_constant(self):
        assert cast("int32", Const(3, "int32")) is not None
        c = cast("int32", Const(3, "int8"))
        assert isinstance(c, Const) and c.dtype.name == "int32"
        v = Var("x", "int32")
        assert cast("int32", v) is v

    def test_reduce_requires_reduce_axis(self):
        i = loop_axis(0, 4, "i")
        with pytest.raises(ValueError):
            sum_reduce(Const(1), i)

    def test_nested_reduce_detected_via_compute(self):
        from repro.dsl import compute

        j = reduce_axis(0, 4, "j")
        k = reduce_axis(0, 4, "k")
        with pytest.raises(ValueError):
            compute((4,), lambda i: sum_reduce(sum_reduce(Const(1, "int32"), k), j))


class TestAnalysis:
    def test_free_vars_and_tensors(self):
        a = placeholder((8,), "int8", "a")
        b = placeholder((8,), "int8", "b")
        i = Var("i")
        e = cast("int32", a[i]) * cast("int32", b[i])
        assert free_vars(e) == [i]
        assert tensors_referenced(e) == [a, b]

    def test_structural_equal_with_var_map(self):
        a = placeholder((8,), "int8", "a")
        i, j = Var("i"), Var("j")
        e1 = a[i] + 1
        e2 = a[j] + 1
        assert not structural_equal(e1, e2)
        assert structural_equal(e1, e2, {i: j})

    def test_structural_equal_different_tensors(self):
        a = placeholder((8,), "int8", "a")
        b = placeholder((8,), "int8", "b")
        i = Var("i")
        assert not structural_equal(a[i], b[i])

    def test_substitute(self):
        a = placeholder((8, 8), "int8", "a")
        i, j, x = Var("i"), Var("j"), Var("x")
        e = a[i, j] + i
        out = substitute(e, {i: x * 2})
        names = {v.name for v in free_vars(out)}
        assert names == {"x", "j"}


class TestSimplify:
    def test_constant_folding(self):
        e = Const(2) * Const(3) + Const(4)
        s = simplify(e)
        assert isinstance(s, Const) and s.value == 10

    def test_identities(self):
        x = Var("x")
        assert simplify(x + 0) is x
        assert simplify(x * 1) is x
        mul_zero = simplify(x * 0)
        assert isinstance(mul_zero, Const) and mul_zero.value == 0
        assert simplify(x // 1) is x

    def test_select_folding(self):
        x = Var("x")
        s = simplify(Select(Compare("<", Const(1), Const(2)), x, x + 1))
        assert s is x

    def test_compare_folding(self):
        c = simplify(Compare(">=", Const(4), Const(2)))
        assert isinstance(c, Const) and c.value is True


class TestExtractLinear:
    def test_affine(self):
        i, j = Var("i"), Var("j")
        coeffs, const = extract_linear(i * 4 + j + 2, [i, j])
        assert coeffs == {i: 4, j: 1}
        assert const == 2

    def test_nested_scaling(self):
        i, j = Var("i"), Var("j")
        coeffs, const = extract_linear((i + j) * 3, [i, j])
        assert coeffs == {i: 3, j: 3} and const == 0

    def test_non_affine_returns_none(self):
        i, j = Var("i"), Var("j")
        assert extract_linear(i * j, [i, j]) is None

    def test_unknown_variable_returns_none(self):
        i, j = Var("i"), Var("j")
        assert extract_linear(i + j, [i]) is None

    def test_cast_transparent(self):
        i = Var("i")
        coeffs, const = extract_linear(cast("int32", i * 2), [i])
        assert coeffs == {i: 2} and const == 0
