"""Tests for tensorized-instruction replacement and operand-generation bindings."""

import numpy as np
import pytest

from repro.inspector import inspect_applicability
from repro.isa import get_intrinsic
from repro.rewriter import (
    build_intrinsic_call,
    has_tensorize_pragma,
    replace_tensorize,
    reorganize_loops,
)
from repro.tir import IntrinsicCall, collect, lower, verify
from tests.conftest import small_conv_hwc, small_matmul_fp16


def _conv_spec():
    vnni = get_intrinsic("x86.avx512.vpdpbusd")
    conv = small_conv_hwc()
    return reorganize_loops(inspect_applicability(conv, vnni))


class TestBuildCall:
    def test_bindings_cover_all_operands(self):
        spec = _conv_spec()
        call = build_intrinsic_call(spec)
        input_names = {b.intrin_tensor.name for b in call.inputs}
        assert input_names == {"vnni_a", "vnni_b", "vnni_c"}
        assert call.output.intrin_tensor.name == "vnni_d"
        assert call.output.program_tensor.name == "conv"
        assert call.reads_output

    def test_program_indices_reference_intrinsic_axes(self):
        from repro.dsl import free_vars

        spec = _conv_spec()
        call = build_intrinsic_call(spec)
        intrin_vars = {ax.var for ax in call.axes}
        found_intrin_var = False
        for binding in call.inputs:
            for idx in binding.program_indices:
                if any(v in intrin_vars for v in free_vars(idx)):
                    found_intrin_var = True
        assert found_intrin_var

    def test_wmma_accumulator_binding(self):
        wmma = get_intrinsic("nvvm.wmma.m16n16k16.mma.row.row.f32.f32")
        mm = small_matmul_fp16(32, 32, 32)
        spec = reorganize_loops(inspect_applicability(mm, wmma))
        call = build_intrinsic_call(spec)
        # The accumulator register of the += instruction is its own output
        # tile, gathered from the program's output buffer.
        acc = [b for b in call.inputs if b.intrin_tensor.name == "wmma_c"]
        assert acc and acc[0].program_tensor is mm


class TestReplacePass:
    def test_pragma_removed_and_call_inserted(self):
        spec = _conv_spec()
        func = lower(spec.schedule)
        assert has_tensorize_pragma(func.body)
        replaced = replace_tensorize(func, spec)
        assert not has_tensorize_pragma(replaced.body)
        calls = collect(replaced.body, lambda s: isinstance(s, IntrinsicCall))
        assert len(calls) == 1
        verify(replaced)

    def test_replace_without_pragma_raises(self):
        from repro.rewriter import TensorizeError

        spec = _conv_spec()
        plain = lower(spec.operation)  # default schedule, no pragma
        with pytest.raises(TensorizeError):
            replace_tensorize(plain, spec)

    def test_replaced_function_is_numerically_exact(self, rng):
        from repro.tir import alloc_buffers, run
        from tests.conftest import conv2d_hwc_reference

        spec = _conv_spec()
        func = replace_tensorize(lower(spec.schedule), spec)
        buffers = alloc_buffers(func, rng)
        result = run(func, buffers)
        data, weight = (buffers[t] for t in func.inputs)
        assert np.array_equal(result, conv2d_hwc_reference(data, weight))
