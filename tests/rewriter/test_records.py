"""Tests for the persistent tuning-record cache and the shared tuning session."""

import pytest

import json

from repro.core import UnitCpuRunner, UnitGpuRunner, compile_model_batch, experiments
from repro.hwsim import CostBreakdown
from repro.rewriter import (
    SCHEMA_VERSION,
    CpuTuningConfig,
    GpuTuningConfig,
    TuningCache,
    TuningKey,
    TuningRecord,
    TuningSession,
    cost_model_fingerprint,
    params_fingerprint,
    record_staleness,
    space_fingerprint,
)
from repro.workloads import Conv2DParams, DenseParams, table1_layer


def _key(space="full@test", kind="conv2d", params=None):
    params = params or table1_layer(5)
    return TuningKey(
        kind=kind,
        params=params_fingerprint(params),
        intrinsic="x86.avx512.vpdpbusd",
        machine="cascade-lake",
        space=space,
    )


class TestFingerprints:
    def test_params_fingerprint_ignores_name(self):
        a = Conv2DParams(64, 14, 14, 128, 3, name="stage1_conv")
        b = Conv2DParams(64, 14, 14, 128, 3, name="stage4_conv")
        assert params_fingerprint(a) == params_fingerprint(b)

    def test_params_fingerprint_distinguishes_shapes(self):
        a = Conv2DParams(64, 14, 14, 128, 3)
        b = Conv2DParams(64, 14, 14, 128, 3, stride=2)
        assert params_fingerprint(a) != params_fingerprint(b)

    def test_space_fingerprint_depends_on_candidates(self):
        full = space_fingerprint("full", [CpuTuningConfig()])
        other = space_fingerprint("full", [CpuTuningConfig(unroll_limit=4)])
        assert full != other
        assert full.startswith("full@")


class TestTuningCache:
    def test_hit_miss_accounting(self):
        cache = TuningCache()
        key = _key()
        assert cache.lookup(key) is None
        cache.insert(
            TuningRecord(
                key=key,
                best_config=CpuTuningConfig(),
                best_cost=1e-5,
                num_trials=3,
                breakdown=CostBreakdown(seconds=1e-5),
            )
        )
        assert cache.lookup(key) is not None
        stats = cache.stats
        assert stats.hits == 1 and stats.misses == 1 and stats.size == 1
        assert stats.hit_rate == pytest.approx(0.5)

    def test_roundtrip_identical_configs_and_costs(self, tmp_path):
        cache = TuningCache()
        records = [
            TuningRecord(
                key=_key("full@aa"),
                best_config=CpuTuningConfig(parallel_extent=1536, unroll_limit=4),
                best_cost=2.5e-5,
                num_trials=16,
                breakdown=CostBreakdown(
                    seconds=2.5e-5, compute_seconds=2e-5, detail={"macs": 1.0}
                ),
            ),
            TuningRecord(
                key=_key("tune@bb", kind="dense", params=DenseParams(1, 2048, 1000)),
                best_config=GpuTuningConfig(outer_product_p=2, fuse_spatial=True, split_k=64),
                best_cost=1.5e-6,
                num_trials=24,
                breakdown=CostBreakdown(seconds=1.5e-6, memory_seconds=1e-6),
            ),
            TuningRecord(  # a memoised library record: no config at all
                key=_key("library:onednn"),
                best_config=None,
                best_cost=4e-5,
                num_trials=0,
                breakdown=CostBreakdown(seconds=4e-5),
            ),
        ]
        for record in records:
            cache.insert(record)
        path = tmp_path / "tuning.jsonl"
        assert cache.save(path) == 3

        loaded = TuningCache.from_file(path)
        assert len(loaded) == 3
        for record in records:
            got = loaded.lookup(record.key)
            assert got is not None
            assert got.best_config == record.best_config
            assert got.best_cost == record.best_cost
            assert got.num_trials == record.num_trials
            assert got.breakdown == record.breakdown

    def test_load_merges_and_overwrites(self, tmp_path):
        key = _key()
        stale = TuningRecord(
            key=key,
            best_config=CpuTuningConfig(),
            best_cost=9.0,
            num_trials=1,
            breakdown=CostBreakdown(seconds=9.0),
        )
        fresh = TuningRecord(
            key=key,
            best_config=CpuTuningConfig(unroll_limit=4),
            best_cost=1.0,
            num_trials=16,
            breakdown=CostBreakdown(seconds=1.0),
        )
        on_disk = TuningCache()
        on_disk.insert(fresh)
        path = tmp_path / "cache.jsonl"
        on_disk.save(path)

        cache = TuningCache()
        cache.insert(stale)
        assert cache.load(path) == 1
        assert cache.lookup(key).best_cost == 1.0


class TestCorruptAndStaleLines:
    def _saved_cache(self, tmp_path, count=2):
        cache = TuningCache()
        for index in range(count):
            cache.insert(
                TuningRecord(
                    key=_key(f"full@{index:02d}"),
                    best_config=CpuTuningConfig(),
                    best_cost=1e-5 * (index + 1),
                    num_trials=4,
                    breakdown=CostBreakdown(seconds=1e-5 * (index + 1)),
                )
            )
        path = tmp_path / "cache.jsonl"
        cache.save(path)
        return path

    def test_truncated_tail_skipped_and_counted(self, tmp_path):
        """A reader must tolerate a concurrent writer's partial last line."""
        path = self._saved_cache(tmp_path)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"schema": 2, "key": {"kind": "conv2')
        cache = TuningCache()
        assert cache.load(path) == 2
        assert cache.stats.corrupt == 1
        assert cache.stats.stale == 0

    def test_garbage_line_mid_file_skipped(self, tmp_path):
        path = self._saved_cache(tmp_path)
        lines = open(path, encoding="utf-8").read().splitlines()
        lines.insert(1, "@@@ not json @@@")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("\n".join(lines) + "\n")
        cache = TuningCache()
        assert cache.load(path) == 2
        assert cache.stats.corrupt == 1

    def test_strict_load_raises_on_corruption(self, tmp_path):
        path = self._saved_cache(tmp_path)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write("{broken\n")
        with pytest.raises(ValueError):
            TuningCache().load(path, strict=True)

    def test_stale_schema_version_skipped(self, tmp_path):
        path = self._saved_cache(tmp_path, count=1)
        data = TuningRecord(
            key=_key("full@ff"),
            best_config=None,
            best_cost=1.0,
            num_trials=0,
            breakdown=CostBreakdown(seconds=1.0),
        ).to_json()
        data["schema"] = SCHEMA_VERSION - 1
        with open(path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(data) + "\n")
        cache = TuningCache()
        assert cache.load(path) == 1
        assert cache.stats.stale == 1
        assert cache.lookup(_key("full@ff")) is None

    def test_unversioned_legacy_line_is_stale(self, tmp_path):
        """Pre-versioning records carry no fingerprint: never serve them."""
        path = self._saved_cache(tmp_path, count=1)
        data = TuningRecord(
            key=_key("full@ff"),
            best_config=None,
            best_cost=1.0,
            num_trials=0,
            breakdown=CostBreakdown(seconds=1.0),
        ).to_json()
        del data["schema"]
        del data["cost_model"]
        with open(path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(data) + "\n")
        cache = TuningCache()
        assert cache.load(path) == 1
        assert cache.stats.stale == 1

    def test_record_staleness_reasons(self):
        record = TuningRecord(
            key=_key(),
            best_config=None,
            best_cost=1.0,
            num_trials=0,
            breakdown=CostBreakdown(seconds=1.0),
        )
        data = record.to_json()
        assert record_staleness(data) is None
        assert "schema" in record_staleness({**data, "schema": 0})
        assert "cost model" in record_staleness({**data, "cost_model": "x" * 12})

    def test_fingerprint_is_stable_within_process(self):
        assert cost_model_fingerprint() == cost_model_fingerprint()
        assert len(cost_model_fingerprint()) == 12

    def test_persisted_lines_carry_version(self, tmp_path):
        path = self._saved_cache(tmp_path, count=1)
        data = json.loads(open(path, encoding="utf-8").readline())
        assert data["schema"] == SCHEMA_VERSION
        assert data["cost_model"] == cost_model_fingerprint()


class TestTuningSession:
    def test_cache_hit_bypasses_evaluate(self):
        session = TuningSession()
        calls = []

        def evaluate(cfg):
            calls.append(cfg)
            return CostBreakdown(seconds=1.0 / (1 + cfg.unroll_limit))

        candidates = [CpuTuningConfig(unroll_limit=u) for u in (2, 4, 8)]
        key = _key()
        first = session.tune(key, candidates, evaluate)
        # len(candidates) search evaluations + 1 final evaluation of the best.
        assert len(calls) == 4
        second = session.tune(key, candidates, evaluate)
        assert len(calls) == 4  # untouched: the hit did no evaluation
        assert second.breakdown is first.breakdown
        assert session.trials_run == 3
        assert session.stats.hits == 1

    def test_invalid_strategy_rejected(self):
        with pytest.raises(ValueError):
            TuningSession(strategy="annealing")

    def test_runners_share_one_session(self):
        session = TuningSession()
        layer = table1_layer(5)
        a = UnitCpuRunner(tuning="full", session=session)
        b = UnitCpuRunner(tuning="full", session=session)
        first = a.conv2d_latency(layer)
        trials = session.trials_run
        second = b.conv2d_latency(layer)
        assert second is first
        assert session.trials_run == trials  # runner b tuned nothing

    def test_modes_do_not_share_records(self):
        session = TuningSession()
        layer = table1_layer(5)
        t_parallel = UnitCpuRunner(tuning="parallel", session=session).conv2d_latency(layer)
        t_full = UnitCpuRunner(tuning="full", session=session).conv2d_latency(layer)
        assert t_full.seconds <= t_parallel.seconds
        assert len(session.cache) == 2

    def test_parallel_strategy_matches_exhaustive(self):
        layer = table1_layer(3)
        serial = UnitCpuRunner(tuning="full", session=TuningSession())
        threaded = UnitCpuRunner(
            tuning="full", session=TuningSession(strategy="parallel", max_workers=4)
        )
        assert serial.conv2d_latency(layer).seconds == threaded.conv2d_latency(layer).seconds
        key = ("conv2d", layer)
        assert serial.tuning_results[key].best_config == threaded.tuning_results[key].best_config

    def test_early_exit_records_do_not_leak_into_exhaustive(self, tmp_path):
        """Approximate-strategy records must not be served as exhaustive ones."""
        costs = {2: 5.0, 4: 1.0, 8: 2.0, 12: 3.0, 16: 0.5}
        candidates = [CpuTuningConfig(unroll_limit=u) for u in (2, 4, 8, 12, 16)]

        def evaluate(cfg):
            return CostBreakdown(seconds=costs[cfg.unroll_limit])

        key = _key()
        approx = TuningSession(strategy="early_exit", early_exit_k=2)
        best_approx = approx.tune(key, candidates, evaluate)
        assert best_approx.best_cost == 1.0  # stopped before reaching 0.5

        path = tmp_path / "approx.jsonl"
        approx.save(path)
        exact = TuningSession()
        exact.load(path)
        best_exact = exact.tune(key, candidates, evaluate)
        assert best_exact.best_cost == 0.5  # re-tuned: the approximate record
        assert exact.trials_run == 5  # was not served under the exhaustive key

    def test_parallel_and_exhaustive_share_records(self):
        session = TuningSession(strategy="parallel")
        layer = table1_layer(5)
        UnitCpuRunner(tuning="full", session=session).conv2d_latency(layer)
        trials = session.trials_run
        # Same cache handed to an exhaustive session: result-identical
        # strategies share records, so nothing re-tunes.
        serial = TuningSession(cache=session.cache)
        UnitCpuRunner(tuning="full", session=serial).conv2d_latency(layer)
        assert serial.trials_run == 0
        assert session.trials_run == trials

    def test_session_save_load_roundtrip(self, tmp_path):
        session = TuningSession()
        runner = UnitGpuRunner(mode="tune", session=session)
        layer = table1_layer(8)
        cold = runner.conv2d_latency(layer)
        path = tmp_path / "gpu.jsonl"
        session.save(path)

        warm_session = TuningSession()
        warm_session.load(path)
        warm_runner = UnitGpuRunner(mode="tune", session=warm_session)
        warm = warm_runner.conv2d_latency(layer)
        assert warm_session.trials_run == 0
        assert warm.seconds == cold.seconds
        assert warm == cold


class TestExperimentSessionSharing:
    def test_figure8_second_run_does_zero_trials(self):
        session = TuningSession()
        models = ["resnet-18", "mobilenet-v2"]
        rows = experiments.figure8_cpu_end_to_end(models, session=session)
        trials_after_first = session.trials_run
        assert trials_after_first > 0
        rows_again = experiments.figure8_cpu_end_to_end(models, session=session)
        assert session.trials_run == trials_after_first
        for before, after in zip(rows, rows_again):
            assert before == after

    def test_saved_cache_reproduces_figure8(self, tmp_path):
        session = TuningSession()
        rows = experiments.figure8_cpu_end_to_end(["resnet-18"], session=session)
        path = tmp_path / "fig8.jsonl"
        session.save(path)

        warm = TuningSession()
        warm.load(path)
        warm_rows = experiments.figure8_cpu_end_to_end(["resnet-18"], session=warm)
        assert warm.trials_run == 0
        for before, after in zip(rows, warm_rows):
            assert before == after

    def test_compile_model_batch_shares_cache(self):
        session = TuningSession()
        batch = compile_model_batch(
            ["resnet-18", "resnet-50"], targets=("x86",), session=session
        )
        assert [c.name for c in batch] == ["resnet-18", "resnet-50"]
        assert all(c.latency_ms > 0 for c in batch)
        # The two ResNets share layer shapes: the second compile must be
        # partly (not necessarily entirely) cache hits.
        assert session.stats.hits > 0


class TestNonObjectLines:
    def test_json_valid_non_object_lines_counted_corrupt(self, tmp_path):
        """'null' / numbers / arrays are decodable JSON but not records; the
        tolerant loader must count them corrupt, not crash."""
        cache = TuningCache()
        cache.insert(
            TuningRecord(
                key=_key(),
                best_config=CpuTuningConfig(),
                best_cost=1e-5,
                num_trials=4,
                breakdown=CostBreakdown(seconds=1e-5),
            )
        )
        path = tmp_path / "cache.jsonl"
        cache.save(path)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('null\n"a string"\n[]\n')
        loaded = TuningCache()
        assert loaded.load(path) == 1
        assert loaded.stats.corrupt == 3

    def test_decode_record_line_triage(self):
        from repro.rewriter import decode_record_line

        record = TuningRecord(
            key=_key(),
            best_config=None,
            best_cost=1.0,
            num_trials=0,
            breakdown=CostBreakdown(seconds=1.0),
        )
        good, problem = decode_record_line(json.dumps(record.to_json()))
        assert good is not None and problem is None
        assert decode_record_line("{torn")[1] == "corrupt"
        assert decode_record_line("null")[1] == "corrupt"
        stale = dict(record.to_json(), schema=0)
        assert decode_record_line(json.dumps(stale))[1] == "stale"
