"""Tests for the CPU/GPU scheduling strategies and the tuning driver."""

import numpy as np
import pytest

from repro.inspector import inspect_applicability
from repro.isa import get_intrinsic
from repro.rewriter import (
    CpuTuningConfig,
    GpuTuningConfig,
    TuningResult,
    apply_cpu_schedule,
    apply_gpu_schedule,
    cpu_tuning_candidates,
    early_exit_search,
    exhaustive_search,
    first_k_search,
    gpu_tuning_candidates,
    parallel_search,
    reorganize_loops,
)
from repro.schedule import Annotation
from tests.conftest import small_conv_hwc, small_matmul_fp16


def _conv_spec():
    vnni = get_intrinsic("x86.avx512.vpdpbusd")
    return reorganize_loops(inspect_applicability(small_conv_hwc(10, 10, 8, 32), vnni))


def _gemm_spec(m=64, n=64, k=64):
    wmma = get_intrinsic("nvvm.wmma.m16n16k16.mma.row.row.f32.f32")
    return reorganize_loops(inspect_applicability(small_matmul_fp16(m, n, k), wmma))


class TestCpuSchedule:
    def test_default_config_structure(self):
        spec = _conv_spec()
        report = apply_cpu_schedule(spec, CpuTuningConfig())
        assert report.parallel_loop is not None
        assert report.parallel_loop.annotation == Annotation.PARALLEL
        assert report.unroll_factor > 1
        assert all(l.annotation == Annotation.UNROLL for l in report.unrolled_loops)
        # Loop order: parallel band, serial band, reduce loops, unrolled band,
        # tensorized loops.
        leaves = spec.stage.leaf_vars
        assert leaves.index(report.parallel_loop) == 0
        for loop in report.unrolled_loops:
            for reduce_loop in report.reduce_loops:
                assert leaves.index(loop) > leaves.index(reduce_loop)

    def test_parallel_only_config(self):
        spec = _conv_spec()
        report = apply_cpu_schedule(spec, CpuTuningConfig(enable_unroll=False))
        assert report.unroll_factor == 1
        assert report.unrolled_loops == []

    def test_correctness_after_cpu_schedule(self, rng):
        from repro.rewriter import replace_tensorize
        from repro.tir import alloc_buffers, execute, lower

        from tests.conftest import conv2d_hwc_reference

        spec = _conv_spec()
        apply_cpu_schedule(spec, CpuTuningConfig(parallel_extent=100, unroll_limit=4))
        func = replace_tensorize(lower(spec.schedule), spec)
        buffers = alloc_buffers(func, rng)
        result = execute(func, buffers)
        data, weight = (buffers[t] for t in func.inputs)
        assert np.array_equal(result, conv2d_hwc_reference(data, weight))

    def test_candidates_start_with_recommended_pair(self):
        candidates = cpu_tuning_candidates()
        assert candidates[0] == CpuTuningConfig(parallel_extent=3000, unroll_limit=8)
        assert len(candidates) == len({(c.parallel_extent, c.unroll_limit) for c in candidates})


class TestGpuSchedule:
    def test_generic_blocks_and_unroll(self):
        spec = _gemm_spec()
        report = apply_gpu_schedule(spec, GpuTuningConfig(outer_product_p=2))
        assert report.outer_product_p == 2
        assert report.accumulators_per_block == 4
        assert report.blocks >= 1
        bound = [l for l in spec.stage.leaf_vars if l.annotation.is_gpu_binding]
        assert bound, "block loops must be bound to blockIdx"

    def test_split_k_pragma(self):
        spec = _gemm_spec(64, 64, 256)
        report = apply_gpu_schedule(spec, GpuTuningConfig(split_k=4))
        assert report.split_k == 4
        pragmas = [l.pragmas for l in spec.stage.leaf_vars if "split_reduction" in l.pragmas]
        assert pragmas

    def test_correctness_after_gpu_schedule(self, rng):
        from repro.rewriter import replace_tensorize
        from repro.tir import alloc_buffers, lower, run

        spec = _gemm_spec(32, 32, 32)
        apply_gpu_schedule(spec, GpuTuningConfig(outer_product_p=1))
        func = replace_tensorize(lower(spec.schedule), spec)
        buffers = alloc_buffers(func, rng)
        result = run(func, buffers)
        a, b = (buffers[t] for t in func.inputs)
        expected = a.astype(np.float32) @ b.astype(np.float32)
        np.testing.assert_allclose(result, expected, rtol=1e-2, atol=1e-2)

    def test_candidate_space(self):
        candidates = gpu_tuning_candidates()
        assert candidates[0].outer_product_p == 2
        assert any(c.split_k > 1 for c in candidates)
        assert any(c.fuse_spatial for c in candidates)


class TestTuningDriver:
    def test_exhaustive_search_picks_minimum(self):
        costs = {"a": 3.0, "b": 1.0, "c": 2.0}
        result = exhaustive_search(list(costs), lambda c: costs[c])
        assert result.best_config == "b"
        assert result.best_cost == 1.0
        assert result.num_trials == 3
        assert result.best_rank() == 2

    def test_ties_prefer_first_candidate(self):
        result = exhaustive_search(["x", "y"], lambda c: 1.0)
        assert result.best_config == "x"
        assert result.best_rank() == 1

    def test_first_k_search_limits_trials(self):
        costs = [5.0, 4.0, 3.0, 2.0, 1.0]
        result = first_k_search(list(range(5)), lambda i: costs[i], k=2)
        assert result.num_trials == 2
        assert result.best_config == 1

    def test_empty_candidates_rejected(self):
        with pytest.raises(ValueError):
            exhaustive_search([], lambda c: 1.0)
        with pytest.raises(ValueError):
            parallel_search([], lambda c: 1.0)
        with pytest.raises(ValueError):
            early_exit_search([], lambda c: 1.0)

    def test_best_rank_rejects_empty_trials(self):
        """Regression: an empty result used to silently claim rank 1."""
        result = TuningResult(best_config=None, best_cost=0.0, trials=[])
        with pytest.raises(ValueError):
            result.best_rank()

    def test_parallel_search_matches_exhaustive(self):
        costs = [5.0, 2.0, 7.0, 1.0, 3.0]
        serial = exhaustive_search(list(range(5)), lambda i: costs[i])
        threaded = parallel_search(list(range(5)), lambda i: costs[i], max_workers=3)
        assert threaded.best_config == serial.best_config
        assert threaded.best_cost == serial.best_cost
        assert threaded.num_trials == serial.num_trials
        assert [t.cost for t in threaded.trials] == [t.cost for t in serial.trials]
        assert [t.index for t in threaded.trials] == list(range(5))

    def test_parallel_search_ties_prefer_first_candidate(self):
        result = parallel_search(["x", "y", "z"], lambda c: 1.0, max_workers=3)
        assert result.best_config == "x"
        assert result.best_rank() == 1

    def test_early_exit_stops_after_k_non_improving(self):
        costs = [5.0, 1.0, 2.0, 3.0, 4.0, 0.5]
        result = early_exit_search(list(range(6)), lambda i: costs[i], k=3)
        # Improvement at index 1, then three non-improving trials → stop at 4,
        # never reaching the 0.5 at index 5.
        assert result.num_trials == 5
        assert result.best_config == 1
        assert result.best_cost == 1.0

    def test_early_exit_runs_to_completion_when_improving(self):
        costs = [5.0, 4.0, 3.0, 2.0, 1.0]
        result = early_exit_search(list(range(5)), lambda i: costs[i], k=2)
        assert result.num_trials == 5
        assert result.best_config == 4


class TestSearchDeterminismUnderContention:
    """The distributed-tuning guarantee rests on the in-process drivers being
    result-deterministic no matter how evaluation is scheduled: the same best
    config and cost for any ``max_workers``, any completion order, any number
    of repetitions — including under deliberate thread contention and ties.
    """

    @staticmethod
    def _jittery_evaluate(costs, scale=1e-4):
        """An evaluator whose completion order is scrambled on purpose:
        cheap candidates sleep longest, so threads finish roughly in reverse
        candidate order."""
        import time

        def evaluate(index):
            time.sleep((len(costs) - index % len(costs)) * scale)
            return costs[index]

        return evaluate

    def test_parallel_search_same_result_for_any_worker_count(self):
        rng = np.random.default_rng(7)
        costs = list(rng.uniform(1.0, 2.0, size=24))
        costs[5] = costs[17] = 0.5  # a tie, far apart in the candidate list
        evaluate = self._jittery_evaluate(costs)
        reference = exhaustive_search(list(range(24)), lambda i: costs[i])
        for max_workers in (1, 2, 4, 8):
            result = parallel_search(
                list(range(24)), evaluate, max_workers=max_workers
            )
            assert result.best_config == reference.best_config == 5
            assert result.best_cost == reference.best_cost
            assert [t.index for t in result.trials] == list(range(24))
            assert [t.cost for t in result.trials] == costs

    def test_parallel_search_repeatable_across_runs(self):
        rng = np.random.default_rng(11)
        costs = list(rng.uniform(1.0, 2.0, size=16))
        evaluate = self._jittery_evaluate(costs)
        results = [
            parallel_search(list(range(16)), evaluate, max_workers=4)
            for _ in range(3)
        ]
        assert len({r.best_config for r in results}) == 1
        assert len({r.best_cost for r in results}) == 1

    def test_early_exit_is_order_dependent_but_repeatable(self):
        """early_exit trades exhaustiveness for trials, never determinism:
        repeated runs over the same candidate order are identical."""
        rng = np.random.default_rng(13)
        costs = list(rng.uniform(1.0, 2.0, size=20))
        runs = [
            early_exit_search(list(range(20)), lambda i: costs[i], k=4)
            for _ in range(3)
        ]
        assert len({r.best_config for r in runs}) == 1
        assert len({r.num_trials for r in runs}) == 1

    def test_cpu_schedule_space_deterministic_under_threads(self):
        """End to end on a real machine-model evaluation: the full CPU
        candidate space tuned with 1 vs 8 threads lands on the same config."""
        from repro.hwsim import CASCADE_LAKE
        from repro.hwsim.cpu import CpuKernelModel
        from repro.workloads import table1_layer

        intrin = get_intrinsic("x86.avx512.vpdpbusd")
        model = CpuKernelModel(CASCADE_LAKE, intrin, per_call_overhead_us=0.8)
        layer = table1_layer(3)
        candidates = cpu_tuning_candidates(max_pairs=16)

        def evaluate(cfg):
            return model.conv2d_latency(layer, cfg).seconds

        serial = parallel_search(candidates, evaluate, max_workers=1)
        threaded = parallel_search(candidates, evaluate, max_workers=8)
        assert serial.best_config == threaded.best_config
        assert serial.best_cost == threaded.best_cost
