"""The precheck oracle: raise-to-reject screening before the cost model.

Every search driver accepts a ``precheck`` callable; rejected candidates
must never be costed, must be counted in ``TuningResult.rejected``, and
survivors must keep their original candidate indices so ``best_rank``
still speaks the advertised ordering.  The session threads the oracle
through and aggregates the counts.
"""

import pytest

from repro.hwsim.cost import CostBreakdown
from repro.rewriter.records import TuningKey
from repro.rewriter.session import TuningSession
from repro.rewriter.tuner import (
    early_exit_search,
    exhaustive_search,
    first_k_search,
    parallel_search,
)

CANDIDATES = [4, 1, 3, 0, 2]  # cost == value; best overall 0, best even 0


def _reject_odd(config):
    if config % 2:
        raise ValueError(f"odd candidate {config}")


def _cost(config):
    return float(config)


class TestDrivers:
    @pytest.mark.parametrize(
        "search",
        [
            exhaustive_search,
            parallel_search,
            early_exit_search,
            lambda c, e, precheck=None: first_k_search(c, e, k=5, precheck=precheck),
        ],
        ids=["exhaustive", "parallel", "early_exit", "first_k"],
    )
    def test_rejected_candidates_never_costed(self, search):
        costed = []

        def evaluate(config):
            costed.append(config)
            return _cost(config)

        result = search(CANDIDATES, evaluate, precheck=_reject_odd)
        assert result.rejected == 2
        assert result.best_config == 0
        assert all(c % 2 == 0 for c in costed)
        # Survivors keep their original candidate indices.
        assert [t.index for t in result.trials] == [0, 3, 4]
        assert [t.config for t in result.trials] == [4, 0, 2]

    @pytest.mark.parametrize(
        "search",
        [exhaustive_search, parallel_search, early_exit_search],
        ids=["exhaustive", "parallel", "early_exit"],
    )
    def test_all_rejected_raises(self, search):
        def reject_all(config):
            raise RuntimeError("nope")

        with pytest.raises(ValueError, match="rejected every candidate"):
            search(CANDIDATES, _cost, precheck=reject_all)

    def test_no_precheck_unchanged(self):
        result = exhaustive_search(CANDIDATES, _cost)
        assert result.rejected == 0
        assert result.num_trials == len(CANDIDATES)

    def test_parallel_matches_exhaustive_with_precheck(self):
        a = exhaustive_search(CANDIDATES, _cost, precheck=_reject_odd)
        b = parallel_search(CANDIDATES, _cost, precheck=_reject_odd)
        assert a.best_config == b.best_config
        assert a.rejected == b.rejected
        assert [(t.index, t.cost) for t in a.trials] == [
            (t.index, t.cost) for t in b.trials
        ]

    def test_early_exit_rejections_do_not_burn_the_window(self):
        """Rejected candidates produce no trial and must not count toward
        the k-consecutive-non-improving exit: without the precheck this run
        would exit on the three 1s and never reach the winning 4."""
        candidates = [5, 1, 1, 1, 4, 3]
        result = early_exit_search(candidates, _cost, k=2, precheck=_reject_odd)
        assert result.rejected == 5
        assert [t.config for t in result.trials] == [4]
        assert result.best_config == 4


def _key(space="s"):
    return TuningKey(
        kind="conv2d", params=(("h", 8),), intrinsic="vnni", machine="test", space=space
    )


def _breakdown(config):
    return CostBreakdown(seconds=float(config))


class TestSession:
    def test_session_counts_rejections(self):
        session = TuningSession()
        record = session.tune(
            _key(), CANDIDATES, _breakdown, precheck=_reject_odd
        )
        assert record.best_config == 0
        assert record.result.rejected == 2
        assert session.candidates_rejected == 2
        assert ", 2 rejected" in session.summary()

    def test_cache_hit_skips_the_precheck(self):
        session = TuningSession()
        session.tune(_key(), CANDIDATES, _breakdown, precheck=_reject_odd)
        calls = []

        def counting_precheck(config):
            calls.append(config)
            _reject_odd(config)

        record = session.tune(
            _key(), CANDIDATES, _breakdown, precheck=counting_precheck
        )
        assert record.best_config == 0
        assert calls == []  # hit: nothing re-screened
        assert session.candidates_rejected == 2  # unchanged

    def test_rejections_accumulate_across_searches(self):
        session = TuningSession()
        session.tune(_key("s1"), CANDIDATES, _breakdown, precheck=_reject_odd)
        session.tune(_key("s2"), [1, 2, 3], _breakdown, precheck=_reject_odd)
        assert session.candidates_rejected == 4

    def test_no_precheck_summary_omits_rejected(self):
        session = TuningSession()
        session.tune(_key(), CANDIDATES, _breakdown)
        assert "rejected" not in session.summary()
