"""Tests for loop reorganization (tile, reorder innermost, mark tensorize)."""

import pytest

from repro.dsl import cast, compute, placeholder, reduce_axis, sum_reduce
from repro.inspector import inspect_applicability
from repro.isa import get_intrinsic
from repro.rewriter import TensorizeError, reorganize_loops
from repro.schedule import Annotation
from tests.conftest import small_conv_hwc, small_matmul_fp16


class TestReorganize:
    def test_conv_vnni_structure(self):
        vnni = get_intrinsic("x86.avx512.vpdpbusd")
        conv = small_conv_hwc()
        spec = reorganize_loops(inspect_applicability(conv, vnni))
        # The two tensorized loops sit innermost, in instruction order
        # (data-parallel lanes outside the reduction).
        leaves = spec.stage.leaf_vars
        tensorized = spec.tensorized_leaves
        assert leaves[-2:] == tensorized
        assert tensorized[0].extent == 16 and not tensorized[0].is_reduce
        assert tensorized[1].extent == 4 and tensorized[1].is_reduce
        assert tensorized[0].annotation == Annotation.TENSORIZE
        # Outer tile loops exist for both mapped axes.
        assert len(spec.outer_loops) == 2
        assert len(spec.leaf_to_intrin_var) == 2

    def test_wmma_matmul_structure(self):
        wmma = get_intrinsic("nvvm.wmma.m16n16k16.mma.row.row.f32.f32")
        mm = small_matmul_fp16(64, 48, 32)
        spec = reorganize_loops(inspect_applicability(mm, wmma))
        tensorized = spec.tensorized_leaves
        assert [l.extent for l in tensorized] == [16, 16, 16]
        outer_extents = sorted(l.extent for l in spec.outer_loops.values())
        assert outer_extents == [2, 3, 4]

    def test_indivisible_extent_rejected(self):
        vnni = get_intrinsic("x86.avx512.vpdpbusd")
        # K = 12 is not divisible by the 16 output lanes.
        a = placeholder((8, 8, 8), "uint8", "data")
        b = placeholder((3, 3, 12, 8), "int8", "weight")
        rc = reduce_axis(0, 8, "rc")
        r = reduce_axis(0, 3, "r")
        s = reduce_axis(0, 3, "s")
        conv = compute(
            (6, 6, 12),
            lambda x, y, k: sum_reduce(
                cast("int32", a[x + r, y + s, rc]) * cast("int32", b[r, s, k, rc]),
                [r, s, rc],
            ),
            name="conv12",
        )
        result = inspect_applicability(conv, vnni)
        assert result.applicable  # applicability is about semantics, not padding
        with pytest.raises(TensorizeError, match="pad"):
            reorganize_loops(result)

    def test_not_applicable_rejected(self):
        vnni = get_intrinsic("x86.avx512.vpdpbusd")
        a = placeholder((32,), "float32", "a")
        op = compute((32,), lambda i: a[i] * 2.0, name="scale")
        result = inspect_applicability(op, vnni)
        with pytest.raises(TensorizeError):
            reorganize_loops(result)

    def test_alternative_mapping_used(self):
        vnni = get_intrinsic("x86.avx512.vpdpbusd")
        conv = small_conv_hwc(h=8, w=8, c=8, k=16)
        result = inspect_applicability(conv, vnni)
        assert len(result.mappings) > 1
        # Pick a different (still feasible) mapping and reorganize with it;
        # whichever axes it selects must tile cleanly or raise TensorizeError.
        alternative = result.mappings[1]
        try:
            spec = reorganize_loops(result, mapping=alternative)
            assert spec.mapping is alternative
        except TensorizeError:
            pass  # indivisible alternative is a legitimate outcome
