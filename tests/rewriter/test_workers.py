"""Tests for distributed tuning workers, lease claiming and store-backed sessions."""

import pytest

from repro.core import UnitCpuRunner
from repro.models import get_model
from repro.rewriter import (
    DistributedTuner,
    LeaseFile,
    ShardedTuningStore,
    TuningSession,
    TuningTask,
    tasks_from_graph,
    tasks_from_layers,
)
from repro.rewriter.workers import build_runner, run_task
from repro.workloads.table1 import TABLE1_LAYERS


class TestLeaseFile:
    def test_claims_are_disjoint_and_exhaustive(self, tmp_path):
        lease = LeaseFile(tmp_path / "leases.jsonl")
        total = 17
        slices = []
        # Interleaved claimers with different batch sizes, as racing worker
        # processes would produce.
        claimers = [("a", 2), ("b", 3), ("c", 1)]
        exhausted = False
        while not exhausted:
            exhausted = True
            for worker, batch in claimers:
                got = lease.claim(worker, total, batch=batch)
                if got:
                    exhausted = False
                    slices.append(got)
        flat = [index for chunk in slices for index in chunk]
        assert sorted(flat) == list(range(total))
        assert len(flat) == len(set(flat))  # no index claimed twice

    def test_claims_map_reports_owners(self, tmp_path):
        lease = LeaseFile(tmp_path / "leases.jsonl")
        lease.claim("w0", 4, batch=2)
        lease.claim("w1", 4, batch=2)
        claims = lease.claims()
        assert sorted(claims) == [0, 1, 2, 3]
        assert claims[0] == "w0" and claims[3] == "w1"

    def test_empty_claim_when_exhausted(self, tmp_path):
        lease = LeaseFile(tmp_path / "leases.jsonl")
        lease.claim("w0", 2, batch=2)
        assert lease.claim("w1", 2, batch=2) == []


class TestTasks:
    def test_tasks_from_layers(self):
        tasks = tasks_from_layers(TABLE1_LAYERS[:3])
        assert len(tasks) == 3
        assert all(t.kind == "conv2d" and t.runner == "cpu" for t in tasks)

    def test_tasks_from_graph_dedups_repeated_layers(self):
        graph = get_model("resnet-18", fresh=True)
        tasks = tasks_from_graph(graph, target="x86")
        # ResNet-18 repeats its residual-block convolutions: far fewer
        # distinct tuning problems than conv nodes.
        work_nodes = [n for n in graph.nodes if type(n).__name__ in ("Conv2DNode", "DenseNode")]
        assert 0 < len(tasks) < len(work_nodes)

    def test_tasks_from_graph_matches_compile_lookups(self, tmp_path):
        """Pre-tuning a graph's tasks must make its compile fully warm."""
        from repro.core import compile_model

        store = ShardedTuningStore(tmp_path / "s", shards=4)
        graph = get_model("mobilenet-v2", fresh=True)
        pre_session = TuningSession(store=store, strategy="parallel")
        for task in tasks_from_graph(graph, target="x86"):
            run_task(task, pre_session)
        assert pre_session.searches_run > 0

        warm = TuningSession(store=store)
        compile_model(get_model("mobilenet-v2", fresh=True), target="x86", session=warm)
        assert warm.trials_run == 0  # every lookup hit memory or a shard

    def test_unknown_task_kind_rejected(self):
        task = TuningTask(kind="pool", params=TABLE1_LAYERS[0])
        with pytest.raises(ValueError):
            run_task(task, TuningSession())

    def test_unknown_runner_rejected(self):
        task = TuningTask(kind="conv2d", params=TABLE1_LAYERS[0], runner="tpu")
        with pytest.raises(ValueError):
            build_runner(task, TuningSession())

    def test_gpu_task_builds_gpu_runner(self):
        task = TuningTask(
            kind="conv2d",
            params=TABLE1_LAYERS[7],
            runner="gpu",
            machine="v100",
            intrinsic="nvvm.wmma.m16n16k16.mma.row.row.f32.f32",
            tuning="tune",
        )
        cost = run_task(task, TuningSession())
        assert cost.seconds > 0


class TestStoreBackedSession:
    def test_read_through_and_write_through(self, tmp_path):
        store = ShardedTuningStore(tmp_path / "s", shards=4)
        layer = TABLE1_LAYERS[4]
        first = TuningSession(store=store)
        cold = UnitCpuRunner(session=first).conv2d_latency(layer)
        assert store.stats.appends == 1  # fresh search published

        second = TuningSession(store=store)
        warm = UnitCpuRunner(session=second).conv2d_latency(layer)
        assert second.trials_run == 0
        assert second.store_hits == 1
        assert warm == cold
        # The shard hit was promoted into memory: a third lookup is free.
        UnitCpuRunner(session=second).conv2d_latency(layer)
        assert second.store_hits == 1

    def test_memoize_reads_through_store(self, tmp_path):
        from repro.hwsim import CostBreakdown
        from repro.rewriter import TuningKey

        store = ShardedTuningStore(tmp_path / "s", shards=2)
        key = TuningKey(
            kind="dense",
            params=(("n", 64),),
            intrinsic="",
            machine="cascade-lake",
            space="library:onednn",
        )
        calls = []

        def compute():
            calls.append(1)
            return CostBreakdown(seconds=3e-5)

        TuningSession(store=store).memoize(key, compute)
        TuningSession(store=store).memoize(key, compute)
        assert len(calls) == 1  # second session served from the shard

    def test_summary_mentions_store(self, tmp_path):
        store = ShardedTuningStore(tmp_path / "s", shards=2)
        assert "store hits" in TuningSession(store=store).summary()
        assert "store hits" not in TuningSession().summary()


class TestDistributedTuner:
    def test_matches_single_process_bit_identical(self, tmp_path):
        """The acceptance criterion, in miniature and at full width.

        A multi-process distributed run over the Table I layer set, reloaded
        from its store, must agree record-for-record (config and cost) with
        a plain single-process ``TuningSession.tune`` sweep.
        """
        reference = TuningSession()
        runner = UnitCpuRunner(session=reference)
        costs = [runner.conv2d_latency(params) for params in TABLE1_LAYERS]

        store = ShardedTuningStore(tmp_path / "s", shards=8)
        report = DistributedTuner(store, workers=2).run(tasks_from_layers(TABLE1_LAYERS))
        assert report.complete
        assert report.searches == len(TABLE1_LAYERS)

        reloaded = store.load()
        assert len(reloaded) == len(TABLE1_LAYERS)  # no lost records
        for record in reference.cache.records():
            got = reloaded.lookup(record.key)
            assert got is not None
            assert got.best_config == record.best_config
            assert got.best_cost == record.best_cost

        warm = TuningSession(store=store)
        warm_runner = UnitCpuRunner(session=warm)
        for params, cold in zip(TABLE1_LAYERS, costs):
            assert warm_runner.conv2d_latency(params) == cold
        assert warm.trials_run == 0

    def test_workers_split_the_tasks(self, tmp_path):
        store = ShardedTuningStore(tmp_path / "s", shards=4)
        report = DistributedTuner(store, workers=2).run(
            tasks_from_layers(TABLE1_LAYERS[:6])
        )
        assert sum(w.tasks_done for w in report.workers) == 6
        assert report.claimed_indices() == list(range(6))
        # One lease line per claim: claims were disjoint by construction, so
        # no task was tuned twice.
        assert report.searches == 6

    def test_repeated_run_is_all_store_hits(self, tmp_path):
        store = ShardedTuningStore(tmp_path / "s", shards=4)
        tuner = DistributedTuner(store, workers=2)
        tasks = tasks_from_layers(TABLE1_LAYERS[:4])
        first = tuner.run(tasks)
        assert first.searches == 4
        second = tuner.run(tasks)
        assert second.searches == 0  # everything read through the store
        assert sum(w.store_hits for w in second.workers) == 4

    def test_rejects_empty_tasks(self, tmp_path):
        tuner = DistributedTuner(ShardedTuningStore(tmp_path / "s"), workers=2)
        with pytest.raises(ValueError):
            tuner.run([])

    def test_rejects_zero_workers(self, tmp_path):
        with pytest.raises(ValueError):
            DistributedTuner(ShardedTuningStore(tmp_path / "s"), workers=0)

    def test_store_path_coerced(self, tmp_path):
        tuner = DistributedTuner(str(tmp_path / "s"), workers=1)
        assert isinstance(tuner.store, ShardedTuningStore)


class TestFailureModes:
    def test_stale_lease_file_does_not_poison_new_run(self, tmp_path):
        """A crashed run's leftover lease (same pid/counter) must not make a
        fresh run see every task as already claimed."""
        import json
        import os

        store = ShardedTuningStore(tmp_path / "s", shards=4)
        tasks = tasks_from_layers(TABLE1_LAYERS[:3])
        stale = os.path.join(store.root, f"leases-{os.getpid()}-1.jsonl")
        with open(stale, "w", encoding="utf-8") as handle:
            handle.write(json.dumps({"worker": "ghost", "pid": 0, "indices": [0, 1, 2]}) + "\n")
        report = DistributedTuner(store, workers=2).run(tasks)
        assert report.complete and report.searches == 3

    def test_lease_file_removed_after_success(self, tmp_path):
        import os

        store = ShardedTuningStore(tmp_path / "s", shards=4)
        DistributedTuner(store, workers=2).run(tasks_from_layers(TABLE1_LAYERS[:2]))
        leftovers = [n for n in os.listdir(store.root) if n.startswith("leases-")]
        assert leftovers == []

    def test_crashed_worker_handled_fast(self, tmp_path):
        """A worker that dies on a bad task is detected within poll slices
        (drain path), the task is quarantined, and the run completes promptly
        — never waiting out the full join timeout."""
        import time

        store = ShardedTuningStore(tmp_path / "s", shards=2)
        bad = [TuningTask(kind="conv2d", params=TABLE1_LAYERS[0], machine="warp-core")]
        tuner = DistributedTuner(
            store, workers=1, join_timeout=120.0, heartbeat_interval=0.1
        )
        start = time.monotonic()
        report = tuner.run(bad)
        assert time.monotonic() - start < 30.0
        assert report.complete
        assert report.completed == [] and report.quarantined == [0]
        # One crash per allowed claim: poison_threshold workers died on it.
        assert report.crashes == tuner.poison_threshold
        assert report.poison_records[0]["index"] == 0

    def test_crash_without_heartbeat_blame_still_fails_loudly(self, tmp_path):
        """Drain path with no blamable index: a worker that dies with no
        heartbeat stamp (crash before its first task) cannot be quarantined,
        so a permanently crashing fleet must exhaust its restart budget and
        raise instead of looping forever."""
        import time

        store = ShardedTuningStore(tmp_path / "s", shards=2)
        bad = [TuningTask(kind="conv2d", params=TABLE1_LAYERS[0], machine="warp-core")]
        # poison_threshold high enough that quarantine never saves the run.
        tuner = DistributedTuner(
            store,
            workers=1,
            join_timeout=120.0,
            max_restarts=1,
            poison_threshold=99,
            heartbeat_interval=0.1,
        )
        start = time.monotonic()
        with pytest.raises(RuntimeError, match="restart budget|fleet lost"):
            tuner.run(bad)
        assert time.monotonic() - start < 60.0

    def test_queue_deadline_still_enforced(self, tmp_path, monkeypatch):
        """A fleet making no progress (workers alive, nothing reported, no
        crashes to heal) must still hit the join deadline, not hang."""
        from repro.rewriter import workers as workers_module

        store = ShardedTuningStore(tmp_path / "s", shards=2)
        tasks = tasks_from_layers(TABLE1_LAYERS[:1])
        tuner = DistributedTuner(
            store,
            workers=1,
            join_timeout=1.5,
            heartbeat_timeout=None,  # liveness killing off: pure deadline
        )

        def wedged_worker(*args, **kwargs):
            import time as time_module

            time_module.sleep(600)

        monkeypatch.setattr(workers_module, "_worker_main", wedged_worker)
        with pytest.raises(RuntimeError, match="within"):
            tuner.run(tasks)
