"""Tests for the sharded concurrent tuning store and its file locks."""

import json
import multiprocessing
import os

import pytest

from repro.hwsim import CostBreakdown
from repro.rewriter import (
    SCHEMA_VERSION,
    CpuTuningConfig,
    FileLock,
    LockTimeout,
    ShardedTuningStore,
    TuningCache,
    TuningKey,
    TuningRecord,
    cost_model_fingerprint,
    params_fingerprint,
)
from repro.workloads import table1_layer


def _key(index: int, kind: str = "conv2d") -> TuningKey:
    return TuningKey(
        kind=kind,
        params=(("index", index),),
        intrinsic="x86.avx512.vpdpbusd",
        machine="cascade-lake",
        space="full@test",
    )


def _record(index: int, cost: float = 1e-5, trials: int = 3) -> TuningRecord:
    return TuningRecord(
        key=_key(index),
        best_config=CpuTuningConfig(unroll_limit=4),
        best_cost=cost,
        num_trials=trials,
        breakdown=CostBreakdown(seconds=cost, compute_seconds=cost),
    )


class TestSharding:
    def test_shard_of_is_stable_and_in_range(self, tmp_path):
        store = ShardedTuningStore(tmp_path / "s", shards=8)
        for index in range(50):
            shard = store.shard_of(_key(index))
            assert 0 <= shard < 8
            assert shard == store.shard_of(_key(index))  # deterministic

    def test_records_spread_across_shards(self, tmp_path):
        store = ShardedTuningStore(tmp_path / "s", shards=8)
        for index in range(64):
            store.put(_record(index))
        used = sum(
            1 for i in range(store.num_shards) if os.path.exists(store.shard_path(i))
        )
        assert used > 1  # a hash that maps everything to one shard is broken

    def test_shard_count_fixed_by_creator(self, tmp_path):
        first = ShardedTuningStore(tmp_path / "s", shards=4)
        first.put(_record(0))
        # A later opener asking for a different count adopts the stored one:
        # otherwise it would look for keys in the wrong shard files.
        second = ShardedTuningStore(tmp_path / "s", shards=16)
        assert second.num_shards == 4
        assert second.get(_key(0)) is not None

    def test_rejects_zero_shards(self, tmp_path):
        with pytest.raises(ValueError):
            ShardedTuningStore(tmp_path / "s", shards=0)


class TestPutGet:
    def test_roundtrip(self, tmp_path):
        store = ShardedTuningStore(tmp_path / "s", shards=4)
        record = _record(1)
        store.put(record)
        got = store.get(_key(1))
        assert got is not None
        assert got.best_config == record.best_config
        assert got.best_cost == record.best_cost
        assert got.breakdown == record.breakdown
        assert store.get(_key(2)) is None
        stats = store.stats
        assert stats.appends == 1 and stats.hits == 1 and stats.misses == 1

    def test_duplicate_appends_last_wins(self, tmp_path):
        store = ShardedTuningStore(tmp_path / "s", shards=2)
        store.put(_record(1, cost=9.0))
        store.put(_record(1, cost=1.0))
        assert store.get(_key(1)).best_cost == 1.0
        assert len(store.load()) == 1  # one key, despite two lines

    def test_load_merges_all_shards(self, tmp_path):
        store = ShardedTuningStore(tmp_path / "s", shards=4)
        for index in range(12):
            store.put(_record(index))
        cache = store.load()
        assert len(cache) == 12
        for index in range(12):
            assert cache.lookup(_key(index)) is not None

    def test_real_layer_keys_roundtrip(self, tmp_path):
        # Keys built from live workload dataclasses must land in the same
        # shard as their JSON-roundtripped twins, or cross-process lookups
        # would miss.
        store = ShardedTuningStore(tmp_path / "s", shards=8)
        layer = table1_layer(5)
        key = TuningKey(
            kind="conv2d",
            params=params_fingerprint(layer),
            intrinsic="x86.avx512.vpdpbusd",
            machine="cascade-lake",
            space="full@aa",
        )
        store.put(
            TuningRecord(
                key=key,
                best_config=CpuTuningConfig(),
                best_cost=2e-5,
                num_trials=16,
                breakdown=CostBreakdown(seconds=2e-5),
            )
        )
        reloaded_key = store.load().records()[0].key
        assert reloaded_key == key
        assert store.shard_of(reloaded_key) == store.shard_of(key)


class TestCorruptionAndVersioning:
    def test_truncated_tail_tolerated_and_counted(self, tmp_path):
        store = ShardedTuningStore(tmp_path / "s", shards=1)
        store.put(_record(1))
        with open(store.shard_path(0), "a", encoding="utf-8") as handle:
            handle.write('{"schema": 2, "cost_model": "tru')  # crash mid-append
        assert store.get(_key(1)) is not None
        assert store.stats.corrupt_lines == 1

    def test_stale_schema_invalidated(self, tmp_path):
        store = ShardedTuningStore(tmp_path / "s", shards=1)
        store.put(_record(1))
        data = _record(2).to_json()
        data["schema"] = SCHEMA_VERSION - 1
        with open(store.shard_path(0), "a", encoding="utf-8") as handle:
            handle.write(json.dumps(data) + "\n")
        cache = store.load()
        assert len(cache) == 1
        assert cache.lookup(_key(2)) is None
        assert store.stats.stale_records == 1

    def test_stale_cost_model_invalidated(self, tmp_path):
        store = ShardedTuningStore(tmp_path / "s", shards=1)
        data = _record(1).to_json()
        data["cost_model"] = "0" * 12  # tuned under some other cost model
        with open(store.shard_path(0), "a", encoding="utf-8") as handle:
            handle.write(json.dumps(data) + "\n")
        assert store.get(_key(1)) is None
        assert store.stats.stale_records == 1

    def test_current_fingerprint_accepted(self, tmp_path):
        store = ShardedTuningStore(tmp_path / "s", shards=1)
        store.put(_record(1))
        raw = open(store.shard_path(0), encoding="utf-8").read()
        assert json.loads(raw)["cost_model"] == cost_model_fingerprint()
        assert store.get(_key(1)) is not None
        assert store.stats.stale_records == 0


class TestCompaction:
    def test_compact_folds_duplicates(self, tmp_path):
        store = ShardedTuningStore(tmp_path / "s", shards=2)
        for _ in range(5):
            store.put(_record(1, cost=9.0))
        store.put(_record(1, cost=1.0))
        store.put(_record(2))
        report = store.compact()
        assert report == {"kept": 2, "dropped": 5}
        # Logical content is unchanged; last-wins survived.
        assert store.get(_key(1)).best_cost == 1.0
        assert store.get(_key(2)) is not None
        # Physically one line per key now.
        lines = sum(
            len(open(store.shard_path(i), encoding="utf-8").readlines())
            for i in range(store.num_shards)
            if os.path.exists(store.shard_path(i))
        )
        assert lines == 2

    def test_compact_drops_corrupt_and_stale_lines(self, tmp_path):
        store = ShardedTuningStore(tmp_path / "s", shards=1)
        store.put(_record(1))
        stale = _record(2).to_json()
        stale["schema"] = SCHEMA_VERSION + 1
        with open(store.shard_path(0), "a", encoding="utf-8") as handle:
            handle.write(json.dumps(stale) + "\n")
            handle.write("not json at all\n")
        store.compact()
        fresh = ShardedTuningStore(tmp_path / "s")
        assert len(fresh.load()) == 1
        assert fresh.stats.corrupt_lines == 0 and fresh.stats.stale_records == 0

    def test_compact_leaves_no_temp_files(self, tmp_path):
        store = ShardedTuningStore(tmp_path / "s", shards=4)
        for index in range(8):
            store.put(_record(index))
        store.compact()
        leftovers = [n for n in os.listdir(store.root) if ".tmp." in n]
        assert leftovers == []

    def test_clear(self, tmp_path):
        store = ShardedTuningStore(tmp_path / "s", shards=2)
        store.put(_record(1))
        store.clear()
        assert len(store.load()) == 0


class TestFileLock:
    def test_mutual_exclusion_within_process(self, tmp_path):
        path = tmp_path / "x.lock"
        outer = FileLock(path, timeout=0.2, poll_interval=0.01)
        inner = FileLock(path, timeout=0.2, poll_interval=0.01)
        with outer:
            with pytest.raises(LockTimeout):
                inner.acquire()
        assert inner.contentions == 1
        inner.acquire()  # released now
        inner.release()

    def test_not_reentrant(self, tmp_path):
        lock = FileLock(tmp_path / "x.lock")
        with lock:
            with pytest.raises(RuntimeError):
                lock.acquire()
        with pytest.raises(RuntimeError):
            lock.release()

    def test_wait_accounting(self, tmp_path):
        lock = FileLock(tmp_path / "x.lock")
        with lock:
            pass
        assert lock.acquisitions == 1
        assert lock.wait_seconds >= 0.0


def _append_worker(root: str, worker: int, count: int) -> None:
    store = ShardedTuningStore(root)
    for index in range(count):
        key = TuningKey(
            kind="mp",
            params=(("worker", worker), ("index", index)),
            intrinsic="none",
            machine="test-rig",
            space="mp@00",
        )
        store.put(
            TuningRecord(
                key=key,
                best_config=None,
                best_cost=float(index),
                num_trials=1,
                breakdown=CostBreakdown(seconds=float(index) + 1.0),
            )
        )


def _counter_worker(path: str, lock_path: str, increments: int) -> None:
    lock = FileLock(lock_path)
    for _ in range(increments):
        with lock:
            value = int(open(path, encoding="utf-8").read())
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(str(value + 1))


class TestMultiprocess:
    def test_concurrent_appends_lose_nothing(self, tmp_path):
        """The acceptance invariant: N writers, zero lost or corrupt records."""
        root = str(tmp_path / "s")
        ShardedTuningStore(root, shards=4)  # fix the layout first
        workers, each = 3, 15
        procs = [
            multiprocessing.Process(target=_append_worker, args=(root, w, each))
            for w in range(workers)
        ]
        for proc in procs:
            proc.start()
        for proc in procs:
            proc.join(timeout=60)
        assert all(proc.exitcode == 0 for proc in procs)
        store = ShardedTuningStore(root)
        cache = store.load()
        assert len(cache) == workers * each
        assert store.stats.corrupt_lines == 0
        assert store.stats.stale_records == 0

    def test_lock_serialises_read_modify_write(self, tmp_path):
        """Classic lost-update check on a shared counter file."""
        path = str(tmp_path / "counter")
        lock_path = str(tmp_path / "counter.lock")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("0")
        workers, increments = 3, 20
        procs = [
            multiprocessing.Process(
                target=_counter_worker, args=(path, lock_path, increments)
            )
            for _ in range(workers)
        ]
        for proc in procs:
            proc.start()
        for proc in procs:
            proc.join(timeout=60)
        assert all(proc.exitcode == 0 for proc in procs)
        assert int(open(path, encoding="utf-8").read()) == workers * increments


class TestCacheIntegration:
    def test_load_into_existing_cache_merges(self, tmp_path):
        store = ShardedTuningStore(tmp_path / "s", shards=2)
        store.put(_record(1))
        cache = TuningCache()
        cache.insert(_record(2))
        assert store.load_into(cache) == 2
        assert cache.lookup(_key(1)) is not None
        assert cache.lookup(_key(2)) is not None


class TestIncrementalScan:
    def test_append_after_torn_tail_is_recovered(self, tmp_path):
        """A crashed writer's torn tail must not swallow the next append."""
        store = ShardedTuningStore(tmp_path / "s", shards=1)
        store.put(_record(1))
        assert store.get(_key(1)) is not None  # view now past record 1
        with open(store.shard_path(0), "a", encoding="utf-8") as handle:
            handle.write('{"schema": 2, "cost_model": "tru')  # crash mid-append
        assert store.get(_key(2)) is None  # consumes + counts the torn tail
        assert store.stats.corrupt_lines == 1
        store.put(_record(2))  # a live writer appends after the torn bytes
        assert store.get(_key(2)) is not None
        assert store.stats.corrupt_lines == 1  # tail counted exactly once

    def test_view_resets_after_external_compaction(self, tmp_path):
        reader = ShardedTuningStore(tmp_path / "s", shards=1)
        writer = ShardedTuningStore(tmp_path / "s")
        for _ in range(4):
            writer.put(_record(1, cost=9.0))
        writer.put(_record(1, cost=1.0))
        assert reader.get(_key(1)).best_cost == 1.0  # reader's view is warm
        writer.compact()  # another process rewrites the shard
        writer.put(_record(2))
        assert reader.get(_key(2)) is not None  # shrunken file reset the view
        assert reader.get(_key(1)).best_cost == 1.0

    def test_repeated_gets_do_not_rescan(self, tmp_path):
        store = ShardedTuningStore(tmp_path / "s", shards=1)
        for index in range(10):
            store.put(_record(index))
        store.get(_key(0))
        scanned = store.stats.records_scanned
        assert scanned == 10
        for index in range(10):
            store.get(_key(index))
        assert store.stats.records_scanned == scanned  # no new bytes, no rescan


class TestTornTailRepair:
    def test_fresh_handle_reads_record_appended_after_torn_tail(self, tmp_path):
        """put() must newline-terminate a crashed writer's torn tail so the
        new record stays readable to readers that scan the whole file."""
        store = ShardedTuningStore(tmp_path / "s", shards=1)
        store.put(_record(1))
        with open(store.shard_path(0), "a", encoding="utf-8") as handle:
            handle.write('{"schema": 2, "cost_model": "tru')  # crash mid-append
        store.put(_record(2))  # a healthy writer appends next
        fresh = ShardedTuningStore(tmp_path / "s")  # knows nothing of the above
        assert fresh.get(_key(2)) is not None
        assert fresh.get(_key(1)) is not None
        assert fresh.stats.corrupt_lines == 1  # exactly the torn fragment

    def test_json_valid_non_object_line_is_corrupt(self, tmp_path):
        store = ShardedTuningStore(tmp_path / "s", shards=1)
        store.put(_record(1))
        with open(store.shard_path(0), "a", encoding="utf-8") as handle:
            handle.write("null\n[1, 2]\n42\n")
        assert store.get(_key(1)) is not None
        assert store.stats.corrupt_lines == 3
        assert store.stats.stale_records == 0


class TestStoreGC:
    """LRU eviction by last-served timestamp (the store's GC policy)."""

    def _fill(self, root, count=8, base=1000.0):
        store = ShardedTuningStore(root, shards=4)
        for index in range(count):
            store.put(_record(index))
            store._touch(_key(index), base + index)  # deterministic clock
        return store

    def test_get_and_put_touch_the_key(self, tmp_path):
        store = ShardedTuningStore(tmp_path / "s", shards=2)
        assert store.last_served(_key(1)) is None
        store.put(_record(1))
        after_put = store.last_served(_key(1))
        assert after_put is not None
        store.get(_key(1))
        assert store.last_served(_key(1)) >= after_put
        assert store.stats.touches == 2

    def test_miss_does_not_touch(self, tmp_path):
        store = ShardedTuningStore(tmp_path / "s", shards=2)
        store.get(_key(1))
        assert store.stats.touches == 0

    def test_evict_max_records_drops_least_recently_served(self, tmp_path):
        store = self._fill(tmp_path / "s")
        report = store.evict(max_records=3, now=2000.0)
        assert report["evicted"] == 5 and report["by_count"] == 5
        assert report["kept"] == 3 and len(store) == 3
        for index in (5, 6, 7):  # the most recently served survive
            assert store.get(_key(index)) is not None
        for index in range(5):
            assert store.get(_key(index)) is None

    def test_evict_max_idle_drops_stale_records(self, tmp_path):
        store = self._fill(tmp_path / "s")  # touched at 1000..1007
        report = store.evict(max_idle=4.5, now=1010.0)
        # idle = 1010 - (1000+i) > 4.5  =>  evict i in 0..5, keep 6 and 7
        assert report["by_idle"] == 6 and report["kept"] == 2
        assert store.get(_key(6)) is not None and store.get(_key(7)) is not None

    def test_evict_both_policies_compose(self, tmp_path):
        store = self._fill(tmp_path / "s")
        report = store.evict(max_records=1, max_idle=4.5, now=1010.0)
        assert report["by_idle"] == 6 and report["by_count"] == 1
        assert len(store) == 1 and store.get(_key(7)) is not None

    def test_evicted_keys_returned_for_memory_tiers(self, tmp_path):
        store = self._fill(tmp_path / "s", count=4)
        report = store.evict(max_records=2, now=2000.0)
        assert sorted(k.params for k in report["evicted_keys"]) == [
            (("index", 0),),
            (("index", 1),),
        ]

    def test_never_served_records_go_first(self, tmp_path):
        store = ShardedTuningStore(tmp_path / "s", shards=2)
        for index in range(4):
            store.put(_record(index))
        store._touched.clear()  # simulate records from a non-flushing writer
        store._touch(_key(3), 5000.0)
        report = store.evict(max_records=1, now=5001.0)
        assert report["evicted"] == 3
        assert store.get(_key(3)) is not None

    def test_last_served_survives_compact_and_reopen(self, tmp_path):
        store = self._fill(tmp_path / "s", count=4)
        store.flush_touches()
        store.compact()
        assert store.last_served(_key(2)) == 1002.0
        fresh = ShardedTuningStore(tmp_path / "s")
        assert fresh.last_served(_key(2)) == 1002.0
        # ...and still drives eviction from the fresh handle
        report = fresh.evict(max_records=2, now=2000.0)
        assert report["evicted"] == 2
        assert fresh.get(_key(3)) is not None

    def test_compact_folds_served_sidecar(self, tmp_path):
        store = ShardedTuningStore(tmp_path / "s", shards=1)
        store.put(_record(1))
        for stamp in (10.0, 20.0, 30.0):
            store._touch(_key(1), stamp)
            store.flush_touches()
        store.put(_record(9))
        store._touch(_key(9), 40.0)
        store.compact()
        with open(store.served_path(0), encoding="utf-8") as handle:
            lines = [json.loads(l) for l in handle if l.strip()]
        assert len(lines) == 2  # one line per surviving key, latest stamp
        stamps = {tuple(map(tuple, e["served"]["params"])): e["t"] for e in lines}
        assert stamps[(("index", 1),)] == 30.0

    def test_eviction_counted_in_stats(self, tmp_path):
        store = self._fill(tmp_path / "s", count=6)
        store.evict(max_records=4, now=2000.0)
        store.evict(max_records=2, now=2000.0)
        stats = store.stats
        assert stats.gc_runs == 2
        assert stats.evicted_records == 4

    def test_evict_rewrites_are_crash_safe_lines(self, tmp_path):
        """Post-eviction shards are complete JSONL a fresh handle fully reads."""
        store = self._fill(tmp_path / "s", count=8)
        store.evict(max_records=4, now=2000.0)
        fresh = ShardedTuningStore(tmp_path / "s")
        assert len(fresh.load()) == 4
        assert fresh.stats.corrupt_lines == 0 and fresh.stats.stale_records == 0

    def test_evict_spares_record_appended_by_another_writer(self, tmp_path):
        """A record published between GC's scan and rewrite must survive.

        evict() scans every shard, decides evictions, then rewrites; the
        rewrite re-reads each shard under its lock, so a record another
        handle appended after the scan (here: injected at the first
        rewrite-phase decode, into a shard rewritten later) is preserved.
        """
        store = self._fill(tmp_path / "s", count=4)
        other = ShardedTuningStore(tmp_path / "s")
        original_decode = store._decode_lines
        scan_calls = store.num_shards  # decode calls before the rewrite phase
        calls = []

        def inject_then_decode(lines):
            calls.append(True)
            if len(calls) == scan_calls + 1:  # first rewrite-phase decode
                other.put(_record(99))  # lands in a not-yet-rewritten shard
            return original_decode(lines)

        store._decode_lines = inject_then_decode
        store.evict(max_records=2, now=2000.0)
        fresh = ShardedTuningStore(tmp_path / "s")
        assert fresh.get(_key(99)) is not None

    def test_cache_discard(self):
        cache = TuningCache()
        cache.insert(_record(1))
        assert cache.discard(_key(1)) is True
        assert cache.discard(_key(1)) is False
        assert cache.lookup(_key(1)) is None


class TestFsck:
    def _corrupt_shard(self, store, index=0):
        with open(store.shard_path(index), "a", encoding="utf-8") as handle:
            handle.write('{"schema": 2, "cost_model": "torn-mid-app')

    def test_clean_store_audits_clean(self, tmp_path):
        store = ShardedTuningStore(tmp_path / "s", shards=2)
        for index in range(4):
            store.put(_record(index))
        report = store.fsck()
        assert report["clean"] == 1
        assert report["records"] == 4
        assert report["corrupt"] == 0 and report["quarantined"] == 0

    def test_check_mode_reports_without_modifying(self, tmp_path):
        store = ShardedTuningStore(tmp_path / "s", shards=1)
        store.put(_record(0))
        self._corrupt_shard(store)
        before = open(store.shard_path(0), encoding="utf-8").read()
        report = store.fsck(quarantine=False)
        assert report["corrupt"] == 1 and report["clean"] == 0
        assert report["quarantined"] == 0
        assert open(store.shard_path(0), encoding="utf-8").read() == before
        assert not os.path.exists(store.quarantine_path(0))

    def test_repair_quarantines_and_second_pass_is_clean(self, tmp_path):
        store = ShardedTuningStore(tmp_path / "s", shards=1)
        store.put(_record(0))
        store.put(_record(1))
        self._corrupt_shard(store)
        report = store.fsck()
        assert report["quarantined"] == 1
        # Nothing was destroyed: the bad line lives on in the quarantine file.
        quarantined = open(store.quarantine_path(0), encoding="utf-8").read()
        assert "torn-mid-app" in quarantined
        # The repaired shard serves both records and re-audits clean.
        fresh = ShardedTuningStore(tmp_path / "s")
        assert fresh.get(_key(0)) is not None and fresh.get(_key(1)) is not None
        assert fresh.fsck()["clean"] == 1

    def test_stale_records_are_counted_but_left_in_place(self, tmp_path):
        store = ShardedTuningStore(tmp_path / "s", shards=1)
        store.put(_record(0))
        stale = _record(1).to_json()
        stale["cost_model"] = "feedfacecafe"
        with open(store.shard_path(0), "a", encoding="utf-8") as handle:
            handle.write(json.dumps(stale) + "\n")
        report = store.fsck()
        assert report["stale"] == 1
        assert report["clean"] == 1  # stale is data, not damage
        assert "feedfacecafe" in open(store.shard_path(0), encoding="utf-8").read()

    def test_leftover_compaction_temps_are_swept(self, tmp_path):
        store = ShardedTuningStore(tmp_path / "s", shards=1)
        store.put(_record(0))
        litter = os.path.join(store.root, "shard-00.jsonl.tmp.12345")
        with open(litter, "w", encoding="utf-8") as handle:
            handle.write("half-written compaction\n")
        check = store.fsck(quarantine=False)
        assert check["tmp_files"] == 1 and check["clean"] == 0
        repair = store.fsck()
        assert repair["tmp_removed"] == 1
        assert not os.path.exists(litter)
        assert store.fsck(quarantine=False)["clean"] == 1

    def test_repaired_shard_view_serves_fresh_reads(self, tmp_path):
        store = ShardedTuningStore(tmp_path / "s", shards=1)
        store.put(_record(0))
        store.get(_key(0))  # warm the incremental view
        self._corrupt_shard(store)
        store.fsck()
        # The rewrite invalidated the view; a read must rescan, not serve
        # offsets into the old file layout.
        assert store.get(_key(0)) is not None


class TestLockRetrySchedule:
    def test_lock_uses_pid_seeded_jittered_policy(self, tmp_path):
        lock = FileLock(tmp_path / "x.lock", timeout=3.0, poll_interval=0.004)
        assert lock.retry.deadline_s == 3.0
        assert lock.retry.base_delay_s == 0.004
        assert lock.retry.seed == os.getpid()  # decorrelates across processes
        assert lock.retry.jitter > 0

    def test_custom_retry_policy_deadline_becomes_the_timeout(self, tmp_path):
        from repro.retry import RetryPolicy

        policy = RetryPolicy(max_attempts=None, base_delay_s=0.001, deadline_s=0.25)
        lock = FileLock(tmp_path / "x.lock", timeout=99.0, retry=policy)
        assert lock.timeout == 0.25

    def test_contended_lock_times_out_on_the_policy_deadline(self, tmp_path):
        path = tmp_path / "x.lock"
        holder = FileLock(path, timeout=5.0)
        holder.acquire()
        try:
            waiter = FileLock(path, timeout=0.3)
            import time as time_module

            start = time_module.perf_counter()
            with pytest.raises(LockTimeout, match="within 0.3s"):
                waiter.acquire()
            waited = time_module.perf_counter() - start
            assert 0.2 <= waited < 2.0  # deadline honoured, not overshot
            assert waiter.contentions == 1
        finally:
            holder.release()
