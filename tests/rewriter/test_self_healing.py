"""Self-healing distributed tuning: crashes degrade a run, never kill it.

Each test injects a real process death (SIGKILL via the ``worker.task``
fault point — the plan is armed in the parent and inherited by forked
workers) or a hang, and asserts the supervisor contract: unfinished lease
indices are released and re-tuned by siblings, workers respawn within the
restart budget, a task that keeps crashing workers is quarantined into
``poison.jsonl`` after exactly ``poison_threshold`` claims, and everything
that completes is bit-identical to a single-process sweep.

Fork-only where faults must reach the child: a spawn child re-imports the
module and loses the armed plan, so those tests skip off POSIX.
"""

import json
import multiprocessing
import os
import signal
import time

import pytest

from repro.rewriter.session import TuningSession
from repro.rewriter.store import ShardedTuningStore
from repro.rewriter.workers import (
    POISON_FILENAME,
    DistributedTuner,
    Heartbeat,
    LeaseFile,
    heartbeat_path,
    read_heartbeat,
    run_task,
    tasks_from_layers,
)
from repro.testing import faults
from repro.workloads.table1 import TABLE1_LAYERS

fork_only = pytest.mark.skipif(
    multiprocessing.get_start_method() != "fork",
    reason="fault plans reach workers via fork inheritance",
)


def _sigkill_self(injection):
    os.kill(os.getpid(), signal.SIGKILL)


def _kill_once_marker(marker_path):
    """SIGKILL the first worker to hit the point, fleet-wide.

    Fault-plan rule state is per-process under fork (each child owns a
    copy), so ``times=1`` would fire once in *every* worker; a marker file
    on shared disk makes the crash transient across the whole fleet.
    """

    def action(injection):
        if os.path.exists(marker_path):
            return
        with open(marker_path, "w", encoding="utf-8") as handle:
            handle.write(str(os.getpid()))
        os.kill(os.getpid(), signal.SIGKILL)

    return action


class TestLeaseLifecycle:
    def test_release_makes_indices_claimable_again(self, tmp_path):
        lease = LeaseFile(tmp_path / "leases.jsonl")
        assert lease.claim("w1", total=4, batch=2) == [0, 1]
        lease.release("w1", [1])
        assert lease.claims() == {0: "w1"}
        assert lease.claim("w2", total=4, batch=4) == [1, 2, 3]

    def test_done_markers_are_separate_from_claims(self, tmp_path):
        lease = LeaseFile(tmp_path / "leases.jsonl")
        lease.claim("w1", total=2, batch=2)
        lease.mark_done("w1", 0)
        assert lease.done() == {0: "w1"}
        assert set(lease.claims()) == {0, 1}  # done does not unclaim

    def test_claim_counts_tally_reclaims(self, tmp_path):
        lease = LeaseFile(tmp_path / "leases.jsonl")
        lease.claim("w1", total=1)
        lease.release("w1", [0])
        lease.claim("w2", total=1)
        assert lease.claim_counts() == {0: 2}

    def test_release_empty_is_noop(self, tmp_path):
        lease = LeaseFile(tmp_path / "leases.jsonl")
        lease.release("w1", [])
        assert not os.path.exists(lease.path)


class TestHeartbeat:
    def test_stamps_current_task_atomically(self, tmp_path):
        path = heartbeat_path(str(tmp_path / "leases.jsonl"), "w1")
        heartbeat = Heartbeat(path, "w1", interval=0.05)
        heartbeat.start()
        try:
            heartbeat.begin(7)
            stamp = read_heartbeat(path)
            assert stamp["worker"] == "w1" and stamp["current"] == 7
            assert stamp["pid"] == os.getpid()
            heartbeat.finish()
            assert read_heartbeat(path)["current"] is None
        finally:
            heartbeat.stop()

    def test_background_thread_refreshes_stamp(self, tmp_path):
        path = heartbeat_path(str(tmp_path / "leases.jsonl"), "w1")
        heartbeat = Heartbeat(path, "w1", interval=0.05)
        heartbeat.start()
        try:
            first = read_heartbeat(path)["t"]
            deadline = time.time() + 5.0
            while time.time() < deadline:
                if read_heartbeat(path)["t"] > first:
                    break
                time.sleep(0.02)
            assert read_heartbeat(path)["t"] > first
        finally:
            heartbeat.stop()

    def test_read_heartbeat_tolerates_missing_and_torn(self, tmp_path):
        assert read_heartbeat(str(tmp_path / "nope.json")) is None
        torn = tmp_path / "torn.json"
        torn.write_text('{"worker": "w1", "t"')
        assert read_heartbeat(str(torn)) is None


@fork_only
class TestCrashHealing:
    def test_transient_crash_is_reclaimed_and_retuned(self, tmp_path):
        """One SIGKILLed worker: its task is released, a sibling (or the
        respawn) finishes it, and the sweep is complete and bit-identical."""
        layers = TABLE1_LAYERS[:4]
        tasks = tasks_from_layers(layers)
        store = ShardedTuningStore(tmp_path / "s", shards=4)
        tuner = DistributedTuner(
            store, workers=2, heartbeat_interval=0.1, start_method="fork"
        )
        marker = str(tmp_path / "crash.marker")
        with faults.FaultPlan(seed=11) as plan:
            plan.on(
                "worker.task",
                _kill_once_marker(marker),
                times=None,
                when=lambda c: c["index"] == 1,
            )
            report = tuner.run(tasks)
        assert report.complete
        assert report.completed == [0, 1, 2, 3] and report.quarantined == []
        assert report.crashes == 1
        assert report.tasks_reclaimed >= 1
        assert report.worker_restarts >= 1

        # Bit identity: reload and compare against a single-process sweep.
        session = TuningSession()
        for task in tasks:
            run_task(task, session)
        reloaded = ShardedTuningStore(tmp_path / "s", shards=4).load()
        for record in session.cache.records():
            got = reloaded.lookup(record.key)
            assert got is not None, f"record lost: {record.key}"
            assert got.best_config == record.best_config
            assert got.best_cost == record.best_cost

    def test_poison_task_quarantined_exactly_k_times(self, tmp_path):
        """A task that kills every claimer is searched exactly
        ``poison_threshold`` times, then quarantined and never claimed
        again; the rest of the sweep completes."""
        tasks = tasks_from_layers(TABLE1_LAYERS[:4])
        poison = 2
        store = ShardedTuningStore(tmp_path / "s", shards=4)
        tuner = DistributedTuner(
            store,
            workers=2,
            max_restarts=2,
            poison_threshold=2,
            heartbeat_interval=0.1,
            start_method="fork",
        )
        with faults.FaultPlan(seed=12) as plan:
            plan.on(
                "worker.task",
                _sigkill_self,
                times=None,
                when=lambda c: c["index"] == poison,
            )
            report = tuner.run(tasks)
        assert report.complete
        assert report.quarantined == [poison]
        assert poison not in report.completed
        assert report.crashes == 2  # one per allowed claim

        record = report.poison_records[0]
        assert record["index"] == poison and record["crashes"] == 2
        poison_file = os.path.join(store.root, POISON_FILENAME)
        with open(poison_file, "r", encoding="utf-8") as handle:
            lines = [json.loads(line) for line in handle]
        assert len(lines) == 1 and lines[0]["index"] == poison

    def test_hung_worker_is_killed_and_healed(self, tmp_path):
        """A worker wedged inside a task (heartbeat still beating) is killed
        by the task timeout and its task handled like any crash."""
        tasks = tasks_from_layers(TABLE1_LAYERS[:2])
        store = ShardedTuningStore(tmp_path / "s", shards=2)
        tuner = DistributedTuner(
            store,
            workers=1,
            max_restarts=2,
            poison_threshold=2,
            heartbeat_interval=0.1,
            task_timeout=1.0,
            join_timeout=60.0,
            start_method="fork",
        )
        marker = str(tmp_path / "hang.marker")

        def hang_once(injection):
            if os.path.exists(marker):
                return
            with open(marker, "w", encoding="utf-8") as handle:
                handle.write("x")
            time.sleep(600)

        start = time.monotonic()
        with faults.FaultPlan(seed=13) as plan:
            plan.on("worker.task", hang_once, times=None, when=lambda c: c["index"] == 0)
            report = tuner.run(tasks)
        assert time.monotonic() - start < 45.0
        assert report.complete and report.quarantined == []
        assert report.completed == [0, 1]
        assert report.crashes >= 1 and report.worker_restarts >= 1

    def test_frozen_heartbeat_triggers_kill(self, tmp_path):
        """A worker frozen whole (heartbeat stamping suppressed via the
        ``worker.heartbeat`` point *and* the task wedged) is presumed dead
        once its stamp goes stale, killed, and the run heals.  Only the
        first worker freezes — the marker records its pid, and both rules
        match on it — so the respawn finishes the sweep."""
        tasks = tasks_from_layers(TABLE1_LAYERS[:2])
        store = ShardedTuningStore(tmp_path / "s", shards=2)
        tuner = DistributedTuner(
            store,
            workers=1,
            max_restarts=2,
            poison_threshold=5,
            heartbeat_interval=0.1,
            heartbeat_timeout=1.5,
            join_timeout=60.0,
            start_method="fork",
        )
        marker = str(tmp_path / "frozen.marker")

        def _frozen_pid():
            try:
                with open(marker, "r", encoding="utf-8") as handle:
                    return handle.read().strip()
            except OSError:
                return None

        def wedge_task(injection):
            if _frozen_pid() is None:
                with open(marker, "w", encoding="utf-8") as handle:
                    handle.write(str(os.getpid()))
            if _frozen_pid() == str(os.getpid()):
                time.sleep(600)

        def suppress_stamp(injection):
            if _frozen_pid() == str(os.getpid()):
                raise faults.InjectedFault("frozen heartbeat")

        with faults.FaultPlan(seed=14) as plan:
            plan.on("worker.task", wedge_task, times=None, when=lambda c: c["index"] == 0)
            plan.on("worker.heartbeat", suppress_stamp, times=None)
            report = tuner.run(tasks)
        assert report.complete
        assert report.completed == [0, 1]
        assert report.crashes >= 1 and report.worker_restarts >= 1


@fork_only
class TestRestartBudget:
    def test_restart_budget_bounds_respawns(self, tmp_path):
        """Every claim of an always-crashing single task consumes the budget;
        with quarantine disabled (huge threshold) the run must fail once the
        budget is gone — and the lease file survives for inspection."""
        tasks = tasks_from_layers(TABLE1_LAYERS[:1])
        store = ShardedTuningStore(tmp_path / "s", shards=2)
        tuner = DistributedTuner(
            store,
            workers=1,
            max_restarts=1,
            poison_threshold=99,
            heartbeat_interval=0.1,
            start_method="fork",
        )
        with faults.FaultPlan(seed=15) as plan:
            plan.on("worker.task", _sigkill_self, times=None)
            with pytest.raises(RuntimeError, match="restart budget|fleet lost"):
                tuner.run(tasks)
        leftovers = [n for n in os.listdir(store.root) if n.startswith("leases-")]
        assert leftovers  # failed runs keep the lease for post-mortems

    def test_respawned_worker_names_are_generational(self, tmp_path):
        tasks = tasks_from_layers(TABLE1_LAYERS[:3])
        store = ShardedTuningStore(tmp_path / "s", shards=2)
        tuner = DistributedTuner(
            store, workers=1, heartbeat_interval=0.1, start_method="fork"
        )
        marker = str(tmp_path / "gen.marker")
        with faults.FaultPlan(seed=16) as plan:
            plan.on(
                "worker.task",
                _kill_once_marker(marker),
                times=None,
                when=lambda c: c["index"] == 0,
            )
            report = tuner.run(tasks)
        assert report.complete
        names = {w.worker for w in report.workers}
        assert "worker-0r1" in names  # the respawn reported, not the corpse
