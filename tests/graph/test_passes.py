"""Tests for the graph-level passes: quantization, layout planning, fusion."""

import pytest

from repro.graph import (
    Conv2DNode,
    ElementwiseNode,
    TensorShape,
    fuse_elementwise,
    padding_waste,
    plan_layout,
    quantize_graph,
)
from repro.models import GraphBuilder, get_model


def _toy_graph():
    builder = GraphBuilder("toy", TensorShape(3, 32, 32))
    builder.conv(30, 3)  # 30 channels: will need padding to 32
    builder.conv(64, 3, stride=2)
    return builder.classifier(10)


class TestQuantize:
    def test_int8_dtype_propagated(self):
        g = quantize_graph(_toy_graph(), "int8")
        convs = g.conv_nodes()
        assert convs and all(c.dtype == "int8" for c in convs)
        kinds = [n.kind for n in g.nodes if isinstance(n, ElementwiseNode)]
        assert "quantize" in kinds and "dequantize" in kinds

    def test_fp16_mode(self):
        g = quantize_graph(_toy_graph(), "float16")
        assert all(c.dtype == "float16" for c in g.conv_nodes())

    def test_invalid_dtype(self):
        with pytest.raises(ValueError):
            quantize_graph(_toy_graph(), "int4")

    def test_macs_preserved(self):
        g = _toy_graph()
        q = quantize_graph(g, "int8")
        assert q.total_macs == g.total_macs


class TestLayout:
    def test_padding_to_lane_multiples(self):
        g = _toy_graph()
        decisions = plan_layout(g, lanes=16, reduction=4)
        padded = [d for d in decisions.values() if d.out_channels == 30]
        assert padded and padded[0].padded_out_channels == 32
        assert padded[0].layout == "NCHW16c"
        assert padded[0].weight_layout == "KCRS4k16c"
        assert 0 < padding_waste(decisions) < 0.2

    def test_arm_lane_width(self):
        decisions = plan_layout(_toy_graph(), lanes=4, reduction=4)
        assert all(d.padded_out_channels % 4 == 0 for d in decisions.values())

    def test_no_waste_when_divisible(self):
        builder = GraphBuilder("even", TensorShape(16, 8, 8))
        builder.conv(32, 3)
        g = builder.classifier(16)
        decisions = plan_layout(g, lanes=16, reduction=4)
        conv_decision = [d for d in decisions.values() if d.out_channels == 32][0]
        assert conv_decision.wasted_output_fraction == 0.0


class TestFusion:
    def test_elementwise_folded_into_conv(self):
        g = _toy_graph()
        fused = fuse_elementwise(g)
        assert len(fused) < len(g)
        convs = fused.conv_nodes()
        assert any("relu" in c.fused_activations for c in convs)
        assert any("batch_norm" in c.fused_activations for c in convs)

    def test_resnet_residual_adds_fused(self):
        g = get_model("resnet-18", fresh=True)
        fused = fuse_elementwise(g)
        # Fusion removes a large fraction of the elementwise nodes.
        before = sum(1 for n in g.nodes if isinstance(n, ElementwiseNode))
        after = sum(1 for n in fused.nodes if isinstance(n, ElementwiseNode))
        assert after < before * 0.5

    def test_fusion_preserves_macs_and_shapes(self):
        g = _toy_graph()
        fused = fuse_elementwise(g)
        assert fused.total_macs == g.total_macs
        assert fused.infer_shapes()[fused.nodes[-1].name] == g.infer_shapes()[g.nodes[-1].name]
