"""Tests for the graph latency executor."""

import pytest

from repro.graph import TensorShape, estimate_graph_latency
from repro.hwsim import CostBreakdown
from repro.models import GraphBuilder


class _CountingRunner:
    """A stub runner that charges fixed costs and records calls."""

    def __init__(self):
        self.conv_calls = 0
        self.dense_calls = 0
        self.elementwise_calls = 0

    def conv2d_latency(self, params):
        self.conv_calls += 1
        return CostBreakdown(seconds=10e-6)

    def dense_latency(self, params):
        self.dense_calls += 1
        return CostBreakdown(seconds=5e-6)

    def elementwise_latency(self):
        self.elementwise_calls += 1
        return CostBreakdown(seconds=1e-6)


def _toy_graph():
    builder = GraphBuilder("toy", TensorShape(3, 32, 32))
    builder.conv(16, 3)
    builder.conv(32, 3, stride=2)
    builder.depthwise(3)
    return builder.classifier(10)


class TestExecutor:
    def test_total_is_sum_of_nodes(self):
        runner = _CountingRunner()
        graph = _toy_graph()
        report = estimate_graph_latency(graph, runner)
        assert runner.conv_calls == 2
        assert runner.dense_calls == 1
        assert report.total_seconds == pytest.approx(
            sum(c.seconds for c in report.per_node.values())
        )
        assert report.total_seconds > 25e-6
        assert report.graph_name == "toy"

    def test_per_node_report_and_slowest(self):
        runner = _CountingRunner()
        report = estimate_graph_latency(_toy_graph(), runner)
        slowest = report.slowest_nodes(2)
        assert len(slowest) == 2
        assert all(name in report.per_node for name in slowest)

    def test_depthwise_uses_runner_hook_when_available(self):
        class WithDepthwise(_CountingRunner):
            def __init__(self):
                super().__init__()
                self.depthwise_calls = 0

            def depthwise_conv2d_latency(self, node):
                self.depthwise_calls += 1
                return CostBreakdown(seconds=2e-6)

        runner = WithDepthwise()
        estimate_graph_latency(_toy_graph(), runner)
        assert runner.depthwise_calls == 1

    def test_input_nodes_are_free(self):
        runner = _CountingRunner()
        report = estimate_graph_latency(_toy_graph(), runner)
        assert report.per_node["data"].seconds == 0.0


class TestFunctionalExecution:
    """execute_graph: the vectorized engine as the graph-level oracle."""

    def _graph(self):
        import numpy as np

        from repro.graph import (
            Conv2DNode,
            DenseNode,
            ElementwiseNode,
            FlattenNode,
            GlobalPoolNode,
            Graph,
            InputNode,
            PoolNode,
            SoftmaxNode,
        )

        g = Graph("tiny")
        g.add(InputNode(name="in", shape=TensorShape(3, 12, 12)))
        g.add(Conv2DNode(name="c1", inputs=["in"], out_channels=8, kernel=3, padding=1))
        g.add(ElementwiseNode(name="r1", inputs=["c1"], kind="relu"))
        g.add(PoolNode(name="p1", inputs=["r1"], kind="max", kernel=2, stride=2))
        g.add(GlobalPoolNode(name="gp", inputs=["p1"]))
        g.add(FlattenNode(name="fl", inputs=["gp"]))
        g.add(DenseNode(name="fc", inputs=["fl"], out_features=5))
        g.add(SoftmaxNode(name="sm", inputs=["fc"]))
        return g

    def test_engine_matches_scalar_interpreter(self):
        import numpy as np

        from repro.graph import execute_graph

        g = self._graph()
        x = np.random.default_rng(0).standard_normal((3, 12, 12)).astype(np.float32)
        outs_v = execute_graph(g, {"in": x}, rng=np.random.default_rng(7), engine="vector")
        outs_s = execute_graph(g, {"in": x}, rng=np.random.default_rng(7), engine="scalar")
        assert set(outs_v) == {n.name for n in g.nodes}
        for name in outs_v:
            assert np.array_equal(outs_v[name], outs_s[name]), name

    def test_conv_matches_einsum_reference(self):
        import numpy as np

        from repro.graph import execute_graph

        g = self._graph()
        rng = np.random.default_rng(1)
        x = rng.standard_normal((3, 12, 12)).astype(np.float32)
        w = rng.standard_normal((8, 3, 3, 3)).astype(np.float32)
        outs = execute_graph(g, {"in": x}, weights={"c1": w}, rng=np.random.default_rng(2))
        xp = np.pad(x, ((0, 0), (1, 1), (1, 1)))
        ref = np.zeros((8, 12, 12), dtype=np.float32)
        for y in range(12):
            for c in range(12):
                patch = xp[:, y : y + 3, c : c + 3].astype(np.float64)
                ref[:, y, c] = np.einsum("crs,kcrs->k", patch, w.astype(np.float64))
        assert np.allclose(outs["c1"], ref, rtol=1e-4, atol=1e-5)
        assert np.allclose(outs["sm"].sum(), 1.0, rtol=1e-5)

    def test_softmax_and_pool_semantics(self):
        import numpy as np

        from repro.graph import execute_graph

        g = self._graph()
        x = np.random.default_rng(3).standard_normal((3, 12, 12)).astype(np.float32)
        outs = execute_graph(g, {"in": x}, rng=np.random.default_rng(4))
        relu = outs["r1"]
        assert (relu >= 0).all()
        pooled = outs["p1"]
        assert pooled.shape == (8, 6, 6)
        # max pooling dominates every window element
        assert (pooled >= relu[:, ::2, ::2]).all()

    def test_missing_input_raises(self):
        import pytest as _pytest

        from repro.graph import execute_graph

        with _pytest.raises(KeyError):
            execute_graph(self._graph(), {})
