"""Tests for the graph latency executor."""

import pytest

from repro.graph import TensorShape, estimate_graph_latency
from repro.hwsim import CostBreakdown
from repro.models import GraphBuilder


class _CountingRunner:
    """A stub runner that charges fixed costs and records calls."""

    def __init__(self):
        self.conv_calls = 0
        self.dense_calls = 0
        self.elementwise_calls = 0

    def conv2d_latency(self, params):
        self.conv_calls += 1
        return CostBreakdown(seconds=10e-6)

    def dense_latency(self, params):
        self.dense_calls += 1
        return CostBreakdown(seconds=5e-6)

    def elementwise_latency(self):
        self.elementwise_calls += 1
        return CostBreakdown(seconds=1e-6)


def _toy_graph():
    builder = GraphBuilder("toy", TensorShape(3, 32, 32))
    builder.conv(16, 3)
    builder.conv(32, 3, stride=2)
    builder.depthwise(3)
    return builder.classifier(10)


class TestExecutor:
    def test_total_is_sum_of_nodes(self):
        runner = _CountingRunner()
        graph = _toy_graph()
        report = estimate_graph_latency(graph, runner)
        assert runner.conv_calls == 2
        assert runner.dense_calls == 1
        assert report.total_seconds == pytest.approx(
            sum(c.seconds for c in report.per_node.values())
        )
        assert report.total_seconds > 25e-6
        assert report.graph_name == "toy"

    def test_per_node_report_and_slowest(self):
        runner = _CountingRunner()
        report = estimate_graph_latency(_toy_graph(), runner)
        slowest = report.slowest_nodes(2)
        assert len(slowest) == 2
        assert all(name in report.per_node for name in slowest)

    def test_depthwise_uses_runner_hook_when_available(self):
        class WithDepthwise(_CountingRunner):
            def __init__(self):
                super().__init__()
                self.depthwise_calls = 0

            def depthwise_conv2d_latency(self, node):
                self.depthwise_calls += 1
                return CostBreakdown(seconds=2e-6)

        runner = WithDepthwise()
        estimate_graph_latency(_toy_graph(), runner)
        assert runner.depthwise_calls == 1

    def test_input_nodes_are_free(self):
        runner = _CountingRunner()
        report = estimate_graph_latency(_toy_graph(), runner)
        assert report.per_node["data"].seconds == 0.0
