"""Memory-planned whole-model execution: liveness, reuse, and exactness.

``run_model`` must be numerically identical to ``execute_graph`` while
recycling activation storage through one liveness-planned arena and serving
repeated layer shapes from the executable-plan cache.
"""

import numpy as np
import pytest

from repro.graph import (
    ConcatNode,
    Conv2DNode,
    DenseNode,
    DepthwiseConv2DNode,
    ElementwiseNode,
    FlattenNode,
    GlobalPoolNode,
    Graph,
    InputNode,
    PoolNode,
    SoftmaxNode,
    TensorShape,
    execute_graph,
    plan_memory,
    rescale_input,
    run_model,
)


def _mixed_graph() -> Graph:
    """A small model exercising every node kind, branches included."""
    g = Graph("mini")
    g.add(InputNode(name="in", shape=TensorShape(3, 12, 12)))
    g.add(
        Conv2DNode(
            name="c1", inputs=["in"], out_channels=8, kernel=3, stride=1,
            padding=1, fused_activations=["relu"],
        )
    )
    g.add(DepthwiseConv2DNode(name="dw", inputs=["c1"], kernel=3, stride=1, padding=1))
    g.add(PoolNode(name="p1", inputs=["dw"], kind="max", kernel=2, stride=2))
    g.add(Conv2DNode(name="c2", inputs=["p1"], out_channels=8, kernel=1, groups=2))
    g.add(ElementwiseNode(name="add", inputs=["c2", "p1"], kind="add"))
    g.add(ConcatNode(name="cat", inputs=["add", "c2"]))
    g.add(GlobalPoolNode(name="gp", inputs=["cat"]))
    g.add(FlattenNode(name="fl", inputs=["gp"]))
    g.add(DenseNode(name="fc", inputs=["fl"], out_features=10))
    g.add(SoftmaxNode(name="sm", inputs=["fc"]))
    return g


def _chain_graph(depth: int = 6) -> Graph:
    g = Graph("chain")
    g.add(InputNode(name="in", shape=TensorShape(8, 10, 10)))
    prev = "in"
    for i in range(depth):
        prev = g.add(
            Conv2DNode(name=f"conv{i}", inputs=[prev], out_channels=8, kernel=3, padding=1)
        )
    return g


class TestPlanMemory:
    def test_chain_reuses_two_slots(self):
        """A straight chain only ever has producer+consumer live: two slots."""
        plan = plan_memory(_chain_graph(8))
        assert len(plan.slot_elements) == 2
        assert plan.reuse_ratio > 3.0

    def test_arena_never_larger_than_naive(self):
        for graph in (_mixed_graph(), _chain_graph()):
            plan = plan_memory(graph)
            assert plan.arena_elements <= plan.naive_elements
            assert plan.arena_bytes == plan.arena_elements * 4

    def test_branch_keeps_both_operands_live(self):
        """A node consumed later (p1 feeds both c2 and add) must not have its
        slot recycled in between: producers of concurrent branches get
        distinct slots."""
        plan = plan_memory(_mixed_graph())
        assert plan.slot_of["p1"] != plan.slot_of["c2"]
        assert plan.slot_of["add"] not in (plan.slot_of["p1"], plan.slot_of["c2"])

    def test_duplicate_inputs_release_slot_once(self, rng):
        """A node listing the same input twice (x + x) must not double-free
        its slot — two later live activations would otherwise alias."""
        g = Graph("dup")
        g.add(InputNode(name="in", shape=TensorShape(4, 8, 8)))
        g.add(Conv2DNode(name="c0", inputs=["in"], out_channels=4, kernel=3, padding=1))
        g.add(ElementwiseNode(name="dbl", inputs=["c0", "c0"], kind="add"))
        g.add(Conv2DNode(name="c1", inputs=["dbl"], out_channels=4, kernel=3, padding=1))
        g.add(Conv2DNode(name="c2", inputs=["dbl"], out_channels=4, kernel=3, padding=1))
        g.add(ElementwiseNode(name="out", inputs=["c1", "c2"], kind="add"))
        plan = plan_memory(g)
        assert plan.slot_of["c1"] != plan.slot_of["c2"]
        x = rng.standard_normal((4, 8, 8)).astype(np.float32)
        ref = execute_graph(g, {"in": x}, rng=np.random.default_rng(11))
        got = run_model(g, {"in": x}, rng=np.random.default_rng(11))
        np.testing.assert_array_equal(got.output, ref["out"])

    def test_keep_pins_slots(self):
        g = _chain_graph(4)
        pinned = plan_memory(g, keep=["conv0", "conv1"])
        free_running = plan_memory(g)
        assert pinned.arena_elements > free_running.arena_elements


class TestRunModel:
    def test_matches_execute_graph_exactly(self, rng):
        g = _mixed_graph()
        x = rng.standard_normal((3, 12, 12)).astype(np.float32)
        ref = execute_graph(g, {"in": x}, rng=np.random.default_rng(3))
        got = run_model(g, {"in": x}, rng=np.random.default_rng(3), keep=["c1", "p1"])
        np.testing.assert_array_equal(got.output, ref["sm"])
        np.testing.assert_array_equal(got.outputs["c1"], ref["c1"])
        np.testing.assert_array_equal(got.outputs["p1"], ref["p1"])

    def test_repeated_layers_hit_the_plan_cache(self):
        from repro.tir import plan_cache

        plan_cache().clear()
        g = _chain_graph(6)
        x = np.random.default_rng(0).standard_normal((8, 10, 10)).astype(np.float32)
        cold = run_model(g, {"in": x}, rng=np.random.default_rng(1))
        assert cold.plan_misses == 1  # six structurally identical convs
        assert cold.plan_hits == 5
        warm = run_model(g, {"in": x}, rng=np.random.default_rng(1))
        assert warm.plan_misses == 0
        assert warm.plan_hit_rate == 1.0
        np.testing.assert_array_equal(cold.output, warm.output)

    def test_scalar_engine_agrees(self, rng):
        g = _chain_graph(2)
        x = rng.standard_normal((8, 10, 10)).astype(np.float32)
        vec = run_model(g, {"in": x}, rng=np.random.default_rng(5))
        sca = run_model(g, {"in": x}, rng=np.random.default_rng(5), engine="scalar")
        np.testing.assert_array_equal(vec.output, sca.output)

    def test_explicit_weights(self, rng):
        g = _chain_graph(2)
        x = rng.standard_normal((8, 10, 10)).astype(np.float32)
        weights = {
            f"conv{i}": (rng.standard_normal((8, 8, 3, 3)) * 0.1).astype(np.float32)
            for i in range(2)
        }
        ref = execute_graph(g, {"in": x}, weights=dict(weights))
        got = run_model(g, {"in": x}, weights=dict(weights))
        np.testing.assert_array_equal(got.output, ref["conv1"])

    def test_missing_input_raises(self):
        with pytest.raises(KeyError):
            run_model(_chain_graph(1), {})

    def test_run_reports_memory_and_timing(self, rng):
        g = _chain_graph(4)
        x = rng.standard_normal((8, 10, 10)).astype(np.float32)
        result = run_model(g, {"in": x})
        assert result.seconds > 0
        assert result.memory.reuse_ratio > 1.0
        assert result.graph_name == "chain"


class TestRescaleInput:
    def test_rescaled_model_runs_end_to_end(self):
        from repro.models.zoo import get_model

        graph = rescale_input(get_model("resnet-18", fresh=True), 16)
        graph.infer_shapes()
        inp = graph.nodes[0]
        assert inp.shape.height == 16 and inp.shape.width == 16
        x = np.random.default_rng(0).standard_normal((3, 16, 16)).astype(np.float32)
        result = run_model(graph, {inp.name: x}, rng=np.random.default_rng(1))
        assert np.isfinite(result.output).all()
        assert result.memory.reuse_ratio > 2.0

    def test_original_graph_untouched(self):
        from repro.models.zoo import get_model

        graph = get_model("resnet-18", fresh=True)
        graph.infer_shapes()
        before = graph.output_shape(graph.nodes[-1].name)
        small = rescale_input(graph, 32)
        graph.infer_shapes()
        assert graph.output_shape(graph.nodes[-1].name) == before
        assert small.nodes[0].shape.height == 32
