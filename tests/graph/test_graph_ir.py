"""Tests for the graph IR: construction, shape inference, node metadata."""

import pytest

from repro.graph import (
    ConcatNode,
    Conv2DNode,
    DenseNode,
    ElementwiseNode,
    Graph,
    InputNode,
    PoolNode,
    TensorShape,
)
from repro.models import GraphBuilder


class TestGraphConstruction:
    def test_topological_order_enforced(self):
        g = Graph("g")
        with pytest.raises(ValueError):
            g.add(Conv2DNode(name="c1", inputs=["missing"], out_channels=8, kernel=3))

    def test_duplicate_names_rejected(self):
        g = Graph("g")
        g.add(InputNode(name="data", shape=TensorShape(3, 8, 8)))
        with pytest.raises(ValueError):
            g.add(InputNode(name="data", shape=TensorShape(3, 8, 8)))

    def test_shape_inference_conv_chain(self):
        g = Graph("g")
        g.add(InputNode(name="data", shape=TensorShape(3, 32, 32)))
        g.add(Conv2DNode(name="c1", inputs=["data"], out_channels=16, kernel=3, stride=2, padding=1))
        g.add(PoolNode(name="p1", inputs=["c1"], kind="max", kernel=2, stride=2, padding=0))
        shapes = g.infer_shapes()
        assert shapes["c1"] == TensorShape(16, 16, 16)
        assert shapes["p1"] == TensorShape(16, 8, 8)

    def test_concat_sums_channels(self):
        g = Graph("g")
        g.add(InputNode(name="data", shape=TensorShape(8, 4, 4)))
        g.add(Conv2DNode(name="a", inputs=["data"], out_channels=16, kernel=1))
        g.add(Conv2DNode(name="b", inputs=["data"], out_channels=32, kernel=1))
        g.add(ConcatNode(name="cat", inputs=["a", "b"]))
        assert g.infer_shapes()["cat"].channels == 48

    def test_conv_params_and_macs(self):
        g = Graph("g")
        g.add(InputNode(name="data", shape=TensorShape(8, 16, 16)))
        node = Conv2DNode(name="c", inputs=["data"], out_channels=32, kernel=3, padding=1)
        g.add(node)
        g.infer_shapes()
        params = node.conv_params()
        assert params.in_channels == 8 and params.out_channels == 32
        assert params.out_height == 16
        assert node.macs == 16 * 16 * 32 * 8 * 9

    def test_dense_params(self):
        g = Graph("g")
        g.add(InputNode(name="data", shape=TensorShape(512, 1, 1)))
        node = DenseNode(name="fc", inputs=["data"], out_features=1000)
        g.add(node)
        g.infer_shapes()
        assert node.dense_params().in_features == 512
        assert node.macs == 512 * 1000

    def test_compute_nodes_and_total_macs(self):
        builder = GraphBuilder("toy", TensorShape(3, 16, 16))
        builder.conv(8, 3)
        builder.conv(16, 3, stride=2)
        g = builder.classifier(10)
        assert len(g.conv_nodes()) == 2
        assert g.total_macs > 0
        assert len(g.compute_nodes()) >= 3  # two convs + dense
