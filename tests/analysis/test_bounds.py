"""Bounds & shape analysis: in-bounds proofs over real lowered PrimFuncs.

Positive coverage for :mod:`repro.analysis.bounds`: plain nests prove
unconditionally, imperfect-split residues prove *conditionally* (through
their ``likely`` guard), tensorized nests prove across operand bindings,
and unbounded indices degrade to warnings rather than false errors.
"""

import pytest

from repro.analysis import analyze, analyze_bounds
from repro.core import tensorize
from repro.schedule import create_schedule
from repro.tir import lower
from tests.conftest import small_conv_hwc, small_matmul_int8


def _bounds_errors(diags):
    return [d for d in diags if d.severity == "error"]


class TestPlainNests:
    def test_conv_all_proved(self):
        proofs, diags = analyze_bounds(lower(small_conv_hwc()))
        assert proofs and all(p.bounds_proved for p in proofs)
        assert not any(p.bounds_conditional for p in proofs)
        assert not diags

    def test_matmul_all_proved(self):
        proofs, diags = analyze_bounds(lower(small_matmul_int8(5, 7, 9)))
        assert proofs and all(p.bounds_proved for p in proofs)
        assert not diags


class TestGuardedResidues:
    @pytest.mark.parametrize("factor", [3, 5])
    def test_imperfect_split_proves_through_guard(self, factor):
        """Splitting an extent the factor does not divide produces a
        ``likely``-guarded residue; the proof must lean on the guard and
        report itself as conditional."""
        conv = small_conv_hwc()
        sch = create_schedule(conv)
        st = sch.stage
        st.split(st[conv.op.axes[2]], factor)  # k = 16, factor 3/5 -> residue
        proofs, diags = analyze_bounds(lower(sch))
        assert all(p.bounds_proved for p in proofs)
        assert not _bounds_errors(diags)
        assert any(p.bounds_conditional for p in proofs)

    def test_perfect_split_stays_unconditional(self):
        conv = small_conv_hwc()
        sch = create_schedule(conv)
        st = sch.stage
        st.split(st[conv.op.axes[2]], 4)  # 16 % 4 == 0 -> no guard
        proofs, diags = analyze_bounds(lower(sch))
        assert all(p.bounds_proved for p in proofs)
        assert not any(p.bounds_conditional for p in proofs)
        assert not diags


class TestTensorizedNests:
    def test_vnni_conv_proved(self):
        result = tensorize(small_conv_hwc(), "x86.avx512.vpdpbusd")
        proofs, diags = analyze_bounds(result.func)
        assert proofs and all(p.bounds_proved for p in proofs)
        assert not _bounds_errors(diags)

    def test_full_report_is_strict_clean(self):
        result = tensorize(small_conv_hwc(), "x86.avx512.vpdpbusd")
        report = analyze(result.func)
        assert report.ok(strict=True)
        assert report.proved_nests == report.total_nests
        assert not report.errors
        summary = report.summary()
        assert str(report.proved_nests) in summary

    def test_proof_records_accesses(self):
        """Each proof enumerates the accesses it certified, naming the nest
        it belongs to — the engine keys guard elision off exactly this."""
        proofs, _ = analyze_bounds(lower(small_conv_hwc()))
        store_proofs = [p for p in proofs if p.accesses]
        assert store_proofs
        for proof in store_proofs:
            assert proof.nest  # the nest's printable name, e.g. "loops->store[t]"
