"""Dtype & overflow lint: accumulation chains and narrowing casts.

Everything this pass reports is a *warning*: overflow is a property of the
program's declared semantics (the scalar reference wraps identically), so
a finding must never reject a rewrite — the last test pins exactly that.
"""

from repro.analysis import analyze, analyze_dtypes, verify_rewrite
from repro.core import tensorize
from repro.dsl import cast, compute, placeholder, reduce_axis, sum_reduce
from repro.tir import lower
from tests.conftest import small_conv_hwc


def _int16_matmul(m=4, n=16, k=32):
    """The vpdpwssd shape: int16 inputs, int32 accumulator — a worst-case
    chain of k products of 32767^2 overflows int32."""
    a = placeholder((m, k), "int16", "A")
    b = placeholder((n, k), "int16", "B")
    rk = reduce_axis(0, k, "rk")
    return compute(
        (m, n),
        lambda i, j: sum_reduce(cast("int32", a[i, rk]) * cast("int32", b[j, rk]), rk),
        name="mm_i16",
    )


class TestAccumulationChains:
    def test_uint8_conv_within_budget(self):
        """255 * 127 * 72 rounds is ~2.3M — comfortably inside int32."""
        assert analyze_dtypes(lower(small_conv_hwc())) == []

    def test_int16_scalar_chain_warns(self):
        diags = analyze_dtypes(lower(_int16_matmul()))
        assert diags
        assert all(d.severity == "warning" for d in diags)
        assert any("overflow int32" in d.message for d in diags)

    def test_int16_intrinsic_chain_warns(self):
        result = tensorize(_int16_matmul(), "x86.avx512.vpdpwssd")
        diags = analyze_dtypes(result.func)
        assert any(
            d.severity == "warning" and "vpdpwssd" in d.message for d in diags
        )

    def test_float_stores_not_linted(self):
        a = placeholder((4, 8), "float32", "a")
        rk = reduce_axis(0, 8, "rk")
        out = compute((4,), lambda i: sum_reduce(a[i, rk], rk), name="fsum")
        assert analyze_dtypes(lower(out)) == []


class TestNarrowingCasts:
    def test_narrowing_cast_flagged(self):
        a = placeholder((8,), "int32", "a")
        out = compute((8,), lambda i: cast("int8", a[i]), name="narrow")
        diags = analyze_dtypes(lower(out))
        assert any(
            d.severity == "warning" and "narrowing cast to int8" in d.message
            for d in diags
        )

    def test_widening_cast_clean(self):
        a = placeholder((8,), "int8", "a")
        out = compute((8,), lambda i: cast("int32", a[i]), name="widen")
        assert analyze_dtypes(lower(out)) == []


class TestWarningsAreNotErrors:
    def test_overflow_does_not_reject_rewrite(self):
        """A legitimate int16 workload must pass verify_rewrite despite the
        overflow warning — dtype findings are lint, not soundness."""
        result = tensorize(_int16_matmul(), "x86.avx512.vpdpwssd")
        verify_rewrite(result.func)  # must not raise

        report = analyze(result.func)
        assert report.warnings and not report.errors
        assert report.ok(strict=True)  # warnings don't break strict either

    def test_diagnostics_name_their_nest(self):
        diags = analyze_dtypes(lower(_int16_matmul()))
        assert diags and all(d.nest for d in diags)
