"""Negative tests: known-good funcs mutated into unsafe variants.

Each mutation takes the verified VNNI conv and injects exactly one defect —
an out-of-bounds index, overlapping output tiles, an uninitialized
accumulator — and :func:`repro.analysis.verify_rewrite` must reject it with
a diagnostic precise enough to act on: the offending nest by name and the
index expression (with its violating interval for bounds errors).
"""

import pytest

from repro.analysis import AnalysisError, analyze, verify_rewrite
from repro.core import tensorize
from repro.dsl import expr as E
from repro.tir import SeqStmt, StmtMutator, Store, collect
from repro.tir.lower import PrimFunc
from repro.tir.stmt import IntrinsicCall, OperandBinding
from tests.conftest import small_conv_hwc


def _good_func():
    return tensorize(small_conv_hwc(), "x86.avx512.vpdpbusd").func


def _with_body(func, body):
    return PrimFunc(func.name, func.params, body, func.op)


class _BumpStoreIndex(StmtMutator):
    """``t[x, ...] = v``  ->  ``t[x+1, ...] = v`` on the first store."""

    def __init__(self):
        self.done = False

    def mutate_store(self, stmt):
        if self.done:
            return stmt
        self.done = True
        indices = [stmt.indices[0] + 1, *stmt.indices[1:]]
        return Store(stmt.tensor, indices, stmt.value)

    def mutate(self, stmt):
        if isinstance(stmt, Store):
            return self.mutate_store(stmt)
        return super().mutate(stmt)


class _SkewIntrinsicOutput(StmtMutator):
    """Rewrite ``var -> repl`` inside every binding touching the output."""

    def __init__(self, var, repl):
        self.map = {var: repl}

    def mutate(self, stmt):
        if not isinstance(stmt, IntrinsicCall):
            return super().mutate(stmt)
        out_b = stmt.output

        def rebind(b):
            return OperandBinding(
                b.intrin_tensor,
                b.intrin_indices,
                b.program_tensor,
                tuple(E.substitute(i, self.map) for i in b.program_indices),
            )

        inputs = [
            rebind(b) if b.program_tensor is out_b.program_tensor else b
            for b in stmt.inputs
        ]
        return IntrinsicCall(
            stmt.intrin, inputs, rebind(out_b), stmt.axes, reads_output=stmt.reads_output
        )


def _axis_var(func, name):
    for store in collect(func.body, lambda s: isinstance(s, IntrinsicCall)):
        for idx in store.output.program_indices:
            for var in E.free_vars(idx):
                if var.name == name:
                    return var
    raise AssertionError(f"no axis {name!r} addresses the output")


class TestBaseline:
    def test_unmutated_func_verifies(self):
        verify_rewrite(_good_func())  # the control: no defect, no rejection


class TestOutOfBounds:
    def test_bumped_index_rejected_with_interval(self):
        func = _good_func()
        mutated = _with_body(func, _BumpStoreIndex().mutate(func.body))
        with pytest.raises(AnalysisError) as exc:
            verify_rewrite(mutated)
        diags = exc.value.diagnostics
        bounds = [d for d in diags if d.pass_name == "bounds" and d.severity == "error"]
        assert bounds
        d = bounds[0]
        # Precise: names the store nest, the index expression and the
        # violating interval (x+1 over x in [0,5] reaches 6 in extent 6).
        assert "store[conv]" in d.nest
        assert d.index_expr is not None and "+ 1" in d.index_expr
        assert d.interval == (1, 6)
        assert "[0, 5]" in d.message

    def test_oob_report_counts_unproved_nest(self):
        func = _good_func()
        mutated = _with_body(func, _BumpStoreIndex().mutate(func.body))
        report = analyze(mutated)
        assert not report.ok()
        assert report.proved_nests < report.total_nests


class TestOverlap:
    def test_collapsed_batch_axis_rejected(self):
        func = _good_func()
        y = _axis_var(func, "y")
        mutated = _with_body(func, _SkewIntrinsicOutput(y, y // 2).mutate(func.body))
        with pytest.raises(AnalysisError) as exc:
            verify_rewrite(mutated)
        overlap = [
            d
            for d in exc.value.diagnostics
            if d.pass_name == "overlap" and d.severity == "error"
        ]
        assert overlap
        d = overlap[0]
        assert "write-write hazard" in d.message
        assert "intrinsic[x86.avx512.vpdpbusd]" in d.nest
        assert d.index_expr is not None and "y" in d.index_expr


class TestUninitialized:
    def test_dropped_init_nest_rejected(self):
        func = _good_func()
        assert isinstance(func.body, SeqStmt)
        mutated = _with_body(func, func.body.stmts[1])
        with pytest.raises(AnalysisError) as exc:
            verify_rewrite(mutated)
        assert any(
            "uninitialized accumulator" in d.message and d.severity == "error"
            for d in exc.value.diagnostics
        )
        assert any("intrinsic" in d.nest for d in exc.value.diagnostics)


class TestDiagnosticFormat:
    def test_format_carries_nest_and_expression(self):
        func = _good_func()
        mutated = _with_body(func, _BumpStoreIndex().mutate(func.body))
        with pytest.raises(AnalysisError) as exc:
            verify_rewrite(mutated)
        text = str(exc.value)
        assert "store[conv]" in text and "bounds" in text
