"""``python -m repro.analysis`` — exit codes, strictness and JSON output.

The sweep itself (16 Table-1 tensorizations) is exercised end-to-end in the
``static-analysis`` CI job; here the fixture funcs are injected through
``sweep_funcs`` so the CLI contract — exit status, strict mode, the JSON
schema the job archives — is pinned without rebuilding the full table.
"""

import json

import pytest

import repro.analysis.__main__ as cli
from repro.core import tensorize
from repro.tir import lower
from repro.tir.lower import PrimFunc
from tests.conftest import small_conv_hwc, small_matmul_int8


@pytest.fixture
def clean_funcs(monkeypatch):
    funcs = [
        ("fixture", lower(small_conv_hwc())),
        ("fixture", tensorize(small_matmul_int8(), "x86.avx512.vpdpbusd").func),
    ]
    monkeypatch.setattr(cli, "sweep_funcs", lambda **kw: funcs)
    return funcs


@pytest.fixture
def failing_funcs(monkeypatch):
    from repro.tir import SeqStmt

    good = tensorize(small_conv_hwc(), "x86.avx512.vpdpbusd").func
    assert isinstance(good.body, SeqStmt)
    bad = PrimFunc(good.name, good.params, good.body.stmts[1], good.op)
    monkeypatch.setattr(
        cli, "sweep_funcs", lambda **kw: [("fixture", lower(small_conv_hwc())), ("bad", bad)]
    )
    return bad


class TestExitCodes:
    def test_clean_sweep_exits_zero(self, clean_funcs, capsys):
        assert cli.main([]) == 0
        out = capsys.readouterr().out
        assert "analyzed 2 function(s)" in out
        assert "0 failure(s)" in out

    def test_strict_clean_sweep_exits_zero(self, clean_funcs):
        assert cli.main(["--strict"]) == 0

    def test_unsafe_function_fails_sweep(self, failing_funcs, capsys):
        assert cli.main([]) == 1
        out = capsys.readouterr().out
        assert "FAIL" in out
        assert "uninitialized accumulator" in out

    def test_quiet_only_prints_failures(self, clean_funcs, capsys):
        assert cli.main(["-q"]) == 0
        out = capsys.readouterr().out
        assert "fixture/" not in out  # per-function lines suppressed
        assert "analyzed 2 function(s)" in out


class TestJsonReport:
    def test_report_schema(self, clean_funcs, tmp_path):
        path = tmp_path / "report.json"
        assert cli.main(["--strict", "--json", str(path)]) == 0
        payload = json.loads(path.read_text())
        summary = payload["summary"]
        assert summary["strict"] is True
        assert summary["functions"] == 2
        assert summary["failed"] == 0
        assert summary["proved_nests"] == summary["nests"] > 0
        assert summary["analyze_seconds"] >= 0
        assert len(payload["reports"]) == 2
        for entry in payload["reports"]:
            assert entry["ok"] is True
            assert entry["origin"] == "fixture"
            assert entry["elapsed_ms"] >= 0
            assert entry["proved_nests"] == entry["total_nests"]

    def test_failures_recorded_in_json(self, failing_funcs, tmp_path):
        path = tmp_path / "report.json"
        assert cli.main(["--json", str(path)]) == 1
        payload = json.loads(path.read_text())
        assert payload["summary"]["failed"] == 1
        bad = [e for e in payload["reports"] if not e["ok"]]
        assert len(bad) == 1
        assert any(
            "uninitialized" in d["message"] for d in bad[0]["diagnostics"]
        )


class TestRealSweepEntry:
    def test_sweep_funcs_builds_table1(self):
        """The genuine (unpatched) sweep tensorizes all 16 Table-1 layers."""
        funcs = cli.sweep_funcs()
        assert len(funcs) == 16
        origins = {origin for origin, _ in funcs}
        assert origins == {"table1"}
