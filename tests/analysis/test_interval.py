"""Interval arithmetic, quasi-affine linearization and guard refinement.

These are the primitives every analysis pass builds on, so the tests pin
their contracts directly: sound (never too narrow) intervals, atom-based
decomposition of fused ``//``/``%`` indices, and the residue-guard
refinement that proves imperfect-split accesses in-bounds.
"""

import pytest

from repro.analysis import (
    Interval,
    affine_interval,
    expr_interval,
    loop_env,
    prove_in_range,
    refine_with_guards,
)
from repro.analysis.interval import atom_interval, atom_root, linearize
from repro.dsl import placeholder
from repro.dsl.expr import Var


class TestIntervalArithmetic:
    def test_empty_interval_rejected(self):
        with pytest.raises(ValueError):
            Interval(3, 2)

    def test_add_sub(self):
        a, b = Interval(1, 4), Interval(-2, 3)
        assert a + b == Interval(-1, 7)
        assert a - b == Interval(-2, 6)

    def test_mul_takes_corner_extrema(self):
        assert Interval(-2, 3) * Interval(-5, 4) == Interval(-15, 12)

    def test_scaled_negative_flips(self):
        assert Interval(1, 4).scaled(-2) == Interval(-8, -2)

    def test_floordiv_undefined_across_zero(self):
        assert Interval(0, 8).floordiv(Interval(-1, 1)) is None
        assert Interval(0, 8).floordiv(Interval(2, 2)) == Interval(0, 4)

    def test_mod_constant_positive_only(self):
        assert Interval(0, 100).mod(Interval(8, 8)) == Interval(0, 7)
        # Already-reduced values keep their tighter bound.
        assert Interval(2, 5).mod(Interval(8, 8)) == Interval(2, 5)
        assert Interval(0, 8).mod(Interval(0, 8)) is None

    def test_within_and_width(self):
        assert Interval(0, 6).within(0, 6)
        assert not Interval(0, 7).within(0, 6)
        assert Interval(2, 9).width == 7


class TestAffineAndExprIntervals:
    def test_affine_combination(self):
        i, j = Var("i"), Var("j")
        env = loop_env([(i, 4), (j, 8)])
        assert affine_interval(i * 8 + j, env) == Interval(0, 31)

    def test_negative_stride_index(self):
        """A reversed index ``(E-1) - i`` stays inside [0, E-1]."""
        i = Var("i")
        env = loop_env([(i, 8)])
        iv = expr_interval(7 - i, env)
        assert iv == Interval(0, 7)
        proved, used_guard, _ = prove_in_range(7 - i, 8, env)
        assert proved and not used_guard
        # ...and an off-by-one reversal is *not* provable.
        proved, _, iv = prove_in_range(8 - i, 8, env)
        assert not proved
        assert iv == Interval(1, 8)

    def test_zero_extent_loop_rejected(self):
        """Empty iteration domains have no sound interval; the env builder
        refuses them instead of fabricating one."""
        with pytest.raises(ValueError):
            loop_env([(Var("i"), 0)])

    def test_data_dependent_index_unbounded(self):
        """A load used as an index cannot be bounded (non-affine fallback)."""
        a = placeholder((8,), "int32", "a")
        i = Var("i")
        env = loop_env([(i, 8)])
        assert expr_interval(a[i], env) is None
        proved, used_guard, iv = prove_in_range(a[i], 8, env)
        assert not proved and not used_guard and iv is None


class TestLinearize:
    def test_plain_affine(self):
        i, j = Var("i"), Var("j")
        env = loop_env([(i, 4), (j, 8)])
        coeffs, const, atom_env = linearize(i * 8 + j + 3, env)
        assert coeffs == {i: 8, j: 1}
        assert const == 3

    def test_fused_div_mod_atoms(self):
        """A fused index ``(f % 3) * 8 + f // 3`` decomposes over div/mod
        atoms with exact bounds rather than falling back to hulls."""
        f = Var("f")
        env = loop_env([(f, 24)])
        lin = linearize((f % 3) * 8 + f // 3, env)
        assert lin is not None
        coeffs, const, atom_env = lin
        assert const == 0
        by_shape = {}
        for atom, c in coeffs.items():
            assert atom_root(atom) is f
            by_shape[atom[0]] = (c, atom_interval(atom, env.copy() | atom_env))
        assert by_shape["mod"] == (8, Interval(0, 2))
        assert by_shape["div"] == (1, Interval(0, 7))

    def test_mod_refines_to_var_when_already_reduced(self):
        """``f % 8`` with f in [0, 8) is f itself — no atom is minted."""
        f = Var("f")
        env = loop_env([(f, 8)])
        coeffs, const, _ = linearize(f % 8, env)
        assert coeffs == {f: 1} and const == 0

    def test_div_of_reduced_var_is_constant_zero(self):
        f = Var("f")
        env = loop_env([(f, 8)])
        coeffs, const, _ = linearize(f // 8, env)
        assert coeffs == {} and const == 0

    def test_products_of_variables_not_affine(self):
        i = Var("i")
        env = loop_env([(i, 8)])
        assert linearize(i * i, env) is None


class TestGuardRefinement:
    def test_residue_guard_caps_split_index(self):
        """The imperfect-split shape: extent 7 split by 4 gives
        ``idx = 4*o + r`` with o in [0,1], r in [0,3] and the residue guard
        ``4*o + r < 7``; the guard is exactly what proves idx < 7."""
        o, r = Var("o"), Var("r")
        env = loop_env([(o, 2), (r, 4)])
        idx = o * 4 + r
        base = expr_interval(idx, env)
        assert base == Interval(0, 7)  # one past the end without the guard

        refined, used = refine_with_guards(idx, base, [idx < 7], env)
        assert used
        assert refined == Interval(0, 6)

        proved, used_guard, iv = prove_in_range(idx, 7, env, guards=[idx < 7])
        assert proved and used_guard and iv.within(0, 6)
        # Without the guard the access is not provable.
        proved, _, _ = prove_in_range(idx, 7, env)
        assert not proved

    def test_guard_scales_through_strided_index(self):
        """A load ``2*(4*o + r) + s`` under the same guard is capped at
        ``2*6 + max(s)`` — the guard composes through the stride."""
        o, r, s = Var("o"), Var("r"), Var("s")
        env = loop_env([(o, 2), (r, 4), (s, 2)])
        guard = o * 4 + r < 7
        idx = (o * 4 + r) * 2 + s
        proved, used_guard, iv = prove_in_range(idx, 14, env, guards=[guard])
        assert proved and used_guard
        assert iv == Interval(0, 13)

    def test_unrelated_guard_does_not_tighten(self):
        o, r, z = Var("o"), Var("r"), Var("z")
        env = loop_env([(o, 2), (r, 4), (z, 3)])
        idx = o * 4 + r
        refined, used = refine_with_guards(idx, expr_interval(idx, env), [z < 2], env)
        assert not used
        proved, _, _ = prove_in_range(idx, 7, env, guards=[z < 2])
        assert not proved
