"""Overlap & dependence analysis: tile disjointness and hazard detection.

Positive proofs run over real tensorized funcs — the VNNI conv (scalar
batch axes), and the WMMA matmul whose 16x16 box tiles interleave in the
flattened address space and therefore exercise the per-dimension
disjointness fallback.  Negative cases rebuild the intrinsic call with a
corrupted operand binding and must flip the proof, not merely warn.
"""

import pytest

from repro.analysis import analyze, analyze_overlap, check_nest_overlap, iter_nests
from repro.core import tensorize
from repro.dsl import expr as E
from repro.tir.stmt import IntrinsicCall, OperandBinding
from tests.conftest import small_conv_hwc, small_matmul_fp16


def _intrinsic_nest(func):
    nests = [n for n in iter_nests(func) if isinstance(n.body, IntrinsicCall)]
    assert len(nests) == 1
    return nests[0]


def _axis(nest, name):
    for var, _ in nest.axes:
        if var.name == name:
            return var
    raise AssertionError(f"no axis named {name!r} in {nest.name}")


def _rebind(call, mutate_output, mutate_acc_read):
    """Rebuild ``call`` transforming the bindings that touch its output."""
    out_b = call.output
    new_out = OperandBinding(
        out_b.intrin_tensor,
        out_b.intrin_indices,
        out_b.program_tensor,
        tuple(mutate_output(i) for i in out_b.program_indices),
    )
    new_inputs = []
    for b in call.inputs:
        if b.program_tensor is out_b.program_tensor:
            b = OperandBinding(
                b.intrin_tensor,
                b.intrin_indices,
                b.program_tensor,
                tuple(mutate_acc_read(i) for i in b.program_indices),
            )
        new_inputs.append(b)
    return IntrinsicCall(
        call.intrin, new_inputs, new_out, call.axes, reads_output=call.reads_output
    )


class TestDisjointnessProofs:
    def test_vnni_conv_tiles_disjoint(self):
        func = tensorize(small_conv_hwc(), "x86.avx512.vpdpbusd").func
        results, diags = analyze_overlap(func)
        assert not diags
        # One store nest (not applicable) and one intrinsic nest (proved).
        assert results.count(True) == 1 and results.count(None) == 1

    def test_reduction_rounds_are_not_hazards(self):
        """Axes absent from the output address (r, s, rc.o) are sequential
        accumulation rounds, not parallel writers — no diagnostic."""
        func = tensorize(small_conv_hwc(), "x86.avx512.vpdpbusd").func
        nest = _intrinsic_nest(func)
        addr_vars = set()
        for idx in nest.body.output.program_indices:
            addr_vars.update(E.free_vars(idx))
        assert any(var not in addr_vars for var, _ in nest.axes)
        disjoint, diags = check_nest_overlap(nest)
        assert disjoint is True and not diags

    def test_wmma_box_tiles_use_per_dimension_fallback(self):
        """The 16x16 WMMA tile interleaves with its neighbours in the
        flattened address space (row stride 32 > tile width 16), so only the
        per-dimension argument proves disjointness — and it must."""
        func = tensorize(
            small_matmul_fp16(), "nvvm.wmma.m16n16k16.mma.row.row.f32.f32"
        ).func
        results, diags = analyze_overlap(func)
        assert not [d for d in diags if d.severity == "error"]
        assert True in results
        assert analyze(func).ok(strict=True)


class TestHazards:
    def test_read_write_hazard_detected(self):
        """Reading the accumulator at a different address than the write is
        a cross-round hazard."""
        func = tensorize(small_conv_hwc(), "x86.avx512.vpdpbusd").func
        nest = _intrinsic_nest(func)
        y = _axis(nest, "y")
        skew = lambda i: E.substitute(i, {y: y // 2})
        bad = _rebind(nest.body, lambda i: i, skew)
        nest.body = bad
        disjoint, diags = check_nest_overlap(nest)
        assert disjoint is False
        assert any("read-write hazard" in d.message for d in diags)

    def test_write_write_hazard_detected(self):
        """Collapsing the y batch axis (y -> y//2) makes neighbouring rounds
        write the same tile: disjointness must prove False, not None."""
        func = tensorize(small_conv_hwc(), "x86.avx512.vpdpbusd").func
        nest = _intrinsic_nest(func)
        y = _axis(nest, "y")
        skew = lambda i: E.substitute(i, {y: y // 2})
        nest.body = _rebind(nest.body, skew, skew)
        disjoint, diags = check_nest_overlap(nest)
        assert disjoint is False
        assert any("write-write hazard" in d.message for d in diags)
        assert all(d.severity == "error" for d in diags)

    def test_data_dependent_address_is_undecidable_not_unsafe(self):
        """A non-affine output address downgrades to a warning — the pass
        must not claim either safety or a proven hazard."""
        func = tensorize(small_conv_hwc(), "x86.avx512.vpdpbusd").func
        nest = _intrinsic_nest(func)
        x = _axis(nest, "x")
        data = func.params[0]
        nonaffine = lambda i: E.substitute(i, {x: data[x, 0, 0]})
        nest.body = _rebind(nest.body, nonaffine, nonaffine)
        disjoint, diags = check_nest_overlap(nest)
        assert disjoint is None
        assert any(
            d.severity == "warning" and "cannot decide" in d.message for d in diags
        )


class TestInitialization:
    def test_uninitialized_accumulator_detected(self):
        from repro.tir import SeqStmt
        from repro.tir.lower import PrimFunc

        func = tensorize(small_conv_hwc(), "x86.avx512.vpdpbusd").func
        assert isinstance(func.body, SeqStmt) and len(func.body.stmts) == 2
        stripped = PrimFunc(func.name, func.params, func.body.stmts[1], func.op)
        _, diags = analyze_overlap(stripped)
        assert any(
            d.severity == "error" and "uninitialized accumulator" in d.message
            for d in diags
        )

    def test_initialized_accumulator_clean(self):
        func = tensorize(small_conv_hwc(), "x86.avx512.vpdpbusd").func
        _, diags = analyze_overlap(func)
        assert not diags
