"""Tests for the metrics registry: disabled-path no-ops, thread safety, gauges."""

import dataclasses
import threading

import pytest

from repro.telemetry import metrics


@pytest.fixture(autouse=True)
def _no_leaked_registry():
    """Every test starts and ends with telemetry disabled."""
    metrics.uninstall()
    yield
    metrics.uninstall()


class TestDisabledPath:
    """With no registry installed, every entry point must be a cheap no-op."""

    def test_active_is_none_by_default(self):
        assert metrics.active() is None

    def test_count_is_noop(self):
        assert metrics.count("tir.plan_compiles") is None

    def test_event_is_noop(self):
        assert metrics.event("workers.restarts", "slot0") is None

    def test_observe_is_noop(self):
        assert metrics.observe("service.request_s", 0.01) is None

    def test_gauge_is_noop(self):
        assert metrics.gauge("x", lambda: 1.0) is None

    def test_snapshot_counters_is_empty(self):
        assert metrics.snapshot_counters() == {}

    def test_register_stats_gauges_is_noop(self):
        @dataclasses.dataclass
        class Stats:
            hits: int = 0

        assert metrics.register_stats_gauges("s", Stats()) is None

    def test_disabled_count_leaves_no_state(self):
        metrics.count("ghost")
        with metrics.collecting() as registry:
            assert registry.counters() == {}


class TestCounters:
    def test_count_and_snapshot(self):
        with metrics.collecting() as registry:
            metrics.count("a")
            metrics.count("a")
            metrics.count("b", 5)
            assert registry.counters() == {"a": 2, "b": 5}
            assert metrics.snapshot_counters() == {"a": 2, "b": 5}

    def test_event_formats_name_only_when_active(self):
        with metrics.collecting() as registry:
            metrics.event("workers.restarts", "slot3")
            assert registry.counters() == {"workers.restarts.slot3": 1}

    def test_collecting_restores_previous(self):
        outer = metrics.install()
        with metrics.collecting() as inner:
            assert metrics.active() is inner
            metrics.count("inner.only")
        assert metrics.active() is outer
        assert "inner.only" not in outer.counters()

    def test_concurrent_increments_are_lossless(self):
        """The canonical lost-update race: N threads x M increments."""
        threads, per_thread = 8, 500
        with metrics.collecting() as registry:

            def bump():
                for _ in range(per_thread):
                    metrics.count("contended")

            workers = [threading.Thread(target=bump) for _ in range(threads)]
            for t in workers:
                t.start()
            for t in workers:
                t.join()
            assert registry.counters()["contended"] == threads * per_thread


class TestGauges:
    def test_gauges_are_lazy(self):
        with metrics.collecting() as registry:
            box = {"v": 1}
            metrics.gauge("box.v", lambda: box["v"])
            box["v"] = 42  # mutated after registration: gauge must see it
            assert registry.gauges() == {"box.v": 42.0}

    def test_broken_and_non_numeric_callbacks_are_skipped(self):
        with metrics.collecting() as registry:
            registry.gauge("boom", lambda: 1 / 0)
            registry.gauge("text", lambda: "nope")
            registry.gauge("flag", lambda: True)
            registry.gauge("ok", lambda: 7)
            assert registry.gauges() == {"ok": 7.0}

    def test_set_gauge(self):
        with metrics.collecting() as registry:
            registry.set_gauge("fixed", 3.5)
            assert registry.gauges() == {"fixed": 3.5}

    def test_register_stats_gauges_tracks_dataclass(self):
        @dataclasses.dataclass
        class Stats:
            hits: int = 0
            rate: float = 0.0
            enabled: bool = True  # bools are flags, not gauges
            name: str = "x"  # non-numeric skipped

        stats = Stats()
        with metrics.collecting() as registry:
            metrics.register_stats_gauges("test.stats", stats)
            stats.hits = 9
            stats.rate = 0.75
            assert registry.gauges() == {
                "test.stats.hits": 9.0,
                "test.stats.rate": 0.75,
            }

    def test_register_stats_gauges_rejects_non_dataclass(self):
        with metrics.collecting() as registry:
            metrics.register_stats_gauges("x", object())
            metrics.register_stats_gauges("x", {"hits": 1})
            assert registry.gauges() == {}


class TestHistograms:
    def test_bucketing_and_sum(self):
        with metrics.collecting() as registry:
            for value in (0.00005, 0.002, 0.002, 20.0):
                metrics.observe("lat_s", value)
            hist = registry.histograms()["lat_s"]
            assert hist["count"] == 4
            assert hist["sum"] == pytest.approx(20.00405)
            counts = hist["counts"]
            boundaries = hist["boundaries"]
            assert counts[0] == 1  # below the first boundary
            assert counts[-1] == 1  # overflow bucket
            assert sum(counts) == 4
            assert len(counts) == len(boundaries) + 1

    def test_snapshot_shape(self):
        with metrics.collecting() as registry:
            metrics.count("c")
            registry.set_gauge("g", 1.0)
            metrics.observe("h", 0.1)
            snap = registry.snapshot()
            assert set(snap) == {"counters", "gauges", "histograms"}
            assert snap["counters"] == {"c": 1}
            assert snap["gauges"] == {"g": 1.0}
            assert snap["histograms"]["h"]["count"] == 1
