"""Tests for the span tracer: null path, fake-clock math, nesting, rendering."""

import json
import threading

import pytest

from repro.telemetry import trace
from repro.telemetry.trace import NULL_SPAN, SpanRecord, Tracer


@pytest.fixture(autouse=True)
def _no_leaked_tracer():
    trace.uninstall()
    yield
    trace.uninstall()


class FakeClock:
    """Deterministic clock: each call returns the next scripted instant."""

    def __init__(self, *instants):
        self.instants = list(instants)

    def __call__(self):
        return self.instants.pop(0)


class TestDisabledPath:
    def test_span_returns_shared_null_singleton(self):
        assert trace.span("anything", key="value") is NULL_SPAN
        assert trace.span("other") is NULL_SPAN  # one object, not one per call

    def test_null_span_is_inert(self):
        with trace.span("x") as sp:
            assert sp is NULL_SPAN
            assert sp.set(outcome="ignored") is NULL_SPAN

    def test_null_span_does_not_swallow_exceptions(self):
        with pytest.raises(ValueError):
            with trace.span("x"):
                raise ValueError("must propagate")


class TestSpanMath:
    def test_single_span_duration(self):
        tracer = Tracer(clock=FakeClock(10.0, 12.5))
        with trace.tracing(tracer):
            with trace.span("solo"):
                pass
        (record,) = tracer.finished()
        assert record.name == "solo"
        assert record.start_s == 10.0
        assert record.dur_s == pytest.approx(2.5)
        assert record.excl_s == pytest.approx(2.5)
        assert record.parent_id is None

    def test_nested_exclusive_time(self):
        # outer enters at t=0, inner runs [1, 2], outer exits at t=3:
        # outer wall = 3, outer exclusive = 3 - 1 = 2.
        tracer = Tracer(clock=FakeClock(0.0, 1.0, 2.0, 3.0))
        with trace.tracing(tracer):
            with trace.span("outer"):
                with trace.span("inner"):
                    pass
        inner, outer = tracer.finished()  # children finish first
        assert inner.name == "inner" and outer.name == "outer"
        assert inner.parent_id == outer.span_id
        assert inner.dur_s == pytest.approx(1.0)
        assert inner.excl_s == pytest.approx(1.0)
        assert outer.dur_s == pytest.approx(3.0)
        assert outer.excl_s == pytest.approx(2.0)

    def test_sibling_children_both_subtract(self):
        # outer [0, 10]; children run [1, 3] and [4, 9]: excl = 10 - 2 - 5.
        tracer = Tracer(clock=FakeClock(0.0, 1.0, 3.0, 4.0, 9.0, 10.0))
        with trace.tracing(tracer):
            with trace.span("outer"):
                with trace.span("a"):
                    pass
                with trace.span("b"):
                    pass
        by_name = {r.name: r for r in tracer.finished()}
        assert by_name["outer"].excl_s == pytest.approx(3.0)
        assert by_name["a"].parent_id == by_name["outer"].span_id
        assert by_name["b"].parent_id == by_name["outer"].span_id

    def test_grandchild_subtracts_from_parent_not_grandparent(self):
        # root [0, 10] > mid [1, 9] > leaf [2, 8]:
        # leaf excl = 6; mid excl = 8 - 6 = 2; root excl = 10 - 8 = 2.
        tracer = Tracer(clock=FakeClock(0.0, 1.0, 2.0, 8.0, 9.0, 10.0))
        with trace.tracing(tracer):
            with trace.span("root"):
                with trace.span("mid"):
                    with trace.span("leaf"):
                        pass
        by_name = {r.name: r for r in tracer.finished()}
        assert by_name["leaf"].excl_s == pytest.approx(6.0)
        assert by_name["mid"].excl_s == pytest.approx(2.0)
        assert by_name["root"].excl_s == pytest.approx(2.0)

    def test_set_merges_attrs(self):
        tracer = Tracer(clock=FakeClock(0.0, 1.0))
        with trace.tracing(tracer):
            with trace.span("s", func="conv") as sp:
                sp.set(outcome="promoted", trials=4)
        (record,) = tracer.finished()
        assert record.attrs == {"func": "conv", "outcome": "promoted", "trials": 4}

    def test_threads_do_not_parent_each_other(self):
        tracer = Tracer()
        with trace.tracing(tracer):
            with trace.span("main.outer"):
                worker = threading.Thread(
                    target=lambda: trace.span("worker.root").__enter__().__exit__()
                )
                worker.start()
                worker.join()
        by_name = {r.name: r for r in tracer.finished()}
        # The worker's span opened while main held a span, but stacks are
        # per-thread: it must be a root, not a child of main.outer.
        assert by_name["worker.root"].parent_id is None


class TestExportAndRender:
    def _sample(self):
        tracer = Tracer(clock=FakeClock(0.0, 1.0, 2.0, 3.0))
        with trace.tracing(tracer):
            with trace.span("outer", func="f"):
                with trace.span("inner"):
                    pass
        return tracer

    def test_export_jsonl_round_trip(self, tmp_path):
        tracer = self._sample()
        out = tmp_path / "spans.jsonl"
        assert tracer.export_jsonl(str(out)) == 2
        lines = [json.loads(line) for line in out.read_text().splitlines()]
        assert {line["name"] for line in lines} == {"inner", "outer"}
        assert all(
            set(line) >= {"span_id", "parent_id", "dur_s", "excl_s", "attrs"}
            for line in lines
        )

    def test_format_span_tree_indents_children(self):
        rendered = trace.format_span_tree(self._sample().finished())
        lines = rendered.splitlines()
        assert lines[0].startswith("outer")
        assert lines[1].startswith("  inner")
        assert "wall=3000.000ms" in lines[0]
        assert "excl=2000.000ms" in lines[0]
        assert "[func=f]" in lines[0]

    def test_top_spans_ranks_by_exclusive(self):
        rows = trace.top_spans(self._sample().finished())
        assert rows[0][0] == "outer"  # excl 2.0 beats inner's 1.0
        assert rows[0][1] == 1
        assert rows[0][2] == pytest.approx(2.0)
        assert rows[0][3] == pytest.approx(3.0)

    def test_orphan_parents_render_as_roots(self):
        record = SpanRecord(
            span_id=7, parent_id=99, name="orphan", start_s=0.0,
            dur_s=1.0, excl_s=1.0, thread="t",
        )
        assert trace.format_span_tree([record]).startswith("orphan")

    def test_clear(self):
        tracer = self._sample()
        tracer.clear()
        assert tracer.finished() == []

    def test_tracing_restores_previous(self):
        outer = trace.install()
        with trace.tracing() as inner:
            assert trace.active() is inner
        assert trace.active() is outer
