"""Tests for the ``python -m repro query`` CLI (plain-table path, no rich)."""

import json

import pytest

from repro.telemetry import trace
from repro.telemetry.query import main
from repro.telemetry.resultsdb import ResultsDB


@pytest.fixture
def db_path(tmp_path):
    path = str(tmp_path / "results.db")
    with ResultsDB(path) as db:
        tracer = trace.Tracer()
        with trace.tracing(tracer):
            with trace.span("bench.table1"):
                with trace.span("tir.compile_plan", func="conv"):
                    pass
        db.record_run(
            "compile_time",
            {"benchmark": "compile_time", "table1": [{"vector_s": 0.5}]},
            label="first",
            spans=tracer.finished(),
        )
        db.record_run(
            "compile_time",
            {"benchmark": "compile_time", "table1": [{"vector_s": 0.4}]},
            label="second",
        )
        db.record_verdicts(1, [("table1[0].vector_s", "lower_is_better", True, 0.4, 0.5)])
    return path


class TestRuns:
    def test_table_lists_both_runs(self, db_path, capsys):
        assert main(["runs", "--db", db_path]) == 0
        out = capsys.readouterr().out
        assert "first" in out and "second" in out
        assert "compile_time" in out

    def test_kind_filter_and_json(self, db_path, capsys):
        assert main(["runs", "--db", db_path, "--kind", "service", "--format", "json"]) == 0
        assert json.loads(capsys.readouterr().out) == []

    def test_csv(self, db_path, capsys):
        assert main(["runs", "--db", db_path, "--format", "csv"]) == 0
        header = capsys.readouterr().out.splitlines()[0]
        assert header.startswith("id,kind,label,when")


class TestTrend:
    def test_metric_trajectory_with_delta(self, db_path, capsys):
        assert main(["trend", "table1[0].vector_s", "--db", db_path]) == 0
        out = capsys.readouterr().out
        assert "0.5" in out and "0.4" in out
        assert "-20.0%" in out  # delta vs the previous run

    def test_list_paths(self, db_path, capsys):
        assert main(["trend", "--list", "--db", db_path]) == 0
        assert "table1[0].vector_s" in capsys.readouterr().out

    def test_no_metric_defaults_to_listing(self, db_path, capsys):
        assert main(["trend", "--db", db_path]) == 0
        assert "table1[0].vector_s" in capsys.readouterr().out


class TestSpans:
    def test_top_spans_defaults_to_latest_run_with_spans_absent(self, db_path, capsys):
        # latest run (id 2) has no spans: empty summary, still exit 0
        assert main(["spans", "--db", db_path]) == 0

    def test_top_spans_for_run(self, db_path, capsys):
        assert main(["spans", "--run", "1", "--db", db_path]) == 0
        out = capsys.readouterr().out
        assert "bench.table1" in out and "tir.compile_plan" in out

    def test_tree_preserves_nesting(self, db_path, capsys):
        assert main(["spans", "--run", "1", "--tree", "--db", db_path]) == 0
        lines = capsys.readouterr().out.splitlines()
        (parent_line,) = [l for l in lines if l.startswith("bench.table1")]
        (child_line,) = [l for l in lines if "tir.compile_plan" in l]
        assert child_line.startswith("  ")  # indented under its parent
        assert "func=conv" in child_line

    def test_empty_db_is_a_clean_error(self, tmp_path, capsys):
        path = str(tmp_path / "empty.db")
        ResultsDB(path).close()
        assert main(["spans", "--db", path]) != 0
        assert "no recorded runs" in capsys.readouterr().err


class TestVerdicts:
    def test_verdicts_render(self, db_path, capsys):
        assert main(["verdicts", "--db", db_path]) == 0
        out = capsys.readouterr().out
        assert "table1[0].vector_s" in out and "PASS" in out


class TestEntryPoint:
    def test_help_exits_zero(self, capsys):
        assert main(["--help"]) == 0
        assert "trend" in capsys.readouterr().out

    def test_unknown_subcommand_fails(self, capsys):
        assert main(["nope"]) != 0

    def test_module_dispatch(self, db_path):
        """``python -m repro query`` must work without PYTHONPATH tricks
        beyond src on sys.path (as the CI job invokes it)."""
        import os
        import subprocess
        import sys

        env = dict(os.environ, PYTHONPATH="src")
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "query", "runs", "--db", db_path],
            capture_output=True,
            text=True,
            cwd=os.path.join(os.path.dirname(__file__), os.pardir, os.pardir),
        )
        assert proc.returncode == 0, proc.stderr
        assert "compile_time" in proc.stdout
