"""Tests for the sqlite results store: sanitation, round-trips, trends."""

import json

import pytest

from repro.telemetry import trace
from repro.telemetry.resultsdb import (
    ResultsDB,
    json_safe,
    numeric_leaves,
    record_bench,
    run_metadata,
)


@pytest.fixture
def db(tmp_path):
    with ResultsDB(str(tmp_path / "results.db")) as handle:
        yield handle


class TestJsonSafe:
    def test_non_finite_floats_become_none(self):
        data = {"nan": float("nan"), "inf": float("inf"), "ninf": float("-inf")}
        assert json_safe(data) == {"nan": None, "inf": None, "ninf": None}

    def test_result_round_trips_strict_json(self):
        data = {
            "t": [1, 2.5, float("nan")],
            "nested": {"x": float("inf"), "ok": "text", "flag": True},
        }
        safe = json_safe(data)
        # allow_nan=False is what sqlite consumers effectively require:
        # the sanitized payload must never trip it.
        encoded = json.dumps(safe, allow_nan=False)
        assert json.loads(encoded) == safe

    def test_tuples_become_lists_and_keys_become_strings(self):
        assert json_safe({1: (1, 2)}) == {"1": [1, 2]}

    def test_unknown_objects_stringify(self):
        class Odd:
            def __repr__(self):
                return "<odd>"

        assert json_safe({"o": Odd()}) == {"o": "<odd>"}


class TestNumericLeaves:
    def test_path_syntax_matches_check_regression(self):
        """The DB and the gate must address metrics with identical paths."""
        import importlib.util
        import pathlib

        spec = importlib.util.spec_from_file_location(
            "check_regression",
            pathlib.Path(__file__).resolve().parents[2]
            / "benchmarks"
            / "check_regression.py",
        )
        gate = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(gate)
        payload = {"table1": [{"vector_s": 0.5, "label": "c1"}], "n": 3}
        ours = dict(numeric_leaves(payload))
        theirs = dict(gate._numeric_leaves(payload))
        assert ours == theirs == {"table1[0].vector_s": 0.5, "n": 3.0}

    def test_skips_bools_and_non_finite(self):
        payload = {"flag": True, "bad": float("nan"), "ok": 1}
        assert dict(numeric_leaves(payload)) == {"ok": 1.0}


class TestResultsDB:
    def test_record_run_round_trip_with_non_finite(self, db):
        payload = {
            "benchmark": "compile_time",
            "timing_s": 1.25,
            "bad_ratio": float("nan"),
            "worse": float("inf"),
            "table1": [{"vector_s": 0.5}],
        }
        run_id = db.record_run("compile_time", payload, label="unit")
        stored = db.payload(run_id)
        assert stored["timing_s"] == 1.25
        assert stored["bad_ratio"] is None  # NaN sanitized on the way in
        assert stored["worse"] is None
        paths = db.metric_paths()
        assert "timing_s" in paths and "table1[0].vector_s" in paths
        assert "bad_ratio" not in paths  # non-finite never becomes a metric

    def test_runs_lists_most_recent_first_with_counts(self, db):
        first = db.record_run("compile_time", {"a": 1})
        second = db.record_run("service", {"b": 2, "c": 3})
        rows = db.runs()
        assert [row["id"] for row in rows] == [second, first]
        assert rows[0]["metrics"] == 2
        assert db.runs(kind="service")[0]["id"] == second
        assert db.latest_run_id() == second
        assert db.latest_run_id(kind="compile_time") == first
        assert db.latest_run_id(kind="nope") is None

    def test_run_rows_carry_metadata(self, db):
        run_id = db.record_run(
            "compile_time",
            {"a": 1},
            metadata={"git_rev": "abc123", "host": "h", "python": "3.11",
                      "toolchain": "cc"},
        )
        (row,) = [r for r in db.runs() if r["id"] == run_id]
        assert row["git_rev"] == "abc123"
        assert row["toolchain"] == "cc"

    def test_metric_trend_is_oldest_first(self, db):
        for value in (1.0, 2.0, 3.0):
            db.record_run("compile_time", {"t_s": value})
        points = db.metric_trend("t_s", kind="compile_time", last=10)
        assert [p["value"] for p in points] == [1.0, 2.0, 3.0]

    def test_metric_trend_respects_last_window(self, db):
        for value in range(6):
            db.record_run("compile_time", {"t_s": float(value)})
        points = db.metric_trend("t_s", last=3)
        assert [p["value"] for p in points] == [3.0, 4.0, 5.0]

    def test_metric_trend_filters_kind(self, db):
        db.record_run("compile_time", {"t_s": 1.0})
        db.record_run("service", {"t_s": 99.0})
        points = db.metric_trend("t_s", kind="compile_time")
        assert [p["value"] for p in points] == [1.0]

    def test_spans_round_trip_preserves_nesting(self, db):
        tracer = trace.Tracer()
        with trace.tracing(tracer):
            with trace.span("outer"):
                with trace.span("inner", outcome="promoted"):
                    pass
        run_id = db.record_run("compile_time", {"a": 1}, spans=tracer.finished())
        rows = db.spans(run_id)
        by_name = {row["name"]: row for row in rows}
        assert by_name["inner"]["parent_id"] == by_name["outer"]["span_id"]
        assert by_name["inner"]["attrs"] == {"outcome": "promoted"}
        top = db.top_spans(run_id)
        assert {row["name"] for row in top} == {"outer", "inner"}

    def test_verdicts_round_trip(self, db):
        run_id = db.record_run("compile_time", {"a": 1})
        db.record_verdicts(
            run_id,
            [("t_s", "lower_is_better", True, 1.0, 1.1),
             ("native_runs", "never_lower", False, 2.0, 5.0)],
        )
        rows = db.verdicts()
        assert len(rows) == 2
        assert rows[0]["metric"] == "native_runs" and rows[0]["ok"] is False
        assert rows[1]["metric"] == "t_s" and rows[1]["ok"] is True

    def test_service_snapshot(self, db):
        db.record_service_snapshot("127.0.0.1:1234", {"uptime_s": 5.0})
        # snapshots land in their own table, not in runs
        assert db.runs() == []

    def test_record_bench_helper(self, tmp_path):
        path = str(tmp_path / "bench.db")
        run_id = record_bench("compile_time", {"x": 1}, db_path=path, label="l")
        with ResultsDB(path) as db:
            assert db.payload(run_id) == {"x": 1}
            assert db.runs()[0]["label"] == "l"


class TestRunMetadata:
    def test_has_expected_keys_and_is_stringy(self):
        meta = run_metadata()
        assert set(meta) == {"git_rev", "host", "python", "toolchain"}
        assert all(isinstance(v, str) and v for v in meta.values())


class TestCheckRegressionHistory:
    """End-to-end: the gate's --history mode against a populated DB."""

    def _gate(self):
        import importlib.util
        import pathlib

        spec = importlib.util.spec_from_file_location(
            "check_regression_e2e",
            pathlib.Path(__file__).resolve().parents[2]
            / "benchmarks"
            / "check_regression.py",
        )
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        return module

    def test_history_reports_trend_and_keeps_exit_code(self, tmp_path, capsys):
        gate = self._gate()
        db_path = str(tmp_path / "results.db")
        with ResultsDB(db_path) as db:
            for value in (1.0, 1.2, 1.1):
                db.record_run(
                    "compile_time", {"benchmark": "compile_time", "lowering_s": value}
                )
        fresh = tmp_path / "fresh.json"
        base = tmp_path / "base.json"
        fresh.write_text(json.dumps({"benchmark": "compile_time", "lowering_s": 1.1}))
        base.write_text(json.dumps({"benchmark": "compile_time", "lowering_s": 1.0}))
        rc = gate.main(
            [str(fresh), str(base), "--history", "5", "--results-db", db_path]
        )
        out = capsys.readouterr().out
        assert rc == 0  # within tolerance: exit semantics unchanged
        assert "HISTORY lowering_s" in out
        assert "3 run(s)" in out
        # verdicts were persisted against the latest matching run
        with ResultsDB(db_path) as db:
            assert any(v["metric"] == "lowering_s" for v in db.verdicts())

    def test_history_skips_gracefully_without_db(self, tmp_path, capsys):
        gate = self._gate()
        fresh = tmp_path / "fresh.json"
        base = tmp_path / "base.json"
        fresh.write_text(json.dumps({"benchmark": "compile_time", "lowering_s": 9.0}))
        base.write_text(json.dumps({"benchmark": "compile_time", "lowering_s": 1.0}))
        missing = str(tmp_path / "absent.db")
        rc = gate.main(
            [str(fresh), str(base), "--history", "3", "--results-db", missing]
        )
        out = capsys.readouterr().out
        assert rc == 1  # 9x blowup still fails, with or without a DB
        assert "HISTORY skipped" in out
