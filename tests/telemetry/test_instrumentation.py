"""End-to-end instrumentation tests: the hooks left inside the compiler,
the distributed tuner, and the service must produce real telemetry when a
sink is installed — and leave no trace when one is not."""

import time

import pytest

from repro.rewriter import ShardedTuningStore
from repro.rewriter.workers import DistributedTuner, tasks_from_layers
from repro.service import ServiceClient, TuningService
from repro.telemetry import metrics, trace
from repro.tir import PlanCache, compile_plan, lower
from repro.workloads.table1 import TABLE1_LAYERS
from tests.conftest import small_conv_hwc


@pytest.fixture(autouse=True)
def _clean_sinks():
    metrics.uninstall()
    trace.uninstall()
    yield
    metrics.uninstall()
    trace.uninstall()


class TestCompilerInstrumentation:
    def test_compile_plan_emits_span_and_counter(self):
        func = lower(small_conv_hwc())
        with metrics.collecting() as registry, trace.tracing() as tracer:
            compile_plan(func)
        assert registry.counters()["tir.plan_compiles"] == 1
        spans = [r for r in tracer.finished() if r.name == "tir.compile_plan"]
        assert len(spans) == 1
        assert spans[0].attrs["func"] == func.name
        assert "vector_nests" in spans[0].attrs

    def test_plan_cache_hit_miss_counters(self):
        func = lower(small_conv_hwc())
        cache = PlanCache()
        with metrics.collecting() as registry:
            cache.get_or_compile(func)
            cache.get_or_compile(func)
        counters = registry.counters()
        assert counters["tir.plan_cache.misses"] == 1
        assert counters["tir.plan_cache.hits"] == 1

    def test_disabled_compile_leaves_no_state(self):
        """The permanent hooks must be invisible without a sink."""
        compile_plan(lower(small_conv_hwc()))
        with metrics.collecting() as registry:
            assert registry.counters() == {}
        assert trace.active() is None


class TestDistributedTunerInstrumentation:
    def test_run_records_counters_gauges_and_span(self, tmp_path):
        store = ShardedTuningStore(tmp_path / "s", shards=4)
        tasks = tasks_from_layers(TABLE1_LAYERS[:2])
        with metrics.collecting() as registry, trace.tracing() as tracer:
            report = DistributedTuner(store, workers=2).run(tasks)
        counters = registry.counters()
        assert counters["workers.runs"] == 1
        assert counters["workers.tasks_completed"] == len(tasks)
        # The report dataclass is live behind the gauges.
        gauges = registry.gauges()
        assert gauges["workers.report.tasks"] == float(len(tasks))
        assert gauges["workers.report.elapsed_s"] == report.elapsed_s
        (run_span,) = [r for r in tracer.finished() if r.name == "workers.run"]
        assert run_span.attrs["tasks"] == len(tasks)
        assert run_span.attrs["crashes"] == report.crashes


class TestServiceInstrumentation:
    def test_stats_and_health_serve_identical_shape(self, tmp_path):
        with TuningService(tmp_path / "store", speculative=False) as svc:
            with ServiceClient(svc.address) as client:
                stats = client.stats()
                health = client.health()
        assert set(stats) == set(health)
        for payload in (stats, health):
            assert payload["uptime_s"] >= 0
            assert payload["telemetry"] == {}  # no sink installed

    def test_uptime_is_monotonic_across_calls(self, tmp_path):
        with TuningService(tmp_path / "store", speculative=False) as svc:
            with ServiceClient(svc.address) as client:
                first = client.stats()["uptime_s"]
                time.sleep(0.05)
                second = client.stats()["uptime_s"]
        assert second > first

    def test_telemetry_counters_ride_the_wire(self, tmp_path):
        with metrics.collecting():
            with TuningService(tmp_path / "store", speculative=False) as svc:
                with ServiceClient(svc.address) as client:
                    client.ping()
                    stats = client.stats()
        telemetry = stats["telemetry"]
        assert telemetry["service.requests.ping"] >= 1
        assert telemetry["service.requests.stats"] >= 1

    def test_request_latency_histogram(self, tmp_path):
        with metrics.collecting() as registry:
            with TuningService(tmp_path / "store", speculative=False) as svc:
                with ServiceClient(svc.address) as client:
                    client.ping()
                    client.stats()
        hist = registry.histograms()["service.request_s"]
        assert hist["count"] >= 2
        assert hist["sum"] > 0

    def test_service_gauges_track_live_stats(self, tmp_path):
        with metrics.collecting() as registry:
            with TuningService(tmp_path / "store", speculative=False) as svc:
                with ServiceClient(svc.address) as client:
                    client.ping()
                    gauges = registry.gauges()
        # ServiceStats' numeric fields are exposed as live gauges; the
        # dict-valued request tally is (correctly) not.
        assert gauges["service.protocol_errors"] == 0.0
        assert "service.coalesced_waiters" in gauges
        assert "service.requests" not in gauges
