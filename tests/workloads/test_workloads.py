"""Tests for the workload generators and Table I."""

import pytest

from repro.workloads import (
    TABLE1_EXPECTED_OHW,
    TABLE1_LAYERS,
    Conv2DParams,
    conv2d_gemm,
    conv2d_hwc,
    conv2d_nchwc,
    conv3d_from_conv2d,
    conv3d_ncdhwc,
    dense_int8,
    DenseParams,
    matmul_fp16,
    matmul_int8,
    table1_as_rows,
    table1_layer,
)


class TestConv2DParams:
    def test_output_shape_and_macs(self):
        p = Conv2DParams(in_channels=8, in_height=10, in_width=10, out_channels=16, kernel=3)
        assert p.out_height == 8 and p.out_width == 8
        assert p.macs == 8 * 8 * 16 * 8 * 9

    def test_stride_and_padding(self):
        p = Conv2DParams(
            in_channels=8, in_height=14, in_width=14, out_channels=16, kernel=3, stride=2, padding=1
        )
        assert p.out_height == 7


class TestTable1:
    def test_sixteen_layers(self):
        assert len(TABLE1_LAYERS) == 16

    def test_output_sizes_match_paper(self):
        """The OHW column of Table I must be reproduced by the shape formula."""
        for index, expected_ohw in TABLE1_EXPECTED_OHW.items():
            layer = table1_layer(index)
            assert layer.out_height == expected_ohw, f"layer {index}"
            assert layer.out_width == expected_ohw

    def test_rows_export(self):
        rows = table1_as_rows()
        assert len(rows) == 16
        assert rows[0]["C"] == 288 and rows[0]["stride"] == 2
        assert all(row["MACs"] > 0 for row in rows)

    def test_out_of_range_index(self):
        with pytest.raises(IndexError):
            table1_layer(17)


class TestGenerators:
    def test_hwc_structure(self):
        p = Conv2DParams(in_channels=8, in_height=8, in_width=8, out_channels=16, kernel=3)
        t = conv2d_hwc(p)
        assert t.shape == (6, 6, 16)
        assert len(t.op.reduce_axes) == 3

    def test_hwc_rejects_stride(self):
        p = Conv2DParams(in_channels=8, in_height=8, in_width=8, out_channels=16, kernel=3, stride=2)
        with pytest.raises(ValueError):
            conv2d_hwc(p)

    def test_nchwc_blocking_and_padding(self):
        p = Conv2DParams(in_channels=30, in_height=9, in_width=9, out_channels=40, kernel=3)
        t = conv2d_nchwc(p, lanes=16, reduction=4)
        # output: (ceil(40/16), OH, OW, 16)
        assert t.shape == (3, 7, 7, 16)
        data, weight = t.op.input_tensors if t.op.input_tensors[0].name == "data" else t.op.input_tensors[::-1]
        assert data.shape[0] == 8 and data.shape[-1] == 4  # 30 -> 32 channels

    def test_nchwc_stride(self):
        p = Conv2DParams(in_channels=16, in_height=15, in_width=15, out_channels=16, kernel=3, stride=2)
        t = conv2d_nchwc(p)
        assert t.shape[1] == p.out_height

    def test_gemm_formulation_padded_to_tiles(self):
        p = Conv2DParams(in_channels=80, in_height=9, in_width=9, out_channels=100, kernel=3)
        t = conv2d_gemm(p, tile=16)
        m, n = t.shape
        assert m % 16 == 0 and n % 16 == 0
        assert m >= p.out_height * p.out_width and n >= p.out_channels

    def test_conv3d_conversion(self):
        p = table1_layer(5)
        c3 = conv3d_from_conv2d(p, depth=8)
        assert c3.in_depth == 8
        assert c3.macs > p.macs
        t = conv3d_ncdhwc(c3)
        assert t.shape[0] == -(-p.out_channels // 16)
        assert len(t.op.reduce_axes) == 5

    def test_dense_and_matmul(self):
        d = dense_int8(DenseParams(batch=1, in_features=100, out_features=30))
        assert d.shape == (1, 32)  # padded to lanes
        mm = matmul_int8(4, 16, 8)
        assert mm.dtype.name == "int32"
        mf = matmul_fp16(16, 16, 16)
        assert mf.dtype.name == "float32"
