"""Unit tests for the scheduling primitives."""

import pytest

from repro.dsl import Var, compute, placeholder
from repro.schedule import Annotation, create_schedule
from tests.conftest import small_conv_hwc


def _elementwise(n=24):
    a = placeholder((n,), "float32", "a")
    return compute((n,), lambda i: a[i] + 1.0, name="ew")


class TestSplitFuseReorder:
    def test_split_extents(self):
        sch = create_schedule(_elementwise(24))
        st = sch.stage
        (i,) = [st[ax] for ax in st.op.axes]
        outer, inner = st.split(i, 8)
        assert outer.extent == 3 and inner.extent == 8
        assert st.leaf_vars == [outer, inner]
        assert not st.has_imperfect_split

    def test_imperfect_split_flagged(self):
        sch = create_schedule(_elementwise(10))
        st = sch.stage
        outer, inner = st.split(st[st.op.axes[0]], 4)
        assert outer.extent == 3 and inner.extent == 4
        assert st.has_imperfect_split
        assert len(st.guards()) == 1

    def test_split_invalid_factor(self):
        sch = create_schedule(_elementwise())
        with pytest.raises(ValueError):
            sch.stage.split(sch.stage.leaf_vars[0], 0)

    def test_split_non_leaf_rejected(self):
        sch = create_schedule(_elementwise(24))
        st = sch.stage
        loop = st.leaf_vars[0]
        st.split(loop, 8)
        with pytest.raises(ValueError):
            st.split(loop, 2)

    def test_fuse_requires_adjacency_and_same_kind(self):
        conv = small_conv_hwc()
        sch = create_schedule(conv)
        st = sch.stage
        x, y, k = [st[ax] for ax in conv.op.axes]
        fused = st.fuse(x, y)
        assert fused.extent == 36
        r = st[conv.op.reduce_axes[0]]
        with pytest.raises(ValueError):
            st.fuse(k, r)  # data-parallel with reduce

    def test_fuse_non_adjacent_rejected(self):
        conv = small_conv_hwc()
        st = create_schedule(conv).stage
        x, y, k = [st[ax] for ax in conv.op.axes]
        with pytest.raises(ValueError):
            st.fuse(x, k)

    def test_reorder_total_order(self):
        conv = small_conv_hwc()
        st = create_schedule(conv).stage
        x, y, k = [st[ax] for ax in conv.op.axes]
        st.reorder(k, x, y)
        assert st.leaf_vars[:3] == [k, x, y]

    def test_reorder_duplicate_rejected(self):
        conv = small_conv_hwc()
        st = create_schedule(conv).stage
        x = st[conv.op.axes[0]]
        with pytest.raises(ValueError):
            st.reorder(x, x)


class TestAnnotations:
    def test_parallel_unroll_vectorize(self):
        conv = small_conv_hwc()
        st = create_schedule(conv).stage
        x, y, k = [st[ax] for ax in conv.op.axes]
        st.parallel(x)
        st.unroll(y)
        st.vectorize(k)
        assert x.annotation == Annotation.PARALLEL
        assert y.annotation == Annotation.UNROLL
        assert k.annotation == Annotation.VECTORIZE

    def test_parallel_reduce_rejected(self):
        conv = small_conv_hwc()
        st = create_schedule(conv).stage
        r = st[conv.op.reduce_axes[0]]
        with pytest.raises(ValueError):
            st.parallel(r)

    def test_bind_gpu_tags(self):
        conv = small_conv_hwc()
        st = create_schedule(conv).stage
        x, y, _ = [st[ax] for ax in conv.op.axes]
        st.bind(x, "blockIdx.x")
        st.bind(y, "threadIdx.x")
        assert x.annotation == Annotation.BLOCK_X
        with pytest.raises(ValueError):
            st.bind(y, "warpIdx.q")

    def test_tensorize_records_intrinsic(self):
        from repro.isa import get_intrinsic

        conv = small_conv_hwc()
        st = create_schedule(conv).stage
        k = st[conv.op.axes[2]]
        st.tensorize(k, get_intrinsic("x86.avx512.vpdpbusd"))
        assert st.tensorize_loop is k
        assert k.pragmas["tensorize"] == "x86.avx512.vpdpbusd"


class TestIndexReconstruction:
    def test_split_reconstruction(self):
        sch = create_schedule(_elementwise(24))
        st = sch.stage
        axis = st.op.axes[0]
        outer, inner = st.split(st[axis], 8)
        exprs = st.index_expressions()
        from repro.dsl import expr_to_str

        text = expr_to_str(exprs[axis.var])
        assert outer.name in text and inner.name in text and "8" in text

    def test_fuse_reconstruction_contains_div_mod(self):
        conv = small_conv_hwc()
        st = create_schedule(conv).stage
        x, y, _ = [st[ax] for ax in conv.op.axes]
        st.fuse(x, y)
        exprs = st.index_expressions()
        from repro.dsl import expr_to_str

        assert "//" in expr_to_str(exprs[conv.op.axes[0].var])
        assert "%" in expr_to_str(exprs[conv.op.axes[1].var])

    def test_schedule_lookup_by_tensor(self):
        conv = small_conv_hwc()
        sch = create_schedule(conv)
        assert sch[conv] is sch.stage
