"""Property-based tests: schedule transformations never change what is computed.

The invariant is checked end-to-end: lower an elementwise/reduction operation
with a randomly transformed schedule, interpret it, and compare against the
untransformed result.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dsl import cast, compute, placeholder, reduce_axis, sum_reduce
from repro.schedule import create_schedule
from repro.tir import alloc_buffers, lower, run


def _build_matmul(m, n, k):
    a = placeholder((m, k), "uint8", "A")
    b = placeholder((n, k), "int8", "B")
    rk = reduce_axis(0, k, "rk")
    return compute(
        (m, n),
        lambda i, j: sum_reduce(cast("int32", a[i, rk]) * cast("int32", b[j, rk]), rk),
        name="mm",
    )


@st.composite
def matmul_and_schedule(draw):
    m = draw(st.integers(1, 6))
    n = draw(st.integers(1, 8))
    k = draw(st.integers(1, 8))
    out = _build_matmul(m, n, k)
    sch = create_schedule(out)
    stage = sch.stage
    # A random sequence of splits and a final reorder/annotation choice.
    n_splits = draw(st.integers(0, 3))
    for _ in range(n_splits):
        leaves = list(stage.leaf_vars)
        loop = draw(st.sampled_from(leaves))
        factor = draw(st.integers(1, max(1, loop.extent)))
        stage.split(loop, factor)
    if draw(st.booleans()):
        leaves = list(stage.leaf_vars)
        perm = draw(st.permutations(leaves))
        # Keep reduce loops in a valid position relative to each other is not
        # required by the lowering (init nest handles ordering), so any
        # permutation is legal.
        stage.reorder(*perm)
    if draw(st.booleans()):
        dp = stage.data_parallel_leaves()
        if dp:
            stage.unroll(draw(st.sampled_from(dp)))
    return out, sch


@given(matmul_and_schedule())
@settings(max_examples=40, deadline=None)
def test_schedule_transformations_preserve_semantics(pair):
    out, sch = pair
    reference_func = lower(out.op)
    transformed_func = lower(sch)

    rng = np.random.default_rng(0)
    ref_buffers = alloc_buffers(reference_func, rng)
    ref = run(reference_func, ref_buffers)

    buffers = {}
    ref_by_name = {t.name: arr for t, arr in ref_buffers.items()}
    for tensor in transformed_func.params:
        buffers[tensor] = np.array(ref_by_name[tensor.name], copy=True)
    buffers[transformed_func.output][:] = 0
    got = run(transformed_func, buffers)
    assert np.array_equal(ref, got)


@given(st.integers(2, 40), st.integers(1, 40))
@settings(max_examples=60, deadline=None)
def test_split_covers_iteration_domain(extent, factor):
    """outer*factor + inner covers [0, extent) exactly once (with guards)."""
    a = placeholder((extent,), "int32", "a")
    out = compute((extent,), lambda i: a[i] + 1, name="inc")
    sch = create_schedule(out)
    stage = sch.stage
    stage.split(stage[out.op.axes[0]], factor)
    func = lower(sch)
    buffers = alloc_buffers(func, np.random.default_rng(1))
    result = run(func, buffers)
    expected = buffers[a] + 1
    assert np.array_equal(result, expected)
