"""Tests of the tensorized-instruction descriptions and their hardware models.

The key invariant: the hand-written numpy "hardware model" of every
instruction must agree exactly with interpreting the instruction's own
tensor-DSL description (Figure 4) — i.e. the description *is* the semantics.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa import (
    TensorIntrinsic,
    get_intrinsic,
    intrinsics_for_target,
    list_intrinsics,
    register_intrinsic,
)

_TENSORIZED = [
    "x86.avx512.vpdpbusd",
    "x86.avx512.vpdpwssd",
    "arm.neon.sdot",
    "arm.neon.udot",
    "nvvm.wmma.m16n16k16.mma.row.row.f32.f32",
]


def _random_operands(intrin: TensorIntrinsic, rng: np.random.Generator):
    operands = {}
    for tensor in intrin.input_tensors:
        if tensor.dtype.is_integer:
            lo = max(tensor.dtype.min_value, -10)
            hi = min(tensor.dtype.max_value, 10)
            operands[tensor.name] = rng.integers(lo, hi + 1, size=tensor.shape).astype(
                tensor.dtype.np_dtype
            )
        else:
            operands[tensor.name] = rng.standard_normal(tensor.shape).astype(
                tensor.dtype.np_dtype
            )
    if intrin.accumulate:
        out = intrin.output
        operands[out.name] = rng.standard_normal(out.shape).astype(out.dtype.np_dtype)
    return operands


class TestRegistry:
    def test_builtins_registered(self):
        names = list_intrinsics()
        for name in _TENSORIZED:
            assert name in names

    def test_targets(self):
        assert {i.name for i in intrinsics_for_target("x86")} >= {
            "x86.avx512.vpdpbusd",
            "x86.avx512.fma.fp32",
        }
        assert any(i.name == "arm.neon.sdot" for i in intrinsics_for_target("arm"))
        assert any(i.target == "cuda" for i in intrinsics_for_target("cuda"))

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            get_intrinsic("x86.avx512.does_not_exist")

    def test_register_custom(self):
        from repro.isa.vnni import make_vpdpbusd

        register_intrinsic("test.custom.vnni", make_vpdpbusd)
        assert "test.custom.vnni" in list_intrinsics()


class TestStructure:
    def test_vnni_shape(self):
        vnni = get_intrinsic("x86.avx512.vpdpbusd")
        assert vnni.output_lanes == 16
        assert vnni.reduction_width == 4
        assert vnni.macs_per_call == 64
        assert vnni.is_mixed_precision
        assert not vnni.accumulate
        assert sorted(t.dtype.name for t in vnni.input_tensors) == ["int32", "int8", "uint8"]

    def test_arm_dot_shape(self):
        sdot = get_intrinsic("arm.neon.sdot")
        assert sdot.output_lanes == 4
        assert sdot.reduction_width == 4
        assert sdot.macs_per_call == 16
        assert sdot.is_mixed_precision

    def test_wmma_shape(self):
        wmma = get_intrinsic("nvvm.wmma.m16n16k16.mma.row.row.f32.f32")
        assert wmma.output_lanes == 256
        assert wmma.reduction_width == 16
        assert wmma.macs_per_call == 4096
        assert wmma.accumulate
        assert wmma.is_mixed_precision

    def test_simd_fma_not_mixed_precision(self):
        fma = get_intrinsic("x86.avx512.fma.fp32")
        assert fma.reduction_width == 1
        assert not fma.is_mixed_precision


class TestSemantics:
    @pytest.mark.parametrize("name", _TENSORIZED)
    def test_hardware_model_matches_dsl_description(self, name, rng):
        """The numpy hardware model and the interpreted DSL program agree."""
        intrin = get_intrinsic(name)
        for trial in range(3):
            operands = _random_operands(intrin, rng)
            hw = intrin.execute(operands)
            ref = intrin.reference(operands)
            if intrin.output_dtype.is_float:
                np.testing.assert_allclose(hw, ref, rtol=1e-3, atol=1e-3)
            else:
                assert np.array_equal(hw, ref)

    def test_vpdpbusd_known_value(self):
        vnni = get_intrinsic("x86.avx512.vpdpbusd")
        a = np.arange(64, dtype=np.uint8)
        b = np.ones(64, dtype=np.int8)
        c = np.full(16, 5, dtype=np.int32)
        out = vnni.execute({"vnni_a": a, "vnni_b": b, "vnni_c": c})
        expected = c + a.reshape(16, 4).sum(axis=1)
        assert np.array_equal(out, expected)

    def test_sdot_known_value(self):
        sdot = get_intrinsic("arm.neon.sdot")
        a = np.full(16, -2, dtype=np.int8)
        b = np.full(16, 3, dtype=np.int8)
        c = np.zeros(4, dtype=np.int32)
        out = sdot.execute({"sdot_a": a, "sdot_b": b, "sdot_c": c})
        assert np.array_equal(out, np.full(4, -24, dtype=np.int32))

    def test_wmma_is_matmul_accumulate(self, rng):
        wmma = get_intrinsic("nvvm.wmma.m16n16k16.mma.row.row.f32.f32")
        a = rng.standard_normal((16, 16)).astype(np.float16)
        b = rng.standard_normal((16, 16)).astype(np.float16)
        c = rng.standard_normal((16, 16)).astype(np.float32)
        out = wmma.execute({"wmma_a": a, "wmma_b": b, "wmma_c": c})
        expected = c + a.astype(np.float32) @ b.astype(np.float32)
        np.testing.assert_allclose(out, expected, rtol=1e-3, atol=1e-3)

    def test_missing_operand_raises(self):
        vnni = get_intrinsic("x86.avx512.vpdpbusd")
        with pytest.raises(KeyError):
            vnni.execute({"vnni_a": np.zeros(64, np.uint8)})

    def test_wrong_shape_raises(self):
        vnni = get_intrinsic("x86.avx512.vpdpbusd")
        with pytest.raises(ValueError):
            vnni.execute(
                {
                    "vnni_a": np.zeros(32, np.uint8),
                    "vnni_b": np.zeros(64, np.int8),
                    "vnni_c": np.zeros(16, np.int32),
                }
            )


@given(st.integers(0, 2**32 - 1))
@settings(max_examples=30, deadline=None)
def test_property_vpdpbusd_saturates_nothing_in_range(seed):
    """For in-range int8/uint8 inputs the accumulation is exact (no overflow)."""
    rng = np.random.default_rng(seed)
    vnni = get_intrinsic("x86.avx512.vpdpbusd")
    a = rng.integers(0, 256, 64).astype(np.uint8)
    b = rng.integers(-128, 128, 64).astype(np.int8)
    c = rng.integers(-1000, 1000, 16).astype(np.int32)
    out = vnni.execute({"vnni_a": a, "vnni_b": b, "vnni_c": c})
    wide = c.astype(np.int64) + (
        a.astype(np.int64) * b.astype(np.int64)
    ).reshape(16, 4).sum(axis=1)
    assert np.array_equal(out.astype(np.int64), wide)
