"""Tests for the virtual-ISA code generator."""

import pytest

from repro.codegen import generate
from repro.core import tensorize
from repro.rewriter import CpuTuningConfig
from repro.tir import lower
from repro.workloads import Conv2DParams, conv2d_hwc
from tests.conftest import small_conv_hwc, small_matmul_fp16


def _tensorized_conv():
    params = Conv2DParams(in_channels=8, in_height=10, in_width=10, out_channels=32, kernel=3)
    return tensorize(conv2d_hwc(params), "x86.avx512.vpdpbusd", config=CpuTuningConfig())


class TestCodegen:
    def test_plain_function_has_loops_and_stores(self):
        result = generate(lower(small_conv_hwc()), target="x86")
        stats = result.stats
        assert stats["loops"] == 9
        assert stats["scalar_store"] == 2
        assert stats["tensorized"] == 0
        assert ".func" in result.text and ".endfunc" in result.text

    def test_tensorized_conv_emits_intrinsic_and_operands(self):
        compiled = _tensorized_conv()
        result = generate(compiled.func, target="x86")
        stats = result.stats
        assert stats["tensorized"] == 1
        # Operand-generation rules: the weight/accumulator operands are vector
        # loads, the activation operand (invariant in the lane loop only via
        # broadcast rules handled per index) contributes a load or broadcast.
        assert stats["vector_load"] + stats["broadcast"] == 3
        assert stats["vector_store"] == 1
        assert "tensor.x86.avx512.vpdpbusd" in result.text
        assert "zmm" in result.text  # x86 register naming

    def test_register_prefix_by_target(self):
        wmma = tensorize(small_matmul_fp16(32, 32, 32), target="cuda")
        result = generate(wmma.func, target="cuda")
        assert "frag" in result.text
        assert result.stats["tensorized"] == 1

    def test_parallel_and_unrolled_loops_marked(self):
        compiled = _tensorized_conv()
        text = generate(compiled.func, target="x86").text
        assert ".parallel_loop" in text
        assert ".unrolled_loop" in text

    def test_unknown_target_falls_back_to_generic_registers(self):
        result = generate(lower(small_conv_hwc()), target="riscv")
        assert result.target == "riscv"
