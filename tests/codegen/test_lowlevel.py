"""Tests for the virtual-ISA code generator."""

import numpy as np
import pytest

from repro.codegen import generate
from repro.codegen.lowlevel import (
    Instruction,
    generate_c,
    generate_numba_source,
    native_support_reason,
)
from repro.core import tensorize
from repro.hwsim import CASCADE_LAKE, CpuKernelModel
from repro.isa.registry import get_intrinsic
from repro.rewriter import CpuTuningConfig
from repro.tir import lower
from repro.workloads import Conv2DParams, conv2d_hwc, conv2d_nchwc
from repro.workloads.table1 import TABLE1_LAYERS
from tests.conftest import small_conv_hwc, small_matmul_fp16


def _tensorized_conv():
    params = Conv2DParams(in_channels=8, in_height=10, in_width=10, out_channels=32, kernel=3)
    return tensorize(conv2d_hwc(params), "x86.avx512.vpdpbusd", config=CpuTuningConfig())


class TestCodegen:
    def test_plain_function_has_loops_and_stores(self):
        result = generate(lower(small_conv_hwc()), target="x86")
        stats = result.stats
        assert stats["loops"] == 9
        assert stats["scalar_store"] == 2
        assert stats["tensorized"] == 0
        assert ".func" in result.text and ".endfunc" in result.text

    def test_tensorized_conv_emits_intrinsic_and_operands(self):
        compiled = _tensorized_conv()
        result = generate(compiled.func, target="x86")
        stats = result.stats
        assert stats["tensorized"] == 1
        # Operand-generation rules: the weight/accumulator operands are vector
        # loads, the activation operand (invariant in the lane loop only via
        # broadcast rules handled per index) contributes a load or broadcast.
        assert stats["vector_load"] + stats["broadcast"] == 3
        assert stats["vector_store"] == 1
        assert "tensor.x86.avx512.vpdpbusd" in result.text
        assert "zmm" in result.text  # x86 register naming

    def test_register_prefix_by_target(self):
        wmma = tensorize(small_matmul_fp16(32, 32, 32), target="cuda")
        result = generate(wmma.func, target="cuda")
        assert "frag" in result.text
        assert result.stats["tensorized"] == 1

    def test_parallel_and_unrolled_loops_marked(self):
        compiled = _tensorized_conv()
        text = generate(compiled.func, target="x86").text
        assert ".parallel_loop" in text
        assert ".unrolled_loop" in text

    def test_unknown_target_falls_back_to_generic_registers(self):
        result = generate(lower(small_conv_hwc()), target="riscv")
        assert result.target == "riscv"


class TestInstructionRender:
    """The operand conditional must bind only the operand suffix."""

    def test_zero_operand_opcode_renders_bare(self):
        for opcode in (".else", ".endif", ".endloop"):
            assert Instruction(opcode).render() == opcode

    def test_operands_joined_after_opcode(self):
        assert Instruction("vload", ["zmm0", "data[0]"]).render() == "vload zmm0, data[0]"

    def test_comment_column_preserved_without_operands(self):
        text = Instruction(".endif", comment="residue guard").render()
        assert text.startswith(".endif")
        assert text.endswith("; residue guard")
        assert " ," not in text and not text.startswith(".endif ,")


class TestDeterminism:
    """Listings and native sources are pure functions of the PrimFunc."""

    def test_listing_round_trips_identical(self):
        func = _tensorized_conv().func
        first = generate(func, target="x86")
        second = generate(func, target="x86")
        assert first.text == second.text
        assert first.stats == second.stats
        assert first.dynamic_stats == second.dynamic_stats

    def test_native_sources_round_trip_identical(self):
        func = lower(small_conv_hwc())
        assert generate_c(func).source == generate_c(func).source
        assert generate_numba_source(func).source == generate_numba_source(func).source


class TestHwsimCrossCheck:
    """The listing's dynamic tensorized-instruction count must agree with the
    analytical cost model's ``instructions`` detail for the real Table-1
    layers: two independent derivations of how many vpdpbusd issues one
    schedule performs (listing = loop-extent products; model = closed-form
    ceil-division counts).  ``enable_unroll=False`` keeps the schedule free of
    residue guards so both sides count exactly the same iteration space."""

    @pytest.mark.parametrize("layer_index", [0, 1, 2])
    def test_dynamic_tensorized_count_matches_cost_model(self, layer_index):
        params = TABLE1_LAYERS[layer_index]
        config = CpuTuningConfig(enable_unroll=False)
        result = tensorize(conv2d_nchwc(params), "x86.avx512.vpdpbusd", config=config)
        listing = generate(result.func, target="x86")
        assert listing.stats["guards"] == 0  # no residue => exact comparison

        model = CpuKernelModel(CASCADE_LAKE, get_intrinsic("x86.avx512.vpdpbusd"))
        cost = model.conv2d_latency(params, config)
        assert listing.dynamic_stats["tensorized"] == int(cost.detail["instructions"])

    def test_dynamic_stats_weight_by_loop_extents(self):
        func = lower(small_conv_hwc())
        listing = generate(func, target="x86")
        # Every store in the listing runs once per surrounding iteration:
        # dynamic counts must dominate the static ones whenever loops exist.
        assert listing.stats["loops"] > 0
        assert (
            listing.dynamic_stats["scalar_store"]
            >= listing.stats["scalar_store"]
        )


class TestNativeSupport:
    def test_proved_integer_conv_is_supported(self):
        assert native_support_reason(lower(small_conv_hwc())) is None

    def test_tensorized_conv_is_supported(self):
        assert native_support_reason(_tensorized_conv().func) is None

    def test_float16_has_no_native_lowering(self):
        wmma = tensorize(small_matmul_fp16(32, 32, 32), target="cuda")
        reason = native_support_reason(wmma.func)
        assert reason is not None and "float16" in reason

    def test_generated_python_source_matches_interpreter(self):
        from repro.tir import alloc_buffers, run

        func = lower(small_conv_hwc())
        source = generate_numba_source(func)
        namespace = {}
        exec(compile(source.source, "<test-native>", "exec"), namespace)
        kernel = namespace[source.entry]

        rng = np.random.default_rng(7)
        buffers = alloc_buffers(func, rng)
        expected = run(func, {t: a.copy() for t, a in buffers.items()})
        arrays = [np.array(buffers[p], copy=True) for p in func.params]
        kernel(*arrays)
        np.testing.assert_array_equal(arrays[-1], expected)
