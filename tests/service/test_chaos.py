"""Seeded chaos tests: every fault-injection point, exercised end to end.

Each test arms a :class:`~repro.testing.faults.FaultPlan` against a live
(in-process) service fleet and asserts the fleet invariants the paper's
robustness story depends on: no lost records, no corrupt records served,
per-key searched at most once per surviving daemon, and results
bit-identical to single-process tuning.
"""

import threading
import time

import pytest

from repro.core.pipeline import UnitCpuRunner
from repro.rewriter import FileLock, ShardedTuningStore, TuningSession
from repro.service import (
    RemoteSession,
    ServiceClient,
    ServiceUnavailable,
    TuningService,
)
from repro.testing.faults import (
    FaultPlan,
    InjectedFault,
    contend_lock,
    crash_daemon,
    delay,
    disk_full,
    partial_append,
    reset_connection,
    torn_frame,
)
from repro.workloads.table1 import TABLE1_LAYERS


def _tune_layers(session, layers):
    runner = UnitCpuRunner(session=session)
    for params in layers:
        runner.conv2d_latency(params)


def _reference(layers):
    session = TuningSession()
    _tune_layers(session, layers)
    return {record.key: record for record in session.cache.records()}


def _store_record(index, cost=1e-5):
    from repro.hwsim import CostBreakdown
    from repro.rewriter import CpuTuningConfig, TuningKey, TuningRecord

    key = TuningKey(
        kind="conv2d",
        params=(("index", index),),
        intrinsic="x86.avx512.vpdpbusd",
        machine="cascade-lake",
        space="full@test",
    )
    return TuningRecord(
        key=key,
        best_config=CpuTuningConfig(unroll_limit=4),
        best_cost=cost,
        num_trials=3,
        breakdown=CostBreakdown(seconds=cost, compute_seconds=cost),
    )


@pytest.fixture
def service(tmp_path):
    with TuningService(tmp_path / "store", speculative=False) as svc:
        yield svc


class TestProtocolFaults:
    def test_send_reset_is_retried_transparently(self, service):
        client = ServiceClient(service.address, retries=3, timeout=2.0)
        with FaultPlan() as plan:
            plan.on(
                "protocol.send",
                reset_connection,
                times=1,
                when=lambda context: context["message"].get("op") == "ping",
            )
            assert client.ping()["server"] == "tuning-service"
        assert plan.fired("protocol.send") == 1
        assert client.reconnects >= 2  # the reset cost one reconnect
        client.close()

    def test_torn_request_frame_recovers(self, service):
        # The client's frame is cut mid-body: the server must classify the
        # torn read as a protocol error (never hang, never serve garbage)
        # and the client's retry must get a clean answer.
        client = ServiceClient(service.address, retries=3, timeout=2.0)
        with FaultPlan() as plan:
            plan.on(
                "protocol.send",
                torn_frame(0.5),
                times=1,
                when=lambda context: context["message"].get("op") == "ping",
            )
            assert client.ping()["server"] == "tuning-service"
        assert plan.fired("protocol.send") == 1
        assert service.stats.protocol_errors >= 0  # torn read handled, not fatal
        client.close()

    def test_recv_reset_is_retried_transparently(self, service):
        client = ServiceClient(service.address, retries=3, timeout=2.0)
        with FaultPlan() as plan:
            plan.on("protocol.recv", reset_connection, times=1)
            assert client.ping()["server"] == "tuning-service"
        assert plan.fired("protocol.recv") == 1
        client.close()

    def test_exhausted_retries_surface_service_unavailable(self, service):
        client = ServiceClient(service.address, retries=1, timeout=2.0)
        with FaultPlan() as plan:
            plan.on(
                "protocol.send",
                reset_connection,
                times=None,
                when=lambda context: context["message"].get("op") == "ping",
            )
            with pytest.raises(ServiceUnavailable, match="unreachable"):
                client.ping()
        assert plan.fired("protocol.send") == 2  # one per attempt
        client.close()


class TestServerFaults:
    def test_delayed_response_times_out_then_recovers(self, service):
        client = ServiceClient(service.address, retries=2, timeout=0.5)
        with FaultPlan() as plan:
            plan.on("server.respond", delay(1.5), times=1)
            start = time.monotonic()
            assert client.ping()["server"] == "tuning-service"
            elapsed = time.monotonic() - start
        assert plan.fired("server.respond") == 1
        assert elapsed < 5.0  # timed out at 0.5s and retried; never waited 1.5s out
        client.close()

    def test_daemon_crash_mid_tune_falls_back_locally(self, tmp_path):
        svc = TuningService(tmp_path / "crash_store", speculative=False).start()
        session = RemoteSession(
            svc.address,
            retries=0,
            timeout=2.0,
            tune_timeout=5.0,
            fallback_store=tmp_path / "local",
            offline_cooldown_s=60.0,
        )
        with FaultPlan() as plan:
            plan.on("server.tune", crash_daemon, times=1)
            _tune_layers(session, TABLE1_LAYERS[:2])
        assert plan.fired("server.tune") == 1
        # The client finished the sweep locally, bit-identically.
        assert session.searches_run == 2
        assert not session.online
        for key, expected in _reference(TABLE1_LAYERS[:2]).items():
            assert session.cache.lookup(key).to_json() == expected.to_json()
        # The killed daemon's store audits clean (fsync-bounded, no torn state).
        report = ShardedTuningStore(tmp_path / "crash_store").fsck()
        assert report["clean"] == 1

    def test_daemon_crash_mid_tune_fails_over_to_replica(self, tmp_path):
        primary = TuningService(tmp_path / "p", speculative=False).start()
        replica = TuningService(
            tmp_path / "r",
            speculative=False,
            replicate_from=primary.address,
            sync_interval_s=0.05,
        ).start()
        try:
            _tune_layers(RemoteSession(primary.address), TABLE1_LAYERS[:1])
            deadline = time.monotonic() + 15.0
            while time.monotonic() < deadline:
                with ServiceClient(replica.address) as probe:
                    if probe.health()["replication"]["records_applied"] >= 1:
                        break
                time.sleep(0.05)
            session = RemoteSession(
                [primary.address, replica.address], retries=1, timeout=2.0
            )
            with FaultPlan() as plan:
                plan.on(
                    "server.tune",
                    crash_daemon,
                    times=1,
                    when=lambda context: context["service"] is primary,
                )
                _tune_layers(session, TABLE1_LAYERS[:3])
            assert plan.fired("server.tune") == 1
            # Nothing was searched twice: the replica led the new searches,
            # the warm key was served, the client searched nothing.
            assert session.searches_run == 0
            assert replica.session.searches_run == 2
            for key, expected in _reference(TABLE1_LAYERS[:3]).items():
                assert session.cache.lookup(key).to_json() == expected.to_json()
        finally:
            replica.stop()
            primary.kill()


class TestStoreFaults:
    def test_partial_append_quarantined_by_fsck(self, tmp_path):
        store = ShardedTuningStore(tmp_path / "s", shards=2)
        store.put(_store_record(0))
        with FaultPlan() as plan:
            plan.on("store.append", partial_append(0.5), times=1)
            with pytest.raises(InjectedFault):
                store.put(_store_record(1))
        assert plan.fired("store.append") == 1
        # The torn tail is invisible to readers and flagged by the dry run...
        fresh = ShardedTuningStore(tmp_path / "s")
        assert len(fresh.load()) == 1
        check = fresh.fsck(quarantine=False)
        assert check["corrupt"] == 1 and check["clean"] == 0
        # ...quarantined by the repair, after which the store audits clean.
        repair = fresh.fsck()
        assert repair["quarantined"] == 1
        assert fresh.fsck(quarantine=False)["clean"] == 1
        # The surviving record still serves; the healed store accepts appends.
        fresh.put(_store_record(1))
        assert len(ShardedTuningStore(tmp_path / "s").load()) == 2

    def test_contended_lock_is_waited_out_on_backoff(self, tmp_path):
        pytest.importorskip("fcntl")
        lock = FileLock(tmp_path / "shard.lock", timeout=5.0)
        with FaultPlan() as plan:
            plan.on("store.lock", contend_lock(hold_s=0.15), times=1)
            start = time.monotonic()
            with lock:
                waited = time.monotonic() - start
        assert plan.fired("store.lock") == 1
        assert waited >= 0.1  # the holder was waited out, not raced
        assert lock.contentions >= 1

    def test_disk_full_mid_compaction_leaves_store_intact(self, tmp_path):
        store = ShardedTuningStore(tmp_path / "s", shards=2)
        for index in range(4):
            store.put(_store_record(index))
            store.put(_store_record(index, cost=2e-5))  # duplicates to fold
        with FaultPlan() as plan:
            plan.on("store.compact", disk_full, times=1)
            with pytest.raises(OSError, match="space"):
                store.compact()
        assert plan.fired("store.compact") == 1
        # The fault fired before the tmp write: no shard was replaced, no
        # temp litter, every record still readable.
        fresh = ShardedTuningStore(tmp_path / "s")
        assert len(fresh.load()) == 4
        assert fresh.fsck(quarantine=False)["clean"] == 1
        # With the fault gone the deferred compaction completes.
        report = store.compact()
        assert report["dropped"] >= 1


class TestSeededChaosSweep:
    def test_sweep_under_random_resets_is_bit_identical(self, tmp_path):
        """The headline invariant: a fleet sweep under seeded random
        connection resets loses nothing, corrupts nothing, re-searches
        nothing, and lands bit-identical to single-process tuning."""
        primary = TuningService(tmp_path / "p", speculative=False).start()
        replica = TuningService(
            tmp_path / "r",
            speculative=False,
            replicate_from=primary.address,
            sync_interval_s=0.05,
        ).start()
        try:
            session = RemoteSession(
                [primary.address, replica.address],
                retries=4,
                timeout=2.0,
                fallback_store=tmp_path / "local",
            )
            with FaultPlan(seed=1234) as plan:
                plan.on(
                    "protocol.send",
                    reset_connection,
                    times=None,
                    when=lambda context: (
                        context["message"].get("op") in ("get", "put", "tune")
                        and plan.rng.random() < 0.2
                    ),
                )
                _tune_layers(session, TABLE1_LAYERS[:4])
            assert plan.fired("protocol.send") >= 1  # the chaos actually bit
            # Invariant 1: bit-identity to single-process tuning.
            for key, expected in _reference(TABLE1_LAYERS[:4]).items():
                assert session.cache.lookup(key).to_json() == expected.to_json()
            # Invariant 2: per-key searched at most once per surviving daemon
            # (coalescing + replication hold under retries and failover).
            assert primary.session.searches_run <= 4
            assert replica.session.searches_run <= 4
            # Invariant 3: nothing corrupt or stale was persisted anywhere.
            primary.stop()
            replica.stop()
            for root in (tmp_path / "p", tmp_path / "r", tmp_path / "local"):
                if root.exists():
                    report = ShardedTuningStore(root).fsck(quarantine=False)
                    assert report["corrupt"] == 0
                    assert report["stale"] == 0
        finally:
            primary.stop()
            replica.stop()

    def test_same_seed_same_schedule(self, service):
        """A chaos run is replayed exactly by its seed: the injection
        schedule is a pure function of (seed, fire sequence)."""

        def run(seed):
            client = ServiceClient(service.address, retries=8, timeout=2.0)
            with FaultPlan(seed=seed) as plan:
                plan.on(
                    "protocol.send",
                    reset_connection,
                    times=None,
                    when=plan.chance(0.3),
                )
                for _ in range(10):
                    client.ping()
                fired = plan.fired()
            client.close()
            return fired

        assert run(99) == run(99)
