"""Tests for the tuning daemon: coalescing, speculation, GC, versioning."""

import json
import socket
import struct
import threading
import time

import pytest

from repro.core.pipeline import UnitCpuRunner
from repro.rewriter import ShardedTuningStore, TuningKey, TuningSession
from repro.service import (
    ServiceClient,
    ServiceError,
    TuningService,
    protocol,
)
from repro.service.server import expand_sweep
from repro.workloads.table1 import TABLE1_LAYERS


@pytest.fixture
def service(tmp_path):
    with TuningService(tmp_path / "store", speculative=False) as svc:
        yield svc


@pytest.fixture
def client(service):
    with ServiceClient(service.address) as c:
        yield c


def _reference_records(layers):
    """Ground truth: a private single-process tuning run."""
    session = TuningSession()
    runner = UnitCpuRunner(session=session)
    for params in layers:
        runner.conv2d_latency(params)
    return {record.key: record for record in session.cache.records()}


def _keys_for(layers):
    return list(_reference_records(layers).keys())


class TestBasicOps:
    def test_ping(self, client):
        response = client.ping()
        assert response["server"] == "tuning-service"
        assert response["uptime_s"] >= 0

    def test_get_miss_then_put_then_hit(self, client):
        (key,) = _keys_for(TABLE1_LAYERS[:1])
        assert client.get(key) is None
        record = _reference_records(TABLE1_LAYERS[:1])[key]
        client.put(record)
        got = client.get(key)
        assert got is not None
        assert got.to_json() == record.to_json()

    def test_put_survives_daemon_restart(self, tmp_path):
        (key,) = _keys_for(TABLE1_LAYERS[:1])
        record = _reference_records(TABLE1_LAYERS[:1])[key]
        with TuningService(tmp_path / "store", speculative=False) as svc:
            with ServiceClient(svc.address) as client:
                client.put(record)
        with TuningService(tmp_path / "store", speculative=False) as svc:
            with ServiceClient(svc.address) as client:
                got = client.get(key)
                assert got is not None and got.to_json() == record.to_json()
        # ...and nothing on disk is corrupt or stale after two daemon runs
        store = ShardedTuningStore(tmp_path / "store")
        store.load()
        assert store.stats.corrupt_lines == 0
        assert store.stats.stale_records == 0

    def test_server_side_tune_matches_local_reference(self, client, service):
        keys = _keys_for(TABLE1_LAYERS[:3])
        reference = _reference_records(TABLE1_LAYERS[:3])
        for key in keys:
            record = client.tune(key)
            assert record.to_json() == reference[key].to_json()
        assert service.session.searches_run == 3
        # a second round is served from memory: no new searches
        for key in keys:
            client.tune(key)
        assert service.session.searches_run == 3

    def test_tune_declines_unrebuildable_keys(self, client):
        bogus = TuningKey(
            kind="conv2d",
            params=(("not_a_field", 1),),
            intrinsic="x86.avx512.vpdpbusd",
            machine="cascade-lake",
            space="full@00000000",
        )
        with pytest.raises(ServiceError) as excinfo:
            client.tune(bogus)
        assert excinfo.value.code == "untunable"

    def test_tune_declines_library_and_approximate_spaces(self, client):
        for space in ("library:onednn", "full@0000!early_exit:8"):
            key = TuningKey(
                kind="conv2d",
                params=(("in_channels", 8),),
                intrinsic="",
                machine="cascade-lake",
                space=space,
            )
            with pytest.raises(ServiceError) as excinfo:
                client.tune(key)
            assert excinfo.value.code == "untunable"

    def test_stats_endpoint_shape(self, client, service):
        client.ping()
        (key,) = _keys_for(TABLE1_LAYERS[:1])
        client.tune(key)
        stats = client.stats()
        assert stats["service"]["requests"]["tune"] == 1
        assert stats["service"]["searches_led"] == 1
        assert stats["session"]["searches_run"] == 1
        assert stats["session"]["strategy"] == "parallel"
        assert stats["store"]["appends"] == 1
        assert "simplify_hits" in stats["expr_cache"]
        assert stats["inflight"] == 0

    def test_rejects_unknown_op_cleanly(self, service):
        sock = socket.create_connection(service.address, timeout=5)
        try:
            message = protocol.ok_response()  # versioned envelope, no real op
            message["op"] = "explode"
            protocol.send_message(sock, message)
            response = protocol.recv_message(sock)
            assert response["ok"] is False and response["code"] == "unknown_op"
        finally:
            sock.close()

    def test_protocol_error_does_not_kill_the_daemon(self, service):
        sock = socket.create_connection(service.address, timeout=5)
        try:
            sock.sendall(struct.pack(">I", protocol.MAX_MESSAGE_BYTES + 5))
            response = protocol.recv_message(sock)
            assert response["code"] == "protocol_error"
        finally:
            sock.close()
        with ServiceClient(service.address) as client:
            assert client.ping()["ok"]
        assert service.stats.protocol_errors == 1


class TestVersioning:
    def test_protocol_version_mismatch_rejected_cleanly(self, service):
        sock = socket.create_connection(service.address, timeout=5)
        try:
            bad = {"op": "ping", "protocol": 999, "schema": 1}
            body = json.dumps(bad).encode()
            sock.sendall(struct.pack(">I", len(body)) + body)
            response = protocol.recv_message(sock)
            assert response["ok"] is False
            assert response["code"] == "version_mismatch"
        finally:
            sock.close()
        assert service.stats.version_rejections == 1
        # the daemon keeps serving current-version clients
        with ServiceClient(service.address) as client:
            assert client.ping()["ok"]

    def test_client_raises_service_error_on_version_mismatch(self, service, monkeypatch):
        # Only the client builds requests through protocol.request, so
        # patching it simulates a stale client against a current server.
        def stale_request(op, **fields):
            return {"op": op, "protocol": 999, "schema": 1, **fields}

        monkeypatch.setattr(protocol, "request", stale_request)
        with ServiceClient(service.address) as client:
            with pytest.raises(ServiceError) as excinfo:
                client.ping()
            assert excinfo.value.code == "version_mismatch"


class TestCoalescing:
    def test_concurrent_tunes_of_one_key_search_once_bit_identical(self, tmp_path):
        """The acceptance criterion: N clients, one search, identical bytes."""
        with TuningService(tmp_path / "store", speculative=False) as svc:
            # Slow the search down so every client really is concurrent.
            import repro.service.server as server_module

            original = server_module.run_task
            started = threading.Event()

            def slow_run_task(task, session):
                started.set()
                time.sleep(0.4)
                return original(task, session)

            server_module.run_task = slow_run_task
            try:
                (key,) = _keys_for(TABLE1_LAYERS[:1])
                results = {}

                def tune(index):
                    with ServiceClient(svc.address, tune_timeout=30.0) as c:
                        results[index] = c.tune(key).to_json()

                leader = threading.Thread(target=tune, args=(0,))
                leader.start()
                assert started.wait(10.0)  # the search is now in flight
                rest = [threading.Thread(target=tune, args=(i,)) for i in range(1, 5)]
                for thread in rest:
                    thread.start()
                for thread in [leader] + rest:
                    thread.join(timeout=30)
            finally:
                server_module.run_task = original

            assert len(results) == 5
            blobs = {json.dumps(blob, sort_keys=True) for blob in results.values()}
            assert len(blobs) == 1  # bit-identical records for every waiter
            assert svc.session.searches_run == 1  # the key was searched once
            assert svc.stats.searches_led == 1
            assert svc.stats.coalesced_waiters == 4
            # ...and identical to a single-process local reference
            reference = _reference_records(TABLE1_LAYERS[:1])[key]
            assert blobs == {json.dumps(reference.to_json(), sort_keys=True)}

    def test_distinct_keys_search_concurrently_exactly_once_each(self, tmp_path):
        with TuningService(tmp_path / "store", speculative=False) as svc:
            layers = TABLE1_LAYERS[:4]
            keys = _keys_for(layers)
            reference = _reference_records(layers)
            results = {}

            def tune_all(index):
                with ServiceClient(svc.address, tune_timeout=30.0) as c:
                    results[index] = [c.tune(key).to_json() for key in keys]

            threads = [threading.Thread(target=tune_all, args=(i,)) for i in range(4)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=60)
            assert svc.session.searches_run == len(keys)
            expected = [reference[key].to_json() for key in keys]
            for records in results.values():
                assert records == expected


class TestGc:
    def test_gc_evicts_store_and_memory(self, client, service):
        keys = _keys_for(TABLE1_LAYERS[:4])
        for key in keys:
            client.tune(key)
        report = client.gc(max_records=2)
        assert report["evicted"] == 2 and report["kept"] == 2
        # the daemon's memory tier forgot the evicted keys too: re-tuning
        # an evicted key is a fresh search, not a stale memory hit
        searches = service.session.searches_run
        still_cached = sum(
            1 for key in keys if service.session.cache.lookup(key) is not None
        )
        assert still_cached == 2
        evicted_key = next(
            key for key in keys if service.session.cache.lookup(key) is None
        )
        client.tune(evicted_key)
        assert service.session.searches_run == searches + 1

    def test_gc_by_idle_via_rpc(self, client):
        (key,) = _keys_for(TABLE1_LAYERS[:1])
        client.tune(key)
        report = client.gc(max_idle=0.0)  # everything is instantly too idle
        assert report["evicted"] == 1


class TestWarmAndSpeculation:
    def test_warm_tunes_a_table1_slice(self, client, service):
        response = client.warm("table1:5")
        assert response["tasks"] == 5
        assert response["tuned"] == 5 and response["hits"] == 0
        assert service.session.searches_run == 5
        again = client.warm("table1:5")
        assert again["tuned"] == 0 and again["hits"] == 5

    def test_warm_model_sweep(self, client, service):
        response = client.warm("resnet-18")
        assert response["tasks"] > 0
        assert response["tuned"] == response["tasks"]

    def test_warm_unknown_sweep_is_clean_error(self, client):
        with pytest.raises(ServiceError):
            client.warm("no-such-model-zoo-entry")

    def test_expand_sweep_table1_slice_matches_layers(self):
        tasks = expand_sweep("table1:3", like=None)
        assert [t.params.name for t in tasks] == [p.name for p in TABLE1_LAYERS[:3]]

    def test_speculative_queue_pre_tunes_sweep_during_idle(self, tmp_path):
        with TuningService(tmp_path / "store", speculative=True) as svc:
            with ServiceClient(svc.address, tune_timeout=30.0) as client:
                (key,) = _keys_for(TABLE1_LAYERS[:1])
                client.tune(key, sweep="table1:6")
                deadline = time.time() + 30
                while time.time() < deadline and svc.session.searches_run < 6:
                    time.sleep(0.02)
                assert svc.session.searches_run == 6
                assert svc.stats.speculative_queued == 6
                # layer 1 was already tuned by the foreground request
                assert svc.stats.speculative_skipped >= 1
                assert svc.stats.speculative_tuned == 5
                # a client now sweeping those layers gets pure hits
                searches = svc.session.searches_run
                for other in _keys_for(TABLE1_LAYERS[:6]):
                    client.tune(other)
                assert svc.session.searches_run == searches


class TestLifecycle:
    def test_shutdown_rpc_stops_the_daemon(self, tmp_path):
        svc = TuningService(tmp_path / "store", speculative=False).start()
        with ServiceClient(svc.address) as client:
            assert client.shutdown()["stopping"] is True
        deadline = time.time() + 10
        while time.time() < deadline and svc._server is not None:
            time.sleep(0.02)
        assert svc._server is None

    def test_rejects_approximate_strategy(self, tmp_path):
        with pytest.raises(ValueError, match="result-deterministic"):
            TuningService(tmp_path / "store", strategy="early_exit")

    def test_shutdown_wakes_coalesced_tune_waiters(self, tmp_path):
        """The satellite scenario: clients parked on an in-flight search
        must get a clean ``shutting_down`` answer the moment the daemon
        stops — not hang until their tune timeout."""
        import repro.service.server as server_module
        from repro.service import ServiceUnavailable

        svc = TuningService(tmp_path / "store", speculative=False).start()
        original = server_module.run_task
        reached = threading.Event()
        release = threading.Event()

        def hang(task, session):
            reached.set()
            release.wait(30.0)
            return original(task, session)

        server_module.run_task = hang
        try:
            (key,) = _keys_for(TABLE1_LAYERS[:1])
            outcomes = {}

            def tune(name):
                client = ServiceClient(
                    svc.address, retries=0, timeout=5.0, tune_timeout=60.0
                )
                try:
                    client.tune(key)
                    outcomes[name] = "ok"
                except (ServiceError, ServiceUnavailable, OSError) as exc:
                    outcomes[name] = exc
                finally:
                    client.close()

            leader = threading.Thread(target=tune, args=("leader",))
            leader.start()
            assert reached.wait(10.0)  # the leader's search is in flight
            waiter = threading.Thread(target=tune, args=("waiter",))
            waiter.start()
            deadline = time.time() + 10
            while time.time() < deadline and svc.stats.coalesced_waiters < 1:
                time.sleep(0.02)
            assert svc.stats.coalesced_waiters == 1  # parked on the entry

            start = time.monotonic()
            stopper = threading.Thread(target=svc.stop)
            stopper.start()
            waiter.join(timeout=10.0)
            woken_after = time.monotonic() - start
            assert not waiter.is_alive()
            assert woken_after < 5.0  # woken by stop(), not by its timeout
            # A single-endpoint client maps shutting_down to "endpoint
            # down" and exhausts its (zero) retries.
            assert isinstance(outcomes["waiter"], ServiceUnavailable)
            release.set()
            leader.join(timeout=10.0)
            stopper.join(timeout=20.0)
            assert not stopper.is_alive()
        finally:
            release.set()
            server_module.run_task = original
            svc.stop()


class TestReviewHardening:
    """Regressions for the GC clock, staleness gate and dedup lifecycle."""

    def test_memory_tier_hits_advance_the_gc_clock(self, client, service):
        (key,) = _keys_for(TABLE1_LAYERS[:1])
        client.tune(key)
        first = service.store.last_served(key)
        assert first is not None
        touches = service.store.stats.touches
        client.get(key)  # served from the daemon's memory cache
        client.tune(key)  # a "hit", also from memory
        assert service.store.stats.touches >= touches + 2
        assert service.store.last_served(key) >= first

    def test_hot_memory_resident_record_survives_idle_gc(self, client, service):
        keys = _keys_for(TABLE1_LAYERS[:2])
        for key in keys:
            client.tune(key)
        time.sleep(0.3)  # both records now look 0.3 s idle...
        client.get(keys[0])  # ...but the first is re-served from daemon memory
        report = service.store.evict(max_idle=0.15, now=time.time())
        assert report["evicted"] == 1  # the cold key, not the hot one
        (evicted_key,) = report["evicted_keys"]
        assert evicted_key == keys[1]

    def test_stale_record_from_server_is_rejected_client_side(self, service, monkeypatch):
        (key,) = _keys_for(TABLE1_LAYERS[:1])
        with ServiceClient(service.address, tune_timeout=30.0) as client:
            client.tune(key)
            import repro.service.client as client_module

            monkeypatch.setattr(
                client_module, "record_staleness", lambda data: "cost model differs"
            )
            with pytest.raises(ServiceError) as excinfo:
                client.get(key)
            assert excinfo.value.code == "stale_record"

    def test_remote_session_goes_permanently_offline_on_version_mismatch(
        self, service, monkeypatch
    ):
        from repro.service.client import RemoteSession

        def stale_request(op, **fields):
            return {"op": op, "protocol": 999, "schema": 1, **fields}

        monkeypatch.setattr(protocol, "request", stale_request)
        session = RemoteSession(service.address, fallback_store=None)
        with pytest.warns(RuntimeWarning, match="version-incompatible"):
            runner = UnitCpuRunner(session=session)
            runner.conv2d_latency(TABLE1_LAYERS[0])
        assert session.incompatible is not None
        assert not session.online  # permanently: the fallback tier is active
        assert session.searches_run == 1  # tuned locally, loudly

    def test_speculative_dedup_releases_after_processing(self, tmp_path):
        with TuningService(tmp_path / "store", speculative=True) as svc:
            with ServiceClient(svc.address, tune_timeout=30.0) as client:
                client.warm("table1:2", background=True)
                deadline = time.time() + 30
                while time.time() < deadline and svc.session.searches_run < 2:
                    time.sleep(0.02)
                assert svc.session.searches_run == 2
                client.gc(max_idle=0.0)  # evict everything, memory included
                # a re-warm must re-enqueue (the dedup set released its slots)
                again = client.warm("table1:2", background=True)
                assert again["queued"] == 2
                deadline = time.time() + 30
                while time.time() < deadline and svc.session.searches_run < 4:
                    time.sleep(0.02)
                assert svc.session.searches_run == 4

    def test_stop_is_idempotent_and_flushes(self, tmp_path):
        svc = TuningService(tmp_path / "store", speculative=False).start()
        with ServiceClient(svc.address, tune_timeout=30.0) as client:
            (key,) = _keys_for(TABLE1_LAYERS[:1])
            client.tune(key)
        svc.stop()
        svc.stop()  # second call must be a harmless no-op
        fresh = ShardedTuningStore(tmp_path / "store")
        assert fresh.last_served(key) is not None  # touches reached disk
