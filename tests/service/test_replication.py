"""Tests for primary -> replica anti-entropy sync and client failover."""

import json
import time

import pytest

from repro.core.pipeline import UnitCpuRunner
from repro.rewriter import ShardedTuningStore, TuningSession
from repro.service import RemoteSession, ServiceClient, TuningService
from repro.workloads.table1 import TABLE1_LAYERS


def _tune_layers(session, layers):
    runner = UnitCpuRunner(session=session)
    for params in layers:
        runner.conv2d_latency(params)


def _reference(layers):
    session = TuningSession()
    _tune_layers(session, layers)
    return {record.key: record for record in session.cache.records()}


def _wait_for(predicate, timeout=15.0, interval=0.05):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


def _replica_records(replica):
    with ServiceClient(replica.address) as client:
        health = client.health()
    return (health.get("replication") or {}).get("records_applied", 0)


@pytest.fixture
def primary(tmp_path):
    with TuningService(tmp_path / "primary", speculative=False) as svc:
        yield svc


@pytest.fixture
def replica(tmp_path, primary):
    svc = TuningService(
        tmp_path / "replica",
        speculative=False,
        replicate_from=primary.address,
        sync_interval_s=0.05,
    ).start()
    yield svc
    svc.stop()


class TestSync:
    def test_replica_converges_bit_identically(self, tmp_path, primary, replica):
        _tune_layers(RemoteSession(primary.address), TABLE1_LAYERS[:3])
        assert _wait_for(lambda: _replica_records(replica) >= 3)
        reference = _reference(TABLE1_LAYERS[:3])
        store = ShardedTuningStore(tmp_path / "replica")
        for key, expected in reference.items():
            got = store.get(key)
            assert got is not None
            assert got.to_json() == expected.to_json()

    def test_incremental_sync_applies_each_record_once(self, primary, replica):
        _tune_layers(RemoteSession(primary.address), TABLE1_LAYERS[:2])
        assert _wait_for(lambda: _replica_records(replica) >= 2)
        # Let several empty sync rounds pass: already-pulled bytes are not
        # re-offered, so the applied count must not creep.
        time.sleep(0.5)
        with ServiceClient(replica.address) as client:
            replication = client.health()["replication"]
        assert replication["records_applied"] == 2
        assert replication["syncs"] > 2  # the loop kept pulling, found nothing
        assert replication["offset_resets"] == 0

    def test_replica_serves_reads_without_touching_the_primary(self, primary, replica):
        _tune_layers(RemoteSession(primary.address), TABLE1_LAYERS[:2])
        assert _wait_for(lambda: _replica_records(replica) >= 2)
        session = RemoteSession(replica.address)
        _tune_layers(session, TABLE1_LAYERS[:2])
        assert session.server_hits == 2
        assert session.searches_run == 0
        assert replica.session.searches_run == 0  # served, not re-tuned

    def test_primary_compaction_resets_offsets_without_loss(
        self, tmp_path, primary, replica
    ):
        _tune_layers(RemoteSession(primary.address), TABLE1_LAYERS[:3])
        assert _wait_for(lambda: _replica_records(replica) >= 3)
        # Re-publish (duplicate lines) and let the replica pull them, then
        # compact: shards shrink below the replica's offsets, forcing a
        # reset + full replay.
        session = RemoteSession(primary.address)
        _tune_layers(session, TABLE1_LAYERS[:3])
        for record in session.cache.records():
            primary.store.put(record)
        assert _wait_for(lambda: _replica_records(replica) >= 6)
        primary.store.compact()
        assert _wait_for(lambda: _offset_resets(replica) > 0)
        reference = _reference(TABLE1_LAYERS[:3])
        store = ShardedTuningStore(tmp_path / "replica")
        for key, expected in reference.items():
            assert store.get(key).to_json() == expected.to_json()

    def test_corrupt_primary_lines_are_counted_not_ingested(
        self, tmp_path, primary, replica
    ):
        _tune_layers(RemoteSession(primary.address), TABLE1_LAYERS[:1])
        assert _wait_for(lambda: _replica_records(replica) >= 1)
        # Wrong-fingerprint (stale) and structurally-broken (corrupt-to-the-
        # gate: versions check out but the record body is missing) dicts
        # appended straight into a primary shard file.
        reference = next(iter(_reference(TABLE1_LAYERS[:1]).values()))
        stale = dict(reference.to_json())
        stale["cost_model"] = "feedfacecafe"
        corrupt = dict(reference.to_json())
        del corrupt["key"]
        with open(primary.store.shard_path(0), "a", encoding="utf-8") as handle:
            handle.write(json.dumps(stale) + "\n")
            handle.write(json.dumps(corrupt) + "\n")
        def rejected():
            with ServiceClient(replica.address) as client:
                replication = client.health()["replication"]
            return (
                replication["stale_rejected"] >= 1
                and replication["corrupt_rejected"] >= 1
            )
        assert _wait_for(rejected)
        # Nothing foreign reached the replica's store.
        store = ShardedTuningStore(tmp_path / "replica")
        assert store.fsck(quarantine=False)["clean"] == 1
        assert len(store.load()) == 1

    def test_replica_survives_primary_death_and_counts_failures(
        self, primary, replica
    ):
        _tune_layers(RemoteSession(primary.address), TABLE1_LAYERS[:1])
        assert _wait_for(lambda: _replica_records(replica) >= 1)
        primary.kill()
        def failed():
            with ServiceClient(replica.address) as client:
                return client.health()["replication"]["sync_failures"] >= 1
        assert _wait_for(failed)
        # The replica still answers; the corpus it already pulled survives.
        with ServiceClient(replica.address) as client:
            assert client.ping()["server"] == "tuning-service"


def _offset_resets(replica):
    with ServiceClient(replica.address) as client:
        return client.health()["replication"]["offset_resets"]


class TestHealth:
    def test_primary_health_shape(self, primary):
        with ServiceClient(primary.address) as client:
            health = client.health()
        assert health["role"] == "primary"
        assert health["shutting_down"] is False
        assert "replication" not in health
        assert health["inflight"] == 0

    def test_replica_health_reports_lag_and_primary(self, primary, replica):
        assert _wait_for(lambda: _syncs(replica) >= 1)
        with ServiceClient(replica.address) as client:
            health = client.health()
        assert health["role"] == "replica"
        replication = health["replication"]
        assert tuple(replication["primary"]) == primary.address
        assert replication["lag_s"] is not None
        assert replication["lag_s"] < 60.0


def _syncs(replica):
    with ServiceClient(replica.address) as client:
        return client.health()["replication"]["syncs"]


class TestFailover:
    def test_client_fails_over_to_replica_after_primary_kill(
        self, primary, replica
    ):
        _tune_layers(RemoteSession(primary.address), TABLE1_LAYERS[:3])
        assert _wait_for(lambda: _replica_records(replica) >= 3)
        primary.kill()
        session = RemoteSession(
            [primary.address, replica.address], retries=0, timeout=1.0
        )
        _tune_layers(session, TABLE1_LAYERS[:3])
        # Warm keys came from the replica — nothing was re-searched anywhere.
        assert session.server_hits == 3
        assert session.searches_run == 0
        assert session.client.failovers >= 1
        assert session.online  # the fleet is degraded, not down

    def test_failover_results_bit_identical(self, primary, replica):
        _tune_layers(RemoteSession(primary.address), TABLE1_LAYERS[:2])
        assert _wait_for(lambda: _replica_records(replica) >= 2)
        primary.kill()
        session = RemoteSession(
            [primary.address, replica.address], retries=0, timeout=1.0
        )
        _tune_layers(session, TABLE1_LAYERS[:2])
        for key, expected in _reference(TABLE1_LAYERS[:2]).items():
            assert session.cache.lookup(key).to_json() == expected.to_json()

    def test_cold_keys_tune_on_the_replica_after_failover(self, primary, replica):
        _tune_layers(RemoteSession(primary.address), TABLE1_LAYERS[:1])
        assert _wait_for(lambda: _replica_records(replica) >= 1)
        primary.kill()
        session = RemoteSession(
            [primary.address, replica.address], retries=0, timeout=2.0
        )
        _tune_layers(session, TABLE1_LAYERS[:3])  # 1 warm + 2 cold
        assert session.server_hits == 1
        assert session.server_tunes == 2  # the replica led the new searches
        assert session.searches_run == 0
        assert replica.session.searches_run == 2

    def test_hedged_get_answers_while_primary_is_dark(self, primary, replica):
        _tune_layers(RemoteSession(primary.address), TABLE1_LAYERS[:1])
        assert _wait_for(lambda: _replica_records(replica) >= 1)
        key = next(iter(_reference(TABLE1_LAYERS[:1])))
        primary.kill()
        client = ServiceClient(
            [primary.address, replica.address], timeout=1.0, hedge_delay_s=0.02
        )
        record = client.hedged_get(key)
        assert record is not None
        assert client.hedged_gets == 1
        assert client.hedged_wins >= 1  # the replica's answer won
        client.close()

    def test_traffic_fails_back_once_the_primary_returns(self, tmp_path, replica):
        # A primary that dies and is later restarted on the same port.
        first = TuningService(
            tmp_path / "primary2", speculative=False, host="127.0.0.1"
        ).start()
        host, port = first.address
        client = ServiceClient(
            [first.address, replica.address],
            retries=0,
            timeout=1.0,
            retry_policy=None,
        )
        client.ping()
        assert client._active == 0
        first.kill()
        with pytest.raises(Exception):
            client.ping()  # penalises the dead primary
        client.ping()  # served by the replica
        assert client._active == 1
        second = TuningService(
            tmp_path / "primary2", speculative=False, host=host, port=port
        ).start()
        try:
            assert _wait_for(lambda: _pings_primary(client), timeout=20.0)
        finally:
            client.close()
            second.stop()


def _pings_primary(client):
    try:
        client.ping()
    except Exception:
        return False
    return client._active == 0
