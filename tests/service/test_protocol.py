"""Tests for the length-prefixed, versioned wire protocol."""

import json
import socket
import struct
import threading

import pytest

from repro.rewriter.records import SCHEMA_VERSION
from repro.service import protocol
from repro.service.protocol import (
    MAX_MESSAGE_BYTES,
    PROTOCOL_VERSION,
    ConnectionClosed,
    ProtocolError,
    check_versions,
    error_response,
    ok_response,
    recv_message,
    request,
    send_message,
)


def _pair():
    return socket.socketpair()


class TestFraming:
    def test_roundtrip(self):
        a, b = _pair()
        try:
            send_message(a, request("ping", extra=[1, 2, {"x": "y"}]))
            message = recv_message(b)
            assert message["op"] == "ping"
            assert message["extra"] == [1, 2, {"x": "y"}]
            assert message["protocol"] == PROTOCOL_VERSION
            assert message["schema"] == SCHEMA_VERSION
        finally:
            a.close()
            b.close()

    def test_many_frames_back_to_back(self):
        a, b = _pair()
        try:
            for index in range(20):
                send_message(a, ok_response(index=index))
            for index in range(20):
                assert recv_message(b)["index"] == index
        finally:
            a.close()
            b.close()

    def test_clean_eof_between_frames_is_connection_closed(self):
        a, b = _pair()
        try:
            send_message(a, request("ping"))
            recv_message(b)
            a.close()
            with pytest.raises(ConnectionClosed):
                recv_message(b)
        finally:
            b.close()

    def test_eof_mid_frame_is_protocol_error(self):
        a, b = _pair()
        try:
            body = json.dumps({"op": "ping"}).encode()
            a.sendall(struct.pack(">I", len(body)) + body[: len(body) // 2])
            a.close()
            with pytest.raises(ProtocolError, match="mid-frame"):
                recv_message(b)
        finally:
            b.close()

    def test_oversized_length_prefix_rejected_before_read(self):
        a, b = _pair()
        try:
            a.sendall(struct.pack(">I", MAX_MESSAGE_BYTES + 1))
            with pytest.raises(ProtocolError, match="frame limit"):
                recv_message(b)
        finally:
            a.close()
            b.close()

    def test_undecodable_body_is_protocol_error(self):
        a, b = _pair()
        try:
            junk = b"\xff\x00 not json"
            a.sendall(struct.pack(">I", len(junk)) + junk)
            with pytest.raises(ProtocolError, match="undecodable"):
                recv_message(b)
        finally:
            a.close()
            b.close()

    def test_non_object_frame_is_protocol_error(self):
        a, b = _pair()
        try:
            body = json.dumps([1, 2, 3]).encode()
            a.sendall(struct.pack(">I", len(body)) + body)
            with pytest.raises(ProtocolError, match="not an object"):
                recv_message(b)
        finally:
            a.close()
            b.close()

    def test_large_frame_survives_chunked_transport(self):
        a, b = _pair()
        payload = {"op": "put", "blob": "x" * 500_000}
        received = {}

        def reader():
            received["message"] = recv_message(b)

        thread = threading.Thread(target=reader)
        thread.start()
        try:
            send_message(a, request(**payload))
            thread.join(timeout=10)
            assert received["message"]["blob"] == payload["blob"]
        finally:
            a.close()
            b.close()


class TestInjectedFaults:
    """The framing error taxonomy, reached through the fault registry
    instead of hand-rolled byte surgery — the same machinery the chaos
    suite drives, validated at the protocol layer."""

    def test_injected_torn_frame_is_protocol_error(self):
        from repro.testing.faults import FaultPlan, torn_frame

        a, b = _pair()
        try:
            with FaultPlan() as plan:
                plan.on("protocol.send", torn_frame(0.5))
                with pytest.raises(ConnectionResetError):
                    send_message(a, request("ping", payload="x" * 256))
            assert plan.fired("protocol.send") == 1
            a.close()  # the sender died mid-frame
            with pytest.raises(ProtocolError, match="mid-frame"):
                recv_message(b)
        finally:
            b.close()

    def test_injected_send_reset_leaves_peer_at_clean_eof(self):
        from repro.testing.faults import FaultPlan, reset_connection

        a, b = _pair()
        try:
            with FaultPlan() as plan:
                plan.on("protocol.send", reset_connection)
                with pytest.raises(ConnectionResetError):
                    send_message(a, request("ping"))
            assert plan.fired("protocol.send") == 1
            # The reset fired before any byte hit the wire: the peer sees a
            # clean close, not a torn frame.
            a.close()
            with pytest.raises(ConnectionClosed):
                recv_message(b)
        finally:
            b.close()

    def test_injected_recv_reset_surfaces_at_the_reader(self):
        from repro.testing.faults import FaultPlan, reset_connection

        a, b = _pair()
        try:
            send_message(a, request("ping"))
            with FaultPlan() as plan:
                plan.on("protocol.recv", reset_connection)
                with pytest.raises(ConnectionResetError):
                    recv_message(b)
            # Disarmed, the frame that was already on the wire still reads.
            assert recv_message(b)["op"] == "ping"
        finally:
            a.close()
            b.close()

    def test_oversized_frame_still_rejected_under_fault_plan(self):
        # An armed (but non-matching) plan must not perturb the framing
        # checks themselves.
        from repro.testing.faults import FaultPlan, delay

        a, b = _pair()
        try:
            with FaultPlan() as plan:
                plan.on("store.lock", delay(0.0))
                a.sendall(struct.pack(">I", MAX_MESSAGE_BYTES + 1))
                with pytest.raises(ProtocolError, match="frame limit"):
                    recv_message(b)
            assert plan.fired() == 0
        finally:
            a.close()
            b.close()


class TestEnvelope:
    def test_request_rejects_unknown_op(self):
        with pytest.raises(ValueError, match="unknown op"):
            request("explode")

    def test_every_documented_op_builds(self):
        for op in protocol.OPS:
            assert request(op)["op"] == op

    def test_version_check_accepts_current(self):
        assert check_versions(request("ping")) is None
        assert check_versions(ok_response()) is None

    def test_version_check_rejects_wrong_protocol(self):
        message = request("ping")
        message["protocol"] = PROTOCOL_VERSION + 1
        error, code = check_versions(message)
        assert code == "version_mismatch"
        assert str(PROTOCOL_VERSION + 1) in error

    def test_version_check_rejects_wrong_schema(self):
        message = request("ping")
        message["schema"] = SCHEMA_VERSION + 7
        error, code = check_versions(message)
        assert code == "version_mismatch"
        assert "schema" in error

    def test_version_check_rejects_missing_versions(self):
        assert check_versions({"op": "ping"}) is not None

    def test_error_response_shape(self):
        response = error_response("boom", "some_code")
        assert response["ok"] is False
        assert response["error"] == "boom"
        assert response["code"] == "some_code"
