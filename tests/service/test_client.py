"""Tests for RemoteSession: read-through, drop-in compatibility, failure paths."""

import time

import pytest

from repro.core.experiments import figure10_cpu_ablation
from repro.core.pipeline import UnitCpuRunner, compile_model, compile_model_batch
from repro.models.zoo import get_model
from repro.rewriter import ShardedTuningStore, TuningSession
from repro.service import RemoteSession, ServiceClient, TuningService
from repro.workloads.table1 import TABLE1_LAYERS


@pytest.fixture
def service(tmp_path):
    with TuningService(tmp_path / "store", speculative=False) as svc:
        yield svc


def _tune_layers(session, layers):
    runner = UnitCpuRunner(session=session)
    for params in layers:
        runner.conv2d_latency(params)


def _reference(layers):
    session = TuningSession()
    _tune_layers(session, layers)
    return {record.key: record for record in session.cache.records()}


class TestReadThrough:
    def test_server_runs_the_searches(self, service):
        session = RemoteSession(service.address)
        _tune_layers(session, TABLE1_LAYERS[:3])
        assert session.server_tunes == 3
        assert session.searches_run == 0  # the client profiled nothing
        assert service.session.searches_run == 3

    def test_second_client_sees_first_clients_records(self, service):
        _tune_layers(RemoteSession(service.address), TABLE1_LAYERS[:3])
        second = RemoteSession(service.address)
        _tune_layers(second, TABLE1_LAYERS[:3])
        assert second.server_hits + second.server_tunes == 3
        assert service.session.searches_run == 3  # nothing re-searched

    def test_memory_tier_short_circuits_the_network(self, service):
        session = RemoteSession(service.address)
        _tune_layers(session, TABLE1_LAYERS[:2])
        sent = session.client.requests_sent
        _tune_layers(session, TABLE1_LAYERS[:2])  # all memory hits
        assert session.client.requests_sent == sent

    def test_records_bit_identical_to_local_tuning(self, service):
        session = RemoteSession(service.address)
        _tune_layers(session, TABLE1_LAYERS[:4])
        reference = _reference(TABLE1_LAYERS[:4])
        assert len(reference) == 4
        for key, expected in reference.items():
            got = session.cache.lookup(key)
            assert got is not None
            assert got.to_json() == expected.to_json()

    def test_memoize_flows_through_the_server(self, service):
        from repro.hwsim import CostBreakdown
        from repro.rewriter import TuningKey

        key = TuningKey(
            kind="conv2d",
            params=(("index", 1),),
            intrinsic="",
            machine="cascade-lake",
            space="library:onednn",
        )
        first = RemoteSession(service.address)
        cost = first.memoize(key, lambda: CostBreakdown(seconds=3.25))
        assert cost.seconds == 3.25
        second = RemoteSession(service.address)
        served = second.memoize(key, lambda: CostBreakdown(seconds=999.0))
        assert served.seconds == 3.25  # computed once fleet-wide
        assert second.server_hits == 1

    def test_early_exit_strategy_never_asks_the_server_to_tune(self, service):
        session = RemoteSession(service.address, strategy="early_exit")
        _tune_layers(session, TABLE1_LAYERS[:2])
        assert session.searches_run == 2  # searched locally (approximate keys)
        assert session.server_tunes == 0
        assert service.session.searches_run == 0
        # ...but the approximate records are still published for siblings
        sibling = RemoteSession(service.address, strategy="early_exit")
        _tune_layers(sibling, TABLE1_LAYERS[:2])
        assert sibling.server_hits == 2 and sibling.searches_run == 0


class TestDropIn:
    def test_compile_model_with_remote_session(self, service):
        local = compile_model(get_model("resnet-18", fresh=True))
        remote = compile_model(
            get_model("resnet-18", fresh=True), session=RemoteSession(service.address)
        )
        assert remote.latency_ms == local.latency_ms
        assert service.session.searches_run > 0

    def test_compile_model_remote_address_convenience(self, service):
        host, port = service.address
        compiled = compile_model(get_model("resnet-18", fresh=True), remote=f"{host}:{port}")
        assert compiled.latency_ms > 0

    def test_remote_and_session_are_mutually_exclusive(self, service):
        with pytest.raises(ValueError, match="remote="):
            compile_model(
                get_model("resnet-18", fresh=True),
                session=TuningSession(),
                remote=service.address,
            )

    def test_compile_model_batch_rejects_remote_plus_workers(self, service):
        with pytest.raises(ValueError, match="redundant"):
            compile_model_batch(["resnet-18"], remote=service.address, workers=2)

    def test_figure_driver_against_the_daemon(self, service):
        local_rows = figure10_cpu_ablation(layers=TABLE1_LAYERS[:2])
        remote_rows = figure10_cpu_ablation(
            layers=TABLE1_LAYERS[:2], remote=service.address
        )
        assert remote_rows == local_rows


class TestFailurePaths:
    def test_unreachable_server_falls_back_to_local_store(self, tmp_path):
        fallback = tmp_path / "local"
        session = RemoteSession(
            ("127.0.0.1", 1),  # nothing listens on port 1
            retries=0,
            timeout=0.2,
            fallback_store=fallback,
            offline_cooldown_s=60.0,
        )
        _tune_layers(session, TABLE1_LAYERS[:2])
        assert session.offline_errors >= 1
        assert session.searches_run == 2  # tuned locally
        assert not session.online
        # the winners landed in the local fallback store, uncorrupted
        store = ShardedTuningStore(fallback)
        assert len(store.load()) == 2
        assert store.stats.corrupt_lines == 0
        # a fresh offline session reads them back without tuning
        warm = RemoteSession(
            ("127.0.0.1", 1),
            retries=0,
            timeout=0.2,
            fallback_store=fallback,
            offline_cooldown_s=60.0,
        )
        warm.force_offline()
        _tune_layers(warm, TABLE1_LAYERS[:2])
        assert warm.searches_run == 0 and warm.local_fallbacks == 2

    def test_server_killed_mid_tune_falls_back_and_restarts_clean(self, tmp_path):
        """The satellite scenario: daemon dies mid-search; the client keeps
        working from its local store and the daemon restarts uncorrupted."""
        import repro.service.server as server_module

        store_root = tmp_path / "store"
        svc = TuningService(store_root, speculative=False).start()
        original = server_module.run_task
        reached = __import__("threading").Event()

        def hang_then_die(task, session):
            reached.set()
            time.sleep(30)  # the daemon will be torn down under us
            return original(task, session)

        server_module.run_task = hang_then_die
        try:
            session = RemoteSession(
                svc.address,
                retries=0,
                timeout=1.0,
                tune_timeout=1.0,  # give up on the hung server quickly
                fallback_store=tmp_path / "local",
                offline_cooldown_s=120.0,
            )
            runner = UnitCpuRunner(session=session)
            runner.conv2d_latency(TABLE1_LAYERS[0])  # server hangs; client recovers
            assert reached.wait(5.0)
            assert session.searches_run == 1  # searched locally after timeout
            assert session.offline_errors >= 1
            record = session.cache.lookup(next(iter(_reference(TABLE1_LAYERS[:1]))))
            assert record is not None
        finally:
            server_module.run_task = original
            svc.stop()  # kill the daemon (its search thread is still hung)

        # The client's record went to the local fallback store.
        fallback = ShardedTuningStore(tmp_path / "local")
        assert len(fallback.load()) == 1

        # A restarted daemon over the same store directory comes up clean.
        with TuningService(store_root, speculative=False) as fresh:
            with ServiceClient(fresh.address) as client:
                stats = client.stats()
                assert stats["store"]["corrupt_lines"] == 0
                assert stats["store"]["stale_records"] == 0
                reference = _reference(TABLE1_LAYERS[:1])
                for key, expected in reference.items():
                    assert client.tune(key).to_json() == expected.to_json()

    def test_session_reconnects_after_cooldown(self, tmp_path):
        with TuningService(tmp_path / "store", speculative=False) as svc:
            session = RemoteSession(
                svc.address, retries=0, timeout=2.0, offline_cooldown_s=0.05
            )
            session._mark_down()  # simulate a transient outage
            assert not session.online
            time.sleep(0.06)
            assert session.online
            _tune_layers(session, TABLE1_LAYERS[:1])
            assert session.server_tunes == 1

    def test_force_offline_pins_the_session_to_local_tiers(self, service, tmp_path):
        session = RemoteSession(
            service.address, fallback_store=tmp_path / "local"
        )
        session.force_offline()
        assert not session.online
        _tune_layers(session, TABLE1_LAYERS[:1])
        assert session.searches_run == 1
        assert session.client.requests_sent == 0  # never touched the wire
        assert service.session.searches_run == 0


    def test_publish_falls_back_when_server_refuses(self, service, monkeypatch):
        session = RemoteSession(service.address)
        # Have the server-side tune decline so the client searches locally...
        monkeypatch.setattr(session, "server_tune", False)
        _tune_layers(session, TABLE1_LAYERS[:1])
        assert session.searches_run == 1
        # ...and the locally-found record was still published to the server.
        other = RemoteSession(service.address)
        _tune_layers(other, TABLE1_LAYERS[:1])
        assert other.server_hits == 1 and other.searches_run == 0


class TestAddressesAndPolicy:
    def test_string_address_accepted(self, service):
        host, port = service.address
        session = RemoteSession(f"{host}:{port}")
        _tune_layers(session, TABLE1_LAYERS[:1])
        assert session.server_tunes == 1

    def test_normalize_addresses_forms(self):
        from repro.service import normalize_addresses

        assert normalize_addresses(("10.0.0.1", 9461)) == [("10.0.0.1", 9461)]
        assert normalize_addresses("10.0.0.1:9461") == [("10.0.0.1", 9461)]
        assert normalize_addresses(":9461") == [("127.0.0.1", 9461)]
        assert normalize_addresses(
            ["10.0.0.1:9461", ("10.0.0.2", 9462)]
        ) == [("10.0.0.1", 9461), ("10.0.0.2", 9462)]
        with pytest.raises(ValueError):
            normalize_addresses([])
        with pytest.raises(ValueError):
            normalize_addresses("no-port-here")

    def test_retry_backoff_s_kwarg_is_a_deprecated_alias(self, service):
        with pytest.warns(DeprecationWarning, match="retry_backoff_s"):
            client = ServiceClient(service.address, retries=1, retry_backoff_s=0.01)
        assert client.retry.base_delay_s == 0.01  # still honoured
        assert client.retries == 1
        assert client.retry_backoff_s == 0.01  # read-only compat property
        client.close()

    def test_explicit_retry_policy_drives_the_transport(self, service):
        from repro.retry import RetryPolicy

        policy = RetryPolicy(max_attempts=7, base_delay_s=0.123, jitter=0.0)
        client = ServiceClient(service.address, retry_policy=policy)
        assert client.retry is policy
        assert client.retries == 6
        client.ping()
        client.close()

    def test_second_endpoint_serves_when_first_is_dead(self, service):
        client = ServiceClient(
            [("127.0.0.1", 1), service.address], retries=1, timeout=0.5
        )
        assert client.ping()["server"] == "tuning-service"
        assert client.failovers == 1
        assert client._active == 1
        client.close()

    def test_remote_session_summary_names_endpoints_and_breaker(self, service):
        session = RemoteSession([service.address, ("127.0.0.1", 1)])
        _tune_layers(session, TABLE1_LAYERS[:1])
        summary = session.summary()
        assert "breaker closed" in summary
        assert f"{service.address[0]}:{service.address[1]}" in summary
        assert "1 server tunes" not in summary or session.server_tunes == 1
