"""Sandboxed kernel qualification: crashes die in the child, never the host.

The sandbox exists so that the *first* execution of a freshly compiled kernel
— the moment a miscompile segfaults, OOMs, or spins — happens in a
disposable subprocess.  Every test here either drives a real failure mode
through an injected fault and asserts the classified verdict, or pins the
host-side integration: a rejected kernel demotes the plan with a recorded
``sandbox_*`` reason while the host process (this test runner) survives.
"""

import os

import numpy as np
import pytest

from repro.testing import faults
from repro.tir import (
    EngineStats,
    alloc_buffers,
    compile_plan,
    lower,
    native_toolchain,
    run,
    tier_state,
)
from repro.tir import sandbox
from repro.tir.backend import run_tiered
from tests.conftest import small_conv_hwc

TOOLCHAIN_KIND = native_toolchain()[0]
needs_toolchain = pytest.mark.skipif(
    TOOLCHAIN_KIND is None, reason="no native toolchain (numba or C compiler)"
)


def _fresh_plan():
    return compile_plan(lower(small_conv_hwc()))


def _qualify_inputs(plan, seed=0):
    """(arrays in param order, expected output) for one qualification."""
    buffers = alloc_buffers(plan.func, np.random.default_rng(seed))
    expected = run(plan.func, {t: a.copy() for t, a in buffers.items()})
    arrays = [np.array(buffers[t], copy=True) for t in plan.func.params]
    return arrays, expected


def _in_sandbox(context):
    return context.get("where") == "sandbox"


class TestQualify:
    @needs_toolchain
    def test_good_kernel_qualifies(self):
        plan = _fresh_plan()
        arrays, expected = _qualify_inputs(plan)
        verdict = sandbox.qualify(plan.func, arrays, expected)
        assert verdict.ok and verdict.outcome == "qualified"
        assert verdict.exitcode == 0

    @needs_toolchain
    def test_mismatch_is_rejected_not_raised(self):
        plan = _fresh_plan()
        arrays, expected = _qualify_inputs(plan)
        verdict = sandbox.qualify(plan.func, arrays, expected + 1)
        assert not verdict.ok and verdict.outcome == "mismatch"

    @needs_toolchain
    def test_segfault_dies_in_child_and_classifies(self):
        plan = _fresh_plan()
        arrays, expected = _qualify_inputs(plan)
        with faults.FaultPlan(seed=0) as plan_f:
            plan_f.on("backend.qualify", faults.segfault, when=_in_sandbox)
            verdict = sandbox.qualify(plan.func, arrays, expected)
        assert not verdict.ok and verdict.outcome == "segfault"
        assert "SIGSEGV" in verdict.reason
        assert verdict.exitcode is not None and verdict.exitcode < 0

    @needs_toolchain
    def test_hang_hits_wall_clock_watchdog(self):
        plan = _fresh_plan()
        arrays, expected = _qualify_inputs(plan)
        with faults.FaultPlan(seed=0) as plan_f:
            plan_f.on("backend.qualify", faults.hang(60.0), when=_in_sandbox)
            verdict = sandbox.qualify(plan.func, arrays, expected, timeout_s=1.0)
        assert not verdict.ok and verdict.outcome == "hang"
        assert verdict.elapsed_s < 30.0  # watchdog, not the 60s sleep

    @needs_toolchain
    @pytest.mark.skipif(os.name != "posix", reason="rlimits are POSIX-only")
    def test_oom_is_contained_by_rlimit(self):
        plan = _fresh_plan()
        arrays, expected = _qualify_inputs(plan)
        with faults.FaultPlan(seed=0) as plan_f:
            plan_f.on("backend.qualify", faults.oom(8192), when=_in_sandbox)
            verdict = sandbox.qualify(plan.func, arrays, expected, memory_mb=512)
        assert not verdict.ok and verdict.outcome == "oom"

    def test_no_toolchain_reports_unavailable(self, monkeypatch):
        monkeypatch.setenv("REPRO_DISABLE_NATIVE", "1")
        native_toolchain(refresh=True)
        try:
            plan = _fresh_plan()
            arrays, expected = _qualify_inputs(plan)
            verdict = sandbox.qualify(plan.func, arrays, expected)
            assert not verdict.ok and verdict.outcome == "unavailable"
        finally:
            monkeypatch.delenv("REPRO_DISABLE_NATIVE")
            native_toolchain(refresh=True)


class TestPromotionIntegration:
    @needs_toolchain
    def test_sandbox_rejection_demotes_with_counters(self):
        plan = _fresh_plan()
        stats = EngineStats()
        buffers = alloc_buffers(plan.func, np.random.default_rng(0))
        with faults.FaultPlan(seed=0) as plan_f:
            plan_f.on("backend.qualify", faults.segfault, when=_in_sandbox)
            result = run_tiered(plan, buffers, stats=stats, promote_after=1)
        state = tier_state(plan)
        assert state.demoted and state.tier == "vectorized"
        assert state.sandbox_outcome == "segfault"
        assert "sandbox rejected" in state.demotion_reason
        assert stats.sandbox_qualifications == 1
        assert stats.sandbox_rejections == 1
        assert plan.stats.sandbox_rejections == 1
        # The vectorized result is still correct — the failure was absorbed.
        fresh = alloc_buffers(plan.func, np.random.default_rng(0))
        assert np.array_equal(result, run(plan.func, fresh))

    @needs_toolchain
    def test_qualified_kernel_promotes_and_records_outcome(self):
        plan = _fresh_plan()
        stats = EngineStats()
        buffers = alloc_buffers(plan.func, np.random.default_rng(1))
        run_tiered(plan, buffers, stats=stats, promote_after=1)
        state = tier_state(plan)
        assert state.tier == "native" and not state.demoted
        assert state.sandbox_outcome == "qualified"
        assert stats.sandbox_qualifications == 1
        assert stats.sandbox_rejections == 0

    @needs_toolchain
    def test_disable_sandbox_env_skips_qualification(self, monkeypatch):
        monkeypatch.setenv("REPRO_DISABLE_SANDBOX", "1")
        plan = _fresh_plan()
        stats = EngineStats()
        buffers = alloc_buffers(plan.func, np.random.default_rng(2))
        run_tiered(plan, buffers, stats=stats, promote_after=1)
        state = tier_state(plan)
        assert state.tier == "native"
        assert state.sandbox_outcome is None
        assert stats.sandbox_qualifications == 0

    @needs_toolchain
    def test_demoted_plan_still_bit_identical(self):
        plan = _fresh_plan()
        stats = EngineStats()
        with faults.FaultPlan(seed=0) as plan_f:
            plan_f.on("backend.qualify", faults.segfault, when=_in_sandbox)
            buffers = alloc_buffers(plan.func, np.random.default_rng(3))
            run_tiered(plan, buffers, stats=stats, promote_after=1)
        assert tier_state(plan).demoted
        buffers = alloc_buffers(plan.func, np.random.default_rng(4))
        reference = run(plan.func, {t: a.copy() for t, a in buffers.items()})
        got = run_tiered(plan, buffers, stats=stats, promote_after=1)
        assert np.array_equal(got, reference)


class TestKnobs:
    def test_env_timeout_and_memory_parsing(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANDBOX_TIMEOUT", "7.5")
        monkeypatch.setenv("REPRO_SANDBOX_MEMORY_MB", "256")
        assert sandbox.default_timeout_s() == 7.5
        assert sandbox.default_memory_mb() == 256

    def test_invalid_env_values_fall_back(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANDBOX_TIMEOUT", "banana")
        monkeypatch.setenv("REPRO_SANDBOX_MEMORY_MB", "-3")
        assert sandbox.default_timeout_s() == 120.0
        assert sandbox.default_memory_mb() == 4096

    def test_sandbox_enabled_env(self, monkeypatch):
        assert sandbox.sandbox_enabled()
        monkeypatch.setenv("REPRO_DISABLE_SANDBOX", "1")
        assert not sandbox.sandbox_enabled()
