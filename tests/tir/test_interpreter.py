"""Interpreter correctness: tensor IR executes exactly like numpy references."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dsl import Select, cast, compute, placeholder, reduce_axis, sum_reduce, max_reduce
from repro.schedule import create_schedule
from repro.tir import Interpreter, alloc_buffers, lower, run
from tests.conftest import conv2d_hwc_reference, matmul_reference, small_conv_hwc, small_matmul_int8


class TestBasicExecution:
    def test_elementwise(self, rng):
        a = placeholder((8,), "float32", "a")
        out = compute((8,), lambda i: a[i] * 2.0 + 1.0, name="axpb")
        func = lower(out)
        buffers = alloc_buffers(func, rng)
        result = run(func, buffers)
        np.testing.assert_allclose(result, buffers[a] * 2.0 + 1.0, rtol=1e-6)

    def test_conv_hwc_matches_reference(self, rng):
        conv = small_conv_hwc()
        func = lower(conv)
        buffers = alloc_buffers(func, rng)
        result = run(func, buffers)
        data, weight = (buffers[t] for t in func.inputs)
        assert np.array_equal(result, conv2d_hwc_reference(data, weight))

    def test_matmul_matches_reference(self, rng):
        mm = small_matmul_int8(4, 16, 8)
        func = lower(mm)
        buffers = alloc_buffers(func, rng)
        result = run(func, buffers)
        a, b = (buffers[t] for t in func.inputs)
        assert np.array_equal(result, matmul_reference(a, b, transpose_b=True))

    def test_max_reduction(self, rng):
        a = placeholder((4, 6), "int32", "a")
        j = reduce_axis(0, 6, "j")
        out = compute((4,), lambda i: max_reduce(a[i, j], j), name="rowmax")
        func = lower(out)
        buffers = alloc_buffers(func, rng)
        result = run(func, buffers)
        assert np.array_equal(result, buffers[a].max(axis=1))

    def test_select(self, rng):
        a = placeholder((8,), "int32", "a")
        out = compute((8,), lambda i: Select(a[i] > 0, a[i], 0 - a[i]), name="abs")
        func = lower(out)
        buffers = alloc_buffers(func, rng)
        result = run(func, buffers)
        assert np.array_equal(result, np.abs(buffers[a]))

    def test_missing_buffer_raises(self):
        conv = small_conv_hwc()
        func = lower(conv)
        with pytest.raises(KeyError):
            Interpreter(func).run({})

    def test_wrong_shape_raises(self, rng):
        conv = small_conv_hwc()
        func = lower(conv)
        buffers = alloc_buffers(func, rng)
        bad = {t: np.zeros((1, 1)) if i == 0 else arr for i, (t, arr) in enumerate(buffers.items())}
        with pytest.raises(ValueError):
            Interpreter(func).run(bad)


class TestDtypeSemantics:
    def test_int8_cast_wraps(self):
        a = placeholder((1,), "int32", "a")
        out = compute((1,), lambda i: cast("int8", a[i]), name="narrow")
        func = lower(out)
        buffers = {func.inputs[0]: np.array([300], dtype=np.int32),
                   func.output: np.zeros((1,), dtype=np.int8)}
        result = run(func, buffers)
        assert result[0] == np.int32(300).astype(np.int8)

    def test_fp16_rounding_visible(self):
        a = placeholder((1,), "float32", "a")
        out = compute((1,), lambda i: cast("float16", a[i]), name="half")
        func = lower(out)
        buffers = {func.inputs[0]: np.array([1.0001], dtype=np.float32),
                   func.output: np.zeros((1,), dtype=np.float16)}
        result = run(func, buffers)
        assert result[0] == np.float16(1.0001)


class TestScheduledExecution:
    @pytest.mark.parametrize("factor", [1, 2, 3, 5, 16])
    def test_split_factors_preserve_conv(self, rng, factor):
        conv = small_conv_hwc()
        sch = create_schedule(conv)
        st = sch.stage
        st.split(st[conv.op.axes[2]], factor)
        func = lower(sch)
        buffers = alloc_buffers(func, rng)
        result = run(func, buffers)
        data, weight = (buffers[t] for t in func.inputs)
        assert np.array_equal(result, conv2d_hwc_reference(data, weight))


@given(st.integers(1, 5), st.integers(1, 10), st.integers(1, 12))
@settings(max_examples=30, deadline=None)
def test_property_matmul_random_shapes(m, n, k):
    """Interpreted matmul equals numpy for arbitrary small shapes."""
    mm = small_matmul_int8(m, n, k)
    func = lower(mm)
    buffers = alloc_buffers(func, np.random.default_rng(m * 100 + n * 10 + k))
    result = run(func, buffers)
    a, b = (buffers[t] for t in func.inputs)
    assert np.array_equal(result, matmul_reference(a, b, transpose_b=True))


class TestVectorExprs:
    """Ramp / Broadcast / Shuffle evaluate as whole lane groups."""

    def test_ramp_gather_store(self, rng):
        from repro.dsl.expr import Const, Ramp, Var
        from repro.dsl.tensor import Tensor
        from repro.tir import For, PrimFunc, Store

        a = placeholder((2, 6), "int32", "a")
        out_t = Tensor((2, 6), "int32", "out")
        i = Var("i")
        lanes = Ramp(Const(0), 1, 6)
        func = PrimFunc(
            "ramped", [a, out_t], For(i, 2, Store(out_t, [i, lanes], a[i, lanes] * 2)), op=None
        )
        buffers = alloc_buffers(func, rng)
        result = run(func, buffers)
        assert np.array_equal(result, buffers[a] * 2)

    def test_broadcast_and_shuffle(self, rng):
        from repro.dsl.expr import Broadcast, Const, Ramp, Shuffle, Var
        from repro.dsl.tensor import Tensor
        from repro.tir import For, PrimFunc, Store

        a = placeholder((8,), "int32", "a")
        out_t = Tensor((8,), "int32", "out")
        value = Shuffle([a[Ramp(Const(4), 1, 4)], a[Ramp(Const(0), 1, 4)]])
        value = value + Broadcast(Const(10), 8)
        func = PrimFunc(
            "shuffled", [a, out_t], Store(out_t, [Ramp(Const(0), 1, 8)], value), op=None
        )
        buffers = alloc_buffers(func, rng)
        result = run(func, buffers)
        expected = np.concatenate([buffers[a][4:], buffers[a][:4]]) + 10
        assert np.array_equal(result, expected)


class TestEdgeCaseStatements:
    def test_if_then_else_guard_skips_stores(self, rng):
        from repro.dsl.expr import Compare, Const, Var
        from repro.dsl.tensor import Tensor
        from repro.tir import For, IfThenElse, PrimFunc, Store

        a = placeholder((6,), "int32", "a")
        out_t = Tensor((6,), "int32", "out")
        i = Var("i")
        body = For(
            i, 6, IfThenElse(Compare("<", i, Const(4)), Store(out_t, [i], a[i] + 1))
        )
        func = PrimFunc("guarded", [a, out_t], body, op=None)
        buffers = alloc_buffers(func, rng)
        result = run(func, buffers)
        assert np.array_equal(result[:4], buffers[a][:4] + 1)
        assert np.array_equal(result[4:], np.zeros(2, dtype=np.int32))

    def test_allocate_scratch_is_zero_initialised(self, rng):
        from repro.dsl.expr import Var
        from repro.dsl.tensor import Tensor
        from repro.tir import Allocate, For, PrimFunc, Store, seq

        a = placeholder((4,), "int32", "a")
        out_t = Tensor((4,), "int32", "out")
        scratch = Tensor((4,), "int32", "scratch")
        i, j = Var("i"), Var("j")
        # Only even scratch slots are written; odd slots must read as zero.
        body = Allocate(
            scratch,
            seq(
                For(i, 2, Store(scratch, [i * 2], a[i * 2])),
                For(j, 4, Store(out_t, [j], scratch[j] + 1)),
            ),
        )
        func = PrimFunc("alloc", [a, out_t], body, op=None)
        buffers = alloc_buffers(func, rng)
        result = run(func, buffers)
        expected = np.array(
            [buffers[a][0] + 1, 1, buffers[a][2] + 1, 1], dtype=np.int32
        )
        assert np.array_equal(result, expected)
