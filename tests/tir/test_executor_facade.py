"""The unified Executor facade and the ValidationPolicy kwarg unification.

One front door for execution (``Executor``), one policy vocabulary for
validation everywhere (``off``/``spot``/``full``), and every legacy
entrypoint/kwarg surviving as a warn-once deprecation shim.
"""

import warnings

import numpy as np
import pytest

import repro.tir.executor as executor_module
from repro.hwsim.cost import CostBreakdown
from repro.rewriter.records import TuningKey
from repro.rewriter.session import TuningSession
from repro.tir import (
    Executor,
    Interpreter,
    ValidationError,
    ValidationPolicy,
    alloc_buffers,
    execute,
    lower,
    reset_deprecation_warnings,
    run,
    vector_run,
)
from repro.tir.backend import _BACKENDS, ExecutionBackend, register_backend
from tests.conftest import small_conv_hwc


def _func():
    return lower(small_conv_hwc())


def _buffers(func, seed=0):
    return alloc_buffers(func, np.random.default_rng(seed))


def _no_deprecation(record):
    return [w for w in record if issubclass(w.category, DeprecationWarning)]


class TestValidationPolicy:
    def _coerce(self, value, **overrides):
        kwargs = dict(
            default=ValidationPolicy.SPOT,
            bool_true=ValidationPolicy.FULL,
            owner="test",
        )
        kwargs.update(overrides)
        return ValidationPolicy.coerce(value, **kwargs)

    def test_none_takes_default(self):
        assert self._coerce(None) is ValidationPolicy.SPOT

    def test_policy_passes_through(self):
        assert self._coerce(ValidationPolicy.FULL) is ValidationPolicy.FULL

    def test_strings_parse_case_insensitively(self):
        assert self._coerce("off") is ValidationPolicy.OFF
        assert self._coerce("SPOT") is ValidationPolicy.SPOT
        assert self._coerce("Full") is ValidationPolicy.FULL

    def test_bool_maps_with_one_deprecation_warning(self):
        reset_deprecation_warnings()
        with pytest.warns(DeprecationWarning, match="boolean validate"):
            assert self._coerce(True) is ValidationPolicy.FULL
        with warnings.catch_warnings(record=True) as record:
            warnings.simplefilter("always")
            assert self._coerce(False) is ValidationPolicy.OFF
        assert not _no_deprecation(record)  # warn-once: second bool is silent

    def test_garbage_raises(self):
        with pytest.raises(TypeError):
            self._coerce(3.5)


class TestExecutor:
    def test_auto_tier_resolves_to_a_real_backend(self):
        assert Executor().tier in ("native", "vectorized")

    def test_unknown_tier_raises(self):
        with pytest.raises(ValueError, match="unknown tier"):
            Executor(tier="llvm")

    def test_interpreter_tier_matches_reference(self):
        func = _func()
        buffers = _buffers(func)
        expected = run(func, {t: a.copy() for t, a in buffers.items()})
        got = Executor(tier="interpreter").run(func, buffers)
        np.testing.assert_array_equal(got, expected)

    def test_deprecated_validate_bool_maps_to_full(self):
        reset_deprecation_warnings()
        with pytest.warns(DeprecationWarning):
            executor = Executor(tier="vectorized", validate=True)
        assert executor.validation is ValidationPolicy.FULL

    def test_validate_and_validation_together_raise(self):
        with pytest.raises(TypeError, match="either validation"):
            Executor(validation="spot", validate=True)

    def test_spot_checks_each_distinct_function_once(self, monkeypatch):
        calls = []
        real_interpreter = executor_module.Interpreter

        class CountingInterpreter(real_interpreter):
            def __init__(self, func):
                calls.append(func)
                super().__init__(func)

        monkeypatch.setattr(executor_module, "Interpreter", CountingInterpreter)
        executor = Executor(tier="vectorized", validation="spot")
        func = _func()
        for seed in range(3):
            executor.run(func, _buffers(func, seed=seed))
        assert len(calls) == 1

    def test_full_checks_every_run(self, monkeypatch):
        calls = []
        real_interpreter = executor_module.Interpreter

        class CountingInterpreter(real_interpreter):
            def __init__(self, func):
                calls.append(func)
                super().__init__(func)

        monkeypatch.setattr(executor_module, "Interpreter", CountingInterpreter)
        executor = Executor(tier="vectorized", validation="full")
        func = _func()
        for seed in range(3):
            executor.run(func, _buffers(func, seed=seed))
        assert len(calls) == 3

    def test_validation_catches_a_lying_backend(self):
        class OffByOneBackend(ExecutionBackend):
            name = "off-by-one"

            def run(self, func, buffers, stats=None, strict=False, promote_after=None):
                out = Interpreter(func).run(buffers)
                out += 1
                return out

        register_backend(OffByOneBackend())
        try:
            executor = Executor(tier="off-by-one", validation="full")
            func = _func()
            with pytest.raises(ValidationError, match="differs"):
                executor.run(func, _buffers(func))
        finally:
            del _BACKENDS["off-by-one"]

    def test_runs_accumulate_into_executor_stats(self):
        executor = Executor(tier="vectorized")
        func = _func()
        executor.run(func, _buffers(func))
        assert executor.stats.vector_nests > 0


class TestDeprecatedShims:
    def test_execute_warns_exactly_once_and_delegates(self):
        reset_deprecation_warnings()
        func = _func()
        buffers = _buffers(func)
        expected = run(func, {t: a.copy() for t, a in buffers.items()})
        with pytest.warns(DeprecationWarning, match="repro.tir.execute is deprecated"):
            got = execute(func, {t: a.copy() for t, a in buffers.items()})
        np.testing.assert_array_equal(got, expected)
        with warnings.catch_warnings(record=True) as record:
            warnings.simplefilter("always")
            execute(func, {t: a.copy() for t, a in buffers.items()})
        assert not _no_deprecation(record)

    def test_vector_run_warns_exactly_once_and_delegates(self):
        reset_deprecation_warnings()
        func = _func()
        buffers = _buffers(func)
        expected = run(func, {t: a.copy() for t, a in buffers.items()})
        with pytest.warns(DeprecationWarning, match="vector_run is deprecated"):
            got = vector_run(func, {t: a.copy() for t, a in buffers.items()})
        np.testing.assert_array_equal(got, expected)
        with warnings.catch_warnings(record=True) as record:
            warnings.simplefilter("always")
            vector_run(func, {t: a.copy() for t, a in buffers.items()})
        assert not _no_deprecation(record)

    def test_execute_rejects_unknown_engine(self):
        func = _func()
        with pytest.raises(ValueError, match="unknown engine"):
            execute(func, _buffers(func), engine="tpu")


# ---------------------------------------------------------------------------
# TuningSession.tune: the unified validation= policy
# ---------------------------------------------------------------------------

CANDIDATES = [3, 1, 2]


def _key(space="policy-test"):
    return TuningKey(
        kind="conv2d", params=(("h", 8),), intrinsic="vnni", machine="test", space=space
    )


def _breakdown(config):
    return CostBreakdown(seconds=float(config))


class TestTuneValidationPolicy:
    def test_spot_default_validates_winner_only(self):
        calls = []
        TuningSession().tune(_key(), CANDIDATES, _breakdown, oracle=calls.append)
        assert calls == [1]  # exactly the winner, exactly once

    def test_off_never_invokes_the_oracle(self):
        calls = []
        TuningSession().tune(
            _key(), CANDIDATES, _breakdown, oracle=calls.append, validation="off"
        )
        assert calls == []

    def test_full_screens_every_candidate_without_redundant_winner_pass(self):
        calls = []
        TuningSession().tune(
            _key(), CANDIDATES, _breakdown, oracle=calls.append, validation="full"
        )
        assert sorted(calls) == sorted(CANDIDATES)

    def test_full_oracle_rejections_remove_candidates(self):
        def reject_one(config):
            if config == 1:
                raise AssertionError("bad numerics")

        record = TuningSession().tune(
            _key(), CANDIDATES, _breakdown, oracle=reject_one, validation="full"
        )
        assert record.best_config == 2  # the cheapest *validated* candidate
        assert record.result.rejected == 1

    def test_deprecated_validate_kwarg_warns_once(self):
        reset_deprecation_warnings()
        calls = []
        with pytest.warns(DeprecationWarning, match="validate=...\\) is deprecated"):
            TuningSession().tune(_key("a"), CANDIDATES, _breakdown, validate=calls.append)
        assert calls == [1]
        with warnings.catch_warnings(record=True) as record:
            warnings.simplefilter("always")
            TuningSession().tune(_key("b"), CANDIDATES, _breakdown, validate=calls.append)
        assert not _no_deprecation(record)

    def test_validate_and_oracle_together_raise(self):
        with pytest.raises(TypeError, match="either oracle"):
            TuningSession().tune(
                _key(), CANDIDATES, _breakdown, validate=lambda c: None, oracle=lambda c: None
            )


class TestRunnerValidationResolution:
    """The operator runners resolve validate=/validation= through one helper."""

    def _resolve(self, validate=None, validation=None):
        from repro.core.pipeline import _SessionTunedRunner

        return _SessionTunedRunner._resolve_validation(validate, validation, "TestRunner")

    def test_default_is_off(self):
        assert self._resolve() is ValidationPolicy.OFF

    def test_validation_string_wins(self):
        assert self._resolve(validation="full") is ValidationPolicy.FULL

    def test_legacy_bool_maps_to_spot_with_warning(self):
        reset_deprecation_warnings()
        with pytest.warns(DeprecationWarning):
            assert self._resolve(validate=True) is ValidationPolicy.SPOT
        reset_deprecation_warnings()
        with pytest.warns(DeprecationWarning):
            assert self._resolve(validate=False) is ValidationPolicy.OFF
