"""Vectorized-engine correctness: bit-identical to the scalar interpreter.

The engine (``repro.tir.engine``) is the default validation oracle of the
repository; these tests pin its one contract — *exactly* the scalar
interpreter's results, on every statement/expression class it vectorizes and
on every workload family of the paper (dense, conv2d, conv3d, the Table I
layers), including the fallback path for constructs it cannot prove affine.
"""

from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import tensorize, validate_tensorize
from repro.dsl import Select, cast, compute, placeholder, reduce_axis, sum_reduce
from repro.dsl.expr import Broadcast, Const, Ramp, Shuffle, Var
from repro.dsl.tensor import Tensor
from repro.rewriter import CpuTuningConfig, GpuTuningConfig
from repro.schedule import create_schedule
from repro.tir import (
    Allocate,
    For,
    Interpreter,
    PrimFunc,
    Store,
    VectorizedEngine,
    alloc_buffers,
    execute,
    lower,
    run,
    seq,
)
from repro.workloads import (
    Conv2DParams,
    DenseParams,
    conv2d_hwc,
    conv2d_nchwc,
    conv3d_from_conv2d,
    conv3d_ncdhwc,
    dense_int8,
    matmul_fp16,
)
from repro.workloads.table1 import TABLE1_LAYERS
from tests.conftest import small_conv_hwc, small_matmul_fp16, small_matmul_int8


def assert_engine_matches_interpreter(func, rng=None, strict=True):
    """Run ``func`` through both executors and require bit-identical output."""
    buffers = alloc_buffers(func, rng or np.random.default_rng(0))
    ref = run(func, {t: a.copy() for t, a in buffers.items()})
    engine = VectorizedEngine(func, strict=strict)
    got = engine.run({t: a.copy() for t, a in buffers.items()})
    assert got.dtype == ref.dtype
    np.testing.assert_array_equal(got, ref)
    return engine.stats


def _scaled_table1(params: Conv2DParams) -> Conv2DParams:
    """A Table I layer with shrunk channel/spatial extents.

    The layer keeps its structural features (kernel size, stride, the blocked
    layout's padding behaviour) so the engine sees the same loop shapes, but
    becomes small enough that the *scalar* reference finishes in milliseconds
    — the full-size layers are exercised engine-only in the benchmarks.
    """
    ih = min(params.in_height, 6 + params.kernel - 1)
    return Conv2DParams(
        in_channels=min(params.in_channels, 8),
        in_height=ih,
        in_width=ih,
        out_channels=min(params.out_channels, 16),
        kernel=params.kernel,
        stride=params.stride,
        padding=params.padding,
        name=params.name,
    )


class TestPlainNests:
    def test_conv_hwc(self, rng):
        stats = assert_engine_matches_interpreter(lower(small_conv_hwc()), rng)
        assert stats.fallback_nests == 0
        assert stats.vector_stores > 0

    def test_matmul_int8(self, rng):
        assert_engine_matches_interpreter(lower(small_matmul_int8(5, 7, 9)), rng)

    def test_matmul_fp16_float_fold_order(self, rng):
        """Float sums are order-sensitive; the engine must mirror the scalar
        left-fold bit for bit, not use pairwise summation."""
        assert_engine_matches_interpreter(lower(small_matmul_fp16(8, 8, 24)), rng)

    def test_max_reduction(self, rng):
        a = placeholder((4, 6), "int32", "a")
        j = reduce_axis(0, 6, "j")
        out = compute((4,), lambda i: sum_reduce(a[i, j], j), name="rowsum")
        assert_engine_matches_interpreter(lower(out), rng)

        from repro.dsl import max_reduce

        out2 = compute((4,), lambda i: max_reduce(a[i, j], j), name="rowmax")
        assert_engine_matches_interpreter(lower(out2), rng)

    def test_select(self, rng):
        a = placeholder((8,), "int32", "a")
        out = compute((8,), lambda i: Select(a[i] > 0, a[i], 0 - a[i]), name="abs")
        assert_engine_matches_interpreter(lower(out), rng)

    def test_elementwise_float(self, rng):
        a = placeholder((8,), "float32", "a")
        out = compute((8,), lambda i: a[i] * 2.0 + 1.0, name="axpb")
        assert_engine_matches_interpreter(lower(out), rng)


class TestGuardsAndSchedules:
    @pytest.mark.parametrize("factor", [1, 2, 3, 5, 16])
    def test_imperfect_splits_guarded(self, rng, factor):
        """Residue (likely) guards become masks; clamped gathers and masked
        scatters must reproduce the guarded scalar loop exactly."""
        conv = small_conv_hwc()
        sch = create_schedule(conv)
        st_ = sch.stage
        st_.split(st_[conv.op.axes[2]], factor)
        stats = assert_engine_matches_interpreter(lower(sch), rng)
        assert stats.fallback_nests == 0

    def test_guard_on_spatial_axis(self, rng):
        conv = small_conv_hwc()
        sch = create_schedule(conv)
        st_ = sch.stage
        st_.split(st_[conv.op.axes[0]], 4)  # 6 % 4 != 0 -> residue guard
        assert_engine_matches_interpreter(lower(sch), rng)


class TestFallback:
    def test_if_then_else_with_else_falls_back(self, rng):
        """An else-branch conditional is not a residue guard: the engine must
        fall back to the interpreter and still be exact."""
        from repro.dsl.expr import Compare
        from repro.tir import IfThenElse

        a = placeholder((6,), "int32", "a")
        out_t = Tensor((6,), "int32", "out")
        i = Var("i")
        body = For(
            i,
            6,
            IfThenElse(
                Compare("<", i, Const(3)),
                Store(out_t, [i], a[i] * 2),
                Store(out_t, [i], a[i] - 1),
            ),
        )
        func = PrimFunc("branchy", [a, out_t], body, op=None)
        buffers = alloc_buffers(func, rng)
        ref = run(func, {t: b.copy() for t, b in buffers.items()})
        engine = VectorizedEngine(func)
        got = engine.run({t: b.copy() for t, b in buffers.items()})
        np.testing.assert_array_equal(got, ref)
        assert engine.stats.fallback_nests == 1
        assert engine.stats.fallback_reasons

    def test_allocate_scratch_buffer(self, rng):
        """Allocate introduces a scratch buffer; both executors must see the
        same zero-initialised storage and the same final output."""
        a = placeholder((8,), "int32", "a")
        out_t = Tensor((8,), "int32", "out")
        scratch = Tensor((8,), "int32", "scratch")
        i = Var("i")
        j = Var("j")
        body = Allocate(
            scratch,
            seq(
                For(i, 8, Store(scratch, [i], a[i] * 3)),
                For(j, 8, Store(out_t, [j], scratch[j] + 1)),
            ),
        )
        func = PrimFunc("scratchy", [a, out_t], body, op=None)
        buffers = alloc_buffers(func, rng)
        ref = run(func, {t: b.copy() for t, b in buffers.items()})
        got = VectorizedEngine(func).run({t: b.copy() for t, b in buffers.items()})
        np.testing.assert_array_equal(got, ref)

    def test_strict_mode_raises(self):
        from repro.dsl.expr import Compare
        from repro.tir import IfThenElse, Unvectorizable

        a = placeholder((4,), "int32", "a")
        out_t = Tensor((4,), "int32", "out")
        i = Var("i")
        body = For(
            i,
            4,
            IfThenElse(
                Compare("<", i, Const(2)),
                Store(out_t, [i], a[i]),
                Store(out_t, [i], a[i] + 1),
            ),
        )
        func = PrimFunc("strictly", [a, out_t], body, op=None)
        buffers = alloc_buffers(func, np.random.default_rng(0))
        with pytest.raises(Unvectorizable):
            VectorizedEngine(func, strict=True).run(buffers)

    def test_unknown_engine_rejected(self):
        func = lower(small_matmul_int8(2, 4, 4))
        with pytest.raises(ValueError):
            execute(func, alloc_buffers(func), engine="quantum")


class TestVectorExprs:
    """Ramp / Broadcast / Shuffle execute on whole lane groups."""

    def _vector_store_func(self, value_builder):
        a = placeholder((4, 8), "int32", "a")
        out_t = Tensor((4, 8), "int32", "out")
        i = Var("i")
        lane0 = Ramp(Const(0), 1, 8)
        body = For(i, 4, Store(out_t, [i, lane0], value_builder(a, i)))
        return PrimFunc("vectored", [a, out_t], body, op=None)

    @pytest.mark.parametrize(
        "builder",
        [
            lambda a, i: a[i, Ramp(Const(0), 1, 8)] * 2,
            lambda a, i: a[i, Ramp(Const(7), -1, 8)] + Broadcast(Const(5), 8),
            lambda a, i: Shuffle(
                [a[i, Ramp(Const(0), 1, 4)], a[i, Ramp(Const(4), 1, 4)]]
            ),
        ],
        ids=["ramp-gather", "reverse-ramp-broadcast", "shuffle-concat"],
    )
    def test_vector_store_matches_interpreter(self, rng, builder):
        func = self._vector_store_func(builder)
        buffers = alloc_buffers(func, rng)
        ref = run(func, {t: b.copy() for t, b in buffers.items()})
        engine = VectorizedEngine(func, strict=True)
        got = engine.run({t: b.copy() for t, b in buffers.items()})
        np.testing.assert_array_equal(got, ref)
        assert engine.stats.fallback_nests == 0


class TestTensorizedPrograms:
    """Engine vs interpreter on programs containing IntrinsicCall."""

    def test_vnni_conv_nchwc(self, rng):
        params = Conv2DParams(
            in_channels=8, in_height=8, in_width=8, out_channels=16, kernel=3
        )
        result = tensorize(conv2d_nchwc(params), "x86.avx512.vpdpbusd")
        stats = assert_engine_matches_interpreter(result.func, rng)
        assert stats.intrinsic_points > 0

    def test_vnni_conv_tuned_config(self, rng):
        params = Conv2DParams(
            in_channels=8, in_height=8, in_width=8, out_channels=16, kernel=3
        )
        result = tensorize(
            conv2d_nchwc(params),
            "x86.avx512.vpdpbusd",
            config=CpuTuningConfig(parallel_extent=100, unroll_limit=4),
        )
        assert_engine_matches_interpreter(result.func, rng)

    def test_sdot_matmul(self, rng):
        from repro.dsl import cast as dsl_cast

        a = placeholder((4, 16), "int8", "A")
        b = placeholder((8, 16), "int8", "B")
        rk = reduce_axis(0, 16, "rk")
        mm = compute(
            (4, 8),
            lambda i, j: sum_reduce(
                dsl_cast("int32", a[i, rk]) * dsl_cast("int32", b[j, rk]), rk
            ),
            name="mm_s8",
        )
        result = tensorize(mm, "arm.neon.sdot")
        assert_engine_matches_interpreter(result.func, rng)

    def test_wmma_matmul(self, rng):
        result = tensorize(
            matmul_fp16(32, 32, 32),
            target="cuda",
            config=GpuTuningConfig(outer_product_p=1),
        )
        assert_engine_matches_interpreter(result.func, rng)

    def test_dense_int8(self, rng):
        result = tensorize(
            dense_int8(DenseParams(batch=2, in_features=64, out_features=32)),
            "x86.avx512.vpdpbusd",
        )
        assert_engine_matches_interpreter(result.func, rng)

    def test_conv3d(self, rng):
        params = Conv2DParams(
            in_channels=8, in_height=5, in_width=5, out_channels=16, kernel=3
        )
        result = tensorize(
            conv3d_ncdhwc(conv3d_from_conv2d(params, depth=3)), "x86.avx512.vpdpbusd"
        )
        assert_engine_matches_interpreter(result.func, rng)


class TestTable1Workloads:
    """Property-style equivalence across every Table I layer (scaled down so
    the scalar reference stays fast; the engine runs the full-size layers in
    the benchmark suite)."""

    @pytest.mark.parametrize(
        "index", range(1, len(TABLE1_LAYERS) + 1), ids=lambda i: f"layer{i}"
    )
    def test_layer_plain_lowering(self, index):
        params = _scaled_table1(TABLE1_LAYERS[index - 1])
        func = lower(conv2d_nchwc(params))
        rng = np.random.default_rng(index)
        assert_engine_matches_interpreter(func, rng)

    @pytest.mark.parametrize("index", [1, 4, 15], ids=lambda i: f"layer{i}")
    def test_layer_tensorized(self, index):
        """Strided / large-kernel / pointwise representatives, tensorized."""
        params = _scaled_table1(TABLE1_LAYERS[index - 1])
        result = tensorize(conv2d_nchwc(params), "x86.avx512.vpdpbusd")
        assert_engine_matches_interpreter(result.func, np.random.default_rng(index))

    def test_hwc_figure5_layer(self, rng):
        params = Conv2DParams(
            in_channels=8, in_height=8, in_width=8, out_channels=16, kernel=3
        )
        result = tensorize(
            conv2d_hwc(params), "x86.avx512.vpdpbusd", config=CpuTuningConfig()
        )
        assert_engine_matches_interpreter(result.func, rng)

    def test_validate_tensorize_oracle(self):
        params = Conv2DParams(
            in_channels=8, in_height=8, in_width=8, out_channels=16, kernel=3
        )
        result = tensorize(conv2d_nchwc(params), "x86.avx512.vpdpbusd")
        validate_tensorize(result)  # must not raise


@given(st.integers(1, 5), st.integers(1, 10), st.integers(1, 12))
@settings(max_examples=20, deadline=None)
def test_property_random_matmul_shapes(m, n, k):
    """Engine equals interpreter for arbitrary small matmul shapes."""
    func = lower(small_matmul_int8(m, n, k))
    buffers = alloc_buffers(func, np.random.default_rng(m * 100 + n * 10 + k))
    ref = run(func, {t: a.copy() for t, a in buffers.items()})
    got = VectorizedEngine(func, strict=True).run(
        {t: a.copy() for t, a in buffers.items()}
    )
    np.testing.assert_array_equal(got, ref)


class TestInterpreterReentrancy:
    def test_shared_interpreter_across_threads(self, rng):
        """One Interpreter instance must be safely shareable: execution state
        lives in a per-call frame, not on the instance."""
        func = lower(small_matmul_int8(4, 8, 8))
        interp = Interpreter(func)
        buffer_sets = [alloc_buffers(func, np.random.default_rng(s)) for s in range(8)]
        expected = [
            run(func, {t: a.copy() for t, a in bufs.items()}) for bufs in buffer_sets
        ]
        with ThreadPoolExecutor(max_workers=8) as pool:
            results = list(
                pool.map(
                    lambda bufs: interp.run({t: a.copy() for t, a in bufs.items()}),
                    buffer_sets,
                )
            )
        for got, ref in zip(results, expected):
            np.testing.assert_array_equal(got, ref)

    def test_recursive_run_via_engine_fallback(self, rng):
        """The engine's interpreter fallback may fire while another run of the
        same Interpreter is in flight; frames keep them independent."""
        func = lower(small_conv_hwc(6, 6, 4, 8, 3))
        interp = Interpreter(func)
        bufs1 = alloc_buffers(func, np.random.default_rng(1))
        bufs2 = alloc_buffers(func, np.random.default_rng(2))
        out1 = interp.run(bufs1)
        out2 = interp.run(bufs2)
        assert not np.array_equal(out1, out2)
