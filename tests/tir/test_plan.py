"""Plan-cache correctness: structural sharing without semantic collisions.

The plan cache hands one compiled :class:`ExecutablePlan` to every
structurally identical function, so these tests pin the three properties that
make that safe: shared plans stay bit-identical to the scalar interpreter for
every caller, functions differing in shapes or dtypes never collide, and the
cache invalidates itself when the expression interning layer is cleared.
"""

import numpy as np
import pytest

from repro.core import tensorize
from repro.dsl import compute, placeholder, reduce_axis, sum_reduce
from repro.dsl.expr import clear_expr_caches, expr_cache_stats, reset_expr_cache_stats
from repro.rewriter import CpuTuningConfig
from repro.tir import (
    PlanCache,
    Unvectorizable,
    alloc_buffers,
    compile_plan,
    func_signature,
    func_structural_equal,
    func_structural_hash,
    lower,
    plan_cache,
    run,
)
from repro.workloads import Conv2DParams, conv2d_nchwc
from tests.conftest import small_conv_hwc, small_matmul_int8


def _matmul_func(m=4, n=8, k=8, dtype_a="uint8"):
    from repro.dsl import cast

    a = placeholder((m, k), dtype_a, "A")
    b = placeholder((n, k), "int8", "B")
    rk = reduce_axis(0, k, "rk")
    out = compute(
        (m, n),
        lambda i, j: sum_reduce(cast("int32", a[i, rk]) * cast("int32", b[j, rk]), rk),
        name="mm",
    )
    return lower(out)


class TestStructuralIdentity:
    def test_equal_functions_hash_and_compare_equal(self):
        f1, f2 = _matmul_func(), _matmul_func()
        assert f1.params[0] is not f2.params[0]  # genuinely different objects
        assert func_structural_hash(f1) == func_structural_hash(f2)
        assert func_structural_equal(f1, f2)

    def test_different_shape_distinguished(self):
        f1, f2 = _matmul_func(m=4), _matmul_func(m=5)
        assert func_signature(f1) != func_signature(f2)
        assert not func_structural_equal(f1, f2)

    def test_different_dtype_distinguished(self):
        f1, f2 = _matmul_func(dtype_a="uint8"), _matmul_func(dtype_a="int8")
        assert func_signature(f1) != func_signature(f2)
        assert not func_structural_equal(f1, f2)

    def test_different_extent_distinguished(self):
        f1, f2 = _matmul_func(k=8), _matmul_func(k=12)
        assert func_structural_hash(f1) != func_structural_hash(f2)

    def test_tensorized_twins_compare_equal(self):
        params = Conv2DParams(
            in_channels=8, in_height=8, in_width=8, out_channels=16, kernel=3
        )
        f1 = tensorize(conv2d_nchwc(params), "x86.avx512.vpdpbusd").func
        f2 = tensorize(conv2d_nchwc(params), "x86.avx512.vpdpbusd").func
        assert func_structural_hash(f1) == func_structural_hash(f2)
        assert func_structural_equal(f1, f2)


class TestPlanSharing:
    def test_structural_twins_share_one_plan_bit_identically(self, rng):
        """Two structurally equal functions with different buffer contents
        must share a plan and both reproduce the interpreter exactly."""
        cache = PlanCache()
        f1, f2 = _matmul_func(), _matmul_func()
        p1 = cache.get_or_compile(f1)
        p2 = cache.get_or_compile(f2)
        assert p1 is p2
        assert cache.stats.hits == 1 and cache.stats.misses == 1
        for func, seed in ((f1, 1), (f2, 2)):
            buffers = alloc_buffers(func, np.random.default_rng(seed))
            ref = run(func, {t: a.copy() for t, a in buffers.items()})
            got = p1.run({t: a.copy() for t, a in buffers.items()}, func=func)
            np.testing.assert_array_equal(got, ref)

    def test_shape_and_dtype_variants_get_separate_plans(self):
        cache = PlanCache()
        plans = {
            cache.get_or_compile(f)
            for f in (
                _matmul_func(m=4),
                _matmul_func(m=5),
                _matmul_func(dtype_a="int8"),
            )
        }
        assert len(plans) == 3
        assert cache.stats.hits == 0

    def test_tensorized_twin_execution(self, rng):
        params = Conv2DParams(
            in_channels=8, in_height=8, in_width=8, out_channels=16, kernel=3
        )
        cache = PlanCache()
        r1 = tensorize(conv2d_nchwc(params), "x86.avx512.vpdpbusd")
        r2 = tensorize(conv2d_nchwc(params), "x86.avx512.vpdpbusd")
        plan = cache.get_or_compile(r1.func)
        assert cache.get_or_compile(r2.func) is plan
        buffers = alloc_buffers(r2.func, rng)
        ref = run(r2.func, {t: a.copy() for t, a in buffers.items()})
        got = plan.run({t: a.copy() for t, a in buffers.items()}, func=r2.func)
        np.testing.assert_array_equal(got, ref)

    def test_lru_eviction(self):
        cache = PlanCache(capacity=2)
        f1, f2, f3 = _matmul_func(m=2), _matmul_func(m=3), _matmul_func(m=6)
        cache.get_or_compile(f1)
        cache.get_or_compile(f2)
        cache.get_or_compile(f3)
        assert len(cache) == 2
        assert cache.stats.evictions == 1
        # f1 was least recently used: compiling it again is a miss.
        cache.get_or_compile(f1)
        assert cache.stats.misses == 4

    def test_global_cache_serves_engine_runs(self, rng):
        from repro.tir import VectorizedEngine

        func = _matmul_func(m=3, n=6, k=4)
        twin = _matmul_func(m=3, n=6, k=4)
        cache = plan_cache()
        hits0 = cache.stats.hits
        e1 = VectorizedEngine(func)
        e2 = VectorizedEngine(twin)
        b1 = alloc_buffers(func, rng)
        ref = run(func, {t: a.copy() for t, a in b1.items()})
        np.testing.assert_array_equal(
            e1.run({t: a.copy() for t, a in b1.items()}), ref
        )
        e2.run(alloc_buffers(twin, np.random.default_rng(9)))
        assert cache.stats.hits > hits0  # the twin rode the first compile


class TestInvalidation:
    def test_expr_cache_clear_invalidates_plans(self):
        cache = PlanCache()
        func = _matmul_func()
        plan = cache.get_or_compile(func)
        clear_expr_caches()
        try:
            again = cache.get_or_compile(func)
            assert again is not plan  # recompiled after the epoch bump
            assert cache.stats.invalidations == 1
        finally:
            reset_expr_cache_stats()

    def test_clear_empties_cache(self):
        cache = PlanCache()
        cache.get_or_compile(_matmul_func())
        assert len(cache) == 1
        cache.clear()
        assert len(cache) == 0


class TestPlanExecution:
    def test_plan_stats_count_fallbacks_at_compile_time(self):
        from repro.dsl.expr import Compare, Const, Var
        from repro.tir import For, IfThenElse, PrimFunc, Store
        from repro.dsl.tensor import Tensor

        a = placeholder((4,), "int32", "a")
        out_t = Tensor((4,), "int32", "out")
        i = Var("i")
        body = For(
            i,
            4,
            IfThenElse(
                Compare("<", i, Const(2)),
                Store(out_t, [i], a[i]),
                Store(out_t, [i], a[i] + 1),
            ),
        )
        func = PrimFunc("branchy", [a, out_t], body, op=None)
        plan = compile_plan(func)
        assert plan.fallback_nests == 1
        assert plan.stats.fallback_reasons
        buffers = alloc_buffers(func, np.random.default_rng(0))
        ref = run(func, {t: b.copy() for t, b in buffers.items()})
        got = plan.run({t: b.copy() for t, b in buffers.items()})
        np.testing.assert_array_equal(got, ref)

    def test_strict_compile_raises(self):
        from repro.dsl.expr import Compare, Const, Var
        from repro.tir import For, IfThenElse, PrimFunc, Store
        from repro.dsl.tensor import Tensor

        a = placeholder((4,), "int32", "a")
        out_t = Tensor((4,), "int32", "out")
        i = Var("i")
        body = For(
            i, 4, IfThenElse(Compare("<", i, Const(2)), Store(out_t, [i], a[i]),
                             Store(out_t, [i], a[i]))
        )
        func = PrimFunc("strictly", [a, out_t], body, op=None)
        with pytest.raises(Unvectorizable):
            compile_plan(func, strict=True)

    def test_repeated_runs_are_deterministic(self, rng):
        func = lower(small_conv_hwc())
        plan = compile_plan(func)
        buffers = alloc_buffers(func, rng)
        out1 = plan.run({t: a.copy() for t, a in buffers.items()})
        out2 = plan.run({t: a.copy() for t, a in buffers.items()})
        np.testing.assert_array_equal(out1, out2)

    def test_affine_analysis_routes_through_memoized_extract_linear(self):
        """Compiling a tensorized plan must exercise the extract_linear memo
        (the PR-2 counters were dead); recompiling the same function hits."""
        params = Conv2DParams(
            in_channels=8, in_height=8, in_width=8, out_channels=16, kernel=3
        )
        result = tensorize(conv2d_nchwc(params), "x86.avx512.vpdpbusd")
        reset_expr_cache_stats()
        try:
            compile_plan(result.func)
            stats = expr_cache_stats()
            assert stats.linear_misses + stats.linear_hits > 0
            assert stats.linear_hits > 0  # round-slicing re-checks hit the memo
            hits_after_first = stats.linear_hits
            compile_plan(result.func)
            assert expr_cache_stats().linear_hits > hits_after_first
        finally:
            reset_expr_cache_stats()

    def test_round_batching_on_reduction_rounds(self, rng):
        """A multi-round integer conv must execute through a stacked round
        batch, bit-identically to the scalar interpreter."""
        from repro.tir import EngineStats

        params = Conv2DParams(
            in_channels=16, in_height=8, in_width=8, out_channels=32, kernel=3
        )
        result = tensorize(
            conv2d_nchwc(params), "x86.avx512.vpdpbusd", config=CpuTuningConfig()
        )
        plan = compile_plan(result.func)
        assert plan.fallback_nests == 0
        buffers = alloc_buffers(result.func, rng)
        ref = run(result.func, {t: a.copy() for t, a in buffers.items()})
        stats = EngineStats()
        got = plan.run({t: a.copy() for t, a in buffers.items()}, stats=stats)
        np.testing.assert_array_equal(got, ref)
        assert stats.intrinsic_round_batches >= 1
        assert stats.intrinsic_rounds > stats.intrinsic_round_batches

    def test_plain_lowering_plan_matches_interpreter(self, rng):
        func = lower(small_matmul_int8(5, 7, 9))
        plan = compile_plan(func)
        buffers = alloc_buffers(func, rng)
        ref = run(func, {t: a.copy() for t, a in buffers.items()})
        got = plan.run({t: a.copy() for t, a in buffers.items()})
        np.testing.assert_array_equal(got, ref)
