"""Unit tests for the tensor-IR structural verifier and visitors."""

import pytest

from repro.dsl import Const, Var, compute, placeholder
from repro.tir import (
    Allocate,
    For,
    PrimFunc,
    SeqStmt,
    Store,
    StmtMutator,
    VerificationError,
    collect,
    count_nodes,
    lower,
    seq,
    verify,
    walk,
)
from tests.conftest import small_conv_hwc


class TestVerifier:
    def test_lowered_functions_verify(self):
        verify(lower(small_conv_hwc()))

    def test_unbound_variable_rejected(self):
        out_tensor = placeholder((4,), "int32", "out")
        stray = Var("stray")
        body = Store(out_tensor, [stray], Const(0, "int32"))
        func = PrimFunc("bad", [out_tensor], body, op=None)
        with pytest.raises(VerificationError):
            verify(func)

    def test_unknown_buffer_rejected(self):
        out_tensor = placeholder((4,), "int32", "out")
        other = placeholder((4,), "int32", "other")
        i = Var("i")
        body = For(i, 4, Store(other, [i], Const(0, "int32")))
        func = PrimFunc("bad", [out_tensor], body, op=None)
        with pytest.raises(VerificationError):
            verify(func)

    def test_allocate_makes_buffer_visible(self):
        out_tensor = placeholder((4,), "int32", "out")
        temp = placeholder((4,), "int32", "temp")
        i = Var("i")
        inner = seq(
            Store(temp, [i], Const(1, "int32")),
            Store(out_tensor, [i], temp[i]),
        )
        body = Allocate(temp, For(i, 4, inner))
        verify(PrimFunc("ok", [out_tensor], body, op=None))

    def test_shadowed_loop_variable_rejected(self):
        out_tensor = placeholder((4, 4), "int32", "out")
        i = Var("i")
        body = For(i, 4, For(i, 4, Store(out_tensor, [i, i], Const(0, "int32"))))
        with pytest.raises(VerificationError):
            verify(PrimFunc("bad", [out_tensor], body, op=None))


class TestVisitors:
    def test_walk_and_collect(self):
        func = lower(small_conv_hwc())
        total = count_nodes(func.body)
        fors = count_nodes(func.body, For)
        assert total > fors > 0
        stores = collect(func.body, lambda s: isinstance(s, Store))
        assert len(stores) == 2

    def test_mutator_identity_preserves_nodes(self):
        func = lower(small_conv_hwc())
        body = StmtMutator().mutate(func.body)
        assert body is func.body

    def test_mutator_replaces_stores(self):
        func = lower(small_conv_hwc())

        class ZeroStores(StmtMutator):
            def mutate(self, stmt):
                if isinstance(stmt, Store):
                    return Store(stmt.tensor, stmt.indices, Const(0, stmt.tensor.dtype))
                return super().mutate(stmt)

        new_body = ZeroStores().mutate(func.body)
        stores = collect(new_body, lambda s: isinstance(s, Store))
        assert all(isinstance(s.value, Const) for s in stores)

    def test_seq_flattening(self):
        a = placeholder((1,), "int32", "a")
        s1 = Store(a, [0], Const(1, "int32"))
        s2 = Store(a, [0], Const(2, "int32"))
        nested = SeqStmt([SeqStmt([s1]), s2])
        assert len(nested.stmts) == 2
