"""Proof-guided plan compilation: ``PlanStats.proved_nests`` / ``elided_checks``.

The engine consults the static bounds analysis while compiling each nest:
a proved nest is counted, and every index clamp or lane re-check the proof
makes an identity operation is skipped.  The elision must be *observable*
(the stats move) and *invisible* (bit-identical output against the scalar
interpreter, guarded residues included).
"""

import numpy as np
import pytest

from repro.core import tensorize
from repro.rewriter import CpuTuningConfig
from repro.schedule import create_schedule
from repro.tir import IfThenElse, VectorizedEngine, alloc_buffers, collect, compile_plan, lower, run
from repro.workloads import Conv2DParams, conv2d_nchwc
from tests.conftest import small_conv_hwc


def _assert_bit_identical(func, rng):
    buffers = alloc_buffers(func, rng)
    ref = run(func, {t: b.copy() for t, b in buffers.items()})
    engine = VectorizedEngine(func)
    got = engine.run({t: b.copy() for t, b in buffers.items()})
    np.testing.assert_array_equal(got, ref)
    return engine.plan.stats  # compile-time PlanStats (proofs live there)


class TestProvedNests:
    def test_plain_conv_fully_proved(self, rng):
        stats = _assert_bit_identical(lower(small_conv_hwc()), rng)
        assert stats.proved_nests == stats.vector_nests == 2
        assert stats.elided_checks >= 1  # at least the scalar lane re-check

    def test_compile_plan_surfaces_the_same_stats(self):
        plan = compile_plan(lower(small_conv_hwc()))
        assert plan.stats.proved_nests == 2
        assert plan.stats.fallback_nests == 0

    def test_unprovable_index_not_counted(self, rng):
        """A data-dependent index cannot be proved: the nest must run (with
        its runtime clamps) but never count as proved."""
        from repro.dsl import compute, placeholder

        idx = placeholder((8,), "int32", "idx")
        a = placeholder((8,), "int32", "a")
        out = compute((8,), lambda i: a[idx[i] % 8], name="gather")
        stats = _assert_bit_identical(lower(out), rng)
        assert stats.proved_nests == 0


class TestGuardedResidues:
    @pytest.mark.parametrize("factor", [3, 5])
    def test_imperfect_split_proved_through_guard(self, rng, factor):
        """The residue nest's accesses are provable only via the ``likely``
        guard; the proof still counts, and masked execution stays exact."""
        conv = small_conv_hwc()
        sch = create_schedule(conv)
        st = sch.stage
        st.split(st[conv.op.axes[2]], factor)
        func = lower(sch)
        assert collect(func.body, lambda s: isinstance(s, IfThenElse))  # guarded
        stats = _assert_bit_identical(func, rng)
        assert stats.proved_nests == stats.vector_nests
        # The guarded dimension keeps its clamp, the others lose theirs.
        assert stats.elided_checks > 1

    def test_guarded_tensorized_conv_elides_and_matches(self, rng):
        """OW=7 with unroll_limit=4 forces an imperfect split inside the
        tensorized schedule: proofs, elisions and bit-identity must all
        survive the intrinsic dispatch path."""
        params = Conv2DParams(
            in_channels=8, in_height=9, in_width=9, out_channels=16, kernel=3,
            name="resid",
        )
        result = tensorize(
            conv2d_nchwc(params),
            "x86.avx512.vpdpbusd",
            config=CpuTuningConfig(unroll_limit=4),
        )
        assert collect(result.func.body, lambda s: isinstance(s, IfThenElse))
        stats = _assert_bit_identical(result.func, rng)
        assert stats.proved_nests == stats.vector_nests == 2
        assert stats.elided_checks >= 2


class TestElisionIsInvisible:
    def test_elision_changes_no_bits_across_shapes(self, rng):
        """Sweep a few shapes whose clamps are all provably identities; the
        engine output must stay bit-identical to the interpreter even though
        the protective clamps were compiled out."""
        for h, w in [(8, 8), (9, 8), (10, 11)]:
            func = lower(small_conv_hwc(h=h, w=w))
            stats = _assert_bit_identical(func, rng)
            assert stats.proved_nests == stats.vector_nests
