"""Tiered native execution: promotion, demotion, and bit identity.

The native tier may only ever *speed up* execution: every test here pins one
of the guarantees that make that true — plans promote only after N warm runs,
only when statically proved, only when the compiled kernel reproduces the
vectorized result bit for bit, and any failure demotes the plan back to the
vectorized tier instead of surfacing an error.
"""

import numpy as np
import pytest

from repro.codegen.lowlevel import LoweringError
from repro.tir import (
    EngineStats,
    alloc_buffers,
    compile_plan,
    compile_native,
    lower,
    native_eligibility_reason,
    native_toolchain,
    run,
    tier_state,
)
from repro.tir.backend import (
    default_promote_after,
    run_tiered,
    set_default_promote_after,
)
from repro.workloads.dense import matmul_fp32
from tests.conftest import small_conv_hwc

TOOLCHAIN_KIND = native_toolchain()[0]
needs_toolchain = pytest.mark.skipif(
    TOOLCHAIN_KIND is None, reason="no native toolchain (numba or C compiler)"
)


def _proved_plan():
    return compile_plan(lower(small_conv_hwc()))


def _unproved_plan():
    """A gather whose data-dependent index the static verifier cannot prove."""
    from repro.dsl import compute, placeholder

    idx = placeholder((8,), "int32", "idx")
    a = placeholder((8,), "int32", "a")
    out = compute((8,), lambda i: a[idx[i] % 8], name="gather")
    return compile_plan(lower(out))


def _fresh_buffers(plan, seed=0):
    return alloc_buffers(plan.func, np.random.default_rng(seed))


def _reference(plan, buffers):
    return run(plan.func, {t: a.copy() for t, a in buffers.items()})


class TestEligibility:
    def test_proved_conv_is_eligible(self):
        assert native_eligibility_reason(_proved_plan()) is None

    def test_unproved_gather_is_not(self):
        reason = native_eligibility_reason(_unproved_plan())
        assert reason is not None and "proved" in reason


class TestPromotion:
    @needs_toolchain
    def test_promotes_after_n_warm_runs(self):
        plan = _proved_plan()
        stats = EngineStats()
        state = tier_state(plan)
        for i in range(2):
            buffers = _fresh_buffers(plan, seed=i)
            run_tiered(plan, buffers, stats=stats, promote_after=3)
            assert state.tier == "vectorized"
            assert state.warm_runs == i + 1
        run_tiered(plan, _fresh_buffers(plan, seed=2), stats=stats, promote_after=3)
        assert state.tier == "native"
        assert state.kernel is not None
        assert stats.native_promotions == 1
        assert plan.stats.native_promotions == 1
        assert not state.demoted

    @needs_toolchain
    def test_native_runs_bit_identical_and_counted(self):
        plan = _proved_plan()
        stats = EngineStats()
        for i in range(2):
            run_tiered(plan, _fresh_buffers(plan, seed=i), stats=stats, promote_after=2)
        assert tier_state(plan).tier == "native"
        buffers = _fresh_buffers(plan, seed=99)
        expected = _reference(plan, buffers)
        got = run_tiered(plan, buffers, stats=stats, promote_after=2)
        np.testing.assert_array_equal(got, expected)
        assert stats.native_runs == 1
        assert plan.stats.native_runs == 1

    @needs_toolchain
    def test_spot_check_runs_at_promotion(self, monkeypatch):
        """Promotion happens on the threshold-crossing run itself and the
        returned result is still the (trusted) vectorized one."""
        plan = _proved_plan()
        buffers = _fresh_buffers(plan)
        expected = _reference(plan, buffers)
        got = run_tiered(plan, buffers, stats=EngineStats(), promote_after=1)
        np.testing.assert_array_equal(got, expected)
        assert tier_state(plan).tier == "native"

    def test_unproved_plan_never_promotes(self):
        plan = _unproved_plan()
        stats = EngineStats()
        for i in range(4):
            buffers = _fresh_buffers(plan, seed=i)
            expected = _reference(plan, buffers)
            got = run_tiered(plan, buffers, stats=stats, promote_after=2)
            np.testing.assert_array_equal(got, expected)
        state = tier_state(plan)
        assert state.tier == "vectorized"
        assert state.kernel is None
        assert state.demoted
        assert "proved" in state.demotion_reason
        assert stats.native_promotions == 0 and stats.native_runs == 0


class TestDemotion:
    def test_demotes_on_compile_failure(self, monkeypatch):
        import repro.tir.backend as backend

        def broken_compile(func):
            raise LoweringError("simulated compile failure")

        monkeypatch.setattr(backend, "compile_native", broken_compile)
        plan = _proved_plan()
        stats = EngineStats()
        for i in range(3):
            buffers = _fresh_buffers(plan, seed=i)
            expected = _reference(plan, buffers)
            got = run_tiered(plan, buffers, stats=stats, promote_after=2)
            np.testing.assert_array_equal(got, expected)
        state = tier_state(plan)
        assert state.demoted
        assert "compile failed" in state.demotion_reason
        assert stats.native_demotions == 1  # failure is permanent: no retries
        assert stats.native_promotions == 0

    def test_demotes_on_bit_mismatch(self, monkeypatch):
        import repro.tir.backend as backend

        class WrongKernel:
            def run(self, arrays):
                out = np.array(arrays[-1], copy=True)
                out += 1
                return out

        monkeypatch.setattr(backend, "compile_native", lambda func: WrongKernel())
        plan = _proved_plan()
        stats = EngineStats()
        buffers = _fresh_buffers(plan)
        expected = _reference(plan, buffers)
        got = run_tiered(plan, buffers, stats=stats, promote_after=1)
        np.testing.assert_array_equal(got, expected)  # vectorized result wins
        state = tier_state(plan)
        assert state.demoted
        assert "bit-identical" in state.demotion_reason
        assert state.tier == "vectorized" and state.kernel is None
        assert stats.native_demotions == 1

    def test_demotes_when_no_toolchain(self, monkeypatch):
        """The automatic-fallback guarantee: without any toolchain the tier
        silently keeps executing vectorized."""
        monkeypatch.setenv("REPRO_DISABLE_NATIVE", "1")
        try:
            native_toolchain(refresh=True)
            plan = _proved_plan()
            buffers = _fresh_buffers(plan)
            expected = _reference(plan, buffers)
            got = run_tiered(plan, buffers, stats=EngineStats(), promote_after=1)
            np.testing.assert_array_equal(got, expected)
            state = tier_state(plan)
            assert state.demoted and "compile failed" in state.demotion_reason
        finally:
            monkeypatch.delenv("REPRO_DISABLE_NATIVE")
            native_toolchain(refresh=True)


class TestPromoteAfterKnobs:
    def test_default_is_configurable(self):
        original = default_promote_after()
        try:
            set_default_promote_after(7)
            assert default_promote_after() == 7
        finally:
            set_default_promote_after(original)

    def test_env_var_overrides(self, monkeypatch):
        monkeypatch.setenv("REPRO_NATIVE_PROMOTE_AFTER", "5")
        assert default_promote_after() == 5

    def test_invalid_env_var_warns_and_falls_back(self, monkeypatch):
        """A bad REPRO_NATIVE_PROMOTE_AFTER must not be swallowed silently:
        the warning names the offending value, then the default applies."""
        monkeypatch.setenv("REPRO_NATIVE_PROMOTE_AFTER", "not-a-number")
        with pytest.warns(RuntimeWarning, match="not-a-number"):
            value = default_promote_after()
        monkeypatch.delenv("REPRO_NATIVE_PROMOTE_AFTER")
        assert value == default_promote_after()

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            set_default_promote_after(0)


class TestCompileTimeout:
    def test_hung_compiler_raises_lowering_error(self, tmp_path, monkeypatch):
        """A wedged cc must surface as LoweringError (which demotes the
        plan), not block promotion forever."""
        from repro.codegen.lowlevel import generate_c
        from repro.tir.backend import _compile_c

        fake_cc = tmp_path / "slow-cc"
        fake_cc.write_text("#!/bin/sh\nsleep 600\n")
        fake_cc.chmod(0o755)
        monkeypatch.setenv("REPRO_NATIVE_COMPILE_TIMEOUT", "0.3")
        source = generate_c(lower(small_conv_hwc()))
        with pytest.raises(LoweringError, match="timed out"):
            _compile_c(source, str(fake_cc))

    def test_timeout_env_parsing(self, monkeypatch):
        from repro.tir.backend import _compile_timeout_s

        monkeypatch.setenv("REPRO_NATIVE_COMPILE_TIMEOUT", "45")
        assert _compile_timeout_s() == 45.0
        monkeypatch.setenv("REPRO_NATIVE_COMPILE_TIMEOUT", "zero")
        assert _compile_timeout_s() == 120.0
        monkeypatch.setenv("REPRO_NATIVE_COMPILE_TIMEOUT", "-1")
        assert _compile_timeout_s() == 120.0


@needs_toolchain
class TestNativeKernel:
    def test_integer_conv_bit_identical_to_interpreter(self):
        func = lower(small_conv_hwc())
        kernel = compile_native(func)
        buffers = alloc_buffers(func, np.random.default_rng(3))
        expected = run(func, {t: a.copy() for t, a in buffers.items()})
        arrays = [np.array(buffers[p], copy=True) for p in func.params]
        got = kernel.run(arrays)
        np.testing.assert_array_equal(got, expected)

    def test_float_matmul_preserves_fold_order(self):
        """float32 sums are order-sensitive: the native kernel must use the
        interpreter's exact left-fold, making it bit-identical (not merely
        allclose)."""
        func = lower(matmul_fp32(8, 12, 16))
        kernel = compile_native(func)
        buffers = alloc_buffers(func, np.random.default_rng(4))
        expected = run(func, {t: a.copy() for t, a in buffers.items()})
        arrays = [np.array(buffers[p], copy=True) for p in func.params]
        got = kernel.run(arrays)
        np.testing.assert_array_equal(got, expected)

    def test_rejects_wrong_shape(self):
        func = lower(small_conv_hwc())
        kernel = compile_native(func)
        buffers = alloc_buffers(func, np.random.default_rng(0))
        arrays = [np.array(buffers[p], copy=True) for p in func.params]
        arrays[0] = arrays[0][:-1]
        with pytest.raises(ValueError, match="shape"):
            kernel.run(arrays)

    def test_rejects_wrong_dtype(self):
        func = lower(small_conv_hwc())
        kernel = compile_native(func)
        buffers = alloc_buffers(func, np.random.default_rng(0))
        arrays = [np.array(buffers[p], copy=True) for p in func.params]
        arrays[0] = arrays[0].astype(np.int32)
        with pytest.raises(ValueError, match="dtype"):
            kernel.run(arrays)

    def test_rejects_wrong_arity(self):
        func = lower(small_conv_hwc())
        kernel = compile_native(func)
        with pytest.raises(ValueError, match="buffers"):
            kernel.run([])
