"""Unit tests for lowering ComputeOp + Schedule to tensor IR."""

import numpy as np
import pytest

from repro.dsl import Const, cast, compute, placeholder, reduce_axis, sum_reduce
from repro.schedule import create_schedule
from repro.tir import (
    For,
    ForKind,
    IfThenElse,
    Store,
    collect,
    count_nodes,
    decompose_reduction,
    func_to_str,
    lower,
)
from tests.conftest import small_conv_hwc


class TestDecomposeReduction:
    def test_sum_with_explicit_accumulator(self):
        a = placeholder((64,), "uint8", "a")
        b = placeholder((64,), "int8", "b")
        c = placeholder((16,), "int32", "c")
        j = reduce_axis(0, 4, "j")
        d = compute(
            (16,),
            lambda i: c[i]
            + sum_reduce(cast("int32", a[i * 4 + j]) * cast("int32", b[i * 4 + j]), j),
            name="d",
        )
        init, update = decompose_reduction(d.op)
        assert init is not None  # the c[i] accumulator expression
        from repro.dsl import TensorLoad

        assert isinstance(init, TensorLoad) and init.tensor is c

    def test_plain_sum_gets_zero_init(self):
        conv = small_conv_hwc()
        init, update = decompose_reduction(conv.op)
        assert isinstance(init, Const) and init.value == 0

    def test_accumulate_form_has_no_init(self):
        a = placeholder((4, 4), "float16", "a")
        b = placeholder((4, 4), "float16", "b")
        k = reduce_axis(0, 4, "k")
        c = compute(
            (4, 4),
            lambda i, j: sum_reduce(cast("float32", a[i, k]) * cast("float32", b[k, j]), k),
            accumulate=True,
            output_dtype="float32",
            name="c",
        )
        init, update = decompose_reduction(c.op)
        assert init is None

    def test_elementwise_passthrough(self):
        a = placeholder((4,), "float32", "a")
        out = compute((4,), lambda i: a[i] * 2.0, name="x")
        init, update = decompose_reduction(out.op)
        assert init is None
        assert update is out.op.body


class TestLowering:
    def test_loop_structure_default_schedule(self):
        conv = small_conv_hwc()
        func = lower(conv.op)
        # init nest: 3 data-parallel loops; main nest: 6 loops.
        assert count_nodes(func.body, For) == 9
        assert len(collect(func.body, lambda s: isinstance(s, Store))) == 2
        assert func.params[-1] is conv

    def test_annotations_carried(self):
        conv = small_conv_hwc()
        sch = create_schedule(conv)
        st = sch.stage
        x, y, k = [st[ax] for ax in conv.op.axes]
        st.parallel(x)
        st.unroll(k)
        func = lower(sch)
        kinds = [f.kind for f in collect(func.body, lambda s: isinstance(s, For))]
        assert ForKind.PARALLEL in kinds and ForKind.UNROLL in kinds

    def test_imperfect_split_emits_likely_guard(self):
        a = placeholder((10,), "int32", "a")
        out = compute((10,), lambda i: a[i] + 1, name="inc")
        sch = create_schedule(out)
        sch.stage.split(sch.stage[out.op.axes[0]], 4)
        func = lower(sch)
        guards = collect(func.body, lambda s: isinstance(s, IfThenElse) and s.likely)
        assert len(guards) == 1

    def test_printer_output(self):
        conv = small_conv_hwc()
        text = func_to_str(lower(conv.op))
        assert "for (" in text and "conv[" in text and "uint8" in text

    def test_lower_accepts_tensor_and_op(self):
        conv = small_conv_hwc()
        assert lower(conv).name == lower(conv.op).name
