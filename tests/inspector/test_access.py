"""Tests for the array-access isomorphism (loop-mapping enumeration and checking)."""

import pytest

from repro.dsl import cast, compute, placeholder, reduce_axis, sum_reduce
from repro.inspector import (
    check_mapping,
    enumerate_mappings,
    feasible_mappings,
    inspect_applicability,
    match_isomorphism,
)
from repro.isa import get_intrinsic
from tests.conftest import small_conv_hwc, small_matmul_fp16, small_matmul_int8


class TestEnumeration:
    def test_conv_vnni_enumeration_count(self):
        vnni = get_intrinsic("x86.avx512.vpdpbusd")
        conv = small_conv_hwc()
        # 3 data-parallel candidates for the 1 instruction dp loop, and 3
        # reduction candidates for its 1 reduction loop.
        assert len(enumerate_mappings(conv.op, vnni.op)) == 9

    def test_innermost_preferred_first(self):
        vnni = get_intrinsic("x86.avx512.vpdpbusd")
        conv = small_conv_hwc()
        first = enumerate_mappings(conv.op, vnni.op)[0]
        mapped_dp = [ax for ax in first.axis_map if not ax.is_reduce][0]
        # The innermost data-parallel axis of the convolution is k.
        assert mapped_dp is conv.op.axes[-1]

    def test_too_few_loops_yields_nothing(self):
        wmma = get_intrinsic("nvvm.wmma.m16n16k16.mma.row.row.f32.f32")
        a = placeholder((64,), "float16", "a")
        b = placeholder((64,), "float16", "b")
        k = reduce_axis(0, 64, "k")
        dot = compute(
            (1,),
            lambda i: sum_reduce(cast("float32", a[k]) * cast("float32", b[k]), k),
            name="dot",
        )
        assert enumerate_mappings(dot.op, wmma.op) == []


class TestFeasibility:
    def test_conv_vnni_greedy_mapping_is_channels(self):
        vnni = get_intrinsic("x86.avx512.vpdpbusd")
        conv = small_conv_hwc()
        result = inspect_applicability(conv, vnni)
        assert result.applicable
        mapping = result.mapping
        dp = [(a.name, b.name) for a, b in mapping.axis_map.items() if not a.is_reduce]
        red = [(a.name, b.name) for a, b in mapping.axis_map.items() if a.is_reduce]
        assert dp == [("k", "vnni_i")]
        assert red == [("rc", "vnni_j")]

    def test_matmul_wmma_single_mapping(self):
        wmma = get_intrinsic("nvvm.wmma.m16n16k16.mma.row.row.f32.f32")
        mm = small_matmul_fp16()
        result = inspect_applicability(mm, wmma)
        assert result.applicable
        # i->wmma_i, j->wmma_j is feasible; the transposed assignment
        # (i->wmma_j, j->wmma_i) is rejected by the access check because the
        # operands would read transposed addresses per lane.
        assert len(result.mappings) == 1

    def test_broadcast_detection(self):
        vnni = get_intrinsic("x86.avx512.vpdpbusd")
        conv = small_conv_hwc()
        iso = match_isomorphism(vnni.op, conv.op)
        result = inspect_applicability(conv, vnni)
        broadcast = result.mapping.broadcast_axes(iso.load_pairs)
        # The activation operand a[x+r, y+s, rc] does not vary with the output
        # channel k, so it must be broadcast along the instruction's i loop.
        data_loads = [
            (instr_load, axes)
            for instr_load, axes in broadcast.items()
            if instr_load.tensor.name == "vnni_a"
        ]
        assert data_loads and [ax.name for ax in data_loads[0][1]] == ["vnni_i"]

    def test_infeasible_mapping_reported(self):
        vnni = get_intrinsic("x86.avx512.vpdpbusd")
        conv = small_conv_hwc()
        iso = match_isomorphism(vnni.op, conv.op)
        mappings = enumerate_mappings(conv.op, vnni.op)
        # Find a mapping where the reduction loop maps from 'r' while the
        # data-parallel loop maps from 'x': then weight[r,s,k,rc] varies along
        # the instruction's j loop (via r) fine, but conv's 'k' never maps, so
        # output varies only with x -> still feasible; instead check that at
        # least one enumerated mapping is infeasible for the *dense* matmul
        # with transposed operands (covered below), and that every mapping
        # returned by feasible_mappings passes check_mapping.
        feasible = feasible_mappings(conv.op, vnni.op, iso)
        assert feasible
        for mapping in feasible:
            ok, reason = check_mapping(mapping, iso, vnni.op)
            assert ok, reason

    def test_transposed_matmul_mapping_rejected(self):
        """For A[i,k]·B[k,j], mapping i->wmma_j / j->wmma_i is infeasible."""
        wmma = get_intrinsic("nvvm.wmma.m16n16k16.mma.row.row.f32.f32")
        mm = small_matmul_fp16()
        iso = match_isomorphism(wmma.op, mm.op)
        mappings = enumerate_mappings(mm.op, wmma.op)
        feasible = feasible_mappings(mm.op, wmma.op, iso)
        assert len(mappings) > len(feasible)

    def test_applicable_intrinsics_ranking(self):
        from repro.inspector import applicable_intrinsics

        mm = small_matmul_int8()
        results = applicable_intrinsics(mm, "x86")
        names = [r.intrinsic.name for r in results]
        assert "x86.avx512.vpdpbusd" in names
        # The mixed-precision dot product executes more MACs per call than any
        # SIMD fallback, so it must be ranked first.
        assert names[0] == "x86.avx512.vpdpbusd"

    def test_not_applicable_has_reason(self):
        vnni = get_intrinsic("x86.avx512.vpdpbusd")
        a = placeholder((32,), "float32", "a")
        out = compute((32,), lambda i: a[i] * 2.0, name="scale")
        result = inspect_applicability(out, vnni)
        assert not result.applicable
        assert result.reason
        with pytest.raises(ValueError):
            _ = result.mapping
