"""Edge cases of the loop-mapping layer in ``inspector/access.py``.

The enumeration/feasibility machinery gets exercised on happy paths by the
applicability tests; these pin the degenerate inputs — operations with too
few (or zero) loops of a kind, infeasible mappings with their diagnostic
reason, and indexing patterns (reversed strides, non-affine subscripts)
that must degrade to "no feasible mapping", never a wrong one.
"""

import pytest

from repro.dsl import cast, compute, placeholder, reduce_axis, sum_reduce
from repro.inspector import (
    check_mapping,
    enumerate_mappings,
    feasible_mappings,
    inspect_applicability,
    match_isomorphism,
)
from repro.isa import get_intrinsic
from tests.conftest import small_conv_hwc


class TestEnumerationDegenerate:
    def test_no_reduction_loop_yields_nothing(self):
        """VNNI needs one reduction loop; an elementwise op has none."""
        vnni = get_intrinsic("x86.avx512.vpdpbusd")
        a = placeholder((4, 16), "int32", "a")
        ew = compute((4, 16), lambda i, j: a[i, j] * 2, name="scale")
        assert enumerate_mappings(ew.op, vnni.op) == []

    def test_degenerate_extent_one_loop_is_structural_only(self):
        """Applicability is structural: an extent-1 data-parallel loop still
        maps onto the 16-lane VNNI axis (the scheduler pads/guards extents
        later), and the single feasible mapping is the expected one."""
        vnni = get_intrinsic("x86.avx512.vpdpbusd")
        a = placeholder((64,), "uint8", "a")
        b = placeholder((64,), "int8", "b")
        rk = reduce_axis(0, 64, "rk")
        dot = compute(
            (1,),
            lambda i: sum_reduce(cast("int32", a[rk]) * cast("int32", b[rk]), rk),
            name="dot",
        )
        result = inspect_applicability(dot, vnni)
        assert result.applicable
        pairs = {(u.name, v.name) for u, v in result.mapping.axis_map.items()}
        assert pairs == {("dot_i0", "vnni_i"), ("rk", "vnni_j")}

    def test_enumeration_is_injective(self):
        """No instruction loop may grab the same operation loop twice."""
        vnni = get_intrinsic("x86.avx512.vpdpbusd")
        conv = small_conv_hwc()
        for mapping in enumerate_mappings(conv.op, vnni.op):
            targets = list(mapping.axis_map.values())
            assert len(targets) == len(set(targets))


class TestInfeasibleMappings:
    def test_infeasible_mapping_names_the_offending_access(self):
        """Transposing the WMMA mapping (i->wmma_j, j->wmma_i) makes the A
        operand vary along a loop its register does not index; the reason
        string must name both the access and the instruction loop."""
        from tests.conftest import small_matmul_fp16

        wmma = get_intrinsic("nvvm.wmma.m16n16k16.mma.row.row.f32.f32")
        mm = small_matmul_fp16()
        iso = match_isomorphism(wmma.op, mm.op)
        assert iso.matched
        mappings = enumerate_mappings(mm.op, wmma.op)
        verdicts = [check_mapping(m, iso, wmma.op) for m in mappings]
        feasible = [m for m, (ok, _) in zip(mappings, verdicts) if ok]
        infeasible = [(m, r) for m, (ok, r) in zip(mappings, verdicts) if not ok]
        assert feasible and infeasible  # the transposed assignment fails
        for _, reason in infeasible:
            assert "'A'" in reason and "wmma_j" in reason
            assert "varies along instruction loops" in reason
            assert "one lane would correspond to multiple addresses" in reason
        assert feasible_mappings(mm.op, wmma.op, iso) == feasible

    def test_feasible_mapping_reason_is_empty(self):
        vnni = get_intrinsic("x86.avx512.vpdpbusd")
        conv = small_conv_hwc()
        iso = match_isomorphism(vnni.op, conv.op)
        mapping = feasible_mappings(conv.op, vnni.op, iso)[0]
        ok, reason = check_mapping(mapping, iso, vnni.op)
        assert ok and reason == ""


class TestAwkwardIndexing:
    def test_reversed_stride_applicable_and_still_correct(self):
        """A negatively-strided (reversed) reduction read ``a[i, 63-rk]`` is
        structurally applicable; tensorizing it must stay verifiable (the
        bounds pass proves 63-rk in [0, 63]) and numerically exact."""
        import numpy as np

        from repro.analysis import verify_rewrite
        from repro.core import tensorize
        from repro.tir import alloc_buffers, run

        vnni = get_intrinsic("x86.avx512.vpdpbusd")
        a = placeholder((4, 64), "uint8", "a")
        b = placeholder((16, 64), "int8", "b")
        rk = reduce_axis(0, 64, "rk")
        rev = compute(
            (4, 16),
            lambda i, j: sum_reduce(
                cast("int32", a[i, 63 - rk]) * cast("int32", b[j, rk]), rk
            ),
            name="rev_mm",
        )
        assert inspect_applicability(rev, vnni).applicable
        result = tensorize(rev, vnni)
        verify_rewrite(result.func)
        rng = np.random.default_rng(7)
        buffers = alloc_buffers(result.func, rng)
        out = run(result.func, {t: v.copy() for t, v in buffers.items()})
        by = {t.name: buffers[t] for t in result.func.inputs}
        ref = (
            by["a"][:, ::-1].astype(np.int64) @ by["b"].astype(np.int64).T
        ).astype(np.int32)
        np.testing.assert_array_equal(out, ref)

    def test_data_dependent_subscript_degrades_to_unproved(self):
        """Gather-style ``a[i, idx[rk]]`` passes the structural mapping check
        but its address is non-affine: the static tier must fall back to
        "cannot bound" (a warning that fails strict mode), never claim a
        proof or a violation."""
        from repro.analysis import analyze
        from repro.core import tensorize

        vnni = get_intrinsic("x86.avx512.vpdpbusd")
        a = placeholder((4, 64), "uint8", "a")
        b = placeholder((16, 64), "int8", "b")
        idx = placeholder((64,), "int32", "idx")
        rk = reduce_axis(0, 64, "rk")
        gather = compute(
            (4, 16),
            lambda i, j: sum_reduce(
                cast("int32", a[i, idx[rk]]) * cast("int32", b[j, rk]), rk
            ),
            name="gather_mm",
        )
        assert inspect_applicability(gather, vnni).applicable
        report = analyze(tensorize(gather, vnni).func)
        assert report.ok() and not report.ok(strict=True)
        assert report.proved_nests < report.total_nests
        assert any(
            d.severity == "warning" and "cannot bound" in d.message
            for d in report.diagnostics
        )
