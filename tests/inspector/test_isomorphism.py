"""Tests for Algorithm 1 (arithmetic isomorphism) and the update-form normalisation."""

import pytest

from repro.dsl import cast, compute, placeholder, reduce_axis, sum_reduce
from repro.inspector import match_isomorphism, update_form
from repro.isa import get_intrinsic
from tests.conftest import small_conv_hwc, small_matmul_fp16, small_matmul_int8


class TestUpdateForm:
    def test_conv_update_references_output(self):
        conv = small_conv_hwc()
        form = update_form(conv.op)
        assert form.store.tensor is conv
        # The update is accumulator + elementwise product.
        from repro.dsl import Add

        assert isinstance(form.value, Add)

    def test_vnni_keeps_explicit_accumulator(self):
        vnni = get_intrinsic("x86.avx512.vpdpbusd")
        form = update_form(vnni.op)
        from repro.dsl import Add, TensorLoad

        assert isinstance(form.value, Add)
        assert isinstance(form.value.a, TensorLoad)
        assert form.value.a.tensor.name == "vnni_c"

    def test_accumulate_form_uses_output_as_accumulator(self):
        wmma = get_intrinsic("nvvm.wmma.m16n16k16.mma.row.row.f32.f32")
        form = update_form(wmma.op)
        from repro.dsl import Add, TensorLoad

        assert isinstance(form.value, Add)
        assert form.value.a.tensor is wmma.op.output


class TestIsomorphism:
    def test_conv_matches_vnni(self):
        vnni = get_intrinsic("x86.avx512.vpdpbusd")
        conv = small_conv_hwc()
        result = match_isomorphism(vnni.op, conv.op)
        assert result.matched
        names = {k.name: getattr(v, "name", v) for k, v in result.register_bindings.items()}
        assert names["vnni_a"] == "data"
        assert names["vnni_b"] == "weight"
        assert names["vnni_c"] == "conv"
        assert names["vnni_d"] == "conv"
        # store pair + accumulator + two operand loads
        assert len(result.load_pairs) == 4

    def test_matmul_matches_dot_and_vnni(self):
        mm = small_matmul_int8()
        for name in ("x86.avx512.vpdpbusd", "arm.neon.sdot"):
            intrin = get_intrinsic(name)
            if name == "arm.neon.sdot":
                # sdot wants int8 x int8; the uint8 x int8 matmul should fail.
                assert not match_isomorphism(intrin.op, mm.op).matched
            else:
                assert match_isomorphism(intrin.op, mm.op).matched

    def test_fp16_matmul_matches_wmma(self):
        wmma = get_intrinsic("nvvm.wmma.m16n16k16.mma.row.row.f32.f32")
        mm = small_matmul_fp16()
        assert match_isomorphism(wmma.op, mm.op).matched

    def test_dtype_mismatch_rejected(self):
        """An fp32 operation does not match the int8 VNNI instruction."""
        vnni = get_intrinsic("x86.avx512.vpdpbusd")
        a = placeholder((8, 8), "float32", "a")
        b = placeholder((8, 8), "float32", "b")
        k = reduce_axis(0, 8, "k")
        mm = compute((8, 8), lambda i, j: sum_reduce(a[i, k] * b[k, j], k), name="mm32")
        result = match_isomorphism(vnni.op, mm.op)
        assert not result.matched
        assert "dtype" in result.reason

    def test_operand_sign_mismatch_rejected(self):
        """VNNI is u8 x s8: an s8 x s8 program must not match."""
        vnni = get_intrinsic("x86.avx512.vpdpbusd")
        a = placeholder((4, 8), "int8", "a")
        b = placeholder((4, 8), "int8", "b")
        k = reduce_axis(0, 8, "k")
        mm = compute(
            (4, 4),
            lambda i, j: sum_reduce(cast("int32", a[i, k]) * cast("int32", b[j, k]), k),
            name="mm_s8s8",
        )
        assert not match_isomorphism(vnni.op, mm.op).matched

    def test_topology_mismatch_rejected(self):
        """Max-pooling (no multiply) does not match a dot-product instruction."""
        from repro.dsl import max_reduce

        vnni = get_intrinsic("x86.avx512.vpdpbusd")
        a = placeholder((8, 4), "int32", "a")
        k = reduce_axis(0, 4, "k")
        pool = compute((8,), lambda i: max_reduce(a[i, k], k), name="pool")
        assert not match_isomorphism(vnni.op, pool.op).matched

    def test_register_cannot_bind_two_sources(self):
        """x[i]*x-like patterns where one register would need two tensors."""
        vnni = get_intrinsic("x86.avx512.vpdpbusd")
        a = placeholder((4, 8), "uint8", "a")
        b = placeholder((4, 8), "int8", "b")
        b2 = placeholder((16,), "int32", "bias")
        k = reduce_axis(0, 8, "k")
        # The accumulator comes from 'bias' but the output is a new tensor; the
        # d and c registers bind to different tensors, which is allowed; the
        # match must still succeed.
        mm = compute(
            (4, 16),
            lambda i, j: b2[j]
            + sum_reduce(cast("int32", a[i, k]) * cast("int32", b[j % 4, k]), k),
            name="mm_bias",
        )
        result = match_isomorphism(vnni.op, mm.op)
        assert result.matched
        names = {r.name: getattr(t, "name", t) for r, t in result.register_bindings.items()}
        assert names["vnni_c"] == "bias"
        assert names["vnni_d"] == "mm_bias"
