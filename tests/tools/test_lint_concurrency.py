"""The concurrency lint gate: the repo passes, violations are caught.

``tools/lint_concurrency.py`` is imported directly (its ``main`` takes an
argv list) and also run as a subprocess once, exactly the way CI invokes
it.  The violation fixtures are written under the policy basenames
(``server.py``, ``store.py``) because the rule tables key on file name.
"""

import subprocess
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent.parent
LINT = REPO / "tools" / "lint_concurrency.py"

sys.path.insert(0, str(LINT.parent))
import lint_concurrency  # noqa: E402


BAD_SERVER = '''\
import threading

class TuningService:
    def __init__(self):
        self._gate = threading.Lock()
        self._stop_lock = threading.Lock()
        self._inflight = {}

    def peek(self):
        return len(self._inflight)  # R1: _inflight without _gate

    def nested(self):
        with self._gate:
            with self._stop_lock:  # R2: nested different locks
                pass

    def manual(self):
        self._gate.acquire()  # R3: bare acquire
        self._gate.release()  # R3: bare release

    def outer(self):
        with self._gate:
            self.inner()  # R4: inner re-acquires _gate

    def inner(self):
        with self._gate:
            pass
'''

BAD_STORE = '''\
import threading

class ShardedTuningStore:
    def __init__(self):
        self._lock = threading.Lock()

    def _locked(self, shard):
        return self._lock

    def put(self, key, record):
        self.data[key] = record  # R5: no `with self._locked(...)`

    def flush_touches(self):
        with self._locked(0):
            pass

    def compact(self):
        with self._locked(0):
            pass

    def evict(self):
        with self._locked(0):
            pass

    def clear(self):
        with self._locked(0):
            pass

    def _scan_shard(self):
        with self._locked(0):
            pass

    def last_served(self):
        with self._locked(0):
            pass
'''


class TestRepoIsClean:
    def test_default_files_pass(self, capsys):
        assert lint_concurrency.main([]) == 0
        assert "0 violation(s)" in capsys.readouterr().out

    def test_subprocess_entry_point(self):
        proc = subprocess.run(
            [sys.executable, str(LINT)], capture_output=True, text=True
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "0 violation(s)" in proc.stdout


class TestRulesFire:
    def test_bad_server_all_rules(self, tmp_path, capsys):
        bad = tmp_path / "server.py"  # policy tables key on the basename
        bad.write_text(BAD_SERVER)
        assert lint_concurrency.main([str(bad)]) == 1
        out = capsys.readouterr().out
        for rule, fragment in [
            ("R1", "touches '_inflight' without holding '_gate'"),
            ("R2", "lock-ordering hazard"),
            ("R3", "use `with`"),
            ("R4", "non-reentrant deadlock"),
        ]:
            assert f"[{rule}]" in out, f"{rule} did not fire:\n{out}"
            assert fragment in out

    def test_bad_store_missing_critical_section(self, tmp_path, capsys):
        bad = tmp_path / "store.py"
        bad.write_text(BAD_STORE)
        assert lint_concurrency.main([str(bad)]) == 1
        out = capsys.readouterr().out
        assert "[R5]" in out
        assert "ShardedTuningStore.put" in out

    def test_unknown_basename_not_policed(self, tmp_path, capsys):
        """The same code under a different name only triggers the generic
        lock rules (R2/R3/R4), not the per-file policy tables."""
        bad = tmp_path / "whatever.py"
        bad.write_text(BAD_SERVER)
        assert lint_concurrency.main([str(bad)]) == 1
        out = capsys.readouterr().out
        assert "[R1]" not in out  # guarded-state policy is server.py-only
        assert "[R2]" in out and "[R3]" in out

    def test_missing_file_is_distinct_error(self, tmp_path, capsys):
        assert lint_concurrency.main([str(tmp_path / "nope.py")]) == 2

    def test_quiet_suppresses_details(self, tmp_path, capsys):
        bad = tmp_path / "server.py"
        bad.write_text(BAD_SERVER)
        assert lint_concurrency.main([str(bad), "-q"]) == 1
        out = capsys.readouterr().out
        assert "[R1]" not in out
        assert "violation(s)" in out
