"""Tests for the unified RetryPolicy / CircuitBreaker."""

import pytest

from repro.retry import CircuitBreaker, RetryPolicy


class FakeClock:
    """A manual monotonic clock; `sleep` advances it (no real waiting)."""

    def __init__(self) -> None:
        self.now = 0.0
        self.sleeps = []

    def __call__(self) -> float:
        return self.now

    def sleep(self, seconds: float) -> None:
        self.sleeps.append(seconds)
        self.now += seconds


class TestBackoffSchedule:
    def test_capped_exponential_without_jitter(self):
        policy = RetryPolicy(base_delay_s=0.1, multiplier=2.0, max_delay_s=0.5, jitter=0.0)
        assert [policy.backoff_s(n) for n in (1, 2, 3, 4, 5)] == [
            0.1,
            0.2,
            0.4,
            0.5,
            0.5,
        ]

    def test_jitter_only_shrinks_and_is_deterministic(self):
        policy = RetryPolicy(base_delay_s=0.1, jitter=0.5, seed=7)
        for attempt in range(1, 20):
            raw = RetryPolicy(base_delay_s=0.1, jitter=0.0).backoff_s(attempt)
            jittered = policy.backoff_s(attempt)
            assert raw * 0.5 <= jittered <= raw  # downward only, bounded
            assert jittered == policy.backoff_s(attempt)  # pure function

    def test_different_seeds_decorrelate(self):
        a = RetryPolicy(jitter=0.5, seed=1)
        b = RetryPolicy(jitter=0.5, seed=2)
        assert [a.backoff_s(n) for n in range(1, 6)] != [
            b.backoff_s(n) for n in range(1, 6)
        ]

    def test_huge_attempt_numbers_do_not_overflow(self):
        policy = RetryPolicy(max_delay_s=2.0, jitter=0.0)
        assert policy.backoff_s(10_000) == 2.0

    def test_attempt_is_one_based(self):
        with pytest.raises(ValueError, match="1-based"):
            RetryPolicy().backoff_s(0)

    def test_validation(self):
        with pytest.raises(ValueError, match="max_attempts"):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError, match="deadline"):
            RetryPolicy(max_attempts=None)  # unbounded needs a deadline
        with pytest.raises(ValueError, match="jitter"):
            RetryPolicy(jitter=1.0)
        with pytest.raises(ValueError, match="multiplier"):
            RetryPolicy(multiplier=0.5)


class TestAttempts:
    def test_yields_exactly_max_attempts(self):
        clock = FakeClock()
        policy = RetryPolicy(max_attempts=4, jitter=0.0)
        seen = list(policy.attempts(sleep=clock.sleep, clock=clock))
        assert seen == [0, 1, 2, 3]
        assert len(clock.sleeps) == 3  # no sleep after the last attempt

    def test_single_attempt_never_sleeps(self):
        clock = FakeClock()
        assert list(
            RetryPolicy(max_attempts=1).attempts(sleep=clock.sleep, clock=clock)
        ) == [0]
        assert clock.sleeps == []

    def test_deadline_bounds_unbounded_attempts(self):
        clock = FakeClock()
        policy = RetryPolicy(
            max_attempts=None,
            base_delay_s=0.3,
            multiplier=1.0,
            jitter=0.0,
            deadline_s=1.0,
        )
        seen = list(policy.attempts(sleep=clock.sleep, clock=clock))
        # 0.3s per gap, 1.0s budget -> attempts at t=0, .3, .6, .9, then the
        # final delay is clipped to the 0.1s remaining and the deadline ends it.
        assert len(seen) == 5
        assert clock.sleeps[-1] == pytest.approx(0.1)
        assert clock.now <= 1.0 + 1e-9  # never overshoots

    def test_deadline_clips_the_pending_delay(self):
        clock = FakeClock()
        policy = RetryPolicy(
            max_attempts=None, base_delay_s=10.0, jitter=0.0, deadline_s=1.0
        )
        list(policy.attempts(sleep=clock.sleep, clock=clock))
        assert clock.sleeps == [1.0]  # a 10s backoff clipped to the budget


class TestClassifyAndCall:
    def test_classify_transient_vs_fatal(self):
        policy = RetryPolicy(transient=(OSError,))
        assert policy.classify(ConnectionResetError()) == "transient"
        assert policy.classify(ValueError()) == "fatal"

    def test_call_retries_transient_and_returns(self):
        clock = FakeClock()
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) < 3:
                raise OSError("transient")
            return "done"

        policy = RetryPolicy(max_attempts=5, jitter=0.0)
        assert policy.call(flaky, sleep=clock.sleep, clock=clock) == "done"
        assert len(calls) == 3

    def test_call_reraises_fatal_immediately(self):
        clock = FakeClock()
        calls = []

        def broken():
            calls.append(1)
            raise ValueError("logic error")

        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=5).call(broken, sleep=clock.sleep, clock=clock)
        assert len(calls) == 1  # retrying a logic error only hides it

    def test_call_raises_last_transient_at_exhaustion(self):
        clock = FakeClock()

        def always_down():
            raise ConnectionRefusedError("down")

        with pytest.raises(ConnectionRefusedError):
            RetryPolicy(max_attempts=3, jitter=0.0).call(
                always_down, sleep=clock.sleep, clock=clock
            )
        assert len(clock.sleeps) == 2

    def test_on_retry_callback_sees_the_failure(self):
        clock = FakeClock()
        seen = []

        def flaky():
            if not seen:
                raise OSError("first")
            return "ok"

        RetryPolicy(max_attempts=3, jitter=0.0).call(
            flaky,
            sleep=clock.sleep,
            clock=clock,
            on_retry=lambda attempt, exc: seen.append((attempt, str(exc))),
        )
        assert seen == [(1, "first")]


class TestCircuitBreaker:
    def _breaker(self, clock, **kwargs):
        kwargs.setdefault("reset_timeout_s", 1.0)
        return CircuitBreaker(clock=clock, **kwargs)

    def test_closed_until_threshold(self):
        clock = FakeClock()
        breaker = self._breaker(clock, failure_threshold=3)
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == "closed" and breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open" and not breaker.allow()

    def test_default_threshold_is_one_failure(self):
        clock = FakeClock()
        breaker = self._breaker(clock)
        breaker.record_failure()
        assert breaker.state == "open"

    def test_half_open_after_timeout_then_success_closes(self):
        clock = FakeClock()
        breaker = self._breaker(clock)
        breaker.record_failure()
        assert not breaker.allow()
        clock.now += 1.01
        assert breaker.state == "half_open" and breaker.allow()
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.trips == 0  # escalation reset

    def test_failed_probe_reopens_immediately_and_escalates(self):
        clock = FakeClock()
        breaker = self._breaker(clock, failure_threshold=3)
        for _ in range(3):
            breaker.record_failure()
        clock.now += 1.01
        assert breaker.state == "half_open"
        breaker.record_failure()  # one failed probe, not three
        assert breaker.state == "open"
        clock.now += 1.01
        assert breaker.state == "open"  # second trip holds for 2s, not 1s
        clock.now += 1.0
        assert breaker.state == "half_open"

    def test_reset_timeout_escalation_is_capped(self):
        clock = FakeClock()
        breaker = self._breaker(clock, max_reset_timeout_s=4.0)
        for _ in range(10):
            breaker.record_failure()
            clock.now += 100.0
        assert breaker.reset_timeout_s() == 4.0

    def test_success_resets_consecutive_failures(self):
        clock = FakeClock()
        breaker = self._breaker(clock, failure_threshold=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == "closed"  # never two *consecutive* failures

    def test_permanent_trip_never_heals(self):
        clock = FakeClock()
        breaker = self._breaker(clock)
        breaker.trip(forever=True)
        clock.now += 1e9
        assert breaker.state == "open" and not breaker.allow()
        assert breaker.permanent
        assert "permanent" in breaker.summary()

    def test_threshold_validation(self):
        with pytest.raises(ValueError, match="failure_threshold"):
            CircuitBreaker(failure_threshold=0)
