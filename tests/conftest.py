"""Shared fixtures and reference implementations for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dsl import cast, compute, placeholder, reduce_axis, sum_reduce
from repro.workloads import Conv2DParams


# ---------------------------------------------------------------------------
# numpy reference implementations (the correctness oracles)
# ---------------------------------------------------------------------------

def conv2d_hwc_reference(data: np.ndarray, weight: np.ndarray) -> np.ndarray:
    """Direct conv2d in HWC / RSKC layout, int32 accumulation, stride 1."""
    h, w, c = data.shape
    r, s, k, _ = weight.shape
    oh, ow = h - r + 1, w - s + 1
    out = np.zeros((oh, ow, k), dtype=np.int64)
    d32 = data.astype(np.int64)
    w32 = weight.astype(np.int64)
    for x in range(oh):
        for y in range(ow):
            patch = d32[x : x + r, y : y + s, :]  # (r, s, c)
            out[x, y, :] = np.einsum("rsc,rskc->k", patch, w32)
    return out.astype(np.int32)


def conv2d_nchwc_reference(data: np.ndarray, weight: np.ndarray, stride: int = 1) -> np.ndarray:
    """Blocked-layout conv2d reference.

    data: (c_outer, H, W, c_inner); weight: (k_outer, c_outer, R, S, k_inner, c_inner)
    output: (k_outer, OH, OW, k_inner), int32.
    """
    c_outer, h, w, c_inner = data.shape
    k_outer, _, r, s, k_inner, _ = weight.shape
    oh = (h - r) // stride + 1
    ow = (w - s) // stride + 1
    out = np.zeros((k_outer, oh, ow, k_inner), dtype=np.int64)
    d = data.astype(np.int64)
    wt = weight.astype(np.int64)
    for ko in range(k_outer):
        for y in range(oh):
            for x in range(ow):
                patch = d[:, y * stride : y * stride + r, x * stride : x * stride + s, :]
                out[ko, y, x, :] = np.einsum("crsi,crski->k", patch.transpose(0, 1, 2, 3), wt[ko].transpose(0, 1, 2, 3, 4))
    return out.astype(np.int32)


def matmul_reference(a: np.ndarray, b: np.ndarray, transpose_b: bool = False) -> np.ndarray:
    """Integer/float matmul reference with wide accumulation."""
    if a.dtype.kind in "iu":
        a64 = a.astype(np.int64)
        b64 = b.astype(np.int64)
        result = a64 @ (b64.T if transpose_b else b64)
        return result.astype(np.int32)
    a32 = a.astype(np.float32)
    b32 = b.astype(np.float32)
    return a32 @ (b32.T if transpose_b else b32)


# ---------------------------------------------------------------------------
# DSL workload builders (small shapes, used across many test modules)
# ---------------------------------------------------------------------------

def small_conv_hwc(h=8, w=8, c=8, k=16, r=3):
    """The Figure 5 convolution with small shapes (VNNI-compatible)."""
    a = placeholder((h, w, c), "uint8", "data")
    b = placeholder((r, r, k, c), "int8", "weight")
    rc = reduce_axis(0, c, "rc")
    rr = reduce_axis(0, r, "r")
    rs = reduce_axis(0, r, "s")
    out = compute(
        (h - r + 1, w - r + 1, k),
        lambda x, y, kk: sum_reduce(
            cast("int32", a[x + rr, y + rs, rc]) * cast("int32", b[rr, rs, kk, rc]),
            [rr, rs, rc],
        ),
        name="conv",
        axis_names=["x", "y", "k"],
    )
    return out


def small_matmul_int8(m=4, n=16, k=8):
    """Quantized matmul C[m, n] = A[m, k] · B[n, k]^T (VNNI/DOT compatible)."""
    a = placeholder((m, k), "uint8", "A")
    b = placeholder((n, k), "int8", "B")
    rk = reduce_axis(0, k, "rk")
    return compute(
        (m, n),
        lambda i, j: sum_reduce(cast("int32", a[i, rk]) * cast("int32", b[j, rk]), rk),
        name="matmul_i8",
        axis_names=["i", "j"],
    )


def small_matmul_fp16(m=32, n=32, k=32):
    """Mixed-precision matmul (Tensor Core compatible)."""
    a = placeholder((m, k), "float16", "A")
    b = placeholder((k, n), "float16", "B")
    rk = reduce_axis(0, k, "rk")
    return compute(
        (m, n),
        lambda i, j: sum_reduce(
            cast("float32", a[i, rk]) * cast("float32", b[rk, j]), rk
        ),
        name="matmul_fp16",
        axis_names=["i", "j"],
    )


@pytest.fixture
def rng():
    return np.random.default_rng(1234)


@pytest.fixture
def tiny_conv_params():
    return Conv2DParams(
        in_channels=8, in_height=8, in_width=8, out_channels=16, kernel=3, name="tiny"
    )
