"""Tests for the DNN model zoo: structure and MAC counts against published values."""

import pytest

from repro.graph import DepthwiseConv2DNode
from repro.models import EVALUATED_MODELS, all_models, get_model

# Published multiply-accumulate counts (per image, batch 1), in GMACs
# (e.g. the values reported by ptflops for the torchvision/GluonCV models).
# Inception variants carry a wider tolerance: auxiliary heads are omitted and
# the 1x7/7x1 factorised convolutions are approximated by square kernels.
_EXPECTED_GMACS = {
    "resnet-18": (1.82, 0.1),
    "resnet-50": (4.1, 0.15),
    "resnet-50_v1b": (4.1, 0.15),
    "resnet-101": (7.85, 0.15),
    "resnet-152": (11.58, 0.15),
    "mobilenet-v1": (0.58, 0.15),
    "mobilenet-v2": (0.32, 0.15),
    "inception-bn": (2.0, 0.3),
    "inception-v3": (5.75, 0.3),
}

_EXPECTED_CONV_COUNTS = {
    "resnet-18": 20,
    "resnet-50": 53,
    "resnet-101": 104,
    "resnet-152": 155,
}


class TestZoo:
    def test_all_nine_models_build(self):
        models = all_models(fresh=True)
        assert set(models) == set(EVALUATED_MODELS)
        assert len(models) == 9
        for graph in models.values():
            graph.infer_shapes()
            assert len(graph.conv_nodes()) > 0

    def test_unknown_model(self):
        with pytest.raises(KeyError):
            get_model("vgg-16")

    def test_cache_vs_fresh(self):
        assert get_model("resnet-18") is get_model("resnet-18")
        assert get_model("resnet-18", fresh=True) is not get_model("resnet-18")

    @pytest.mark.parametrize("name", sorted(_EXPECTED_GMACS))
    def test_mac_counts_match_published(self, name):
        expected, tolerance = _EXPECTED_GMACS[name]
        graph = get_model(name, fresh=True)
        gmacs = graph.total_macs / 1e9
        assert gmacs == pytest.approx(expected, rel=tolerance)

    @pytest.mark.parametrize("name,count", sorted(_EXPECTED_CONV_COUNTS.items()))
    def test_conv_counts(self, name, count):
        graph = get_model(name, fresh=True)
        assert len(graph.conv_nodes()) == count

    def test_resnet_output_is_1000_classes(self):
        graph = get_model("resnet-50", fresh=True)
        last_dense = [n for n in graph.nodes if n.__class__.__name__ == "DenseNode"][-1]
        assert last_dense.out_features == 1000

    def test_mobilenets_contain_depthwise(self):
        for name in ("mobilenet-v1", "mobilenet-v2"):
            graph = get_model(name, fresh=True)
            assert any(isinstance(n, DepthwiseConv2DNode) for n in graph.nodes)

    def test_v1b_moves_stride_to_3x3(self):
        """resnet-50 v1 strides on 1x1 convs; v1b strides on 3x3 convs."""
        v1 = get_model("resnet-50", fresh=True)
        v1b = get_model("resnet-50_v1b", fresh=True)
        strided_3x3_v1 = [
            n for n in v1.conv_nodes() if n.kernel == 3 and n.stride == 2
        ]
        strided_3x3_v1b = [
            n for n in v1b.conv_nodes() if n.kernel == 3 and n.stride == 2
        ]
        assert len(strided_3x3_v1b) > len(strided_3x3_v1)

    def test_inception_v3_input_is_299(self):
        graph = get_model("inception-v3", fresh=True)
        assert graph.nodes[0].shape.height == 299

    def test_table1_shapes_exist_in_models(self):
        """A sanity link between Table I and the models: the well-known
        1024-channel 14x14 bottleneck shape appears in the ResNet family."""
        graph = get_model("resnet-50", fresh=True)
        graph.infer_shapes()
        shapes = {
            (n.conv_params().in_channels, n.conv_params().in_height, n.conv_params().kernel)
            for n in graph.conv_nodes()
        }
        assert (1024, 14, 1) in shapes
