"""Tests for the vendor-library baseline cost models."""

import pytest

from repro.baselines import (
    CuDnnModel,
    LibraryProfile,
    MxnetOneDnnRunner,
    OneDnnModel,
    TvmCudnnRunner,
    TvmManualModel,
    TvmNeonModel,
    roofline_latency,
)
from repro.workloads import DenseParams, conv3d_from_conv2d, table1_layer


class TestRoofline:
    def test_compute_bound_vs_overhead(self):
        profile = LibraryProfile(
            name="test",
            peak_macs_per_second=1e12,
            efficiency=0.5,
            per_call_overhead_us=10.0,
            memory_bandwidth_gbps=100.0,
        )
        small = roofline_latency(profile, macs=1e3, bytes_moved=1e3, parallel_work=1e6)
        big = roofline_latency(profile, macs=1e9, bytes_moved=1e6, parallel_work=1e6)
        assert small.seconds == pytest.approx(10e-6, rel=0.2)
        assert big.seconds > 1e-3

    def test_small_layer_efficiency_interpolation(self):
        profile = LibraryProfile(
            name="test",
            peak_macs_per_second=1e12,
            efficiency=0.5,
            small_layer_efficiency=0.1,
            per_call_overhead_us=0.0,
            memory_bandwidth_gbps=1e6,
        )
        starved = roofline_latency(profile, macs=1e8, bytes_moved=0, parallel_work=10)
        rich = roofline_latency(profile, macs=1e8, bytes_moved=0, parallel_work=1e6)
        assert starved.seconds > rich.seconds
        assert starved.detail["efficiency"] < 0.15


class TestOneDnn:
    def test_conv_layers_have_reasonable_efficiency(self):
        model = OneDnnModel()
        for index in (5, 8, 10):
            layer = table1_layer(index)
            cost = model.conv2d_latency(layer)
            eff = layer.macs / cost.seconds / 9.2e12
            assert 0.0 < eff < 0.6

    def test_conv3d_slower_than_conv2d_by_depth_factor(self):
        model = OneDnnModel()
        layer = table1_layer(5)
        c3 = conv3d_from_conv2d(layer, depth=8)
        assert model.conv3d_latency(c3).seconds > model.conv2d_latency(layer).seconds

    def test_dense(self):
        model = OneDnnModel()
        cost = model.dense_latency(DenseParams(batch=1, in_features=2048, out_features=1000))
        assert cost.seconds > 0


class TestCuDnn:
    def test_fp16_without_tensor_core_is_slower_than_fp32(self):
        """The Figure 1 observation, at the operator level."""
        model = CuDnnModel()
        for index in (5, 7, 10):
            layer = table1_layer(index)
            fp32 = model.conv2d_fp32(layer).seconds
            fp16 = model.conv2d_fp16_no_tensor_core(layer).seconds
            assert fp16 > fp32

    def test_tensor_core_is_much_faster_than_fp32(self):
        model = CuDnnModel()
        layer = table1_layer(8)
        assert model.conv2d_tensor_core(layer).seconds < model.conv2d_fp32(layer).seconds

    def test_dense_variants(self):
        model = CuDnnModel()
        params = DenseParams(batch=1, in_features=2048, out_features=1000)
        assert model.dense_tensor_core(params).seconds > 0
        assert model.dense_fp32(params).seconds > 0


class TestTvmBaselines:
    def test_manual_is_slower_than_tuned_unit(self):
        from repro.core import UnitCpuRunner

        layer = table1_layer(5)
        manual = TvmManualModel.for_x86().conv2d_latency(layer).seconds
        unit = UnitCpuRunner(tuning="full").conv2d_latency(layer).seconds
        assert manual > unit

    def test_neon_much_slower_than_dot(self):
        layer = table1_layer(5)
        neon = TvmNeonModel().conv2d_latency(layer).seconds
        manual_dot = TvmManualModel.for_arm().conv2d_latency(layer).seconds
        assert neon > 2 * manual_dot

    def test_elementwise_cost_is_small(self):
        assert TvmManualModel.for_x86().elementwise_latency().seconds < 1e-5


class TestFrameworkRunners:
    def test_mxnet_adds_dispatch_overhead(self):
        layer = table1_layer(5)
        bare = OneDnnModel().conv2d_latency(layer).seconds
        wrapped = MxnetOneDnnRunner().conv2d_latency(layer).seconds
        assert wrapped > bare

    def test_tvm_cudnn_modes(self):
        layer = table1_layer(5)
        tc = TvmCudnnRunner(mode="tensor_core").conv2d_latency(layer).seconds
        fp32 = TvmCudnnRunner(mode="fp32").conv2d_latency(layer).seconds
        assert tc < fp32
        with pytest.raises(ValueError):
            TvmCudnnRunner(mode="int4")

    def test_elementwise_behaviour(self):
        assert MxnetOneDnnRunner().elementwise_latency().seconds > 0
        assert TvmCudnnRunner().elementwise_latency().seconds == 0.0
