#!/usr/bin/env python
"""Concurrency lint for the tuning store / service / worker stack.

A static (stdlib ``ast``) check of the lock discipline the concurrent tiers
document and depend on.  It runs in CI next to ``python -m repro.analysis``
— the same idea applied to threads instead of loop nests: prove the
invariants once, statically, instead of hoping the stress tests hit the
interleaving.

Rules
-----

R1  **guarded state** — attributes the policy table assigns to a lock
    (e.g. ``TuningService._gate`` guards ``_inflight`` / ``_foreground`` /
    ``_spec_queue`` / ``_spec_queued_ids``) may only be touched inside a
    ``with self.<lock>:`` block.  ``__init__`` is exempt (construction
    precedes sharing).

R2  **no nested locks** — no method may enter a second ``with self.<lock>``
    while already holding a different one (lock-ordering deadlock hazard;
    in particular ``_gate`` and ``_stop_lock`` must never nest).

R3  **no bare acquire/release** — lock attributes must be used via ``with``;
    explicit ``.acquire()`` / ``.release()`` calls are only allowed inside
    the lock wrapper methods themselves (``acquire`` / ``release`` /
    ``__enter__`` / ``__exit__``).

R4  **self-deadlock** — a method must not, while holding a lock, call
    another method of the same class that acquires that same
    (non-reentrant) lock.

R5  **required critical sections** — methods the policy table lists (the
    shard-mutating surface of ``ShardedTuningStore``) must wrap their work
    in ``with self._locked(...)``.

Exit status is non-zero when any rule fires.
"""

from __future__ import annotations

import argparse
import ast
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Set

REPO = Path(__file__).resolve().parent.parent

DEFAULT_FILES = [
    "src/repro/rewriter/store.py",
    "src/repro/rewriter/workers.py",
    "src/repro/service/server.py",
    "src/repro/service/client.py",
    "src/repro/retry.py",
    "src/repro/testing/faults.py",
    "src/repro/telemetry/metrics.py",
    "src/repro/telemetry/trace.py",
    "src/repro/telemetry/resultsdb.py",
]

# Constructors whose result is a lock-like object when assigned to self.
LOCK_FACTORIES = {"Lock", "RLock", "Condition", "FileLock"}

# R1 policy: file basename -> class -> lock attribute -> guarded attributes.
GUARDED: Dict[str, Dict[str, Dict[str, Set[str]]]] = {
    "server.py": {
        "TuningService": {
            "_gate": {
                "_inflight",
                "_foreground",
                "_spec_queue",
                "_spec_queued_ids",
                "_conns",
                "replication",
            },
        },
    },
    "workers.py": {
        # The heartbeat's task pointer is written by the worker's main
        # thread (begin/finish) and read by the stamping thread (_stamp).
        "Heartbeat": {
            "_lock": {
                "_current",
                "_started",
            },
        },
    },
    # Telemetry sinks are written from every instrumented thread (engine,
    # service handlers, tuning workers' supervisor): all three instrument
    # tables, the tracer's finished-span list + id sequence, and the
    # results DB's sqlite connection live behind one lock each.
    "metrics.py": {
        "MetricsRegistry": {
            "_lock": {
                "_counters",
                "_gauges",
                "_histograms",
            },
        },
    },
    "trace.py": {
        "Tracer": {
            "_lock": {
                "_finished",
                "_seq",
            },
        },
    },
    "resultsdb.py": {
        "ResultsDB": {
            "_lock": {
                "_conn",
            },
        },
    },
}

# R5 policy: file basename -> class -> context-manager method -> methods that
# must contain ``with self.<cm>(...)``.
REQUIRE_LOCKED: Dict[str, Dict[str, Dict[str, Set[str]]]] = {
    "store.py": {
        "ShardedTuningStore": {
            "_locked": {
                "put",
                "flush_touches",
                "compact",
                "evict",
                "clear",
                "_scan_shard",
                "last_served",
                "read_shard_since",
                "fsck",
            },
        },
    },
    "workers.py": {
        # Every lease-file mutation (claim / release / done) must happen
        # under the cross-process lock, or two workers can tune one task.
        "LeaseFile": {
            "_lock": {
                "claim",
                "release",
                "mark_done",
            },
        },
    },
}

# Methods allowed to call .acquire()/.release() on lock attributes (R3).
WRAPPER_METHODS = {"acquire", "release", "__enter__", "__exit__"}


@dataclass
class Violation:
    path: str
    line: int
    rule: str
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def _self_attr(node: ast.AST) -> Optional[str]:
    """``self.<name>`` -> name, else None."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _lock_attrs(cls: ast.ClassDef) -> Set[str]:
    """Attributes assigned a Lock/RLock/Condition/FileLock anywhere in the class."""
    locks: Set[str] = set()
    for node in ast.walk(cls):
        if not isinstance(node, ast.Assign) or not isinstance(node.value, ast.Call):
            continue
        func = node.value.func
        name = func.attr if isinstance(func, ast.Attribute) else (
            func.id if isinstance(func, ast.Name) else None
        )
        if name not in LOCK_FACTORIES:
            continue
        for target in node.targets:
            attr = _self_attr(target)
            if attr is not None:
                locks.add(attr)
    return locks


def _with_locks(stmt: ast.With, lock_attrs: Set[str]) -> List[str]:
    """The self-lock names a ``with`` statement acquires (R2/R1 contexts).

    Covers ``with self._lock:`` for lock attributes and
    ``with self._locked(...):`` for context-manager factory methods.
    """
    held = []
    for item in stmt.items:
        ctx = item.context_expr
        attr = _self_attr(ctx)
        if attr is not None and attr in lock_attrs:
            held.append(attr)
        elif isinstance(ctx, ast.Call):
            attr = _self_attr(ctx.func)
            if attr is not None:
                held.append(attr)
    return held


class _MethodScanner(ast.NodeVisitor):
    """Walk one method tracking the set of locks held at each node."""

    def __init__(
        self,
        path: str,
        cls: str,
        method: str,
        lock_attrs: Set[str],
        guarded: Dict[str, Set[str]],
        violations: List[Violation],
    ) -> None:
        self.path = path
        self.cls = cls
        self.method = method
        self.lock_attrs = lock_attrs
        self.guarded = guarded
        self.violations = violations
        self.held: List[str] = []
        self.acquires: Set[str] = set()  # locks this method takes directly
        self.calls_under: Dict[str, Set[str]] = {}  # method -> locks held at call
        self.locked_cms: Set[str] = set()  # self.<cm>(...) with-contexts used

    # -- lock contexts ----------------------------------------------------
    def visit_With(self, node: ast.With) -> None:
        taken = _with_locks(node, self.lock_attrs)
        for lock in taken:
            self.acquires.add(lock)
            self.locked_cms.add(lock)
            if self.held and any(h != lock for h in self.held):
                self.violations.append(
                    Violation(
                        self.path,
                        node.lineno,
                        "R2",
                        f"{self.cls}.{self.method} acquires {lock!r} while "
                        f"holding {self.held[-1]!r} (lock-ordering hazard)",
                    )
                )
        self.held.extend(taken)
        self.generic_visit(node)
        del self.held[len(self.held) - len(taken) :]

    # -- attribute discipline ---------------------------------------------
    def visit_Attribute(self, node: ast.Attribute) -> None:
        attr = _self_attr(node)
        if attr is not None and self.method != "__init__":
            for lock, attrs in self.guarded.items():
                if attr in attrs and lock not in self.held:
                    self.violations.append(
                        Violation(
                            self.path,
                            node.lineno,
                            "R1",
                            f"{self.cls}.{self.method} touches {attr!r} "
                            f"without holding {lock!r}",
                        )
                    )
        self.generic_visit(node)

    # -- calls --------------------------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute):
            owner = _self_attr(func.value)
            if (
                owner is not None
                and owner in self.lock_attrs
                and func.attr in ("acquire", "release")
                and self.method not in WRAPPER_METHODS
            ):
                self.violations.append(
                    Violation(
                        self.path,
                        node.lineno,
                        "R3",
                        f"{self.cls}.{self.method} calls "
                        f"self.{owner}.{func.attr}() directly; use `with`",
                    )
                )
            callee = _self_attr(func)
            if callee is not None and self.held:
                self.calls_under.setdefault(callee, set()).update(self.held)
        self.generic_visit(node)


def lint_file(path: Path, repo_relative: str) -> List[Violation]:
    violations: List[Violation] = []
    tree = ast.parse(path.read_text(), filename=str(path))
    base = path.name
    for cls in [n for n in ast.walk(tree) if isinstance(n, ast.ClassDef)]:
        lock_attrs = _lock_attrs(cls)
        guarded = GUARDED.get(base, {}).get(cls.name, {})
        required = REQUIRE_LOCKED.get(base, {}).get(cls.name, {})
        if not lock_attrs and not guarded and not required:
            continue
        scanners: Dict[str, _MethodScanner] = {}
        for item in cls.body:
            if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            scanner = _MethodScanner(
                repo_relative, cls.name, item.name, lock_attrs, guarded, violations
            )
            scanner.visit(item)
            scanners[item.name] = scanner

        # R4: calling a method that re-acquires a lock we already hold.
        for name, scanner in scanners.items():
            for callee, held in scanner.calls_under.items():
                target = scanners.get(callee)
                if target is None:
                    continue
                again = held & {l for l in target.acquires if l in lock_attrs}
                for lock in sorted(again):
                    violations.append(
                        Violation(
                            repo_relative,
                            cls.lineno,
                            "R4",
                            f"{cls.name}.{name} holds {lock!r} while calling "
                            f"{callee}(), which acquires it again "
                            f"(non-reentrant deadlock)",
                        )
                    )

        # R5: required critical sections.
        for cm, methods in required.items():
            for method in sorted(methods):
                scanner = scanners.get(method)
                if scanner is None:
                    violations.append(
                        Violation(
                            repo_relative,
                            cls.lineno,
                            "R5",
                            f"{cls.name}.{method} is required to exist and "
                            f"use `with self.{cm}(...)` but was not found",
                        )
                    )
                elif cm not in scanner.locked_cms:
                    violations.append(
                        Violation(
                            repo_relative,
                            cls.lineno,
                            "R5",
                            f"{cls.name}.{method} mutates shard state without "
                            f"`with self.{cm}(...)`",
                        )
                    )
    return violations


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="statically check the concurrent tiers' lock discipline"
    )
    parser.add_argument(
        "files",
        nargs="*",
        help=f"files to lint (default: {' '.join(DEFAULT_FILES)})",
    )
    parser.add_argument(
        "-q", "--quiet", action="store_true", help="print only the verdict line"
    )
    args = parser.parse_args(argv)

    targets = args.files or [str(REPO / f) for f in DEFAULT_FILES]
    violations: List[Violation] = []
    checked = 0
    for target in targets:
        path = Path(target)
        if not path.exists():
            print(f"lint_concurrency: no such file: {target}", file=sys.stderr)
            return 2
        try:
            rel = str(path.resolve().relative_to(REPO))
        except ValueError:
            rel = str(path)
        violations.extend(lint_file(path, rel))
        checked += 1

    if not args.quiet:
        for v in violations:
            print(v.format())
    print(
        f"lint_concurrency: {checked} file(s), "
        f"{len(violations)} violation(s)"
    )
    return 1 if violations else 0


if __name__ == "__main__":
    sys.exit(main())
