#!/usr/bin/env python3
"""Ablation study over the Table I convolution layers (Figures 10 and 11).

For every selected layer the script prints the relative performance of each
optimisation step of UNIT's Rewriter against the vendor library baseline:
CPU: Parallel / +Unroll / +Tune vs oneDNN; GPU: Generic / +FuseDim / +SplitK /
+Tune vs cuDNN Tensor Core kernels.

Run:  python examples/ablation_study.py
"""

from repro.core.experiments import (
    figure10_cpu_ablation,
    figure11_gpu_ablation,
    table1_characteristics,
    tuning_convergence,
)


def main() -> None:
    print("Table I — selected convolution layers")
    header = f"{'layer':>5} {'C':>5} {'IHW':>4} {'K':>5} {'R=S':>4} {'stride':>6} {'OHW':>4} {'MMACs':>8}"
    print(header)
    for row in table1_characteristics():
        print(
            f"{row['layer']:>5} {row['C']:>5} {row['IHW']:>4} {row['K']:>5} "
            f"{row['R=S']:>4} {row['stride']:>6} {row['OHW']:>4} {row['MACs']/1e6:>8.1f}"
        )

    print("\nFigure 10 — CPU ablation (relative to oneDNN = 1.0)")
    print(f"{'layer':>5} {'Parallel':>9} {'+Unroll':>9} {'+Tune':>9}")
    for row in figure10_cpu_ablation():
        print(
            f"{row['layer']:>5} {row['rel_parallel']:>9.2f} "
            f"{row['rel_unroll']:>9.2f} {row['rel_tune']:>9.2f}"
        )

    print("\nFigure 11 — GPU ablation (relative to cuDNN Tensor Core = 1.0)")
    print(f"{'layer':>5} {'Generic':>9} {'+FuseDim':>9} {'+SplitK':>9} {'+Tune':>9}")
    for row in figure11_gpu_ablation():
        print(
            f"{row['layer']:>5} {row['rel_generic']:>9.2f} {row['rel_fusedim']:>9.2f} "
            f"{row['rel_splitk']:>9.2f} {row['rel_tune']:>9.2f}"
        )

    conv = tuning_convergence()
    print("\nTuning convergence (Section VI-B):")
    print(f"  optimal at the first tuning pair : {conv['optimal_at_first_pair']*100:.0f}% of layers")
    print(f"  optimal within the first 8 pairs : {conv['optimal_within_8_pairs']*100:.0f}% of layers")


if __name__ == "__main__":
    main()
