#!/usr/bin/env python3
"""Quickstart: tensorize one convolution with Intel VNNI and check it end to end.

This walks the exact example of the paper's Figure 5: a small convolution in
the HWC layout, matched against the ``vpdpbusd`` instruction, reorganized,
rewritten, executed through the instruction's hardware model, and compared
against a plain numpy reference.  It also prints the generated tensor IR and a
latency estimate from the Cascade Lake machine model.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.core import tensorize
from repro.hwsim import CASCADE_LAKE, CpuKernelModel
from repro.isa import get_intrinsic
from repro.rewriter import CpuTuningConfig
from repro.tir import alloc_buffers, run
from repro.workloads import Conv2DParams, conv2d_hwc


def main() -> None:
    # 1. Declare the tensor operation (Figure 5(a): conv2d in HWC / RSKC layout).
    params = Conv2DParams(
        in_channels=8, in_height=10, in_width=10, out_channels=32, kernel=3, name="conv"
    )
    conv = conv2d_hwc(params)
    print("== Tensor operation ==")
    from repro.dsl import op_to_str

    print(op_to_str(conv.op))

    # 2. Let UNIT find and apply the tensorized instruction.
    result = tensorize(conv, "x86.avx512.vpdpbusd", config=CpuTuningConfig())
    print("\n== Inspection ==")
    print(f"instruction        : {result.intrinsic.name}")
    print(f"feasible mappings  : {result.num_feasible_mappings}")
    print(f"chosen mapping     : {result.inspection.mapping}")

    print("\n== Generated tensor IR (after instruction injection) ==")
    print(result.func)

    # 3. Execute the tensorized program and compare with numpy.
    buffers = alloc_buffers(result.func, np.random.default_rng(0))
    out = result.execute(buffers)
    data, weight = (buffers[t] for t in result.func.inputs)
    reference = np.einsum(
        "xyrsc,rskc->xyk",
        np.lib.stride_tricks.sliding_window_view(
            data.astype(np.int64), (3, 3), axis=(0, 1)
        ).transpose(0, 1, 3, 4, 2),
        weight.astype(np.int64),
    ).astype(np.int32)
    print("\n== Correctness ==")
    print("matches numpy reference:", np.array_equal(out, reference))

    # 4. Estimate the layer latency on the Cascade Lake machine model.
    model = CpuKernelModel(CASCADE_LAKE, get_intrinsic("x86.avx512.vpdpbusd"))
    cost = model.conv2d_latency(params, CpuTuningConfig())
    print("\n== Estimated latency on Cascade Lake ==")
    print(f"{cost.microseconds:.2f} us  (compute {cost.compute_seconds*1e6:.2f} us, "
          f"memory {cost.memory_seconds*1e6:.2f} us)")


if __name__ == "__main__":
    main()
