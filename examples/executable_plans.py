"""Compile-once executable plans: the analysis/run split in action.

Demonstrates the three layers added by the plan subsystem:

1. ``compile_plan`` — one analysis pass turns a lowered function into an
   :class:`ExecutablePlan` that runs with zero re-analysis;
2. the process-wide ``plan_cache()`` — structurally identical layers
   (different objects, same program) share one plan;
3. ``run_model`` — whole-model execution through cached plans with
   liveness-planned activation memory (one arena, recycled slots).

Run with::

    PYTHONPATH=src python examples/executable_plans.py
"""

import time

import numpy as np

from repro.core import tensorize
from repro.graph import Conv2DNode, Graph, InputNode, TensorShape, run_model
from repro.rewriter import CpuTuningConfig
from repro.tir import EngineStats, alloc_buffers, compile_plan, execute, plan_cache
from repro.workloads import Conv2DParams, conv2d_nchwc


def main() -> None:
    params = Conv2DParams(
        in_channels=16, in_height=8, in_width=8, out_channels=32, kernel=3,
        name="layer",
    )

    # -- 1. compile once, run many times ---------------------------------
    result = tensorize(conv2d_nchwc(params), "x86.avx512.vpdpbusd",
                       config=CpuTuningConfig())
    t0 = time.perf_counter()
    plan = compile_plan(result.func)
    compile_ms = (time.perf_counter() - t0) * 1e3
    stats = EngineStats()
    buffers = alloc_buffers(result.func, np.random.default_rng(0))
    t0 = time.perf_counter()
    plan.run(buffers, stats=stats)
    run_ms = (time.perf_counter() - t0) * 1e3
    print(f"plan: compiled in {compile_ms:.2f} ms, ran in {run_ms:.2f} ms")
    print(
        f"      {stats.intrinsic_rounds} intrinsic rounds dispatched in "
        f"{stats.intrinsic_round_batches} batched call(s), "
        f"{plan.fallback_nests} fallbacks"
    )

    # -- 2. structurally identical layers share one plan ------------------
    cache = plan_cache()
    cache.clear()
    hits0, misses0 = cache.stats.hits, cache.stats.misses
    for _ in range(4):  # four *distinct* lowerings of the same program
        twin = tensorize(conv2d_nchwc(params), "x86.avx512.vpdpbusd",
                         config=CpuTuningConfig()).func
        execute(twin, alloc_buffers(twin, np.random.default_rng(1)))
    print(
        f"cache: {cache.stats.hits - hits0} hits / "
        f"{cache.stats.misses - misses0} miss — one compile served all four"
    )

    # -- 3. whole-model execution with planned memory ---------------------
    graph = Graph("repeated")
    graph.add(InputNode(name="in", shape=TensorShape(8, 14, 14)))
    prev = "in"
    for i in range(8):
        prev = graph.add(
            Conv2DNode(name=f"conv{i}", inputs=[prev], out_channels=8,
                       kernel=3, padding=1, fused_activations=["relu"])
        )
    x = np.random.default_rng(2).standard_normal((8, 14, 14)).astype(np.float32)
    run = run_model(graph, {"in": x})
    mem = run.memory
    print(
        f"model: {run.plan_hits} plan hits / {run.plan_misses} compile(s) "
        f"across 8 layers; arena {mem.arena_bytes / 1e3:.1f} KB vs "
        f"{mem.naive_bytes / 1e3:.1f} KB naive ({mem.reuse_ratio:.1f}x reuse)"
    )
    warm = run_model(graph, {"in": x})
    assert np.array_equal(run.output, warm.output)
    print(f"       warm run hit rate {warm.plan_hit_rate:.0%}, deterministic ✓")


if __name__ == "__main__":
    main()
