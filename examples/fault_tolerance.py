#!/usr/bin/env python3
"""Fault-tolerance walkthrough: replication, failover, and recovery.

PR 5's tuning service made one daemon serve a fleet; this PR makes the
fleet survive the daemon.  This example:

1. starts a **primary** ``TuningService`` and a **replica** that pulls the
   primary's shard records over the wire (``replicate_from=``) — incremental
   anti-entropy sync, every record re-validated through the same staleness
   gate the store uses on disk;
2. warms a Table I slice through the primary and watches the replica
   converge (the ``health`` endpoint reports role and replication lag);
3. **kills the primary without ceremony** (``kill()`` — the in-process
   stand-in for ``kill -9``) and points a fresh two-endpoint
   ``RemoteSession`` at the fleet: the client fails over to the replica and
   every warm key is *served*, not re-tuned — zero searches anywhere;
4. shows the unified :class:`~repro.retry.RetryPolicy` and the session's
   circuit breaker degrading gracefully when *no* endpoint answers: the
   sweep completes from local search, records land in the fallback store;
5. audits every store with ``fsck`` — the kill tore nothing durable.

Run:  PYTHONPATH=src python examples/fault_tolerance.py
"""

import os
import tempfile
import time

from repro.core import UnitCpuRunner
from repro.rewriter import ShardedTuningStore, TuningSession
from repro.service import RemoteSession, ServiceClient, TuningService
from repro.workloads.table1 import TABLE1_LAYERS

SLICE = TABLE1_LAYERS[:4]


def sweep(session, layers=SLICE):
    runner = UnitCpuRunner(session=session)
    for params in layers:
        runner.conv2d_latency(params)


def main() -> None:
    base = tempfile.mkdtemp(prefix="unit_faults.")
    primary_root = os.path.join(base, "primary")
    replica_root = os.path.join(base, "replica")

    # 1. A primary and a replica that tails it over the wire.
    primary = TuningService(primary_root, speculative=False).start()
    replica = TuningService(
        replica_root,
        speculative=False,
        replicate_from=primary.address,
        sync_interval_s=0.1,
    ).start()
    print("== Fleet ==")
    print(f"  primary  {primary.address[0]}:{primary.address[1]} over {primary_root!r}")
    print(f"  replica  {replica.address[0]}:{replica.address[1]} over {replica_root!r}")

    # 2. Warm the slice through the primary; the replica converges behind it.
    warm = RemoteSession(primary.address)
    sweep(warm)
    deadline = time.monotonic() + 30.0
    while time.monotonic() < deadline:
        with ServiceClient(replica.address) as probe:
            health = probe.health()
        if health["replication"]["records_applied"] >= len(SLICE):
            break
        time.sleep(0.05)
    print("\n== Replication (health endpoint) ==")
    print(f"  replica role            : {health['role']}")
    print(f"  records applied         : {health['replication']['records_applied']}")
    print(f"  replication lag         : {health['replication']['lag_s'] * 1e3:.1f} ms")
    assert health["replication"]["records_applied"] >= len(SLICE)

    # 3. Kill the primary dead and fail over.
    primary.kill()
    fleet = RemoteSession([primary.address, replica.address], retries=1, timeout=2.0)
    t0 = time.perf_counter()
    sweep(fleet)
    elapsed = time.perf_counter() - t0
    print("\n== Primary killed mid-fleet ==")
    print(f"  warm sweep after kill   : {elapsed * 1e3:.1f} ms")
    print(f"  failovers               : {fleet.client.failovers}")
    print(f"  server hits (replica)   : {fleet.server_hits} / {len(SLICE)}")
    print(f"  searches anywhere       : {fleet.searches_run + replica.session.searches_run}")
    assert fleet.client.failovers >= 1
    assert fleet.server_hits == len(SLICE)
    assert fleet.searches_run == 0 and replica.session.searches_run == 0

    # Bit-identical to single-process tuning, through death and failover.
    reference = TuningSession()
    sweep(reference)
    identical = all(
        fleet.cache.lookup(record.key).to_json() == record.to_json()
        for record in reference.cache.records()
    )
    print(f"  bit-identical to local  : {identical}")
    assert identical

    # 4. Total outage: the breaker opens and the session degrades to local
    #    search with a durable fallback store — no exception ever escapes.
    replica.stop()
    fallback_root = os.path.join(base, "fallback")
    dark = RemoteSession(
        [primary.address, replica.address],
        retries=0,
        timeout=0.5,
        fallback_store=fallback_root,
    )
    sweep(dark, TABLE1_LAYERS[4:6])
    print("\n== Total outage (circuit breaker open) ==")
    print(f"  online                  : {dark.online}")
    print(f"  searched locally        : {dark.searches_run}")
    print(f"  fallback records        : {len(ShardedTuningStore(fallback_root).load())}")
    assert not dark.online and dark.searches_run == 2

    # 5. Post-mortem: every store audits clean — nothing durable tore.
    print("\n== fsck ==")
    for name, root in (("primary", primary_root), ("replica", replica_root),
                       ("fallback", fallback_root)):
        report = ShardedTuningStore(root).fsck()
        print(f"  {name:8s}: {report['records']} records, "
              f"{report['corrupt']} corrupt, clean={bool(report['clean'])}")
        assert report["corrupt"] == 0 and report["clean"] == 1
    print(f"\n  {dark.summary()}")


if __name__ == "__main__":
    main()
