#!/usr/bin/env python3
"""Tuning-as-a-service walkthrough: one daemon, many machines, zero re-tuning.

PR 3's distributed tuner parallelised tuning across *local* processes; the
tuning service turns the same store into a network daemon so any number of
client machines share one warm corpus.  This example:

1. starts a ``TuningService`` daemon (in-process, ephemeral port — exactly
   what ``python -m repro.service serve`` runs in production) over a fresh
   sharded store;
2. points two concurrent ``RemoteSession`` clients at the same Table I
   slice: the daemon's read-through + in-flight coalescing ensure each
   unique ``TuningKey`` is searched exactly once *fleet-wide*, and both
   clients receive bit-identical records;
3. lets one request's ``speculate=`` sweep hint pre-tune the remaining
   layers during idle time, so a third client's full sweep is pure warm
   hits;
4. compiles a whole model with ``compile_model(remote=...)`` — the drop-in
   path every figure driver shares;
5. garbage-collects the store over the wire (LRU by last-served) and prints
   the daemon's stats endpoint.

Run:  PYTHONPATH=src python examples/tuning_service.py
"""

import os
import tempfile
import threading
import time

from repro.core import UnitCpuRunner, compile_model
from repro.models.zoo import get_model
from repro.rewriter import TuningSession
from repro.service import RemoteSession, ServiceClient, TuningService
from repro.workloads.table1 import TABLE1_LAYERS

SLICE = TABLE1_LAYERS[:6]


def main() -> None:
    root = os.path.join(tempfile.mkdtemp(prefix="unit_service."), "store")

    with TuningService(root, speculative=True) as service:
        host, port = service.address
        print("== Daemon ==")
        print(f"  listening on {host}:{port} over {root!r}")

        # 1. Two concurrent clients sweep the same slice.
        def sweep(session, barrier):
            runner = UnitCpuRunner(session=session)
            barrier.wait()
            for params in SLICE:
                runner.conv2d_latency(params)

        clients = [RemoteSession((host, port)) for _ in range(2)]
        barrier = threading.Barrier(2)
        threads = [
            threading.Thread(target=sweep, args=(session, barrier))
            for session in clients
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        reference = TuningSession()
        reference_runner = UnitCpuRunner(session=reference)
        for params in SLICE:
            reference_runner.conv2d_latency(params)
        identical = all(
            clients[0].cache.lookup(record.key).to_json() == record.to_json()
            and clients[1].cache.lookup(record.key).to_json() == record.to_json()
            for record in reference.cache.records()
        )
        print("\n== Two concurrent clients, one shared slice ==")
        print(f"  unique keys             : {len(reference.cache.records())}")
        print(f"  server-side searches    : {service.session.searches_run}")
        print(f"  coalesced waiters       : {service.stats.coalesced_waiters}")
        print(f"  client trials run       : {clients[0].trials_run} + {clients[1].trials_run}")
        print(f"  bit-identical to local  : {identical}")
        assert identical
        assert service.session.searches_run == len(SLICE)
        assert clients[0].trials_run == clients[1].trials_run == 0

        # 2. Speculation: one request hints its sweep; idle time tunes the rest.
        hinted = RemoteSession((host, port), speculate="table1")
        UnitCpuRunner(session=hinted).conv2d_latency(TABLE1_LAYERS[6])
        deadline = time.time() + 60
        while time.time() < deadline and service.session.searches_run < len(TABLE1_LAYERS):
            time.sleep(0.01)
        follower = RemoteSession((host, port))
        follower_runner = UnitCpuRunner(session=follower)
        for params in TABLE1_LAYERS:
            follower_runner.conv2d_latency(params)
        print("\n== Speculative warm-up (sweep hint: 'table1') ==")
        print(f"  speculatively tuned     : {service.stats.speculative_tuned}")
        print(f"  follower server hits    : {follower.server_hits} / {len(TABLE1_LAYERS)}")
        print(f"  follower searches       : {follower.searches_run}")
        assert follower.searches_run == 0

        # 3. Whole-model compilation against the daemon.
        compiled = compile_model(get_model("resnet-18", fresh=True), remote=(host, port))
        print("\n== compile_model(remote=) ==")
        print(f"  resnet-18 x86           : {compiled.latency_ms:.3f} ms")

        # 4. Store GC + stats over the wire.
        with ServiceClient((host, port)) as admin:
            gc = admin.gc(max_records=8)
            stats = admin.stats()
        print("\n== GC + stats endpoint ==")
        print(f"  gc                      : kept {gc['kept']}, evicted {gc['evicted']}")
        print(f"  requests served         : {stats['service']['requests']}")
        print(f"  store                   : {stats['store']['appends']} appends, "
              f"{stats['store']['evicted_records']} evicted, "
              f"{stats['store']['corrupt_lines']} corrupt")
        print(f"\n  {service.summary()}")


if __name__ == "__main__":
    main()
