#!/usr/bin/env python3
"""End-to-end model inference: compile ResNet-50 with UNIT and compare baselines.

Reproduces, for a single model, what Figures 8 and 9 do for the whole zoo:
quantize the graph, fuse elementwise operators, plan the blocked layout, tune
every convolution/dense layer, and estimate the end-to-end latency — then do
the same under the MXNet+oneDNN and TVM+cuDNN baselines.

Run:  python examples/end_to_end_resnet.py [model-name]
"""

import sys

from repro.baselines import MxnetOneDnnRunner, TvmCudnnRunner
from repro.core import UnitCpuRunner, UnitGpuRunner, compile_model
from repro.graph import estimate_graph_latency, fuse_elementwise, quantize_graph
from repro.models import EVALUATED_MODELS, get_model


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "resnet-50"
    if name not in EVALUATED_MODELS:
        raise SystemExit(f"unknown model {name!r}; choose from {EVALUATED_MODELS}")

    graph = get_model(name, fresh=True)
    print(f"model: {name}  ({len(graph.conv_nodes())} convolutions, "
          f"{graph.total_macs/1e9:.2f} GMACs)")

    # --- CPU (Intel VNNI) -------------------------------------------------------
    unit_cpu = compile_model(graph, target="x86")
    mxnet_graph = quantize_graph(get_model(name, fresh=True), "int8")
    mxnet = estimate_graph_latency(mxnet_graph, MxnetOneDnnRunner())
    print("\n-- Cascade Lake (int8 / VNNI) --")
    print(f"UNIT           : {unit_cpu.latency_ms:8.3f} ms")
    print(f"MXNet + oneDNN : {mxnet.total_milliseconds:8.3f} ms   "
          f"(UNIT speedup {mxnet.total_seconds / unit_cpu.report.total_seconds:.2f}x)")
    print("slowest UNIT layers:", ", ".join(unit_cpu.report.slowest_nodes(3)))

    # --- GPU (Tensor Core) --------------------------------------------------------
    unit_gpu = compile_model(get_model(name, fresh=True), target="cuda")
    cudnn_graph = fuse_elementwise(quantize_graph(get_model(name, fresh=True), "float16"))
    cudnn = estimate_graph_latency(cudnn_graph, TvmCudnnRunner(mode="tensor_core"))
    print("\n-- V100 (fp16 / Tensor Core) --")
    print(f"UNIT           : {unit_gpu.latency_ms:8.3f} ms")
    print(f"TVM + cuDNN    : {cudnn.total_milliseconds:8.3f} ms   "
          f"(UNIT speedup {cudnn.total_seconds / unit_gpu.report.total_seconds:.2f}x)")

    # --- ARM (DOT) -----------------------------------------------------------------
    unit_arm = compile_model(get_model(name, fresh=True), target="arm")
    print("\n-- Graviton2 (int8 / DOT) --")
    print(f"UNIT           : {unit_arm.latency_ms:8.3f} ms")


if __name__ == "__main__":
    main()
