#!/usr/bin/env python3
"""Execution-tier walkthrough: one Executor, tiered promotion to native code.

Everything that runs tensor IR goes through ``repro.tir.Executor``.  This
example shows the tier lifecycle end to end:

1. the three tiers (interpreter / vectorized / native) produce bit-identical
   results on the same buffers;
2. under the native tier a plan starts vectorized and *promotes* to a
   compiled kernel (numba ``@njit`` or C-via-ctypes) after ``promote_after``
   warm runs, spot-checked for bit identity at the moment of promotion;
3. promotion is license-gated: a nest the static verifier could not prove
   never promotes — it demotes with a recorded reason and keeps running
   vectorized;
4. validation policies: ``spot`` checks each distinct plan once against the
   scalar interpreter, ``full`` checks every run.

Run:  PYTHONPATH=src python examples/execution_tiers.py
"""

import numpy as np

from repro.core import tensorize
from repro.dsl import compute, placeholder
from repro.rewriter import CpuTuningConfig
from repro.tir import (
    Executor,
    alloc_buffers,
    compile_plan,
    lower,
    native_eligibility_reason,
    native_toolchain,
    plan_cache,
    tier_state,
)
from repro.workloads import Conv2DParams, conv2d_nchwc


def main() -> None:
    kind, payload = native_toolchain()
    print(f"native toolchain: {kind or 'none'} ({payload})\n")

    params = Conv2DParams(
        in_channels=32, in_height=14, in_width=14, out_channels=64, kernel=3,
        name="demo",
    )
    result = tensorize(
        conv2d_nchwc(params), "x86.avx512.vpdpbusd", config=CpuTuningConfig()
    )
    func = result.func
    buffers = alloc_buffers(func, np.random.default_rng(0))

    # 1. Every tier agrees bit for bit on the same inputs.
    outputs = {}
    for tier in ("interpreter", "vectorized"):
        outputs[tier] = Executor(tier=tier).run(
            func, {t: a.copy() for t, a in buffers.items()}
        )
    assert np.array_equal(outputs["interpreter"], outputs["vectorized"])
    print("interpreter and vectorized tiers are bit-identical")

    # 2. The promotion lifecycle.  One Executor, three runs: the plan (shared
    #    through the process-wide PlanCache) warms up vectorized, then the
    #    threshold-crossing run compiles a kernel and spot-checks it.
    plan_cache().clear()
    executor = Executor(tier="native", promote_after=3)
    for i in range(1, 5):
        out = executor.run(func, {t: a.copy() for t, a in buffers.items()})
        state = tier_state(plan_cache().get_or_compile(func))
        print(
            f"run {i}: tier={state.tier:<10} warm_runs={state.warm_runs} "
            f"native_runs={executor.stats.native_runs}"
        )
        assert np.array_equal(out, outputs["interpreter"])
    if kind is not None:
        assert executor.stats.native_promotions == 1
        print("promoted after 3 warm runs; native runs stay bit-identical\n")
    else:
        print("no toolchain: the plan quietly kept running vectorized\n")

    # 3. Unproved nests never promote.  A data-dependent gather cannot be
    #    bounds-proved by the static verifier, so the native tier refuses it
    #    up front and records why.
    idx = placeholder((8,), "int32", "idx")
    a = placeholder((8,), "int32", "a")
    gather = compute((8,), lambda i: a[idx[i] % 8], name="gather")
    gather_plan = compile_plan(lower(gather))
    print(f"gather eligibility: {native_eligibility_reason(gather_plan)}")

    # 4. Validation policies: "full" re-checks every run against the scalar
    #    interpreter — the belt-and-suspenders mode for new schedules.
    checked = Executor(tier="vectorized", validation="full")
    checked.run(func, {t: a.copy() for t, a in buffers.items()})
    print("validation='full' run verified against the interpreter")


if __name__ == "__main__":
    main()
