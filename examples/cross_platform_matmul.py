#!/usr/bin/env python3
"""One operator, three platforms: the "unified" part of UNIT.

The same quantized / mixed-precision matrix multiplications are tensorized for
Intel VNNI, ARM DOT and Nvidia Tensor Core with *no per-platform compiler
work* — only the instruction descriptions differ.  For each platform the
script shows the chosen instruction, verifies the rewritten program
numerically, and estimates the kernel latency on that platform's machine
model.

Run:  python examples/cross_platform_matmul.py
"""

import numpy as np

from repro.core import tensorize
from repro.hwsim import CASCADE_LAKE, GRAVITON2, V100, CpuKernelModel, GpuKernelModel
from repro.isa import get_intrinsic
from repro.rewriter import CpuTuningConfig, GpuTuningConfig
from repro.tir import alloc_buffers
from repro.workloads import DenseParams, dense_int8, matmul_fp16


def check(result, reference_fn) -> bool:
    buffers = alloc_buffers(result.func, np.random.default_rng(7))
    out = result.execute(buffers)
    by_name = {t.name: buffers[t] for t in result.func.inputs}
    ref = reference_fn(by_name)
    if ref.dtype.kind == "f":
        return bool(np.allclose(out, ref, rtol=1e-2, atol=1e-2))
    return bool(np.array_equal(out, ref))


def main() -> None:
    # --- x86: quantized dense layer on VNNI -----------------------------------
    dense = dense_int8(DenseParams(batch=4, in_features=256, out_features=128))
    x86 = tensorize(dense, target="x86")
    ok = check(
        x86,
        lambda b: (b["data"].astype(np.int64) @ b["weight"].astype(np.int64).T).astype(np.int32),
    )
    cost = CpuKernelModel(CASCADE_LAKE, x86.intrinsic).dense_latency(
        DenseParams(batch=4, in_features=256, out_features=128), CpuTuningConfig()
    )
    print(f"x86   : {x86.intrinsic.name:45s} correct={ok}  est {cost.microseconds:7.2f} us")

    # --- ARM: the same dense layer, int8 x int8, on DOT ------------------------
    from repro.dsl import cast, compute, placeholder, reduce_axis, sum_reduce

    a = placeholder((4, 256), "int8", "data")
    w = placeholder((128, 256), "int8", "weight")
    rk = reduce_axis(0, 256, "rk")
    dense_arm = compute(
        (4, 128),
        lambda i, j: sum_reduce(cast("int32", a[i, rk]) * cast("int32", w[j, rk]), rk),
        name="dense_arm",
    )
    arm = tensorize(dense_arm, target="arm")
    ok = check(
        arm,
        lambda b: (b["data"].astype(np.int64) @ b["weight"].astype(np.int64).T).astype(np.int32),
    )
    cost = CpuKernelModel(GRAVITON2, arm.intrinsic).dense_latency(
        DenseParams(batch=4, in_features=256, out_features=128), CpuTuningConfig()
    )
    print(f"arm   : {arm.intrinsic.name:45s} correct={ok}  est {cost.microseconds:7.2f} us")

    # --- CUDA: fp16 matmul on Tensor Core ---------------------------------------
    mm = matmul_fp16(64, 64, 64)
    cuda = tensorize(mm, target="cuda", config=GpuTuningConfig(outer_product_p=2))
    ok = check(cuda, lambda b: b["A"].astype(np.float32) @ b["B"].astype(np.float32))
    cost = GpuKernelModel(V100, cuda.intrinsic).gemm_latency(64, 64, 64, GpuTuningConfig())
    print(f"cuda  : {cuda.intrinsic.name:45s} correct={ok}  est {cost.microseconds:7.2f} us")

    # --- Extensibility: a new int16 instruction, zero compiler changes ----------
    a16 = placeholder((8, 64), "int16", "A")
    b16 = placeholder((32, 64), "int16", "B")
    rk16 = reduce_axis(0, 64, "rk")
    mm16 = compute(
        (8, 32),
        lambda i, j: sum_reduce(cast("int32", a16[i, rk16]) * cast("int32", b16[j, rk16]), rk16),
        name="mm_i16",
    )
    ext = tensorize(mm16, "x86.avx512.vpdpwssd")
    ok = check(
        ext,
        lambda b: (b["A"].astype(np.int64) @ b["B"].astype(np.int64).T).astype(np.int32),
    )
    print(f"ext   : {ext.intrinsic.name:45s} correct={ok}  (int16 VNNI extension)")


if __name__ == "__main__":
    main()
