#!/usr/bin/env python3
"""Static analysis walkthrough: prove a schedule safe, then catch a bad one.

Three acts:

1. **Prove** — run the full pass stack (structure / bounds / overlap /
   dtype) over a tensorized VNNI convolution and print the per-nest proofs.
2. **Profit** — compile the proved function to an ``ExecutablePlan`` and
   show the runtime checks the proofs let the engine elide, with the output
   still bit-identical to the scalar reference interpreter.
3. **Reject** — corrupt the schedule (bump a store index out of bounds) and
   watch ``verify_rewrite`` refuse it with a diagnostic naming the nest,
   the index expression and the violated bound.  This same raise-to-reject
   gate screens every tuning candidate before the cost model sees it.

Run:  PYTHONPATH=src python examples/static_analysis.py
"""

import numpy as np

from repro.analysis import AnalysisError, analyze, verify_rewrite
from repro.core import tensorize
from repro.rewriter import CpuTuningConfig
from repro.tir import Interpreter, Store, StmtMutator, alloc_buffers, compile_plan
from repro.tir.lower import PrimFunc
from repro.workloads import Conv2DParams, conv2d_nchwc


def main() -> None:
    # OW=7 with unroll_limit=4 forces an imperfect split: the residue nest is
    # provable only *through* its ``likely`` guard — the interesting case.
    params = Conv2DParams(
        in_channels=8, in_height=9, in_width=9, out_channels=16, kernel=3, name="conv"
    )
    result = tensorize(
        conv2d_nchwc(params), "x86.avx512.vpdpbusd",
        config=CpuTuningConfig(unroll_limit=4),
    )
    func = result.func

    # -- 1. Prove ----------------------------------------------------------
    report = analyze(func)
    print("== Analysis report ==")
    print(report.summary())
    for proof in report.nest_proofs:
        state = "proved" if proof.proved else "UNPROVED"
        print(f"  {proof.nest:<50} {state} ({proof.accesses} accesses)")
    assert report.ok(strict=True), "the tensorized conv must prove cleanly"

    # -- 2. Profit: proof-guided plan compilation --------------------------
    plan = compile_plan(func)
    print("\n== Proof-guided compilation ==")
    print(
        f"proved {plan.stats.proved_nests}/{plan.stats.vector_nests} nests, "
        f"elided {plan.stats.elided_checks} runtime check(s)"
    )
    buffers = alloc_buffers(func, np.random.default_rng(0))
    ref = Interpreter(func).run({t: b.copy() for t, b in buffers.items()})
    got = plan.run({t: b.copy() for t, b in buffers.items()})
    assert np.array_equal(ref, got)
    print("engine output bit-identical to the scalar interpreter")

    # -- 3. Reject: an out-of-bounds mutation ------------------------------
    class BumpStoreIndex(StmtMutator):
        """``t[x, ...] = v``  ->  ``t[x+1, ...] = v`` on the first store."""

        def __init__(self):
            self.done = False

        def mutate(self, stmt):
            if isinstance(stmt, Store) and not self.done:
                self.done = True
                return Store(
                    stmt.tensor, [stmt.indices[0] + 1, *stmt.indices[1:]], stmt.value
                )
            return super().mutate(stmt)

    bad = PrimFunc(func.name, func.params, BumpStoreIndex().mutate(func.body), func.op)
    print("\n== Rejecting a corrupted schedule ==")
    try:
        verify_rewrite(bad)
    except AnalysisError as err:
        for diag in err.diagnostics:
            print(f"  {diag.format()}")
        print("rejected before it could reach the cost model")
    else:
        raise AssertionError("the out-of-bounds store was not caught")


if __name__ == "__main__":
    main()
