#!/usr/bin/env python3
"""Observability walkthrough: spans, counters, the results DB, and queries.

Everything in the compiler and the tuning stack is permanently instrumented
— plan compilation, native-tier promotion, store lookups, worker
supervision, service requests — but all of it is **off by default**: every
hook's first statement is a global load and a ``None`` test, so production
runs pay nothing.  This example turns the sinks on and walks the full loop:

1. install a :class:`MetricsRegistry` and a span :class:`Tracer`;
2. run real work (compile a Table I layer, promote it through the native
   tier, tune through a session, serve requests from a live daemon);
3. print the span tree (wall vs exclusive time, parent/child nesting) and
   the counter snapshot;
4. record two runs into the sqlite results DB and show the trend/flame
   queries that ``python -m repro query`` exposes.

Run:  PYTHONPATH=src python examples/observability.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro.core.pipeline import UnitCpuRunner
from repro.rewriter import TuningSession
from repro.service import ServiceClient, TuningService
from repro.telemetry import metrics, trace
from repro.telemetry.resultsdb import ResultsDB
from repro.telemetry.trace import format_span_tree, top_spans
from repro.tir import alloc_buffers, compile_plan, lower
from repro.tir.backend import run_tiered
from repro.workloads import conv2d_nchwc
from repro.workloads.table1 import TABLE1_LAYERS


def compile_and_run_layer1() -> None:
    """Compile Table I layer 1 and execute it through the tiered engine."""
    params = TABLE1_LAYERS[0]
    out = conv2d_nchwc(params)
    func = lower(out)
    with trace.span("example.layer1", layer=params.name):
        plan = compile_plan(func)
        buffers = alloc_buffers(func, np.random.default_rng(0))
        run_tiered(plan, buffers)


def tune_a_layer() -> None:
    """One in-process tuning search (counts searches, trials, store traffic)."""
    session = TuningSession()
    runner = UnitCpuRunner(session=session)
    with trace.span("example.tune"):
        runner.conv2d_latency(TABLE1_LAYERS[0])


def serve_requests(root: Path) -> None:
    """A live daemon answering requests: per-op counters + latency histogram."""
    with TuningService(root / "store", speculative=False) as svc:
        with ServiceClient(svc.address) as client:
            client.ping()
            stats = client.stats()
    print(
        f"  service uptime {stats['uptime_s']:.2f}s, "
        f"telemetry counters on the wire: "
        f"{sorted(k for k in stats['telemetry'] if k.startswith('service.'))}"
    )


def main() -> None:
    tmp = Path(tempfile.mkdtemp(prefix="repro-observability-"))
    db_path = str(tmp / "results.db")

    print("== 1. everything is silent until a sink is installed ==")
    assert metrics.active() is None and trace.active() is None
    metrics.count("ghost.counter")  # permanent hook, zero cost, no state
    print("  no registry installed: counters go nowhere, spans are NULL_SPAN\n")

    print("== 2. instrumented compile + native tier + tuning + service ==")
    for attempt in (1, 2):  # two recorded runs make a trend
        with metrics.collecting() as registry, trace.tracing() as tracer:
            compile_and_run_layer1()
            tune_a_layer()
            serve_requests(tmp / f"svc{attempt}")
            payload = {
                "benchmark": "observability_example",
                "counters": registry.counters(),
            }
            with ResultsDB(db_path) as db:
                run_id = db.record_run(
                    "observability_example",
                    payload,
                    label=f"attempt-{attempt}",
                    spans=tracer.finished(),
                )
            print(f"  recorded run {run_id} with {len(tracer.finished())} spans")

        if attempt == 1:
            print("\n  span tree (wall vs exclusive, nesting intact):")
            for line in format_span_tree(tracer.finished()).splitlines():
                print("   ", line)
            print("\n  hottest spans by exclusive time:")
            for name, calls, excl_s, wall_s in top_spans(tracer.finished(), n=5):
                print(
                    f"    {name:<24} x{calls:<3} excl {excl_s * 1e3:8.2f}ms"
                    f"  wall {wall_s * 1e3:8.2f}ms"
                )
            interesting = [
                (name, value)
                for name, value in sorted(registry.counters().items())
                if name.startswith(("tir.", "tuner.", "store."))
            ]
            print("\n  counter snapshot (tir/tuner/store):")
            for name, value in interesting:
                print(f"    {name:<28} {value:g}")
            print()

    print("\n== 3. the results DB is queryable history ==")
    with ResultsDB(db_path) as db:
        for row in db.runs(kind="observability_example"):
            print(
                f"  run {row['id']} [{row['label']}] git={row['git_rev']}"
                f" metrics={row['metrics']} spans={row['spans']}"
            )
        points = db.metric_trend(
            "counters.tir.plan_compiles", kind="observability_example"
        )
        values = [p["value"] for p in points]
        print(f"  trend counters.tir.plan_compiles over runs: {values}")
        assert len(values) == 2, "both runs must appear in the trend"

    print(
        "\nSame data via the CLI:\n"
        f"  PYTHONPATH=src python -m repro query runs --db {db_path}\n"
        f"  PYTHONPATH=src python -m repro query trend 'counters.%' --db {db_path}\n"
        f"  PYTHONPATH=src python -m repro query spans --tree --db {db_path}"
    )


if __name__ == "__main__":
    main()
