#!/usr/bin/env python3
"""Distributed tuning walkthrough: many worker processes, one sharded store.

The tuning loop is embarrassingly parallel across tuning *problems*, so this
example:

1. fans the Table I layer set out over 4 worker processes with
   ``DistributedTuner`` — each worker claims disjoint task slices through a
   lease file and publishes winners into one ``ShardedTuningStore``;
2. reloads the store in a fresh store-backed ``TuningSession`` and shows the
   warm pass performing *zero* tuning trials while reproducing the
   single-process results bit-identically;
3. compiles a whole model through ``compile_model_batch(store=, workers=)``,
   which pre-tunes every distinct layer across processes before the serial
   compile walks the graph against warm records;
4. compacts the store: append-only duplicate lines fold down to one line per
   key, atomically.

Run:  PYTHONPATH=src python examples/distributed_tuning.py
"""

import os
import tempfile

from repro.core import UnitCpuRunner, compile_model_batch
from repro.rewriter import (
    DistributedTuner,
    ShardedTuningStore,
    TuningSession,
    tasks_from_layers,
)
from repro.workloads.table1 import TABLE1_LAYERS

WORKERS = 4


def main() -> None:
    root = os.path.join(tempfile.mkdtemp(prefix="unit_distributed."), "store")

    # 1. Tune the Table I layer set across worker processes.
    store = ShardedTuningStore(root, shards=8)
    tuner = DistributedTuner(store, workers=WORKERS)
    report = tuner.run(tasks_from_layers(TABLE1_LAYERS))
    print("== Distributed tuning ==")
    print(f"  {report.summary()}")
    for worker in report.workers:
        print(
            f"  {worker.worker}: {worker.tasks_done} tasks, "
            f"{worker.trials} trials in {worker.seconds * 1e3:.0f} ms"
        )

    # 2. A fresh session reading through the store does zero tuning work and
    #    reproduces a single-process run bit-identically.
    reference = TuningSession()
    ref_runner = UnitCpuRunner(session=reference)
    warm = TuningSession(store=store)
    warm_runner = UnitCpuRunner(session=warm)
    identical = all(
        warm_runner.conv2d_latency(params) == ref_runner.conv2d_latency(params)
        for params in TABLE1_LAYERS
    )
    print("\n== Warm read-through ==")
    print(f"  records in store        : {len(store.load())}")
    print(f"  warm-session trials     : {warm.trials_run} (store hits: {warm.store_hits})")
    print(f"  identical to 1-process  : {identical}")
    assert identical and warm.trials_run == 0

    # 3. Whole-model compilation with distributed pre-tuning.
    batch_store = ShardedTuningStore(root + "-batch", shards=8)
    batch = compile_model_batch(
        ["resnet-18"], targets=("x86",), store=batch_store, workers=WORKERS
    )
    print("\n== compile_model_batch(store=, workers=) ==")
    for compiled in batch:
        print(f"  {compiled.name:<14} {compiled.target:<5} {compiled.latency_ms:.3f} ms")

    # 4. Compaction: fold duplicate appends down to one line per key.
    compaction = batch_store.compact()
    print(f"\n== Compaction ==\n  kept {compaction['kept']}, dropped {compaction['dropped']}")
    print(f"  {batch_store.summary()}")


if __name__ == "__main__":
    main()
