#!/usr/bin/env python3
"""Tuning-cache walkthrough: share, persist and reload tuning records.

The Rewriter profiles a small schedule space per tensorized operator.  This
example shows the three levels of reuse the tuning-record subsystem provides:

1. one session shared by many runners — each distinct (workload, instruction,
   machine, search-space) problem is tuned once per process;
2. JSON-lines persistence — a saved cache reloaded from disk reproduces the
   identical best configs and costs with *zero* tuning trials;
3. batch compilation — ``compile_model_batch`` sweeps models × targets
   through one warm cache.

Run:  PYTHONPATH=src python examples/tuning_cache.py
"""

import os
import tempfile

from repro.core import compile_model_batch, experiments
from repro.rewriter import TuningSession

MODELS = ["resnet-18", "mobilenet-v2"]


def main() -> None:
    # 1. Share one session across a whole figure: every runner the experiment
    #    driver builds tunes through the same record store.
    session = TuningSession()
    rows = experiments.figure8_cpu_end_to_end(MODELS, session=session)
    print("== Figure 8, cold cache ==")
    for row in rows:
        if row["model"] != "geomean":
            print(f"  {row['model']:<14} unit={row['unit_ms']:.3f} ms")
    print(f"  {session.summary()}")

    trials_cold = session.trials_run
    experiments.figure8_cpu_end_to_end(MODELS, session=session)
    print("\n== Figure 8 again, same session ==")
    print(f"  new tuning trials: {session.trials_run - trials_cold} (all cache hits)")

    # 2. Persist the records and reload them in a fresh session, as a new
    #    process would.
    path = os.path.join(tempfile.gettempdir(), "unit_tuning_cache.jsonl")
    saved = session.save(path)
    print(f"\n== Persistence ==\n  saved {saved} records to {path}")

    warm = TuningSession()
    warm.load(path)
    warm_rows = experiments.figure8_cpu_end_to_end(MODELS, session=warm)
    identical = all(
        a == b for a, b in zip(rows, warm_rows)
    )
    print(f"  reloaded rows identical: {identical}")
    print(f"  tuning trials after reload: {warm.trials_run}")

    # 3. Batch-compile models × targets through the warm cache.
    batch = compile_model_batch(MODELS, targets=("x86", "cuda"), session=warm)
    print("\n== compile_model_batch over the warm cache ==")
    for compiled in batch:
        print(f"  {compiled.name:<14} {compiled.target:<5} {compiled.latency_ms:.3f} ms")
    print(f"  {warm.summary()}")


if __name__ == "__main__":
    main()
