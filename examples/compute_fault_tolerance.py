#!/usr/bin/env python3
"""Compute-plane fault tolerance: sandboxed kernels, self-healing workers.

PR 7 made the *service* plane survive daemon death; this PR hardens the
*compute* plane — the two places an experiment used to die outright:

1. **Sandboxed kernel qualification.**  A freshly compiled native kernel is
   untrusted: a miscompile can segfault, OOM, or spin, and before this PR
   that killed the host interpreter.  Now the first compile + bit-identity
   check runs in a disposable rlimited subprocess; this example injects a
   SIGSEGV into that child (``backend.qualify`` fault point) and shows the
   host surviving while the plan demotes with a classified
   ``sandbox rejected`` reason — then a clean plan promotes through the
   same sandbox.
2. **Self-healing tuning workers.**  A SIGKILLed worker used to strand its
   claimed lease indices and hang the sweep until the join timeout.  Now
   every worker stamps a heartbeat beside the lease file; the supervisor
   notices the corpse, releases its undone claims for siblings, respawns
   the slot, and quarantines a task that keeps killing workers into
   ``poison.jsonl`` — the sweep completes, bit-identical on every
   surviving record.

Both demos degrade gracefully: no C toolchain skips the sandbox demo, a
non-fork start method (faults reach workers via fork inheritance) skips
the healing demo.

Run:  PYTHONPATH=src python examples/compute_fault_tolerance.py
"""

import multiprocessing
import os
import signal
import tempfile

import numpy as np

from repro.dsl import cast, compute, placeholder, reduce_axis, sum_reduce
from repro.rewriter import (
    DistributedTuner,
    ShardedTuningStore,
    TuningSession,
    tasks_from_layers,
)
from repro.rewriter.workers import POISON_FILENAME, run_task
from repro.testing import faults
from repro.tir import EngineStats, alloc_buffers, compile_plan, lower, run, tier_state
from repro.tir.backend import native_toolchain, run_tiered
from repro.workloads.table1 import TABLE1_LAYERS


def small_conv(name: str):
    """An 8x8x8 -> 6x6x16 VNNI-style conv the static verifier can prove."""
    a = placeholder((8, 8, 8), "uint8", f"{name}_data")
    b = placeholder((3, 3, 16, 8), "int8", f"{name}_weight")
    rc = reduce_axis(0, 8, "rc")
    rr = reduce_axis(0, 3, "r")
    rs = reduce_axis(0, 3, "s")
    return compute(
        (6, 6, 16),
        lambda x, y, k: sum_reduce(
            cast("int32", a[x + rr, y + rs, rc]) * cast("int32", b[rr, rs, k, rc]),
            [rr, rs, rc],
        ),
        name=name,
        axis_names=["x", "y", "k"],
    )


def demo_sandbox() -> None:
    print("== Sandboxed kernel qualification ==")
    kind, detail = native_toolchain()
    if kind is None:
        print(f"  skipped: no native toolchain ({detail})")
        return

    stats = EngineStats()

    # A kernel that SIGSEGVs the moment it runs — but only inside the
    # sandbox child, which is the whole point: the blast radius is one
    # disposable subprocess, not this interpreter.
    plan = compile_plan(lower(small_conv("poisoned")))
    buffers = alloc_buffers(plan.func, np.random.default_rng(0))
    reference = run(plan.func, {t: a.copy() for t, a in buffers.items()})
    with faults.FaultPlan(seed=0) as fault_plan:
        fault_plan.on(
            "backend.qualify",
            faults.segfault,
            when=lambda c: c.get("where") == "sandbox",
        )
        got = run_tiered(plan, buffers, stats=stats, promote_after=1)
    state = tier_state(plan)
    print(f"  host pid {os.getpid()} survived a kernel SIGSEGV")
    print(f"  demotion reason         : {state.demotion_reason}")
    print(f"  sandbox outcome         : {state.sandbox_outcome}")
    print(f"  vectorized result intact: {bool(np.array_equal(got, reference))}")
    assert state.demoted and state.sandbox_outcome == "segfault"
    assert np.array_equal(got, reference)

    # A clean kernel walks through the same gate and promotes.
    plan2 = compile_plan(lower(small_conv("clean")))
    run_tiered(
        plan2,
        alloc_buffers(plan2.func, np.random.default_rng(1)),
        stats=stats,
        promote_after=1,
    )
    state2 = tier_state(plan2)
    print(f"  clean plan tier         : {state2.tier} ({state2.sandbox_outcome})")
    print(
        f"  qualifications/rejections: "
        f"{stats.sandbox_qualifications}/{stats.sandbox_rejections}"
    )
    assert state2.tier == "native" and state2.sandbox_outcome == "qualified"


def demo_self_healing() -> None:
    print("\n== Self-healing tuning workers ==")
    if multiprocessing.get_start_method() != "fork":
        print("  skipped: fault plans reach workers via fork inheritance")
        return

    layers = TABLE1_LAYERS[:4]
    tasks = tasks_from_layers(layers)
    poison = 2
    base = tempfile.mkdtemp(prefix="unit_compute_faults.")
    store = ShardedTuningStore(os.path.join(base, "store"), shards=4)
    tuner = DistributedTuner(
        store,
        workers=2,
        max_restarts=2,
        poison_threshold=2,
        heartbeat_interval=0.1,
        start_method="fork",
    )

    def kill_self(injection):
        os.kill(os.getpid(), signal.SIGKILL)

    # Task 2 SIGKILLs every worker that claims it; the supervisor must
    # quarantine it after poison_threshold claims and finish the rest.
    with faults.FaultPlan(seed=1) as fault_plan:
        fault_plan.on(
            "worker.task", kill_self, times=None, when=lambda c: c["index"] == poison
        )
        report = tuner.run(tasks)

    print(f"  sweep complete          : {report.complete}")
    print(f"  completed / quarantined : {report.completed} / {report.quarantined}")
    print(f"  worker crashes healed   : {report.crashes}")
    print(f"  workers respawned       : {report.worker_restarts}")
    print(f"  lease indices reclaimed : {report.tasks_reclaimed}")
    poison_file = os.path.join(store.root, POISON_FILENAME)
    print(f"  poison record           : {os.path.basename(poison_file)} "
          f"({report.poison_records[0]['reason']})")
    assert report.complete and report.quarantined == [poison]
    assert report.crashes == tuner.poison_threshold
    assert os.path.exists(poison_file)

    # Everything that survived is bit-identical to single-process tuning.
    reference = TuningSession()
    for index, task in enumerate(tasks):
        if index != poison:
            run_task(task, reference)
    reloaded = store.load()
    identical = all(
        reloaded.lookup(record.key) is not None
        and reloaded.lookup(record.key).best_config == record.best_config
        and reloaded.lookup(record.key).best_cost == record.best_cost
        for record in reference.cache.records()
    )
    print(f"  bit-identical survivors : {identical}")
    assert identical


def main() -> None:
    demo_sandbox()
    demo_self_healing()


if __name__ == "__main__":
    main()
