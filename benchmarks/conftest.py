"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper: it runs the
corresponding experiment driver under ``pytest-benchmark`` (so the harness
also tracks how long the reproduction itself takes) and prints the same
rows/series the paper reports, so the output can be compared side by side with
the published figure.  Run with::

    pytest benchmarks/ --benchmark-only -s
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence


def print_table(title: str, rows: Sequence[Dict], columns: Sequence[str]) -> None:
    """Print experiment rows as an aligned table."""
    print(f"\n=== {title} ===")
    widths = {c: max(len(c), 10) for c in columns}
    header = "  ".join(f"{c:>{widths[c]}}" for c in columns)
    print(header)
    for row in rows:
        cells = []
        for c in columns:
            value = row.get(c, "")
            if isinstance(value, float):
                cells.append(f"{value:>{widths[c]}.3f}")
            else:
                cells.append(f"{str(value):>{widths[c]}}")
        print("  ".join(cells))
