"""Cache-warmup benchmark: cold vs warm compile time through one TuningSession.

Not a paper figure — this tracks the tuning-record subsystem itself: compiling
a model with an empty cache pays for every schedule search, compiling it again
through the same (or a reloaded) session should pay for none of them.  Run
under pytest-benchmark like the figure benchmarks, or standalone::

    PYTHONPATH=src python benchmarks/bench_cache_warmup.py
"""

import time

from repro.core import compile_model
from repro.models import get_model
from repro.rewriter import TuningSession

MODEL = "resnet-18"


def _compile(session: TuningSession):
    return compile_model(get_model(MODEL, fresh=True), target="x86", session=session)


def test_cold_compile(benchmark):
    result = benchmark(lambda: _compile(TuningSession()))
    assert result.latency_ms > 0


def test_warm_compile(benchmark):
    session = TuningSession()
    cold = _compile(session)  # warm the cache once, outside the measurement
    trials_after_warmup = session.trials_run
    result = benchmark(lambda: _compile(session))
    assert result.latency_ms == cold.latency_ms
    assert session.trials_run == trials_after_warmup  # warm runs tune nothing


def main() -> None:
    session = TuningSession()

    start = time.perf_counter()
    cold = _compile(session)
    cold_s = time.perf_counter() - start
    trials = session.trials_run

    start = time.perf_counter()
    warm = _compile(session)
    warm_s = time.perf_counter() - start

    print(f"\n=== Cache warmup ({MODEL}, x86) ===")
    print(f"cold compile : {cold_s * 1e3:8.1f} ms  ({trials} tuning trials)")
    print(f"warm compile : {warm_s * 1e3:8.1f} ms  ({session.trials_run - trials} tuning trials)")
    print(f"speedup      : {cold_s / warm_s:8.1f}x")
    print(session.summary())
    assert warm.latency_ms == cold.latency_ms
    assert session.trials_run == trials, "warm compile must perform zero trials"


if __name__ == "__main__":
    main()
