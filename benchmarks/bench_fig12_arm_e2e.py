"""Figure 12: end-to-end inference on the ARM CPU (DOT instruction).

Paper headline: UNIT beats both plain-NEON TVM and the manually written DOT
schedules (~1.13x over the manual schedules).
"""

from repro.core.experiments import figure12_arm_end_to_end

from .conftest import print_table


def test_figure12_arm_end_to_end(benchmark):
    rows = benchmark.pedantic(figure12_arm_end_to_end, rounds=1, iterations=1)
    print_table(
        "Figure 12 — ARM end-to-end (relative to TVM-NEON = 1.0)",
        rows,
        ["model", "tvm_neon_ms", "tvm_manual_ms", "unit_ms",
         "rel_manual", "rel_unit", "unit_vs_manual"],
    )
    geo = rows[-1]
    assert geo["unit_vs_manual"] > 1.0
    assert geo["rel_unit"] > geo["rel_manual"]
