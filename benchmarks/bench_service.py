"""Tuning-service benchmark: coalescing, warm sharing, speculation, GC.

Not a paper figure — this tracks the networked tuning daemon itself.  Four
sections:

* **single_process** — the reference: one local ``TuningSession`` tunes the
  Table I slice serially; its records are the ground truth every remote
  client must receive bit-identically;
* **coalesced_clients** — one daemon, N concurrent ``RemoteSession`` clients
  sweeping the *same* slice.  The integrity gate asserts that each unique
  ``TuningKey`` was searched exactly once server-side (read-through hits +
  in-flight coalescing), that every client's records are bit-identical to
  the reference, and that a late client gets pure warm hits with zero
  searches anywhere;
* **speculation** — a fresh daemon, one client tunes a single layer with a
  sweep hint; the background queue must pre-tune the remaining layers
  during idle time, so a follow-up sweep performs zero new searches;
* **gc** — LRU eviction over the populated store, then a re-tune of one
  evicted key (a fresh search, proving memory and disk agree).

A fifth section, ``--chaos``, is the fault-tolerance drill and runs alone:
a *subprocess* primary daemon replicates into an in-process replica, a
client warms half the slice, the primary is SIGKILLed mid-sweep, and the
full sweep must finish from the replica — warm keys served without a single
re-search, cold keys tuned exactly once on the replica, every record
bit-identical to single-process tuning, and the killed primary's store
auditing clean under ``fsck``.

Run standalone to write ``BENCH_service.json`` (the CI ``service-smoke``
job uploads it as an artifact)::

    PYTHONPATH=src python benchmarks/bench_service.py [--layers K] \
        [--clients N] [--chaos] [-o OUT]

Every integrity check is a hard ``assert`` — this script is the CI gate for
the acceptance criterion that concurrent remote tuning is bit-identical to
single-process tuning with each key searched at most once, and (under
``--chaos``) that killing the primary loses nothing.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import subprocess
import sys
import tempfile
import threading
import time

from repro.core import UnitCpuRunner
from repro.rewriter import ShardedTuningStore, TuningSession
from repro.service import RemoteSession, ServiceClient, TuningService
from repro.workloads.table1 import TABLE1_LAYERS


def bench_single_process(layers) -> dict:
    """The serial reference run (also returned: its records, for bit-compare)."""
    session = TuningSession()
    runner = UnitCpuRunner(session=session)
    t0 = time.perf_counter()
    for params in layers:
        runner.conv2d_latency(params)
    elapsed = time.perf_counter() - t0
    return {
        "layers": len(layers),
        "elapsed_s": elapsed,
        "trials": session.trials_run,
        "searches": session.searches_run,
        "_records": {r.key: r.to_json() for r in session.cache.records()},
    }


def bench_coalesced_clients(root, layers, clients: int, reference: dict) -> dict:
    """N concurrent remote clients over one shared slice, one daemon."""
    with TuningService(root, speculative=False) as service:
        sessions = [RemoteSession(service.address, tune_timeout=120.0) for _ in range(clients)]
        barrier = threading.Barrier(clients)
        errors = []

        def sweep(session):
            try:
                runner = UnitCpuRunner(session=session)
                barrier.wait(timeout=30)
                for params in layers:
                    runner.conv2d_latency(params)
            except Exception as exc:  # surfaced after join
                errors.append(f"{type(exc).__name__}: {exc}")

        threads = [threading.Thread(target=sweep, args=(s,)) for s in sessions]
        t0 = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=300)
        elapsed = time.perf_counter() - t0
        assert not errors, f"client sweep errors: {errors}"

        # -- the acceptance criterion -------------------------------------
        unique_keys = len(reference["_records"])
        searched = service.session.searches_run
        assert searched == unique_keys, (
            f"{searched} server-side searches for {unique_keys} unique keys "
            "— coalescing/read-through failed to deduplicate"
        )
        mismatched = 0
        for session in sessions:
            for key, expected in reference["_records"].items():
                got = session.cache.lookup(key)
                assert got is not None, f"client missing record for {key}"
                if got.to_json() != expected:
                    mismatched += 1
        assert mismatched == 0, (
            f"{mismatched} remote records diverged from single-process tuning"
        )

        # A late client is served entirely from the warm corpus.
        late = RemoteSession(service.address)
        late_runner = UnitCpuRunner(session=late)
        t0 = time.perf_counter()
        for params in layers:
            late_runner.conv2d_latency(params)
        late_elapsed = time.perf_counter() - t0
        assert late.searches_run == 0 and late.server_tunes == 0
        assert late.server_hits == unique_keys
        assert service.session.searches_run == unique_keys

        store_stats = service.store.stats
        assert store_stats.corrupt_lines == 0 and store_stats.stale_records == 0
        return {
            "clients": clients,
            "unique_keys": unique_keys,
            "elapsed_s": elapsed,
            "server_searches": searched,
            "coalesced_waiters": service.stats.coalesced_waiters,
            "tune_requests": service.stats.requests.get("tune", 0),
            "mismatched_records": mismatched,
            "late_client_hits": late.server_hits,
            "late_client_searches": late.searches_run,
            "late_client_elapsed_s": late_elapsed,
            "store": {
                "appends": store_stats.appends,
                "corrupt_lines": store_stats.corrupt_lines,
                "stale_records": store_stats.stale_records,
            },
        }


def bench_speculation(root, layers) -> dict:
    """One request with a sweep hint; idle workers pre-tune the rest."""
    sweep = f"table1:{len(layers)}"
    with TuningService(root, speculative=True) as service:
        session = RemoteSession(service.address, speculate=sweep, tune_timeout=120.0)
        runner = UnitCpuRunner(session=session)
        t0 = time.perf_counter()
        runner.conv2d_latency(layers[0])
        foreground_s = time.perf_counter() - t0
        deadline = time.time() + 120
        while time.time() < deadline and service.session.searches_run < len(layers):
            time.sleep(0.01)
        drained_s = time.perf_counter() - t0
        assert service.session.searches_run == len(layers), (
            f"speculation stalled: {service.session.searches_run}/{len(layers)}"
        )
        # The whole sweep is now warm: a full client sweep adds no searches.
        follower = RemoteSession(service.address)
        follower_runner = UnitCpuRunner(session=follower)
        for params in layers:
            follower_runner.conv2d_latency(params)
        assert follower.searches_run == 0
        assert service.session.searches_run == len(layers)
        return {
            "layers": len(layers),
            "foreground_tunes": 1,
            "foreground_s": foreground_s,
            "speculatively_tuned": service.stats.speculative_tuned,
            "speculative_skipped": service.stats.speculative_skipped,
            "drain_s": drained_s,
            "follower_searches": follower.searches_run,
            "follower_hits": follower.server_hits,
        }


def bench_gc(root, layers, keep: int) -> dict:
    """Populate, evict down to ``keep`` records, re-tune one evicted key."""
    with TuningService(root, speculative=False) as service:
        with ServiceClient(service.address, tune_timeout=120.0) as client:
            client.warm(f"table1:{len(layers)}")
            populated = service.session.searches_run
            report = client.gc(max_records=keep)
            assert report["kept"] == keep
            stats = client.stats()
            assert stats["store"]["evicted_records"] == len(layers) - keep
            # Memory agreed with disk: an evicted key re-tunes from scratch.
            before = service.session.searches_run
            session = RemoteSession(service.address, tune_timeout=120.0)
            runner = UnitCpuRunner(session=session)
            runner.conv2d_latency(layers[0])
            retuned = service.session.searches_run - before
            # layers[0] was warmed first, hence least recently served, hence
            # evicted — its re-tune must be a fresh search, not a stale
            # memory hit the store can no longer vouch for.
            assert retuned == 1, "daemon memory served a store-evicted record"
            return {
                "populated": populated,
                "kept": report["kept"],
                "evicted": report["evicted"],
                "evicted_records_stat": stats["store"]["evicted_records"],
                "retuned_after_eviction": retuned,
            }


def _spawn_primary(root: str) -> tuple:
    """Launch ``python -m repro.service serve`` and parse its bound address."""
    src = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
    env = dict(os.environ)
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.service", "serve", "--root", root, "--port", "0"],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        bufsize=1,
        env=env,
    )
    deadline = time.monotonic() + 30.0
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line:
            raise RuntimeError(f"primary daemon exited: rc={proc.poll()}")
        if "listening on " in line:
            endpoint = line.split("listening on ", 1)[1].split(" over ", 1)[0]
            host, _, port = endpoint.strip().rpartition(":")
            return proc, (host, int(port))
    proc.kill()
    raise RuntimeError("primary daemon never reported its address")


def bench_chaos_failover(root, layers, reference: dict) -> dict:
    """SIGKILL the primary mid-sweep; the replica must carry the fleet.

    Invariants asserted:

    * the client fails over (never errors out) and finishes the sweep;
    * keys warmed before the kill are *served*, not re-searched — zero
      searches anywhere for them after the primary dies;
    * cold keys are tuned exactly once, on the replica;
    * every record is bit-identical to single-process tuning;
    * the killed primary's store audits clean under ``fsck`` — SIGKILL at
      an arbitrary instant tears no durable state.
    """
    primary_root = f"{root}/primary"
    replica_root = f"{root}/replica"
    proc, primary_addr = _spawn_primary(primary_root)
    try:
        warm_slice = layers[: max(1, len(layers) // 2)]
        with TuningService(
            replica_root,
            speculative=False,
            replicate_from=primary_addr,
            sync_interval_s=0.1,
        ) as replica:
            # Phase 1: warm half the slice through the primary.
            warm = RemoteSession(primary_addr, tune_timeout=120.0)
            t0 = time.perf_counter()
            _sweep(warm, warm_slice)
            warm_s = time.perf_counter() - t0
            warmed = warm.server_tunes
            assert warm.searches_run == 0

            # Phase 2: wait until the replica has pulled every warm record.
            deadline = time.monotonic() + 30.0
            applied = 0
            while time.monotonic() < deadline:
                with ServiceClient(replica.address, timeout=5.0) as probe:
                    applied = probe.health()["replication"]["records_applied"]
                if applied >= warmed:
                    break
                time.sleep(0.05)
            assert applied >= warmed, (
                f"replica stalled: {applied}/{warmed} records replicated"
            )

            # Phase 3: kill the primary dead — no drain, no goodbye.
            os.kill(proc.pid, signal.SIGKILL)
            proc.wait(timeout=30)

            # Phase 4: a fresh client sweeps the FULL slice against the
            # two-endpoint list; everything must come from the replica.
            session = RemoteSession(
                [primary_addr, replica.address],
                retries=2,
                timeout=5.0,
                tune_timeout=120.0,
            )
            t0 = time.perf_counter()
            _sweep(session, layers)
            sweep_s = time.perf_counter() - t0

            unique_keys = len(reference["_records"])
            cold = unique_keys - warmed
            assert session.client.failovers >= 1, "client never failed over"
            assert session.searches_run == 0, (
                f"client searched {session.searches_run} keys locally — "
                "failover fell back instead of using the replica"
            )
            assert session.server_hits >= warmed, (
                f"only {session.server_hits} warm hits for {warmed} warm keys "
                "— records were lost in the failover"
            )
            assert replica.session.searches_run == cold, (
                f"replica searched {replica.session.searches_run} keys for "
                f"{cold} cold keys — work was lost or repeated"
            )
            mismatched = sum(
                1
                for key, expected in reference["_records"].items()
                if session.cache.lookup(key).to_json() != expected
            )
            assert mismatched == 0, (
                f"{mismatched} records diverged from single-process tuning"
            )
            replica_stats = replica.store.stats
            assert replica_stats.corrupt_lines == 0
            assert replica_stats.stale_records == 0

        # Phase 5: the corpse's store must audit clean.
        report = ShardedTuningStore(primary_root).fsck()
        assert report["corrupt"] == 0, (
            f"SIGKILL tore {report['corrupt']} durable lines in the primary store"
        )
        assert ShardedTuningStore(primary_root).fsck(quarantine=False)["clean"] == 1
        return {
            "layers": len(layers),
            "warmed_keys": warmed,
            "cold_keys": cold,
            "warm_phase_s": warm_s,
            "failover_sweep_s": sweep_s,
            "failovers": session.client.failovers,
            "client_searches": session.searches_run,
            "replica_searches": replica.session.searches_run,
            "server_hits": session.server_hits,
            "mismatched_records": mismatched,
            "primary_fsck": report,
        }
    finally:
        if proc.poll() is None:
            proc.kill()
        proc.stdout.close()


def _sweep(session, layers):
    runner = UnitCpuRunner(session=session)
    for params in layers:
        runner.conv2d_latency(params)


def main(argv=None) -> dict:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--layers", type=int, default=8, help="Table I layers in the shared slice"
    )
    parser.add_argument(
        "--clients", type=int, default=4, help="concurrent remote clients"
    )
    parser.add_argument(
        "--chaos",
        action="store_true",
        help="run only the failover drill: SIGKILL the primary mid-sweep",
    )
    parser.add_argument("-o", "--output", default="BENCH_service.json")
    args = parser.parse_args(argv)

    layers = TABLE1_LAYERS[: args.layers]
    single = bench_single_process(layers)
    print(
        f"single process   : {single['elapsed_s'] * 1e3:8.1f} ms  "
        f"({single['searches']} searches, {single['trials']} trials)"
    )

    if args.chaos:
        with tempfile.TemporaryDirectory(prefix="bench_chaos.") as root:
            chaos = bench_chaos_failover(root, layers, single)
        print(
            f"chaos failover   : {chaos['failover_sweep_s'] * 1e3:8.1f} ms  "
            f"primary killed after {chaos['warmed_keys']} warm keys; "
            f"{chaos['failovers']} failovers, "
            f"{chaos['server_hits']} hits, "
            f"{chaos['replica_searches']} replica searches, "
            f"{chaos['mismatched_records']} mismatched"
        )
        single.pop("_records")
        report = {
            "benchmark": "tuning_service_chaos",
            "single_process": single,
            "chaos_failover": chaos,
        }
        with open(args.output, "w") as handle:
            json.dump(report, handle, indent=2)
        from repro.telemetry.resultsdb import record_bench

        run_id = record_bench("service_chaos", report)
        print(f"wrote {args.output} (results-DB run {run_id})")
        return report

    with tempfile.TemporaryDirectory(prefix="bench_service.") as root:
        coalesced = bench_coalesced_clients(
            f"{root}/store-coalesce", layers, args.clients, single
        )
        print(
            f"{coalesced['clients']} remote clients : "
            f"{coalesced['elapsed_s'] * 1e3:8.1f} ms  "
            f"{coalesced['server_searches']} searches for "
            f"{coalesced['unique_keys']} keys "
            f"({coalesced['coalesced_waiters']} coalesced, "
            f"{coalesced['mismatched_records']} mismatched)"
        )
        speculation = bench_speculation(f"{root}/store-spec", layers)
        print(
            f"speculation      : 1 foreground + "
            f"{speculation['speculatively_tuned']} speculative tunes, "
            f"drained in {speculation['drain_s'] * 1e3:.1f} ms; "
            f"follower searched {speculation['follower_searches']}"
        )
        gc = bench_gc(f"{root}/store-gc", layers, keep=max(1, args.layers // 2))
        print(
            f"gc               : kept {gc['kept']}/{gc['populated']}, "
            f"evicted {gc['evicted']}, re-tuned {gc['retuned_after_eviction']}"
        )

    single.pop("_records")
    report = {
        "benchmark": "tuning_service",
        "single_process": single,
        "coalesced_clients": coalesced,
        "speculation": speculation,
        "gc": gc,
    }
    with open(args.output, "w") as handle:
        json.dump(report, handle, indent=2)
    from repro.telemetry.resultsdb import record_bench

    run_id = record_bench("service", report)
    print(f"wrote {args.output} (results-DB run {run_id})")
    return report


if __name__ == "__main__":
    sys.exit(0 if main() else 1)
