"""Distributed-tuning benchmark: worker scaling, store contention, zero loss.

Not a paper figure — this tracks the sharded concurrent tuning store and the
distributed worker pool themselves.  Three sections:

* **single_process** — the reference: one ``TuningSession`` tunes the Table I
  layer set serially; its best configs/costs are the ground truth every
  distributed run must reproduce bit-identically;
* **runs** — 1/2/4/8-worker ``DistributedTuner`` sweeps over the same layer
  set, each into a fresh ``ShardedTuningStore``; per run the elapsed time,
  speedup over one worker, store contention stats (lock waits, contended
  acquisitions) and the record-integrity checks (no lost, corrupt or stale
  records; configs identical to the reference);
* **stress** — raw concurrent-append hammering: N processes blind-append M
  records each into one store (no tuning, maximum lock pressure), then the
  store is reloaded and every record must be present and intact.

Run standalone to write ``BENCH_distributed_tuning.json`` (the CI
``tuning-stress`` job uploads it as an artifact)::

    PYTHONPATH=src python benchmarks/bench_distributed_tuning.py [--smoke] \
        [--workers N] [--layers K] [-o OUT]

``--smoke`` runs a single worker count (default 4) plus the stress section
and asserts the integrity invariants — the CI gate.  Every integrity check is
asserted in full mode too; ``--smoke`` only trims the sweep.

``--chaos`` runs the **compute-plane chaos drill** instead (written to
``BENCH_distributed_chaos.json`` — the CI ``chaos-smoke`` job's gate):

* *kernel chaos* — a native-tier promotion whose candidate kernel segfaults
  inside the qualification sandbox: the host survives, the plan demotes with
  a classified ``sandbox_*`` reason, and a clean plan still promotes;
* *worker chaos* — a Table I sweep under injected SIGKILLs: one task kills
  every worker that claims it (quarantined after ``poison_threshold``
  claims, searched never again), another kills its first claimer only
  (reclaimed and finished by the healed fleet); the sweep completes and
  every surviving record is bit-identical to the single-process reference.
"""

from __future__ import annotations

import argparse
import json
import multiprocessing
import os
import sys
import tempfile
import time

from repro.core import UnitCpuRunner
from repro.hwsim import CostBreakdown
from repro.rewriter import (
    DistributedTuner,
    ShardedTuningStore,
    TuningKey,
    TuningRecord,
    TuningSession,
    tasks_from_layers,
)
from repro.workloads.table1 import TABLE1_LAYERS

STRESS_PROCESSES = 4
STRESS_RECORDS_EACH = 25


def bench_single_process(layers) -> dict:
    """The serial reference run: ground-truth configs, costs and trials."""
    session = TuningSession()
    runner = UnitCpuRunner(session=session)
    t0 = time.perf_counter()
    for params in layers:
        runner.conv2d_latency(params)
    elapsed = time.perf_counter() - t0
    return {
        "layers": len(layers),
        "elapsed_s": elapsed,
        "trials": session.trials_run,
        "records": len(session.cache),
        "_session": session,  # stripped before serialisation
    }


def bench_workers(layers, workers: int, reference: TuningSession, root: str) -> dict:
    """One distributed sweep; asserts integrity against the reference."""
    store = ShardedTuningStore(os.path.join(root, f"store-w{workers}"), shards=8)
    tuner = DistributedTuner(store, workers=workers)
    report = tuner.run(tasks_from_layers(layers))

    reloaded = store.load()
    stats = store.stats  # this handle read every shard during load()
    reference_records = reference.cache.records()
    lost = sum(1 for record in reference_records if reloaded.lookup(record.key) is None)
    mismatched = 0
    for record in reference_records:
        got = reloaded.lookup(record.key)
        if got is None:
            continue
        if got.best_config != record.best_config or got.best_cost != record.best_cost:
            mismatched += 1
    contention = report.store_stats()
    row = {
        "workers": workers,
        "elapsed_s": report.elapsed_s,
        "trials": report.trials,
        "searches": report.searches,
        "tasks_per_worker": [w.tasks_done for w in report.workers],
        "records": len(reloaded),
        "lost_records": lost,
        "mismatched_records": mismatched,
        "corrupt_lines": stats.corrupt_lines,
        "stale_records": stats.stale_records,
        "contention": {
            "appends": contention.appends,
            "lock_acquisitions": contention.lock_acquisitions,
            "lock_contentions": contention.lock_contentions,
            "lock_wait_ms": contention.lock_wait_seconds * 1e3,
        },
    }
    assert report.complete, "lease coverage incomplete or overlapping"
    assert lost == 0, f"{lost} records lost under {workers} concurrent writers"
    assert mismatched == 0, (
        f"{mismatched} records diverged from the single-process reference"
    )
    assert stats.corrupt_lines == 0, f"{stats.corrupt_lines} corrupt lines on reload"
    assert stats.stale_records == 0, f"{stats.stale_records} stale records on reload"
    return row


def _stress_appender(root: str, worker: int, count: int) -> None:
    """Blind-append ``count`` distinct records into the shared store."""
    store = ShardedTuningStore(root)
    for index in range(count):
        key = TuningKey(
            kind="stress",
            params=(("worker", worker), ("index", index)),
            intrinsic="none",
            machine="stress-rig",
            space="stress@00",
        )
        store.put(
            TuningRecord(
                key=key,
                best_config=None,
                best_cost=float(worker * count + index),
                num_trials=1,
                breakdown=CostBreakdown(seconds=float(index) + 1.0),
            )
        )


def bench_stress(root: str, processes: int, records_each: int) -> dict:
    """Concurrent blind appends: every record must survive, byte-intact."""
    store_root = os.path.join(root, "store-stress")
    ctx = multiprocessing.get_context()
    procs = [
        ctx.Process(target=_stress_appender, args=(store_root, worker, records_each))
        for worker in range(processes)
    ]
    t0 = time.perf_counter()
    for proc in procs:
        proc.start()
    for proc in procs:
        proc.join(timeout=120)
    elapsed = time.perf_counter() - t0
    failed = [p.exitcode for p in procs if p.exitcode != 0]
    assert not failed, f"stress appender exit codes: {failed}"

    store = ShardedTuningStore(store_root)
    reloaded = store.load()
    stats = store.stats
    expected = processes * records_each
    row = {
        "processes": processes,
        "records_each": records_each,
        "elapsed_s": elapsed,
        "records_expected": expected,
        "records_found": len(reloaded),
        "corrupt_lines": stats.corrupt_lines,
        "stale_records": stats.stale_records,
    }
    assert len(reloaded) == expected, (
        f"lost records under concurrent append: {len(reloaded)}/{expected}"
    )
    assert stats.corrupt_lines == 0 and stats.stale_records == 0
    # Spot-check payload integrity, not just key presence.
    probe = TuningKey(
        kind="stress",
        params=(("worker", 0), ("index", 0)),
        intrinsic="none",
        machine="stress-rig",
        space="stress@00",
    )
    assert reloaded.lookup(probe).best_cost == 0.0
    return row


def _chaos_conv(name: str, h: int = 8, w: int = 8, c: int = 8, k: int = 16, r: int = 3):
    """A small provable VNNI-style conv (distinct names -> distinct plans)."""
    from repro.dsl import cast, compute, placeholder, reduce_axis, sum_reduce

    a = placeholder((h, w, c), "uint8", f"{name}_data")
    b = placeholder((r, r, k, c), "int8", f"{name}_weight")
    rc = reduce_axis(0, c, "rc")
    rr = reduce_axis(0, r, "r")
    rs = reduce_axis(0, r, "s")
    return compute(
        (h - r + 1, w - r + 1, k),
        lambda x, y, kk: sum_reduce(
            cast("int32", a[x + rr, y + rs, rc]) * cast("int32", b[rr, rs, kk, rc]),
            [rr, rs, rc],
        ),
        name=name,
        axis_names=["x", "y", "k"],
    )


def bench_kernel_chaos(seed: int) -> dict:
    """Sandboxed qualification under an injected kernel segfault.

    The first plan's candidate kernel SIGSEGVs inside the sandbox child: the
    host (this process) must survive, the plan must demote with a classified
    sandbox reason, and its vectorized results must stay bit-identical to
    the scalar reference.  A second, unpoisoned plan must still qualify and
    promote — one poisoned kernel does not disable the tier.
    """
    import numpy as np

    from repro.testing import faults
    from repro.tir import EngineStats, alloc_buffers, compile_plan, lower, run, tier_state
    from repro.tir.backend import native_toolchain, run_tiered

    kind, detail = native_toolchain()
    if kind is None:
        return {"skipped": f"no native toolchain ({detail})"}

    stats = EngineStats()
    rng = np.random.default_rng(seed)

    # Part 1: the poisoned kernel.
    plan = compile_plan(lower(_chaos_conv("chaos_poisoned")))
    buffers = alloc_buffers(plan.func, rng)
    reference = run(plan.func, {t: a.copy() for t, a in buffers.items()})
    t0 = time.perf_counter()
    with faults.FaultPlan(seed=seed) as fault_plan:
        fault_plan.on(
            "backend.qualify",
            faults.segfault,
            when=lambda c: c.get("where") == "sandbox",
        )
        got = run_tiered(plan, buffers, stats=stats, promote_after=1)
    poisoned_s = time.perf_counter() - t0
    state = tier_state(plan)
    assert state.demoted, "poisoned kernel must demote, not promote"
    assert state.sandbox_outcome == "segfault", state.sandbox_outcome
    assert "sandbox rejected" in state.demotion_reason
    assert np.array_equal(got, reference), "demoted plan diverged from scalar reference"
    assert stats.sandbox_rejections == 1

    # Part 2: a clean plan still promotes through the same sandbox.
    plan2 = compile_plan(lower(_chaos_conv("chaos_clean")))
    buffers2 = alloc_buffers(plan2.func, rng)
    reference2 = run(plan2.func, {t: a.copy() for t, a in buffers2.items()})
    run_tiered(plan2, buffers2, stats=stats, promote_after=1)
    state2 = tier_state(plan2)
    assert state2.tier == "native", f"clean plan failed to promote: {state2.demotion_reason}"
    assert state2.sandbox_outcome == "qualified"
    native_buffers = alloc_buffers(plan2.func, rng)
    native_reference = run(plan2.func, {t: a.copy() for t, a in native_buffers.items()})
    got2 = run_tiered(plan2, native_buffers, stats=stats, promote_after=1)
    assert np.array_equal(got2, native_reference), "native run diverged from scalar reference"

    return {
        "toolchain": kind,
        "poisoned_demotion_s": poisoned_s,
        "sandbox_qualifications": stats.sandbox_qualifications,
        "sandbox_rejections": stats.sandbox_rejections,
        "sandbox_outcome_poisoned": state.sandbox_outcome,
        "sandbox_outcome_clean": state2.sandbox_outcome,
        "native_runs": stats.native_runs,
    }


def bench_worker_chaos(layers, reference: TuningSession, root: str, seed: int) -> dict:
    """A Table I sweep under SIGKILLed workers: heal, quarantine, verify.

    Two injected fault classes: a *poison* task SIGKILLs every claimer (the
    supervisor must quarantine it after exactly ``poison_threshold`` claims
    and never hand it out again) and a *transient* task SIGKILLs only its
    first claimer (marker file on shared disk — fault-plan rule state is
    per-process under fork, so ``times=1`` alone would kill every retry
    too).  Every assertion here is the ISSUE 9 acceptance drill.
    """
    import signal as signal_module

    from repro.rewriter.workers import POISON_FILENAME
    from repro.testing import faults

    if multiprocessing.get_start_method() != "fork":
        return {"skipped": "fault plans reach workers via fork inheritance"}

    tasks = tasks_from_layers(layers)
    assert len(tasks) >= 4, "worker chaos drill needs at least 4 tasks"
    poison_index = len(tasks) // 2
    transient_index = 0
    poison_threshold = 2
    store = ShardedTuningStore(os.path.join(root, "store-chaos"), shards=8)
    tuner = DistributedTuner(
        store,
        workers=2,
        max_restarts=2,
        poison_threshold=poison_threshold,
        heartbeat_interval=0.1,
        heartbeat_timeout=30.0,
        start_method="fork",
    )
    marker = os.path.join(root, "transient-crash.marker")

    def kill_always(injection):
        os.kill(os.getpid(), signal_module.SIGKILL)

    def kill_once(injection):
        if os.path.exists(marker):
            return
        with open(marker, "w", encoding="utf-8") as handle:
            handle.write(str(os.getpid()))
        os.kill(os.getpid(), signal_module.SIGKILL)

    t0 = time.perf_counter()
    with faults.FaultPlan(seed=seed) as fault_plan:
        fault_plan.on(
            "worker.task",
            kill_always,
            times=None,
            when=lambda c: c["index"] == poison_index,
        )
        fault_plan.on(
            "worker.task",
            kill_once,
            times=None,
            when=lambda c: c["index"] == transient_index,
        )
        report = tuner.run(tasks)
    elapsed = time.perf_counter() - t0

    # The sweep completed: every task finished except the quarantined one.
    assert report.complete, "chaos sweep did not complete"
    assert report.quarantined == [poison_index], report.quarantined
    assert poison_index not in report.completed
    # Poison searched at most K times and never after quarantine: one crash
    # per claim, so exactly ``poison_threshold`` crashes are poison's.
    assert len(report.poison_records) == 1
    assert report.poison_records[0]["crashes"] == poison_threshold
    # 2 poison claims + 1 transient kill, each SIGKILLing one worker.
    assert report.crashes == poison_threshold + 1, report.crashes
    assert report.tasks_reclaimed >= 2  # transient + first poison claim
    assert report.worker_restarts >= 2
    assert os.path.exists(os.path.join(store.root, POISON_FILENAME))

    # Bit identity: every surviving record matches the single-process
    # reference; only the poison task's record is (expectedly) absent.
    reloaded = store.load()
    reference_records = reference.cache.records()
    lost, mismatched = [], 0
    for record in reference_records:
        got = reloaded.lookup(record.key)
        if got is None:
            lost.append(record.key)
            continue
        if got.best_config != record.best_config or got.best_cost != record.best_cost:
            mismatched += 1
    stats = store.stats
    assert mismatched == 0, f"{mismatched} surviving records diverged"
    assert len(lost) == 1, f"expected exactly the poison record missing, lost: {lost}"
    assert stats.corrupt_lines == 0 and stats.stale_records == 0

    return {
        "tasks": len(tasks),
        "elapsed_s": elapsed,
        "poison_index": poison_index,
        "transient_index": transient_index,
        "crashes": report.crashes,
        "worker_restarts": report.worker_restarts,
        "tasks_reclaimed": report.tasks_reclaimed,
        "quarantined": report.quarantined,
        "poison_searches": report.poison_records[0]["crashes"],
        "survivor_records": len(reloaded),
        "mismatched_records": mismatched,
        "corrupt_lines": stats.corrupt_lines,
    }


def bench_chaos(layers, seed: int, output: str) -> dict:
    """The full compute-plane chaos drill (CI ``chaos-smoke``)."""
    single = bench_single_process(layers)
    reference = single.pop("_session")
    kernel = bench_kernel_chaos(seed)
    if "skipped" in kernel:
        print(f"kernel chaos   : skipped ({kernel['skipped']})")
    else:
        print(
            f"kernel chaos   : poisoned kernel demoted as "
            f"{kernel['sandbox_outcome_poisoned']!r} in "
            f"{kernel['poisoned_demotion_s'] * 1e3:.0f} ms, clean kernel "
            f"qualified ({kernel['sandbox_rejections']} rejection(s))"
        )
    with tempfile.TemporaryDirectory(prefix="bench_distributed_chaos.") as root:
        worker = bench_worker_chaos(layers, reference, root, seed)
    if "skipped" in worker:
        print(f"worker chaos   : skipped ({worker['skipped']})")
    else:
        print(
            f"worker chaos   : {worker['tasks']} tasks, {worker['crashes']} "
            f"SIGKILLs healed ({worker['worker_restarts']} restarts, "
            f"{worker['tasks_reclaimed']} reclaimed), poison task "
            f"quarantined after {worker['poison_searches']} searches, "
            f"{worker['survivor_records']} survivors bit-identical"
        )
    report = {
        "benchmark": "distributed_tuning_chaos",
        "seed": seed,
        "kernel_chaos": kernel,
        "worker_chaos": worker,
    }
    with open(output, "w") as handle:
        json.dump(report, handle, indent=2)
    from repro.telemetry.resultsdb import record_bench

    run_id = record_bench("distributed_chaos", report)
    print(f"wrote {output} (results-DB run {run_id})")
    return report


def main(argv=None) -> dict:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="single worker count + stress section only (the CI gate)",
    )
    parser.add_argument(
        "--chaos",
        action="store_true",
        help="compute-plane chaos drill: sandboxed kernel crashes + "
        "SIGKILLed workers (writes BENCH_distributed_chaos.json)",
    )
    parser.add_argument(
        "--seed", type=int, default=7, help="chaos-drill fault plan seed"
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="smoke-mode worker count (full mode sweeps 1/2/4/8)",
    )
    parser.add_argument(
        "--layers", type=int, default=len(TABLE1_LAYERS), help="Table I layers to tune"
    )
    parser.add_argument("-o", "--output", default=None)
    args = parser.parse_args(argv)

    layers = TABLE1_LAYERS[: args.layers]
    if args.chaos:
        output = args.output or "BENCH_distributed_chaos.json"
        return bench_chaos(layers, args.seed, output)
    args.output = args.output or "BENCH_distributed_tuning.json"
    worker_counts = [args.workers or 4] if args.smoke else [1, 2, 4, 8]

    single = bench_single_process(layers)
    reference = single.pop("_session")
    print(
        f"single process : {single['elapsed_s'] * 1e3:8.1f} ms  "
        f"({single['trials']} trials, {single['records']} records)"
    )

    runs = []
    with tempfile.TemporaryDirectory(prefix="bench_distributed_tuning.") as root:
        for workers in worker_counts:
            row = bench_workers(layers, workers, reference, root)
            runs.append(row)
            print(
                f"{workers} worker(s)    : {row['elapsed_s'] * 1e3:8.1f} ms  "
                f"lost={row['lost_records']} corrupt={row['corrupt_lines']} "
                f"contentions={row['contention']['lock_contentions']} "
                f"(waited {row['contention']['lock_wait_ms']:.1f} ms)"
            )
        base = runs[0]["elapsed_s"]
        for row in runs:
            row["speedup_vs_1_worker"] = base / row["elapsed_s"] if row["elapsed_s"] else 0.0

        stress = bench_stress(root, STRESS_PROCESSES, STRESS_RECORDS_EACH)
        print(
            f"stress         : {stress['processes']} procs x "
            f"{stress['records_each']} appends -> "
            f"{stress['records_found']}/{stress['records_expected']} records, "
            f"{stress['corrupt_lines']} corrupt"
        )

    report = {
        "benchmark": "distributed_tuning",
        "smoke": bool(args.smoke),
        "single_process": single,
        "runs": runs,
        "stress": stress,
    }
    with open(args.output, "w") as handle:
        json.dump(report, handle, indent=2)
    from repro.telemetry.resultsdb import record_bench

    run_id = record_bench("distributed_tuning", report)
    print(f"wrote {args.output} (results-DB run {run_id})")
    return report


if __name__ == "__main__":
    sys.exit(0 if main() else 1)
