"""Distributed-tuning benchmark: worker scaling, store contention, zero loss.

Not a paper figure — this tracks the sharded concurrent tuning store and the
distributed worker pool themselves.  Three sections:

* **single_process** — the reference: one ``TuningSession`` tunes the Table I
  layer set serially; its best configs/costs are the ground truth every
  distributed run must reproduce bit-identically;
* **runs** — 1/2/4/8-worker ``DistributedTuner`` sweeps over the same layer
  set, each into a fresh ``ShardedTuningStore``; per run the elapsed time,
  speedup over one worker, store contention stats (lock waits, contended
  acquisitions) and the record-integrity checks (no lost, corrupt or stale
  records; configs identical to the reference);
* **stress** — raw concurrent-append hammering: N processes blind-append M
  records each into one store (no tuning, maximum lock pressure), then the
  store is reloaded and every record must be present and intact.

Run standalone to write ``BENCH_distributed_tuning.json`` (the CI
``tuning-stress`` job uploads it as an artifact)::

    PYTHONPATH=src python benchmarks/bench_distributed_tuning.py [--smoke] \
        [--workers N] [--layers K] [-o OUT]

``--smoke`` runs a single worker count (default 4) plus the stress section
and asserts the integrity invariants — the CI gate.  Every integrity check is
asserted in full mode too; ``--smoke`` only trims the sweep.
"""

from __future__ import annotations

import argparse
import json
import multiprocessing
import os
import sys
import tempfile
import time

from repro.core import UnitCpuRunner
from repro.hwsim import CostBreakdown
from repro.rewriter import (
    DistributedTuner,
    ShardedTuningStore,
    TuningKey,
    TuningRecord,
    TuningSession,
    tasks_from_layers,
)
from repro.workloads.table1 import TABLE1_LAYERS

STRESS_PROCESSES = 4
STRESS_RECORDS_EACH = 25


def bench_single_process(layers) -> dict:
    """The serial reference run: ground-truth configs, costs and trials."""
    session = TuningSession()
    runner = UnitCpuRunner(session=session)
    t0 = time.perf_counter()
    for params in layers:
        runner.conv2d_latency(params)
    elapsed = time.perf_counter() - t0
    return {
        "layers": len(layers),
        "elapsed_s": elapsed,
        "trials": session.trials_run,
        "records": len(session.cache),
        "_session": session,  # stripped before serialisation
    }


def bench_workers(layers, workers: int, reference: TuningSession, root: str) -> dict:
    """One distributed sweep; asserts integrity against the reference."""
    store = ShardedTuningStore(os.path.join(root, f"store-w{workers}"), shards=8)
    tuner = DistributedTuner(store, workers=workers)
    report = tuner.run(tasks_from_layers(layers))

    reloaded = store.load()
    stats = store.stats  # this handle read every shard during load()
    reference_records = reference.cache.records()
    lost = sum(1 for record in reference_records if reloaded.lookup(record.key) is None)
    mismatched = 0
    for record in reference_records:
        got = reloaded.lookup(record.key)
        if got is None:
            continue
        if got.best_config != record.best_config or got.best_cost != record.best_cost:
            mismatched += 1
    contention = report.store_stats()
    row = {
        "workers": workers,
        "elapsed_s": report.elapsed_s,
        "trials": report.trials,
        "searches": report.searches,
        "tasks_per_worker": [w.tasks_done for w in report.workers],
        "records": len(reloaded),
        "lost_records": lost,
        "mismatched_records": mismatched,
        "corrupt_lines": stats.corrupt_lines,
        "stale_records": stats.stale_records,
        "contention": {
            "appends": contention.appends,
            "lock_acquisitions": contention.lock_acquisitions,
            "lock_contentions": contention.lock_contentions,
            "lock_wait_ms": contention.lock_wait_seconds * 1e3,
        },
    }
    assert report.complete, "lease coverage incomplete or overlapping"
    assert lost == 0, f"{lost} records lost under {workers} concurrent writers"
    assert mismatched == 0, (
        f"{mismatched} records diverged from the single-process reference"
    )
    assert stats.corrupt_lines == 0, f"{stats.corrupt_lines} corrupt lines on reload"
    assert stats.stale_records == 0, f"{stats.stale_records} stale records on reload"
    return row


def _stress_appender(root: str, worker: int, count: int) -> None:
    """Blind-append ``count`` distinct records into the shared store."""
    store = ShardedTuningStore(root)
    for index in range(count):
        key = TuningKey(
            kind="stress",
            params=(("worker", worker), ("index", index)),
            intrinsic="none",
            machine="stress-rig",
            space="stress@00",
        )
        store.put(
            TuningRecord(
                key=key,
                best_config=None,
                best_cost=float(worker * count + index),
                num_trials=1,
                breakdown=CostBreakdown(seconds=float(index) + 1.0),
            )
        )


def bench_stress(root: str, processes: int, records_each: int) -> dict:
    """Concurrent blind appends: every record must survive, byte-intact."""
    store_root = os.path.join(root, "store-stress")
    ctx = multiprocessing.get_context()
    procs = [
        ctx.Process(target=_stress_appender, args=(store_root, worker, records_each))
        for worker in range(processes)
    ]
    t0 = time.perf_counter()
    for proc in procs:
        proc.start()
    for proc in procs:
        proc.join(timeout=120)
    elapsed = time.perf_counter() - t0
    failed = [p.exitcode for p in procs if p.exitcode != 0]
    assert not failed, f"stress appender exit codes: {failed}"

    store = ShardedTuningStore(store_root)
    reloaded = store.load()
    stats = store.stats
    expected = processes * records_each
    row = {
        "processes": processes,
        "records_each": records_each,
        "elapsed_s": elapsed,
        "records_expected": expected,
        "records_found": len(reloaded),
        "corrupt_lines": stats.corrupt_lines,
        "stale_records": stats.stale_records,
    }
    assert len(reloaded) == expected, (
        f"lost records under concurrent append: {len(reloaded)}/{expected}"
    )
    assert stats.corrupt_lines == 0 and stats.stale_records == 0
    # Spot-check payload integrity, not just key presence.
    probe = TuningKey(
        kind="stress",
        params=(("worker", 0), ("index", 0)),
        intrinsic="none",
        machine="stress-rig",
        space="stress@00",
    )
    assert reloaded.lookup(probe).best_cost == 0.0
    return row


def main(argv=None) -> dict:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="single worker count + stress section only (the CI gate)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="smoke-mode worker count (full mode sweeps 1/2/4/8)",
    )
    parser.add_argument(
        "--layers", type=int, default=len(TABLE1_LAYERS), help="Table I layers to tune"
    )
    parser.add_argument("-o", "--output", default="BENCH_distributed_tuning.json")
    args = parser.parse_args(argv)

    layers = TABLE1_LAYERS[: args.layers]
    worker_counts = [args.workers or 4] if args.smoke else [1, 2, 4, 8]

    single = bench_single_process(layers)
    reference = single.pop("_session")
    print(
        f"single process : {single['elapsed_s'] * 1e3:8.1f} ms  "
        f"({single['trials']} trials, {single['records']} records)"
    )

    runs = []
    with tempfile.TemporaryDirectory(prefix="bench_distributed_tuning.") as root:
        for workers in worker_counts:
            row = bench_workers(layers, workers, reference, root)
            runs.append(row)
            print(
                f"{workers} worker(s)    : {row['elapsed_s'] * 1e3:8.1f} ms  "
                f"lost={row['lost_records']} corrupt={row['corrupt_lines']} "
                f"contentions={row['contention']['lock_contentions']} "
                f"(waited {row['contention']['lock_wait_ms']:.1f} ms)"
            )
        base = runs[0]["elapsed_s"]
        for row in runs:
            row["speedup_vs_1_worker"] = base / row["elapsed_s"] if row["elapsed_s"] else 0.0

        stress = bench_stress(root, STRESS_PROCESSES, STRESS_RECORDS_EACH)
        print(
            f"stress         : {stress['processes']} procs x "
            f"{stress['records_each']} appends -> "
            f"{stress['records_found']}/{stress['records_expected']} records, "
            f"{stress['corrupt_lines']} corrupt"
        )

    report = {
        "benchmark": "distributed_tuning",
        "smoke": bool(args.smoke),
        "single_process": single,
        "runs": runs,
        "stress": stress,
    }
    with open(args.output, "w") as handle:
        json.dump(report, handle, indent=2)
    print(f"wrote {args.output}")
    return report


if __name__ == "__main__":
    sys.exit(0 if main() else 1)
