"""Compare a fresh benchmark JSON against a committed baseline.

The CI ``bench-smoke`` job runs the compile-time benchmark and then gates the
pipeline on this script: timings may drift with runner hardware, but a
multiple-of-baseline blowup is a real regression.  Tolerances are therefore
generous (default 3x) and only *meaningful* metrics are compared:

* keys ending in ``_s`` or ``_ms`` are wall-clock timings — **worse when
  larger**; fail when ``fresh > baseline * tolerance``.  Timings below the
  floor (default 5 ms) are noise-dominated and skipped;
* keys containing ``speedup``, ``hit_rate`` or ``memory_reuse`` are
  **better when larger**; fail when ``fresh < baseline / tolerance``;
* keys containing ``proved`` or ``elided`` are static-analysis coverage
  counters — exact, not noisy, so they get **no tolerance**: fail when
  ``fresh < baseline``.  A change that silently loses bounds proofs (and
  with them the elided runtime checks) fails CI even if nothing got slower;
* keys containing ``native_runs`` or ``native_promotions`` are the native
  tier's coverage counters and are gated the same way (**never lower**): a
  change that silently stops plans from promoting — or makes promoted plans
  demote — fails CI even though the vectorized fallback masks it;
* everything else (counters, flags, labels) is informational and ignored.

Keys present on only one side are reported as warnings, not failures, so the
benchmark schema can grow without breaking the gate.

Usage::

    python benchmarks/check_regression.py FRESH.json BASELINE.json \
        [--tolerance 3.0] [--floor-ms 5.0] [--history K]

``--history K`` additionally reports each gated metric's *trend* over the
last K runs recorded in the telemetry results DB (direction + worst
step-to-step adverse delta) — regressions over time, not just vs one frozen
snapshot.  The verdicts are also persisted into the DB when it exists, so
``python -m repro query verdicts`` can replay gate history.  Exit-code
semantics are unchanged in every mode: 0 when no metric regressed vs the
committed baseline, 1 otherwise.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Iterator, List, Optional, Tuple

def _resultsdb():
    """Import :mod:`repro.telemetry.resultsdb`, adding ``src/`` if needed.

    The gate is historically invoked without ``PYTHONPATH=src`` (it used to
    be stdlib-only), so the telemetry import must bootstrap its own path.
    """
    try:
        from repro.telemetry import resultsdb
    except ImportError:
        sys.path.insert(
            0,
            os.path.join(os.path.dirname(os.path.abspath(__file__)), os.pardir, "src"),
        )
        from repro.telemetry import resultsdb
    return resultsdb


# ``benchmark`` field in the fresh JSON -> run kind in the results DB.
_KIND_BY_BENCHMARK = {
    "compile_time": "compile_time",
    "distributed_tuning": "distributed_tuning",
    "distributed_tuning_chaos": "distributed_chaos",
    "tuning_service": "service",
    "tuning_service_chaos": "service_chaos",
}


def _numeric_leaves(data, prefix: str = "") -> Iterator[Tuple[str, float]]:
    """Flatten nested dicts/lists into dotted-path -> numeric-leaf pairs."""
    if isinstance(data, dict):
        for key, value in data.items():
            yield from _numeric_leaves(value, f"{prefix}.{key}" if prefix else str(key))
    elif isinstance(data, list):
        for index, value in enumerate(data):
            yield from _numeric_leaves(value, f"{prefix}[{index}]")
    elif isinstance(data, bool):
        return  # bools are ints to isinstance(); they are flags, not metrics
    elif isinstance(data, (int, float)):
        yield prefix, float(data)


def _metric_kind(path: str) -> str:
    leaf = path.rsplit(".", 1)[-1].split("[")[0]
    if "speedup" in leaf or "hit_rate" in leaf or "memory_reuse" in leaf:
        return "higher_is_better"
    if "proved" in leaf or "elided" in leaf:
        return "never_lower"
    if "native_runs" in leaf or "native_promotions" in leaf:
        return "never_lower"
    if "sandbox_rejections" in leaf or "worker_restarts" in leaf or "tasks_reclaimed" in leaf:
        return "never_lower"
    if leaf.endswith("_s") or leaf.endswith("_ms"):
        return "lower_is_better"
    return "ignored"


def _in_seconds(path: str, value: float) -> float:
    return value / 1e3 if path.rsplit(".", 1)[-1].split("[")[0].endswith("_ms") else value


def compare(fresh: dict, base: dict, tolerance: float, floor_s: float):
    """Returns (failures, checks, warnings, verdicts).

    The first three are report lines; ``verdicts`` are structured
    ``(metric, kind, ok, fresh, baseline)`` rows for the results DB.
    """
    fresh_leaves = dict(_numeric_leaves(fresh))
    base_leaves = dict(_numeric_leaves(base))
    failures: List[str] = []
    checks: List[str] = []
    warnings: List[str] = []
    verdicts: List[Tuple[str, str, bool, float, float]] = []
    for path, base_value in sorted(base_leaves.items()):
        kind = _metric_kind(path)
        if kind == "ignored":
            continue
        if path not in fresh_leaves:
            warnings.append(f"missing from fresh results: {path}")
            continue
        fresh_value = fresh_leaves[path]
        if kind == "lower_is_better":
            if _in_seconds(path, base_value) < floor_s:
                continue  # noise-dominated
            limit = base_value * tolerance
            ok = fresh_value <= limit
            line = f"{path}: {fresh_value:.4g} vs baseline {base_value:.4g} (limit {limit:.4g})"
        elif kind == "never_lower":
            ok = fresh_value >= base_value
            line = (
                f"{path}: {fresh_value:.4g} vs baseline {base_value:.4g} "
                f"(coverage counter, no tolerance)"
            )
        else:
            limit = base_value / tolerance
            ok = fresh_value >= limit
            line = f"{path}: {fresh_value:.4g} vs baseline {base_value:.4g} (floor {limit:.4g})"
        (checks if ok else failures).append(("PASS " if ok else "FAIL ") + line)
        verdicts.append((path, kind, ok, fresh_value, base_value))
    for path in sorted(set(fresh_leaves) - set(base_leaves)):
        if _metric_kind(path) != "ignored":
            warnings.append(f"not in baseline (uncompared): {path}")
    return failures, checks, warnings, verdicts


def _trend_report(
    base: dict, run_kind: Optional[str], last: int, db_path: Optional[str]
) -> List[str]:
    """Per-gated-metric trend lines over the last K recorded runs.

    ``direction`` reads the trajectory first-to-last through the metric's
    kind (a falling timing is *improving*); ``worst step`` is the largest
    adverse run-to-run delta inside the window — a sawtooth that nets out
    flat still shows its worst spike.
    """
    lines: List[str] = []
    with _resultsdb().ResultsDB(db_path) as db:
        for path, _ in sorted(_numeric_leaves(base)):
            kind = _metric_kind(path)
            if kind == "ignored":
                continue
            points = db.metric_trend(path, kind=run_kind, last=last)
            values = [point["value"] for point in points if point["path"] == path]
            if len(values) < 2:
                lines.append(f"{path}: {len(values)} recorded run(s), no trend")
                continue
            adverse_is_up = kind == "lower_is_better"
            net = values[-1] - values[0]
            if abs(net) < 1e-12:
                direction = "flat"
            else:
                worsened = net > 0 if adverse_is_up else net < 0
                direction = "regressing" if worsened else "improving"
            steps = [b - a for a, b in zip(values, values[1:])]
            adverse = [s if adverse_is_up else -s for s in steps]
            worst = max(adverse)
            reference = max(abs(v) for v in values) or 1.0
            lines.append(
                f"{path} [{kind}]: {direction} over {len(values)} run(s) "
                f"({values[0]:.4g} -> {values[-1]:.4g}), worst step "
                f"{worst:+.4g} ({worst / reference * 100:+.1f}%)"
            )
    return lines


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("fresh", help="freshly produced benchmark JSON")
    parser.add_argument("baseline", help="committed baseline JSON")
    parser.add_argument(
        "--tolerance", type=float, default=3.0, help="allowed multiple of baseline"
    )
    parser.add_argument(
        "--floor-ms",
        type=float,
        default=5.0,
        help="skip timings whose baseline is below this (noise)",
    )
    parser.add_argument(
        "--history",
        type=int,
        default=0,
        metavar="K",
        help="also report each gated metric's trend over the last K runs "
        "recorded in the results DB (requires the DB to exist)",
    )
    parser.add_argument(
        "--results-db",
        default=None,
        help="telemetry results DB path (default: $REPRO_RESULTS_DB or "
        "./results.db)",
    )
    args = parser.parse_args(argv)

    with open(args.fresh) as handle:
        fresh = json.load(handle)
    with open(args.baseline) as handle:
        base = json.load(handle)

    failures, checks, warnings, verdicts = compare(
        fresh, base, args.tolerance, args.floor_ms / 1e3
    )
    for line in checks:
        print(line)
    for line in warnings:
        print("WARN", line)
    for line in failures:
        print(line)
    print(
        f"{len(checks)} ok, {len(failures)} regressed, {len(warnings)} warnings "
        f"(tolerance {args.tolerance}x, floor {args.floor_ms} ms)"
    )

    # The results DB is optional everywhere here: the gate must keep
    # working (and exiting identically) on a runner with no DB at all.
    resultsdb = _resultsdb()
    db_path = args.results_db or resultsdb.default_db_path()
    run_kind = _KIND_BY_BENCHMARK.get(str(fresh.get("benchmark", "")))
    if os.path.exists(db_path):
        with resultsdb.ResultsDB(db_path) as db:
            db.record_verdicts(db.latest_run_id(kind=run_kind), verdicts)
    if args.history > 0:
        if not os.path.exists(db_path):
            print(f"HISTORY skipped: no results DB at {db_path}")
        else:
            print(f"-- trend over last {args.history} recorded run(s) --")
            for line in _trend_report(base, run_kind, args.history, db_path):
                print("HISTORY", line)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
