"""Figure 10: CPU ablation (Parallel / +Unroll / +Tune vs oneDNN) on Table I layers.

Paper findings reproduced: Parallel+Unroll deliver most of the speedup, the
extra gain from tuning is small, and layers 1 and 4 (prime output widths whose
residue guards hurt) stay below oneDNN.
"""

from repro.core.experiments import figure10_cpu_ablation

from .conftest import print_table


def test_figure10_cpu_ablation(benchmark):
    rows = benchmark.pedantic(figure10_cpu_ablation, rounds=1, iterations=1)
    print_table(
        "Figure 10 — CPU ablation (relative to oneDNN = 1.0)",
        rows,
        ["layer", "onednn_us", "parallel_us", "unroll_us", "tune_us",
         "rel_parallel", "rel_unroll", "rel_tune"],
    )
    by_layer = {r["layer"]: r for r in rows}
    assert by_layer[1]["rel_tune"] < 1.0 and by_layer[4]["rel_tune"] < 1.0
    assert sum(1 for r in rows if r["rel_tune"] > 1.0) >= 12
