"""Figure 11: GPU ablation (Generic / +FuseDim / +SplitK / +Tune vs cuDNN).

Paper findings reproduced: most layers beat cuDNN after tuning, SplitK is what
rescues the deep-channel layers, and the strided layer 1 stays below cuDNN.
"""

from repro.core.experiments import figure11_gpu_ablation

from .conftest import print_table


def test_figure11_gpu_ablation(benchmark):
    rows = benchmark.pedantic(figure11_gpu_ablation, rounds=1, iterations=1)
    print_table(
        "Figure 11 — GPU ablation (relative to cuDNN Tensor Core = 1.0)",
        rows,
        ["layer", "cudnn_us", "generic_us", "fusedim_us", "splitk_us", "tune_us",
         "rel_generic", "rel_fusedim", "rel_splitk", "rel_tune"],
    )
    by_layer = {r["layer"]: r for r in rows}
    assert by_layer[1]["rel_tune"] < 1.05
    assert sum(1 for r in rows if r["rel_tune"] > 1.0) >= 12
