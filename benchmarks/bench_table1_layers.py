"""Table I: characteristics of the 16 selected convolution layers."""

from repro.core.experiments import table1_characteristics

from .conftest import print_table


def test_table1_characteristics(benchmark):
    rows = benchmark(table1_characteristics)
    print_table(
        "Table I — selected convolution layers",
        rows,
        ["layer", "C", "IHW", "K", "R=S", "stride", "OHW", "MACs"],
    )
    assert len(rows) == 16
    assert [r["OHW"] for r in rows] == [17, 7, 7, 71, 14, 14, 14, 14, 14, 14, 14, 14, 14, 27, 28, 14]
