"""Section VI-B ablation: how fast the CPU tuning search converges.

Paper claim: more than half of the kernels are optimal at the first tuning
pair (parallel < 3000, unroll < 8) and more than 95% within the first eight
pairs.  The analytical reproduction reaches the first claim and comes close to
the second (see EXPERIMENTS.md for the exact numbers).
"""

from repro.core.experiments import tuning_convergence


def test_tuning_convergence(benchmark):
    data = benchmark.pedantic(tuning_convergence, rounds=1, iterations=1)
    print("\n=== Tuning-pair convergence (Table I layers) ===")
    print("per-layer best rank:", data["ranks"])
    print(f"optimal at first pair : {data['optimal_at_first_pair']*100:.0f}%")
    print(f"optimal within 8 pairs: {data['optimal_within_8_pairs']*100:.0f}%")
    assert data["optimal_at_first_pair"] >= 0.5
    assert data["optimal_within_8_pairs"] >= 0.75
