"""Figure 9: mixed-precision end-to-end inference on Tensor Cores (bs = 1).

Paper headline: UNIT is ~1.75x faster than TVM+cuDNN (up to 2.2x).
"""

from repro.core.experiments import figure9_gpu_end_to_end

from .conftest import print_table


def test_figure9_gpu_end_to_end(benchmark):
    rows = benchmark.pedantic(figure9_gpu_end_to_end, rounds=1, iterations=1)
    print_table(
        "Figure 9 — GPU end-to-end (relative to cuDNN Tensor Core = 1.0)",
        rows,
        ["model", "cudnn_tc_ms", "unit_ms", "rel_unit"],
    )
    geo = rows[-1]
    assert geo["rel_unit"] > 1.0
