"""Figure 1: cuDNN fp16 *without* Tensor Cores vs cuDNN fp32 (all bars < 1.0)."""

from repro.core.experiments import figure1_fp16_without_tensor_core

from .conftest import print_table


def test_figure1_fp16_without_tensor_core(benchmark):
    rows = benchmark.pedantic(figure1_fp16_without_tensor_core, rounds=1, iterations=1)
    print_table(
        "Figure 1 — relative performance of fp16 (no Tensor Core) vs fp32",
        rows,
        ["model", "cudnn_fp32_ms", "cudnn_fp16_no_tc_ms", "relative_fp16_vs_fp32"],
    )
    body = [r for r in rows if r["model"] != "geomean"]
    assert all(r["relative_fp16_vs_fp32"] < 1.0 for r in body)
