"""Figure 13: 3-D convolution extensibility (oneDNN vs UNIT on res18-3d layers).

Paper headline: UNIT extends to conv3d with no compiler changes and averages
~1.2x over oneDNN across the converted ResNet-18 layers.
"""

from repro.core.experiments import figure13_conv3d

from .conftest import print_table


def test_figure13_conv3d(benchmark):
    rows = benchmark.pedantic(figure13_conv3d, rounds=1, iterations=1)
    print_table(
        "Figure 13 — conv3d layers of res18-3d (relative to oneDNN = 1.0)",
        rows,
        ["layer", "onednn_us", "unit_us", "rel_unit"],
    )
    gmean = [r for r in rows if r["layer"] == "gmean"][0]
    assert gmean["rel_unit"] > 1.0
