"""Compilation + validation cost benchmark for the reproduction's own pipeline.

Not a paper figure, but the repository's perf trajectory: it measures

* **compile**: how long UNIT's Inspector + Rewriter + lowering + instruction
  injection takes for a realistic convolution, cold (first call, no memo
  caches) and warm (expression interning and simplify/extract_linear memos
  populated);
* **validation**: how long numerically validating the tensorized kernel
  takes through the scalar reference interpreter vs the vectorized execution
  engine (the hot path of schedule verification and tuning-trial
  validation), asserting the engine is bit-identical and recording the
  speedup;
* **table1**: engine-only execution of full-size Table I layers (the scalar
  interpreter would need minutes each), split into plan-compile cost and
  warm-plan run cost (cross-round batched intrinsic dispatch);
* **plan_cache**: the compile-once story — cold plan compile+run vs
  warm-plan execution of a structurally identical layer, recompile cost with
  warm expression memos, and the plan-cache hit rate over a repeated-layer
  model executed end to end (``run_model``);
* **expr_cache**: hit rates of the expression-level memo caches
  (``simplify`` / ``extract_linear`` / ``structural_equal``);
* **static_analysis**: the verification tier's own cost and coverage —
  wall-clock of the full pass stack (``repro.analysis.analyze``) over
  tensorized Table I layers, the fraction of nests proved, and the runtime
  checks the proofs let ``compile_plan`` elide (``PlanStats.proved_nests`` /
  ``elided_checks``).  Coverage metrics are gated *higher-is-better* by
  ``check_regression.py``: a change that silently loses proofs (and with
  them the elisions) fails CI even if nothing got slower.

Run standalone to write ``BENCH_compile_time.json`` (the CI smoke job
uploads it as an artifact)::

    PYTHONPATH=src python benchmarks/bench_compile_time.py [--quick] [-o OUT]

* **native_tier**: the tiered native backend on the full-size layer 1 —
  vectorized vs promoted-native run time, the ≥2x speedup floor, the
  bit-identity spot check, and the promotion counters
  (``native_runs``/``native_promotions``) that ``check_regression.py``
  gates never-lower.

``--plan-smoke`` runs the CI plan-cache gate instead: warm-plan execution
must be ≥5x faster than cold on the repeated-layer workload and every
Table I layer must compile to a fully vectorized plan (zero fallbacks).
``--native-smoke`` runs the CI native-tier gate: layer 1 must promote, run
≥2x faster than the vectorized tier and stay bit-identical (skips cleanly
when neither numba nor a C compiler is installed).

Or run under pytest-benchmark along with the figure benchmarks::

    pytest benchmarks/bench_compile_time.py --benchmark-only
"""

from __future__ import annotations

import argparse
import json
import time

import numpy as np

from repro.core import tensorize
from repro.dsl.expr import expr_cache_stats, reset_expr_cache_stats
from repro.telemetry import trace as telemetry_trace
from repro.telemetry.resultsdb import default_db_path, record_bench
from repro.telemetry.trace import span
from repro.graph import Conv2DNode, Graph, InputNode, TensorShape, run_model
from repro.rewriter import CpuTuningConfig
from repro.tir import (
    EngineStats,
    Executor,
    Interpreter,
    VectorizedEngine,
    alloc_buffers,
    compile_plan,
    plan_cache,
)
from repro.workloads import Conv2DParams, conv2d_nchwc
from repro.workloads.table1 import TABLE1_LAYERS

# The compile-phase workload (realistic mid-network layer).
COMPILE_PARAMS = Conv2DParams(
    in_channels=64, in_height=14, in_width=14, out_channels=128, kernel=3, name="bench"
)
# The validation-phase workload is smaller: it is executed through the
# *scalar* interpreter too, whose cost grows with every MAC.
VALIDATE_PARAMS = Conv2DParams(
    in_channels=16, in_height=10, in_width=10, out_channels=32, kernel=3, name="val"
)


def _compile_once(params: Conv2DParams = COMPILE_PARAMS):
    conv = conv2d_nchwc(params)
    return tensorize(conv, "x86.avx512.vpdpbusd", config=CpuTuningConfig())


def bench_compile() -> dict:
    reset_expr_cache_stats()
    t0 = time.perf_counter()
    _compile_once()
    cold = time.perf_counter() - t0
    warm_times = []
    for _ in range(3):
        t0 = time.perf_counter()
        _compile_once()
        warm_times.append(time.perf_counter() - t0)
    warm = min(warm_times)
    return {
        "workload": COMPILE_PARAMS.describe(),
        "cold_s": cold,
        "warm_s": warm,
        "warm_speedup": cold / warm if warm else float("inf"),
    }


def bench_validation() -> dict:
    result = _compile_once(VALIDATE_PARAMS)
    buffers = alloc_buffers(result.func, np.random.default_rng(0))

    t0 = time.perf_counter()
    ref = Interpreter(result.func).run({t: a.copy() for t, a in buffers.items()})
    scalar_s = time.perf_counter() - t0

    # Warm-up pass (numpy internal caches), then a timed pass on a fresh
    # engine so the reported stats cover exactly one execution.
    VectorizedEngine(result.func).run({t: a.copy() for t, a in buffers.items()})
    engine = VectorizedEngine(result.func)
    t0 = time.perf_counter()
    got = engine.run({t: a.copy() for t, a in buffers.items()})
    vector_s = time.perf_counter() - t0

    return {
        "workload": VALIDATE_PARAMS.describe(),
        "scalar_s": scalar_s,
        "vector_s": vector_s,
        "speedup": scalar_s / vector_s if vector_s else float("inf"),
        "bit_identical": bool(np.array_equal(ref, got)),
        "engine": {
            "vector_nests": engine.stats.vector_nests,
            "fallback_nests": engine.stats.fallback_nests,
            "intrinsic_rounds": engine.stats.intrinsic_rounds,
            "intrinsic_points": engine.stats.intrinsic_points,
            "proved_nests": engine.plan.stats.proved_nests,
            "elided_checks": engine.plan.stats.elided_checks,
        },
    }


def bench_table1_engine(limit: int) -> list:
    """Full-size Table I layers: plan compile cost + warm-plan execution."""
    rows = []
    for index, params in enumerate(TABLE1_LAYERS[:limit], start=1):
        result = _compile_once(params)
        t0 = time.perf_counter()
        plan = compile_plan(result.func)
        plan_compile_s = time.perf_counter() - t0
        buffers = alloc_buffers(result.func, np.random.default_rng(index))
        stats = EngineStats()
        t0 = time.perf_counter()
        plan.run(buffers, stats=stats)
        rows.append(
            {
                "layer": index,
                "params": params.describe(),
                "macs": params.macs,
                "plan_compile_s": plan_compile_s,
                "vector_s": time.perf_counter() - t0,
                "fallback_nests": plan.fallback_nests,
                "intrinsic_round_batches": stats.intrinsic_round_batches,
                "proved_nests": plan.stats.proved_nests,
                "elided_checks": plan.stats.elided_checks,
            }
        )
    return rows


def bench_native_tier(limit: int) -> dict:
    """The tiered native backend on full-size Table I layers.

    For each layer: time the warm vectorized run, then force promotion
    (``promote_after=1`` — one warm run compiles the kernel and spot-checks
    it for bit identity) and time the promoted native runs.  Reports the
    native/vectorized speedup plus the promotion counters that
    ``check_regression.py`` gates never-lower.  When no toolchain (numba or
    a C compiler) is available the section reports ``available: false`` and
    nothing else — the graceful-fallback story, not a failure.
    """
    from repro.tir import native_toolchain, tier_state
    from repro.tir.backend import run_tiered

    kind, payload = native_toolchain()
    report = {
        "available": kind is not None,
        "toolchain": kind if kind is not None else str(payload),
        "layers": [],
    }
    if kind is None:
        return report
    for index, params in enumerate(TABLE1_LAYERS[:limit], start=1):
        result = _compile_once(params)
        plan = compile_plan(result.func)
        buffers = alloc_buffers(result.func, np.random.default_rng(index))
        stats = EngineStats()

        t0 = time.perf_counter()
        expected = plan.run({t: a.copy() for t, a in buffers.items()}, stats=stats)
        vector_s = time.perf_counter() - t0
        expected = np.array(expected, copy=True)

        # The threshold-crossing warm run: vectorized execution + kernel
        # compile + bit-identity spot-check, all in one call.
        t0 = time.perf_counter()
        run_tiered(
            plan, {t: a.copy() for t, a in buffers.items()}, stats=stats, promote_after=1
        )
        promote_s = time.perf_counter() - t0
        state = tier_state(plan)

        native_s, got = float("inf"), None
        if state.tier == "native":
            times = []
            for _ in range(2):
                native_buffers = {t: a.copy() for t, a in buffers.items()}
                t0 = time.perf_counter()
                got = run_tiered(plan, native_buffers, stats=stats, promote_after=1)
                times.append(time.perf_counter() - t0)
            native_s = min(times)
        report["layers"].append(
            {
                "layer": index,
                "params": params.describe(),
                "macs": params.macs,
                "tier": state.tier,
                "demotion_reason": state.demotion_reason,
                "vector_s": vector_s,
                "promote_s": promote_s,
                "native_s": native_s,
                "native_speedup": vector_s / native_s if native_s else float("inf"),
                "bit_identical": bool(
                    got is not None and np.array_equal(got, expected)
                ),
                "native_runs": stats.native_runs,
                "native_promotions": stats.native_promotions,
                "native_demotions": stats.native_demotions,
            }
        )
    return report


def native_smoke() -> None:
    """The CI native-tier gate (``--native-smoke``).

    Skips (exit 0) when no native toolchain exists; otherwise layer 1 must
    promote, run ≥2x faster than the vectorized tier, and stay bit-identical.
    """
    report = bench_native_tier(1)
    if not report["available"]:
        print(f"native-tier smoke skipped: {report['toolchain']}")
        return
    row = report["layers"][0]
    print(
        f"native tier ({report['toolchain']}): layer1 vector "
        f"{row['vector_s'] * 1e3:7.1f} ms  native {row['native_s'] * 1e3:7.1f} ms "
        f"({row['native_speedup']:.2f}x, bit_identical={row['bit_identical']}, "
        f"tier={row['tier']})"
    )
    assert row["tier"] == "native", (
        f"layer 1 failed to promote: {row['demotion_reason'] or 'unknown reason'}"
    )
    assert row["bit_identical"], "native kernel diverged from the vectorized tier"
    assert row["native_speedup"] >= 2.0, (
        f"native speedup {row['native_speedup']:.2f}x below the 2x floor"
    )
    print("native-tier smoke ok")


def bench_static_analysis(limit: int) -> dict:
    """Cost and coverage of the static verification tier on Table I layers.

    ``analyze_s`` is the full pass stack (structure + bounds + overlap +
    dtype) over already-tensorized funcs — the marginal price the Rewriter
    pays to precheck one candidate.  ``proved_fraction`` and the elision
    counters are the payoff and are gated higher-is-better.
    """
    from repro.analysis import analyze

    funcs = [_compile_once(p).func for p in TABLE1_LAYERS[:limit]]
    total_nests = proved_nests = 0
    strict_ok = True
    t0 = time.perf_counter()
    for func in funcs:
        report = analyze(func)
        total_nests += report.total_nests
        proved_nests += report.proved_nests
        strict_ok = strict_ok and report.ok(strict=True)
    analyze_s = time.perf_counter() - t0

    elided = sum(compile_plan(f).stats.elided_checks for f in funcs)
    return {
        "layers": len(funcs),
        "analyze_s": analyze_s,
        "analyze_per_func_ms": analyze_s / len(funcs) * 1e3 if funcs else 0.0,
        "total_nests": total_nests,
        "proved_nests": proved_nests,
        "proved_fraction": proved_nests / total_nests if total_nests else 0.0,
        "strict_ok": strict_ok,
        "elided_checks": elided,
    }


# The plan-cache workload: small enough that analysis dominates execution,
# so the cold/warm ratio isolates what the cache actually saves.  The
# strided shape adds residue guards, whose mask/selection precompute is part
# of the analysis a warm plan skips.
PLAN_PARAMS = Conv2DParams(
    in_channels=4, in_height=7, in_width=7, out_channels=16, kernel=3, stride=2,
    name="plan",
)


def _repeated_layer_model(depth: int = 6) -> Graph:
    """A model whose conv layers are structurally identical — the
    best case the plan cache is designed for (and the common case in
    real networks)."""
    graph = Graph("repeated")
    graph.add(InputNode(name="in", shape=TensorShape(8, 12, 12)))
    prev = "in"
    for i in range(depth):
        prev = graph.add(
            Conv2DNode(
                name=f"conv{i}", inputs=[prev], out_channels=8, kernel=3, padding=1
            )
        )
    return graph


def bench_plan_cache() -> dict:
    """Cold vs warm executable plans, plus the repeated-layer-model hit rate."""
    cache = plan_cache()
    cache.clear()
    # Six structurally identical compilations of the same layer — distinct
    # functions, distinct (fresh) expression trees, one program.
    funcs = [
        tensorize(conv2d_nchwc(PLAN_PARAMS), "x86.avx512.vpdpbusd",
                  config=CpuTuningConfig()).func
        for _ in range(6)
    ]
    hits0, misses0 = cache.stats.hits, cache.stats.misses

    # Cold: plan compile + insert + run, on a never-seen function (fresh
    # expression trees, empty cache) — the no-cache cost of every call.
    cold_times = []
    for func in funcs[:3]:
        cache.clear()
        buffers = alloc_buffers(func, np.random.default_rng(0))
        t0 = time.perf_counter()
        Executor(tier="vectorized").run(func, buffers)
        cold_times.append(time.perf_counter() - t0)
    cold_s = min(cold_times)

    # Warm: re-executing a compiled layer — identity hit, zero analysis.
    warm_times = []
    for _ in range(5):
        buffers = alloc_buffers(funcs[2], np.random.default_rng(0))
        t0 = time.perf_counter()
        Executor(tier="vectorized").run(funcs[2], buffers)
        warm_times.append(time.perf_counter() - t0)
    warm_s = min(warm_times)

    # Twin: a *different* function object, same program — the repeated-layer
    # case; pays one canonical hash + equality walk, still no analysis.
    twin_times = []
    for func in funcs[3:]:
        buffers = alloc_buffers(func, np.random.default_rng(0))
        t0 = time.perf_counter()
        Executor(tier="vectorized").run(func, buffers)
        twin_times.append(time.perf_counter() - t0)
    twin_s = min(twin_times)
    hits, misses = cache.stats.hits - hits0, cache.stats.misses - misses0

    # Recompiling the same function object after a cache clear exercises the
    # per-node expression memos (extract_linear and friends stay warm).
    cache.clear()
    t0 = time.perf_counter()
    compile_plan(funcs[0])
    recompile_s = time.perf_counter() - t0

    # Whole-model execution: one compile, depth-1 hits, then an all-warm run.
    model = _repeated_layer_model()
    x = np.random.default_rng(1).standard_normal((8, 12, 12)).astype(np.float32)
    run_cold = run_model(model, {"in": x}, rng=np.random.default_rng(2))
    run_warm = run_model(model, {"in": x}, rng=np.random.default_rng(2))
    return {
        "workload": PLAN_PARAMS.describe(),
        "cold_s": cold_s,
        "warm_s": warm_s,
        "twin_s": twin_s,
        "warm_speedup": cold_s / warm_s if warm_s else float("inf"),
        "twin_speedup": cold_s / twin_s if twin_s else float("inf"),
        "recompile_s": recompile_s,
        "hits": hits,
        "misses": misses,
        "hit_rate": hits / (hits + misses) if hits + misses else 0.0,
        "model_cold_hit_rate": run_cold.plan_hit_rate,
        "model_warm_hit_rate": run_warm.plan_hit_rate,
        "model_memory_reuse": run_cold.memory.reuse_ratio,
    }


def plan_smoke() -> None:
    """The CI plan-cache gate (``--plan-smoke``).

    Asserts warm-plan execution is ≥5x faster than cold on the
    repeated-layer workload and that every full-size Table I layer compiles
    to a fully vectorized plan (``fallback_nests == 0``) — plan compilation
    makes the latter checkable without executing a single layer.
    """
    report = bench_plan_cache()
    print(
        f"plan cold {report['cold_s'] * 1e3:6.1f} ms  warm "
        f"{report['warm_s'] * 1e3:6.1f} ms  ({report['warm_speedup']:.1f}x, "
        f"hit rate {report['hit_rate']:.0%}, model warm "
        f"{report['model_warm_hit_rate']:.0%})"
    )
    assert report["warm_speedup"] >= 5.0, (
        f"warm-plan execution only {report['warm_speedup']:.1f}x faster than "
        "cold (floor: 5x)"
    )
    assert report["model_warm_hit_rate"] == 1.0, "warm model run missed the plan cache"
    for index, params in enumerate(TABLE1_LAYERS, start=1):
        plan = compile_plan(_compile_once(params).func)
        assert plan.fallback_nests == 0, (
            f"table1 layer {index} plan has {plan.fallback_nests} fallback nest(s): "
            f"{plan.stats.fallback_reasons}"
        )
        print(f"table1 layer{index:<2} plan ok (fully vectorized)")
    stats = expr_cache_stats()
    assert stats.linear_hits > 0, "extract_linear memoization never hit"
    print(f"plan-cache smoke ok (linear hits: {stats.linear_hits})")


def main(argv=None) -> dict:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="skip the Table I sweep")
    parser.add_argument("-o", "--output", default="BENCH_compile_time.json")
    parser.add_argument(
        "--table1-layers", type=int, default=4, help="how many Table I layers to run"
    )
    parser.add_argument(
        "--plan-smoke",
        action="store_true",
        help="run the CI plan-cache gate (5x warm floor + zero Table I "
        "fallbacks) and exit without writing the report",
    )
    parser.add_argument(
        "--native-smoke",
        action="store_true",
        help="run the CI native-tier gate (layer 1 promotes, >=2x over the "
        "vectorized tier, bit-identical; skips without a toolchain) and exit "
        "without writing the report",
    )
    parser.add_argument(
        "--results-db",
        default=None,
        help="telemetry results DB path (default: $REPRO_RESULTS_DB or "
        "./results.db)",
    )
    parser.add_argument(
        "--no-results-db",
        action="store_true",
        help="skip recording this run (and its spans) in the results DB",
    )
    args = parser.parse_args(argv)

    if args.plan_smoke:
        # The CI gates run with *no* telemetry sink installed on purpose:
        # they double as the disabled-overhead check.
        reset_expr_cache_stats()
        plan_smoke()
        return {}
    if args.native_smoke:
        native_smoke()
        return {}

    # Full report runs are instrumented: a tracer collects the spans the
    # library emits (tir.compile_plan, tir.native_promote,
    # tir.sandbox_qualify, ...) and the results DB keeps them per run.
    tracer = None if args.no_results_db else telemetry_trace.install()
    try:
        report = {"benchmark": "compile_time"}
        with span("bench.compile"):
            report["compile"] = bench_compile()
        with span("bench.validation"):
            report["validation"] = bench_validation()
        if not args.quick:
            with span("bench.table1", layers=args.table1_layers):
                report["table1"] = bench_table1_engine(args.table1_layers)
            with span("bench.native_tier"):
                report["native_tier"] = bench_native_tier(1)
            with span("bench.static_analysis", layers=args.table1_layers):
                report["static_analysis"] = bench_static_analysis(args.table1_layers)
        with span("bench.plan_cache"):
            report["plan_cache"] = bench_plan_cache()
        report["expr_cache"] = expr_cache_stats().as_dict()
    finally:
        if tracer is not None:
            telemetry_trace.uninstall()

    with open(args.output, "w") as handle:
        json.dump(report, handle, indent=2)

    if tracer is not None:
        run_id = record_bench(
            "compile_time",
            report,
            db_path=args.results_db,
            spans=tracer.finished(),
        )
        print(
            f"recorded run {run_id} "
            f"({len(tracer.finished())} spans) in "
            f"{args.results_db or default_db_path()}"
        )

    comp, val = report["compile"], report["validation"]
    print(f"compile   cold {comp['cold_s'] * 1e3:8.1f} ms")
    print(
        f"compile   warm {comp['warm_s'] * 1e3:8.1f} ms"
        f"   ({comp['warm_speedup']:.1f}x)"
    )
    print(f"validate scalar {val['scalar_s'] * 1e3:7.1f} ms")
    print(
        f"validate vector {val['vector_s'] * 1e3:7.1f} ms"
        f"   ({val['speedup']:.1f}x, bit_identical={val['bit_identical']})"
    )
    for row in report.get("table1", []):
        print(
            f"table1 layer{row['layer']:<2} {row['macs'] / 1e6:8.1f} MMACs "
            f"plan {row['plan_compile_s'] * 1e3:6.1f} ms "
            f"run {row['vector_s'] * 1e3:7.1f} ms "
            f"({row['intrinsic_round_batches']} round batch(es), "
            f"{row['proved_nests']} proved, {row['elided_checks']} elided)"
        )
    native = report.get("native_tier")
    if native is not None:
        if not native["available"]:
            print(f"native tier unavailable: {native['toolchain']}")
        for row in native["layers"]:
            print(
                f"native layer{row['layer']:<2} vector {row['vector_s'] * 1e3:7.1f} ms "
                f"native {row['native_s'] * 1e3:7.1f} ms "
                f"({row['native_speedup']:.2f}x, "
                f"bit_identical={row['bit_identical']}, tier={row['tier']})"
            )
            assert row["bit_identical"], (
                f"native layer {row['layer']} diverged from the vectorized tier"
            )
            assert row["native_speedup"] >= 2.0, (
                f"native layer {row['layer']} speedup "
                f"{row['native_speedup']:.2f}x below the 2x floor"
            )
    if "static_analysis" in report:
        sa = report["static_analysis"]
        print(
            f"analysis  {sa['analyze_per_func_ms']:6.1f} ms/func over "
            f"{sa['layers']} layer(s): {sa['proved_nests']}/{sa['total_nests']} "
            f"nests proved ({sa['proved_fraction']:.0%}), "
            f"{sa['elided_checks']} check(s) elided, strict_ok={sa['strict_ok']}"
        )
        assert sa["strict_ok"], "a Table I layer failed the strict analysis sweep"
        assert sa["proved_fraction"] == 1.0, (
            "static analysis failed to prove a Table I nest"
        )
    plan = report["plan_cache"]
    print(
        f"plan cache: cold {plan['cold_s'] * 1e3:6.1f} ms, warm "
        f"{plan['warm_s'] * 1e3:6.1f} ms ({plan['warm_speedup']:.1f}x), "
        f"model warm hit rate {plan['model_warm_hit_rate']:.0%}, "
        f"memory reuse {plan['model_memory_reuse']:.2f}x"
    )
    cache = report["expr_cache"]
    print(
        f"expr caches: simplify {cache['simplify_hit_rate']:.0%} hits, "
        f"linear {cache['linear_hit_rate']:.0%} hits, "
        f"equal fast-path {cache['equal_fast_path_rate']:.0%}"
    )
    assert val["bit_identical"], "engine output diverged from the interpreter"
    assert val["speedup"] >= 5.0, (
        f"validation speedup {val['speedup']:.1f}x below the 5x floor"
    )
    assert plan["warm_speedup"] >= 5.0, (
        f"warm-plan speedup {plan['warm_speedup']:.1f}x below the 5x floor"
    )
    assert cache["linear_hits"] > 0, (
        "extract_linear memoization never hit — the engine's affine analysis "
        "is no longer routed through the memoized path"
    )
    assert all(row["fallback_nests"] == 0 for row in report.get("table1", [])), (
        "a Table I layer fell back to the scalar interpreter"
    )
    print(f"wrote {args.output}")
    return report


def test_tensorize_compile_time(benchmark):
    result = benchmark(_compile_once)
    assert result.func is not None
    assert result.intrinsic.name == "x86.avx512.vpdpbusd"


def test_validation_engine_speed(benchmark):
    compiled = _compile_once(VALIDATE_PARAMS)
    buffers = alloc_buffers(compiled.func, np.random.default_rng(0))

    def _validate():
        return VectorizedEngine(compiled.func).run(
            {t: a.copy() for t, a in buffers.items()}
        )

    out = benchmark(_validate)
    assert out.shape == compiled.func.output.shape


if __name__ == "__main__":
    main()
