"""Compilation-cost benchmark: how long UNIT's own pipeline takes per operator.

Not a paper figure, but useful for tracking the reproduction itself: the
Inspector + Rewriter + lowering + instruction injection for a realistic
convolution should stay in the milliseconds range.
"""

from repro.core import tensorize
from repro.rewriter import CpuTuningConfig
from repro.workloads import Conv2DParams, conv2d_nchwc


def _compile_once():
    params = Conv2DParams(
        in_channels=64, in_height=14, in_width=14, out_channels=128, kernel=3, name="bench"
    )
    conv = conv2d_nchwc(params)
    return tensorize(conv, "x86.avx512.vpdpbusd", config=CpuTuningConfig())


def test_tensorize_compile_time(benchmark):
    result = benchmark(_compile_once)
    assert result.func is not None
    assert result.intrinsic.name == "x86.avx512.vpdpbusd"
