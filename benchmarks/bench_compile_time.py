"""Compilation + validation cost benchmark for the reproduction's own pipeline.

Not a paper figure, but the repository's perf trajectory: it measures

* **compile**: how long UNIT's Inspector + Rewriter + lowering + instruction
  injection takes for a realistic convolution, cold (first call, no memo
  caches) and warm (expression interning and simplify/extract_linear memos
  populated);
* **validation**: how long numerically validating the tensorized kernel
  takes through the scalar reference interpreter vs the vectorized execution
  engine (the hot path of schedule verification and tuning-trial
  validation), asserting the engine is bit-identical and recording the
  speedup;
* **table1**: engine-only execution of full-size Table I layers (the scalar
  interpreter would need minutes each);
* **expr_cache**: hit rates of the expression-level memo caches
  (``simplify`` / ``extract_linear`` / ``structural_equal``).

Run standalone to write ``BENCH_compile_time.json`` (the CI smoke job
uploads it as an artifact)::

    PYTHONPATH=src python benchmarks/bench_compile_time.py [--quick] [-o OUT]

or under pytest-benchmark along with the figure benchmarks::

    pytest benchmarks/bench_compile_time.py --benchmark-only
"""

from __future__ import annotations

import argparse
import json
import time

import numpy as np

from repro.core import tensorize
from repro.dsl.expr import expr_cache_stats, reset_expr_cache_stats
from repro.rewriter import CpuTuningConfig
from repro.tir import Interpreter, VectorizedEngine, alloc_buffers
from repro.workloads import Conv2DParams, conv2d_nchwc
from repro.workloads.table1 import TABLE1_LAYERS

# The compile-phase workload (realistic mid-network layer).
COMPILE_PARAMS = Conv2DParams(
    in_channels=64, in_height=14, in_width=14, out_channels=128, kernel=3, name="bench"
)
# The validation-phase workload is smaller: it is executed through the
# *scalar* interpreter too, whose cost grows with every MAC.
VALIDATE_PARAMS = Conv2DParams(
    in_channels=16, in_height=10, in_width=10, out_channels=32, kernel=3, name="val"
)


def _compile_once(params: Conv2DParams = COMPILE_PARAMS):
    conv = conv2d_nchwc(params)
    return tensorize(conv, "x86.avx512.vpdpbusd", config=CpuTuningConfig())


def bench_compile() -> dict:
    reset_expr_cache_stats()
    t0 = time.perf_counter()
    _compile_once()
    cold = time.perf_counter() - t0
    warm_times = []
    for _ in range(3):
        t0 = time.perf_counter()
        _compile_once()
        warm_times.append(time.perf_counter() - t0)
    warm = min(warm_times)
    return {
        "workload": COMPILE_PARAMS.describe(),
        "cold_s": cold,
        "warm_s": warm,
        "warm_speedup": cold / warm if warm else float("inf"),
    }


def bench_validation() -> dict:
    result = _compile_once(VALIDATE_PARAMS)
    buffers = alloc_buffers(result.func, np.random.default_rng(0))

    t0 = time.perf_counter()
    ref = Interpreter(result.func).run({t: a.copy() for t, a in buffers.items()})
    scalar_s = time.perf_counter() - t0

    # Warm-up pass (numpy internal caches), then a timed pass on a fresh
    # engine so the reported stats cover exactly one execution.
    VectorizedEngine(result.func).run({t: a.copy() for t, a in buffers.items()})
    engine = VectorizedEngine(result.func)
    t0 = time.perf_counter()
    got = engine.run({t: a.copy() for t, a in buffers.items()})
    vector_s = time.perf_counter() - t0

    return {
        "workload": VALIDATE_PARAMS.describe(),
        "scalar_s": scalar_s,
        "vector_s": vector_s,
        "speedup": scalar_s / vector_s if vector_s else float("inf"),
        "bit_identical": bool(np.array_equal(ref, got)),
        "engine": {
            "vector_nests": engine.stats.vector_nests,
            "fallback_nests": engine.stats.fallback_nests,
            "intrinsic_rounds": engine.stats.intrinsic_rounds,
            "intrinsic_points": engine.stats.intrinsic_points,
        },
    }


def bench_table1_engine(limit: int) -> list:
    """Engine-only execution of full-size Table I layers."""
    rows = []
    for index, params in enumerate(TABLE1_LAYERS[:limit], start=1):
        result = _compile_once(params)
        buffers = alloc_buffers(result.func, np.random.default_rng(index))
        engine = VectorizedEngine(result.func)
        t0 = time.perf_counter()
        engine.run(buffers)
        rows.append(
            {
                "layer": index,
                "params": params.describe(),
                "macs": params.macs,
                "vector_s": time.perf_counter() - t0,
                "fallback_nests": engine.stats.fallback_nests,
            }
        )
    return rows


def main(argv=None) -> dict:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="skip the Table I sweep")
    parser.add_argument("-o", "--output", default="BENCH_compile_time.json")
    parser.add_argument(
        "--table1-layers", type=int, default=4, help="how many Table I layers to run"
    )
    args = parser.parse_args(argv)

    report = {
        "benchmark": "compile_time",
        "compile": bench_compile(),
        "validation": bench_validation(),
    }
    if not args.quick:
        report["table1"] = bench_table1_engine(args.table1_layers)
    report["expr_cache"] = expr_cache_stats().as_dict()

    with open(args.output, "w") as handle:
        json.dump(report, handle, indent=2)

    comp, val = report["compile"], report["validation"]
    print(f"compile   cold {comp['cold_s'] * 1e3:8.1f} ms")
    print(
        f"compile   warm {comp['warm_s'] * 1e3:8.1f} ms"
        f"   ({comp['warm_speedup']:.1f}x)"
    )
    print(f"validate scalar {val['scalar_s'] * 1e3:7.1f} ms")
    print(
        f"validate vector {val['vector_s'] * 1e3:7.1f} ms"
        f"   ({val['speedup']:.1f}x, bit_identical={val['bit_identical']})"
    )
    for row in report.get("table1", []):
        print(
            f"table1 layer{row['layer']:<2} {row['macs'] / 1e6:8.1f} MMACs "
            f"engine {row['vector_s'] * 1e3:7.1f} ms"
        )
    cache = report["expr_cache"]
    print(
        f"expr caches: simplify {cache['simplify_hit_rate']:.0%} hits, "
        f"linear {cache['linear_hit_rate']:.0%} hits, "
        f"equal fast-path {cache['equal_fast_path_rate']:.0%}"
    )
    assert val["bit_identical"], "engine output diverged from the interpreter"
    assert val["speedup"] >= 5.0, (
        f"validation speedup {val['speedup']:.1f}x below the 5x floor"
    )
    print(f"wrote {args.output}")
    return report


def test_tensorize_compile_time(benchmark):
    result = benchmark(_compile_once)
    assert result.func is not None
    assert result.intrinsic.name == "x86.avx512.vpdpbusd"


def test_validation_engine_speed(benchmark):
    compiled = _compile_once(VALIDATE_PARAMS)
    buffers = alloc_buffers(compiled.func, np.random.default_rng(0))

    def _validate():
        return VectorizedEngine(compiled.func).run(
            {t: a.copy() for t, a in buffers.items()}
        )

    out = benchmark(_validate)
    assert out.shape == compiled.func.output.shape


if __name__ == "__main__":
    main()
