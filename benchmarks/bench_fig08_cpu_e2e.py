"""Figure 8: quantized end-to-end inference on Intel VNNI (bs = 1).

Paper headline: UNIT is ~1.3x faster than MXNet+oneDNN and ~1.18x faster than
hand-written TVM VNNI schedules (geomean over nine models).
"""

from repro.core.experiments import figure8_cpu_end_to_end

from .conftest import print_table


def test_figure8_cpu_end_to_end(benchmark):
    rows = benchmark.pedantic(figure8_cpu_end_to_end, rounds=1, iterations=1)
    print_table(
        "Figure 8 — CPU end-to-end (relative to MXNet+oneDNN = 1.0)",
        rows,
        ["model", "mxnet_onednn_ms", "tvm_ms", "unit_ms", "rel_tvm", "rel_unit", "unit_vs_tvm"],
    )
    geo = rows[-1]
    assert geo["rel_unit"] > 1.0
    assert geo["unit_vs_tvm"] > 1.0
