"""Setup shim so that editable installs work without the ``wheel`` package.

The ``native`` extra pulls in numba for the JIT path of the tiered native
execution backend (``repro.tir.backend``).  Without it the backend uses the
host C compiler when one exists and otherwise stays on the vectorized tier —
the extra is an acceleration, never a requirement.
"""

from setuptools import setup

setup(
    extras_require={
        "native": ["numba"],
    },
)
