"""Hand-written TVM schedule baselines (Figures 8 and 12).

Two families of TVM baselines appear in the evaluation:

* **TVM-Manual** — manually written schedules that use the tensorized
  instruction through explicit intrinsics (`tensorize` with a hand-declared
  lowering rule): Intel VNNI schedules for Figure 8 and ARM DOT schedules for
  Figure 12.  These use the same instruction as UNIT but a fixed, non-searched
  loop organisation, so they run through the same mechanistic CPU model with
  the first tuning pair and a schedule-quality discount (a hand schedule
  cannot specialise to every layer shape).
* **TVM-NEON** — plain NEON code without the DOT instruction: int8 operands
  are widened to int32 before the multiply-accumulate, costing both the
  horizontal-reduction benefit and extra instructions.
"""

from __future__ import annotations

from ..hwsim.cost import CostBreakdown
from ..hwsim.cpu import CpuKernelModel
from ..hwsim.machine import CASCADE_LAKE, GRAVITON2, CpuSpec
from ..isa.registry import get_intrinsic
from ..rewriter.cpu_tuner import CpuTuningConfig
from ..workloads.conv2d import Conv2DParams
from ..workloads.conv3d import Conv3DParams
from ..workloads.dense import DenseParams

__all__ = ["TvmManualModel", "TvmNeonModel"]

# The fixed configuration a hand-written schedule typically hard-codes: the
# recommended default pair, never re-searched per layer.
_MANUAL_CONFIG = CpuTuningConfig(parallel_extent=3000, unroll_limit=8)


class TvmManualModel:
    """Hand-written tensorized TVM schedules (VNNI on x86, DOT on ARM)."""

    def __init__(self, machine: CpuSpec, intrinsic_name: str, quality: float = 0.82) -> None:
        self.machine = machine
        self.intrin = get_intrinsic(intrinsic_name)
        self.quality = quality
        self.model = CpuKernelModel(machine, self.intrin, per_call_overhead_us=2.0)

    @classmethod
    def for_x86(cls) -> "TvmManualModel":
        return cls(CASCADE_LAKE, "x86.avx512.vpdpbusd", quality=0.87)

    @classmethod
    def for_arm(cls) -> "TvmManualModel":
        return cls(GRAVITON2, "arm.neon.sdot", quality=0.90)

    def _discount(self, cost: CostBreakdown) -> CostBreakdown:
        return cost.scaled(1.0 / self.quality)

    def conv2d_latency(self, params: Conv2DParams) -> CostBreakdown:
        return self._discount(self.model.conv2d_latency(params, _MANUAL_CONFIG))

    def conv3d_latency(self, params: Conv3DParams) -> CostBreakdown:
        return self._discount(self.model.conv3d_latency(params, _MANUAL_CONFIG))

    def dense_latency(self, params: DenseParams) -> CostBreakdown:
        return self._discount(self.model.dense_latency(params, _MANUAL_CONFIG))

    def elementwise_latency(self) -> CostBreakdown:
        # The TVM graph compiler fuses elementwise operators; only a small
        # dispatch cost remains.
        return CostBreakdown(seconds=1.2e-6, overhead_seconds=1.2e-6)


class TvmNeonModel:
    """TVM compiling to plain NEON (no DOT instruction) on the ARM CPU.

    Every 4-lane MAC needs the int8 operands widened to int32 first, which
    costs roughly two extra vector instructions per multiply-accumulate.
    """

    def __init__(self, machine: CpuSpec = GRAVITON2, widen_overhead: float = 3.0) -> None:
        self.machine = machine
        self.intrin = get_intrinsic("arm.neon.mla.int8.widened")
        self.model = CpuKernelModel(
            machine,
            self.intrin,
            instruction_overhead_factor=widen_overhead,
            per_call_overhead_us=2.0,
        )
        self.config = CpuTuningConfig()

    def conv2d_latency(self, params: Conv2DParams) -> CostBreakdown:
        return self.model.conv2d_latency(params, self.config)

    def conv3d_latency(self, params: Conv3DParams) -> CostBreakdown:
        return self.model.conv3d_latency(params, self.config)

    def dense_latency(self, params: DenseParams) -> CostBreakdown:
        return self.model.dense_latency(params, self.config)

    def elementwise_latency(self) -> CostBreakdown:
        return CostBreakdown(seconds=1.2e-6, overhead_seconds=1.2e-6)
