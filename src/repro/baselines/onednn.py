"""Intel oneDNN baseline cost model (the CPU library baseline of Figures 8/10/13).

oneDNN provides expert-written VNNI kernels for the standard convolution and
inner-product primitives.  At batch size 1 its efficiency is limited by the
scarce parallelism of a single image (the paper's motivation for evaluating
N = 1) and by the per-call overheads of primitive creation and memory-format
reorders.  Layers with strided or unusual shapes are handled by dedicated
kernels, so — unlike UNIT's generic schedule — oneDNN does not fall off a
cliff on Table I layers 1 and 4; that asymmetry is what produces the paper's
crossover in Figure 10.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..hwsim.cost import CostBreakdown
from ..hwsim.machine import CASCADE_LAKE, CpuSpec
from ..workloads.conv2d import Conv2DParams
from ..workloads.conv3d import Conv3DParams
from ..workloads.dense import DenseParams
from .library import LibraryProfile, conv_bytes, roofline_latency

__all__ = ["OneDnnModel"]


def _vnni_peak_macs(machine: CpuSpec) -> float:
    # 2 VNNI issues/cycle/core, 64 MACs per instruction.
    return machine.cores * 2.0 * 64.0 * machine.frequency_ghz * 1e9


class OneDnnModel:
    """Latency model of oneDNN int8 (VNNI) primitives."""

    def __init__(self, machine: CpuSpec = CASCADE_LAKE) -> None:
        self.machine = machine
        peak = _vnni_peak_macs(machine)
        self.conv_profile = LibraryProfile(
            name="oneDNN int8 conv",
            peak_macs_per_second=peak,
            efficiency=0.50,
            small_layer_efficiency=0.18,
            strided_efficiency=0.48,
            per_call_overhead_us=8.0,
            memory_bandwidth_gbps=machine.dram_gbps * 0.8,
        )
        self.dense_profile = LibraryProfile(
            name="oneDNN int8 inner-product",
            peak_macs_per_second=peak,
            efficiency=0.36,
            small_layer_efficiency=0.12,
            per_call_overhead_us=9.0,
            memory_bandwidth_gbps=machine.dram_gbps * 0.8,
        )
        # 3-D convolutions are far less tuned in the library (Section VI-C's
        # point): the blocked 3-D kernels fall back to a generic driver.
        self.conv3d_profile = LibraryProfile(
            name="oneDNN int8 conv3d",
            peak_macs_per_second=peak,
            efficiency=0.36,
            small_layer_efficiency=0.14,
            per_call_overhead_us=14.0,
            memory_bandwidth_gbps=machine.dram_gbps * 0.8,
        )

    def conv2d_latency(self, params: Conv2DParams) -> CostBreakdown:
        return roofline_latency(
            self.conv_profile,
            macs=float(params.macs),
            bytes_moved=conv_bytes(params, 1, 4),
            parallel_work=float(params.out_height * params.out_width * params.out_channels / 16),
            stride=params.stride,
            parallelism_threshold=8192.0,
        )

    def conv3d_latency(self, params: Conv3DParams) -> CostBreakdown:
        bytes_moved = (
            params.in_depth * params.in_height * params.in_width * params.in_channels
            + params.kernel**3 * params.in_channels * params.out_channels
            + params.out_depth * params.out_height * params.out_width * params.out_channels * 4
        )
        return roofline_latency(
            self.conv3d_profile,
            macs=float(params.macs),
            bytes_moved=float(bytes_moved),
            parallel_work=float(
                params.out_depth * params.out_height * params.out_width * params.out_channels / 16
            ),
            stride=params.stride,
        )

    def dense_latency(self, params: DenseParams) -> CostBreakdown:
        bytes_moved = (
            params.batch * params.in_features
            + params.in_features * params.out_features
            + params.batch * params.out_features * 4
        )
        return roofline_latency(
            self.dense_profile,
            macs=float(params.macs),
            bytes_moved=float(bytes_moved),
            parallel_work=float(params.batch * params.out_features / 16),
        )
