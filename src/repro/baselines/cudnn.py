"""Nvidia cuDNN baseline cost models (Figures 1 and 9/11).

Three kernel families are modelled:

* ``fp32`` — single precision on the CUDA cores (the Figure 1 reference);
* ``fp16`` *without* Tensor Cores — fp16 storage but no mixed-precision
  instruction, so every multiply-accumulate pays casting overhead; this is the
  configuration that is *slower* than fp32 in Figure 1;
* ``fp16 Tensor Core`` — cuDNN's hand-tuned WMMA kernels, the baseline UNIT is
  compared against in Figures 9 and 11.  cuDNN ships dedicated kernels for
  strided convolutions, which is why Table I layers 1 and 15 stay ahead of
  UNIT's generic schedule in Figure 11.
"""

from __future__ import annotations

from ..hwsim.cost import CostBreakdown
from ..hwsim.machine import V100, GpuSpec
from ..workloads.conv2d import Conv2DParams
from ..workloads.dense import DenseParams
from .library import LibraryProfile, conv_bytes, roofline_latency

__all__ = ["CuDnnModel"]


class CuDnnModel:
    """Latency model of cuDNN convolution/GEMM kernels on a V100."""

    def __init__(self, machine: GpuSpec = V100) -> None:
        self.machine = machine
        tc_peak_macs = machine.tensor_fp16_tflops * 1e12 / 2.0
        fp32_peak_macs = machine.fp32_tflops * 1e12 / 2.0
        fp16_peak_macs = machine.fp16_simd_tflops * 1e12 / 2.0
        self.tensor_core_profile = LibraryProfile(
            name="cuDNN fp16 TensorCore conv",
            peak_macs_per_second=tc_peak_macs,
            efficiency=0.26,
            small_layer_efficiency=0.06,
            strided_efficiency=0.38,
            per_call_overhead_us=5.0,
            memory_bandwidth_gbps=machine.dram_gbps * 0.8,
        )
        self.fp32_profile = LibraryProfile(
            name="cuDNN fp32 conv",
            peak_macs_per_second=fp32_peak_macs,
            efficiency=0.52,
            small_layer_efficiency=0.16,
            strided_efficiency=0.50,
            per_call_overhead_us=7.0,
            memory_bandwidth_gbps=machine.dram_gbps * 0.8,
        )
        # fp16 without Tensor Cores: nominally twice the fp32 rate, but the
        # casting between storage and accumulation types erases the benefit
        # (the Figure 1 observation).  Modelled as a low sustained efficiency.
        self.fp16_no_tc_profile = LibraryProfile(
            name="cuDNN fp16 conv (no TensorCore)",
            peak_macs_per_second=fp16_peak_macs,
            efficiency=0.19,
            small_layer_efficiency=0.07,
            strided_efficiency=0.18,
            per_call_overhead_us=7.0,
            memory_bandwidth_gbps=machine.dram_gbps * 0.8,
        )

    # -- convolutions ---------------------------------------------------------
    def _conv(self, profile: LibraryProfile, params: Conv2DParams, in_bytes: int) -> CostBreakdown:
        return roofline_latency(
            profile,
            macs=float(params.macs),
            bytes_moved=conv_bytes(params, in_bytes, 2 if in_bytes == 2 else 4),
            parallel_work=float(
                params.out_height * params.out_width * params.out_channels / 256
            ),
            stride=params.stride,
            parallelism_threshold=600.0,
        )

    def conv2d_tensor_core(self, params: Conv2DParams) -> CostBreakdown:
        return self._conv(self.tensor_core_profile, params, in_bytes=2)

    def conv2d_fp32(self, params: Conv2DParams) -> CostBreakdown:
        return self._conv(self.fp32_profile, params, in_bytes=4)

    def conv2d_fp16_no_tensor_core(self, params: Conv2DParams) -> CostBreakdown:
        return self._conv(self.fp16_no_tc_profile, params, in_bytes=2)

    # -- dense ------------------------------------------------------------------
    def _dense(self, profile: LibraryProfile, params: DenseParams, in_bytes: int) -> CostBreakdown:
        bytes_moved = (
            params.batch * params.in_features * in_bytes
            + params.in_features * params.out_features * in_bytes
            + params.batch * params.out_features * 4
        )
        return roofline_latency(
            profile,
            macs=float(params.macs),
            bytes_moved=float(bytes_moved),
            parallel_work=float(params.batch * params.out_features / 256),
            parallelism_threshold=600.0,
        )

    def dense_tensor_core(self, params: DenseParams) -> CostBreakdown:
        return self._dense(self.tensor_core_profile, params, in_bytes=2)

    def dense_fp32(self, params: DenseParams) -> CostBreakdown:
        return self._dense(self.fp32_profile, params, in_bytes=4)

    def dense_fp16_no_tensor_core(self, params: DenseParams) -> CostBreakdown:
        return self._dense(self.fp16_no_tc_profile, params, in_bytes=2)
