"""Framework-level baselines: MXNet + oneDNN and TVM + cuDNN end-to-end runners.

The end-to-end figures compare UNIT against "the best available solution"
built on the vendor library: MXNet with oneDNN on the CPU (Figure 8) and TVM
with cuDNN offloading on the GPU (Figure 9).  On top of the per-operator
library latencies these add framework behaviour: per-operator dispatch
overhead and — for MXNet — the absence of the operator fusion that a compiler
pipeline performs, so the elementwise operators that UNIT fuses into the
convolutions remain separate kernel launches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..hwsim.cost import CostBreakdown
from .cudnn import CuDnnModel
from .onednn import OneDnnModel

__all__ = ["FrameworkOverheads", "MxnetOneDnnRunner", "TvmCudnnRunner"]


def _memoized(session, kind: str, params, machine: str, space: str, compute):
    """Route a library latency through a tuning session's cache, if present.

    Library baselines have no schedule space to search, but caching their
    per-operator costs next to the UNIT records lets one warm session drive a
    whole figure (baseline bars included) without recomputation.
    """
    if session is None:
        return compute()
    from ..rewriter.records import TuningKey, params_fingerprint

    key = TuningKey(
        kind=kind,
        params=params_fingerprint(params),
        intrinsic="",
        machine=machine,
        space=space,
    )
    return session.memoize(key, compute)


@dataclass(frozen=True)
class FrameworkOverheads:
    """Per-operator overheads added by the host framework."""

    per_op_dispatch_us: float
    elementwise_op_us: float  # cost of one unfused elementwise/normalisation op


class MxnetOneDnnRunner:
    """MXNet with the oneDNN backend (the Figure 8 CPU baseline)."""

    def __init__(
        self,
        onednn: Optional[OneDnnModel] = None,
        overheads: FrameworkOverheads = FrameworkOverheads(
            per_op_dispatch_us=1.5, elementwise_op_us=2.0
        ),
        session=None,
    ) -> None:
        self.onednn = onednn or OneDnnModel()
        self.overheads = overheads
        self.session = session

    def _library(self, kind: str, params, compute) -> CostBreakdown:
        return _memoized(
            self.session, kind, params, self.onednn.machine.name, "library:onednn", compute
        )

    def conv2d_latency(self, params) -> CostBreakdown:
        cost = self._library("conv2d", params, lambda: self.onednn.conv2d_latency(params))
        return _with_dispatch(cost, self.overheads.per_op_dispatch_us)

    def dense_latency(self, params) -> CostBreakdown:
        cost = self._library("dense", params, lambda: self.onednn.dense_latency(params))
        return _with_dispatch(cost, self.overheads.per_op_dispatch_us)

    def elementwise_latency(self) -> CostBreakdown:
        us = self.overheads.elementwise_op_us + self.overheads.per_op_dispatch_us
        return CostBreakdown(seconds=us * 1e-6, overhead_seconds=us * 1e-6)


class TvmCudnnRunner:
    """TVM graph runtime offloading convolutions to cuDNN (the Figure 9 baseline).

    TVM fuses the elementwise operators, so unlike MXNet only a small graph
    dispatch cost remains per fused operator.
    """

    def __init__(
        self,
        cudnn: Optional[CuDnnModel] = None,
        per_op_dispatch_us: float = 3.0,
        mode: str = "tensor_core",
        session=None,
    ) -> None:
        self.cudnn = cudnn or CuDnnModel()
        self.per_op_dispatch_us = per_op_dispatch_us
        if mode not in ("tensor_core", "fp32", "fp16_no_tc"):
            raise ValueError(f"unknown cuDNN mode {mode!r}")
        self.mode = mode
        self.session = session

    def _library(self, kind: str, params, compute) -> CostBreakdown:
        return _memoized(
            self.session,
            kind,
            params,
            self.cudnn.machine.name,
            f"library:cudnn:{self.mode}",
            compute,
        )

    def conv2d_latency(self, params) -> CostBreakdown:
        compute = {
            "tensor_core": self.cudnn.conv2d_tensor_core,
            "fp32": self.cudnn.conv2d_fp32,
            "fp16_no_tc": self.cudnn.conv2d_fp16_no_tensor_core,
        }[self.mode]
        cost = self._library("conv2d", params, lambda: compute(params))
        return _with_dispatch(cost, self.per_op_dispatch_us)

    def dense_latency(self, params) -> CostBreakdown:
        compute = {
            "tensor_core": self.cudnn.dense_tensor_core,
            "fp32": self.cudnn.dense_fp32,
            "fp16_no_tc": self.cudnn.dense_fp16_no_tensor_core,
        }[self.mode]
        cost = self._library("dense", params, lambda: compute(params))
        return _with_dispatch(cost, self.per_op_dispatch_us)

    def elementwise_latency(self) -> CostBreakdown:
        # Fused into the producing operator by the TVM graph compiler.
        return CostBreakdown(seconds=0.0)


def _with_dispatch(cost: CostBreakdown, dispatch_us: float) -> CostBreakdown:
    extra = dispatch_us * 1e-6
    return CostBreakdown(
        seconds=cost.seconds + extra,
        compute_seconds=cost.compute_seconds,
        memory_seconds=cost.memory_seconds,
        overhead_seconds=cost.overhead_seconds + extra,
        detail=dict(cost.detail),
    )
