"""Common machinery for vendor-library baseline cost models.

The paper's baselines (Intel oneDNN, Nvidia cuDNN, and the hand-written TVM
schedules) are *fixed* implementations: expert-tuned kernels behind a library
call.  They are modelled here as efficiency profiles — a fraction of the
machine's peak MAC throughput achieved by the library for a given operator
shape, plus a per-call overhead (kernel selection, layout reorders, framework
dispatch).  The profiles are calibrated so the relative behaviour reported in
the paper's figures (who wins, by roughly what factor, and where the
crossovers are) is reproduced; see EXPERIMENTS.md for the calibration targets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..hwsim.cost import CostBreakdown
from ..workloads.conv2d import Conv2DParams

__all__ = ["LibraryProfile", "roofline_latency"]


@dataclass(frozen=True)
class LibraryProfile:
    """An efficiency profile of a vendor library kernel family."""

    name: str
    peak_macs_per_second: float
    efficiency: float  # fraction of peak sustained on typical layers
    per_call_overhead_us: float
    memory_bandwidth_gbps: float
    small_layer_efficiency: float = None  # efficiency when parallelism is scarce
    strided_efficiency: float = None  # efficiency for stride > 1 kernels

    def __post_init__(self):
        if self.small_layer_efficiency is None:
            object.__setattr__(self, "small_layer_efficiency", self.efficiency * 0.7)
        if self.strided_efficiency is None:
            object.__setattr__(self, "strided_efficiency", self.efficiency)


def roofline_latency(
    profile: LibraryProfile,
    macs: float,
    bytes_moved: float,
    parallel_work: float = 1e9,
    stride: int = 1,
    parallelism_threshold: float = 4096.0,
) -> CostBreakdown:
    """Latency of one library call under a roofline + overhead model.

    ``parallel_work`` is the amount of independent work the library can
    distribute (e.g. output rows × output channels); libraries lose efficiency
    when it is scarce at batch size 1.
    """
    efficiency = profile.efficiency
    if parallel_work < parallelism_threshold:
        shortage = max(parallel_work, 1.0) / parallelism_threshold
        efficiency = (
            profile.small_layer_efficiency
            + (profile.efficiency - profile.small_layer_efficiency) * shortage
        )
    if stride > 1:
        # Vendor libraries ship kernels specialised for strided convolutions;
        # their sustained efficiency is pinned by the profile rather than the
        # generic small-layer interpolation.
        efficiency = profile.strided_efficiency
    compute_seconds = macs / (profile.peak_macs_per_second * max(efficiency, 1e-3))
    memory_seconds = bytes_moved / (profile.memory_bandwidth_gbps * 1e9)
    overhead_seconds = profile.per_call_overhead_us * 1e-6
    return CostBreakdown(
        seconds=max(compute_seconds, memory_seconds) + overhead_seconds,
        compute_seconds=compute_seconds,
        memory_seconds=memory_seconds,
        overhead_seconds=overhead_seconds,
        detail={"efficiency": efficiency, "macs": macs},
    )


def conv_bytes(params: Conv2DParams, in_bytes_per_elem: int, out_bytes_per_elem: int) -> float:
    """Approximate bytes moved by one convolution call."""
    inputs = params.in_height * params.in_width * params.in_channels * in_bytes_per_elem
    weights = (
        params.kernel * params.kernel * params.in_channels * params.out_channels
    ) * in_bytes_per_elem
    outputs = params.out_height * params.out_width * params.out_channels * out_bytes_per_elem
    return float(inputs + weights + outputs)
