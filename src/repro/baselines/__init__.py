"""``repro.baselines`` — cost models of the evaluation's comparison points.

Intel oneDNN, Nvidia cuDNN (fp32 / fp16-without-TensorCore / fp16-TensorCore),
MXNet+oneDNN and TVM+cuDNN framework runners, and the hand-written TVM
schedules (VNNI manual, ARM DOT manual, plain NEON).
"""

from .cudnn import CuDnnModel
from .frameworks import FrameworkOverheads, MxnetOneDnnRunner, TvmCudnnRunner
from .library import LibraryProfile, roofline_latency
from .onednn import OneDnnModel
from .tvm_baseline import TvmManualModel, TvmNeonModel

__all__ = [
    "LibraryProfile",
    "roofline_latency",
    "OneDnnModel",
    "CuDnnModel",
    "MxnetOneDnnRunner",
    "TvmCudnnRunner",
    "FrameworkOverheads",
    "TvmManualModel",
    "TvmNeonModel",
]
