"""The tuning service's wire protocol: versioned, length-prefixed JSON.

One message is a 4-byte big-endian length prefix followed by that many bytes
of UTF-8 JSON.  Every message — request or response — carries the protocol
version and the record schema version
(:data:`~repro.rewriter.records.SCHEMA_VERSION`), mirroring how the on-disk
store versions its lines: a client built against a different protocol or
record schema is *rejected cleanly* with a ``version_mismatch`` error
response instead of being half-understood.

Requests are ``{"op": <name>, ...}``; the operations are

========  ==================================================================
``ping``     liveness probe, echoes the server's versions
``get``      look up one :class:`~repro.rewriter.records.TuningKey`
``put``      publish one :class:`~repro.rewriter.records.TuningRecord`
``tune``     ensure a key is tuned *server-side* (coalesced fleet-wide)
``stats``    server / session / store / coalescing counters
``gc``       run :meth:`ShardedTuningStore.evict` on the server's store
``warm``     pre-tune a named sweep (Table I slice or a model-zoo model)
``shutdown`` stop serving after the in-flight requests drain
``sync``     anti-entropy pull: raw shard lines appended since given offsets
``health``   role, replication lag, inflight depth (the failover probe)
========  ==================================================================

Responses are ``{"ok": true, ...}`` or ``{"ok": false, "error": msg,
"code": <machine-readable reason>}``.  Keys and records travel in their
existing JSON forms (``TuningKey.to_json`` / ``TuningRecord.to_json``), so
the wire format and the shard files agree on what a record is — including
the cost-model fingerprint check: a record tuned under a different cost
model is as unservable over TCP as it is from disk.
"""

from __future__ import annotations

import json
import socket
import struct
from typing import Dict, Optional, Tuple

from ..rewriter.records import SCHEMA_VERSION
from ..testing import faults

__all__ = [
    "PROTOCOL_VERSION",
    "MAX_MESSAGE_BYTES",
    "ProtocolError",
    "ConnectionClosed",
    "send_message",
    "recv_message",
    "request",
    "ok_response",
    "error_response",
    "check_versions",
]

# Version of the framing + request/response envelope.  Bump on any change a
# peer from the previous release could misread.
PROTOCOL_VERSION = 1

# A frame larger than this is a corrupt length prefix or an abusive peer,
# not a tuning record; reject it before allocating the buffer.
MAX_MESSAGE_BYTES = 64 * 1024 * 1024

_LENGTH = struct.Struct(">I")

# "sync" and "health" ride on the same envelope version: a v1 peer that
# predates them rejects the unknown op cleanly, which is exactly the
# failure mode replication and failover are built to tolerate.
OPS = ("ping", "get", "put", "tune", "stats", "gc", "warm", "shutdown", "sync", "health")


class ProtocolError(RuntimeError):
    """A malformed, oversized or version-incompatible message."""


class ConnectionClosed(ConnectionError):
    """The peer closed the connection (cleanly between frames, or torn)."""


def _versioned(payload: Dict) -> Dict:
    payload.setdefault("protocol", PROTOCOL_VERSION)
    payload.setdefault("schema", SCHEMA_VERSION)
    return payload


def request(op: str, **fields) -> Dict:
    """Build a versioned request envelope for ``op``."""
    if op not in OPS:
        raise ValueError(f"unknown op {op!r} (expected one of {OPS})")
    return _versioned({"op": op, **fields})


def ok_response(**fields) -> Dict:
    return _versioned({"ok": True, **fields})


def error_response(message: str, code: str = "error") -> Dict:
    return _versioned({"ok": False, "error": message, "code": code})


def check_versions(message: Dict) -> Optional[Tuple[str, str]]:
    """``(error message, code)`` when ``message`` is version-incompatible.

    The one definition of compatibility used by both peers: the protocol
    version gates the envelope, the record schema version gates the payloads
    (a ``put`` from a client with a different record schema would poison the
    store; a ``get`` response it couldn't decode would poison the client).
    """
    protocol = message.get("protocol")
    if protocol != PROTOCOL_VERSION:
        return (
            f"protocol version {protocol!r} is not {PROTOCOL_VERSION}",
            "version_mismatch",
        )
    schema = message.get("schema")
    if schema != SCHEMA_VERSION:
        return (
            f"record schema version {schema!r} is not {SCHEMA_VERSION}",
            "version_mismatch",
        )
    return None


# -- framing -------------------------------------------------------------------

def send_message(sock: socket.socket, message: Dict) -> None:
    """Write one length-prefixed JSON frame."""
    body = json.dumps(message, sort_keys=True).encode("utf-8")
    if len(body) > MAX_MESSAGE_BYTES:
        raise ProtocolError(f"message of {len(body)} bytes exceeds the frame limit")
    frame = _LENGTH.pack(len(body)) + body
    faults.fire("protocol.send", sock=sock, frame=frame, message=message)
    sock.sendall(frame)


def _recv_exact(sock: socket.socket, count: int, *, at_frame_start: bool) -> bytes:
    chunks = []
    remaining = count
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            if at_frame_start and remaining == count:
                raise ConnectionClosed("peer closed the connection")
            raise ProtocolError(
                f"connection closed mid-frame ({count - remaining}/{count} bytes)"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_message(sock: socket.socket) -> Dict:
    """Read one frame; raises :class:`ConnectionClosed` on clean EOF between
    frames and :class:`ProtocolError` on torn or malformed frames."""
    faults.fire("protocol.recv", sock=sock)
    header = _recv_exact(sock, _LENGTH.size, at_frame_start=True)
    (length,) = _LENGTH.unpack(header)
    if length > MAX_MESSAGE_BYTES:
        raise ProtocolError(f"frame of {length} bytes exceeds the frame limit")
    body = _recv_exact(sock, length, at_frame_start=False)
    try:
        message = json.loads(body.decode("utf-8"))
    except ValueError as exc:
        raise ProtocolError(f"undecodable frame: {exc}") from exc
    if not isinstance(message, dict):
        raise ProtocolError(f"frame is not an object: {type(message).__name__}")
    return message
