"""The tuning daemon: one warm store, many machines, every key searched once.

:class:`TuningService` is a threaded TCP server wrapping one
:class:`~repro.rewriter.store.ShardedTuningStore` and one
:class:`~repro.rewriter.session.TuningSession`.  Each client connection gets
a handler thread; searches therefore run concurrently across *distinct*
keys, while three mechanisms keep the fleet from duplicating work:

* **read-through** — a ``tune`` or ``get`` first consults the session cache
  and the shard files, so anything ever tuned (by this daemon, a previous
  incarnation, or a :class:`~repro.rewriter.workers.DistributedTuner` run
  into the same store directory) is served without a single trial;
* **in-flight coalescing** — concurrent ``tune`` requests for the same
  :class:`~repro.rewriter.records.TuningKey` share one search: the first
  requester leads it, the rest park on an event and receive the *same*
  record, so each unique key is searched at most once fleet-wide;
* **speculative tuning** — a ``tune`` request may name the sweep its key
  belongs to (a model-zoo model or ``"table1"``); the remaining layers of
  that sweep are queued and pre-tuned by a background thread whenever no
  foreground request is in flight, so a client compiling a model layer by
  layer finds layers N+1.. already warm.

Server-side searches reuse the :mod:`repro.rewriter.workers` machinery:
the requested key is inverted back into a
:class:`~repro.rewriter.workers.TuningTask` (:func:`task_from_key`) and run
through :func:`~repro.rewriter.workers.run_task` with a result-deterministic
strategy, so winners are bit-identical to a single-process local sweep.
Keys that cannot round-trip (custom candidate lists, approximate-strategy
namespaces, library baselines) are declined with ``code="untunable"`` and
the client searches locally instead — correctness never depends on the
server being able to rebuild the search.

A daemon started with ``replicate_from=`` (CLI ``--replicate-from``) runs
as a **replica**: a background thread pulls newly appended shard lines from
the primary over the ordinary wire protocol (the ``sync`` op, incremental
by per-shard byte offset) and re-validates every line through the same
schema/cost-model decode gate the shard files use — a replica never trusts
the primary's opinion of a record.  Replication is one-way (primary ->
replica) and the replica stays fully serviceable: clients that fail over to
it read the synced corpus warm and tune the rest against it directly.  The
``health`` op reports the role, replication lag and inflight depth; it is
what a failover client probes.
"""

from __future__ import annotations

import dataclasses
import socket
import socketserver
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..dsl.expr import expr_cache_stats
from ..rewriter.records import TuningKey, TuningRecord, decode_record_line
from ..rewriter.session import TuningSession
from ..rewriter.store import ShardedTuningStore
from ..rewriter.workers import TuningTask, run_task, task_from_key, tasks_from_layers
from ..telemetry import metrics as _metrics, trace as _trace
from ..testing import faults
from . import protocol
from .client import ServiceClient, ServiceError, ServiceUnavailable, normalize_addresses

__all__ = [
    "TuningService",
    "ServiceStats",
    "ReplicationStats",
    "expand_sweep",
    "SHUTTING_DOWN",
]

# The one shutdown message, compared by the tune path to map a woken
# waiter's error onto code="shutting_down" (clients treat that code as an
# endpoint outage and fail over instead of declining the key).
SHUTTING_DOWN = "daemon is shutting down"


class _LockedStore:
    """A :class:`ShardedTuningStore` handle made safe for handler threads.

    One store *handle* is documented single-threaded (incremental shard
    views, touch buffer); the daemon owns exactly one and serialises every
    operation on it behind a lock.  File-level locking still protects the
    shards from *other processes* — this lock only protects the handle.
    """

    def __init__(self, store: ShardedTuningStore) -> None:
        self._store = store
        self._lock = threading.Lock()

    def __getattr__(self, name):
        value = getattr(self._store, name)
        if not callable(value):
            return value
        def locked(*args, **kwargs):
            with self._lock:
                return value(*args, **kwargs)
        return locked


@dataclass
class ServiceStats:
    """The daemon's own counters (the ``stats`` endpoint adds session/store
    snapshots around them)."""

    requests: Dict[str, int] = field(default_factory=dict)
    protocol_errors: int = 0
    version_rejections: int = 0
    searches_led: int = 0
    coalesced_waiters: int = 0
    untunable_keys: int = 0
    speculative_queued: int = 0
    speculative_tuned: int = 0
    speculative_skipped: int = 0

    def count(self, op: str) -> None:
        self.requests[op] = self.requests.get(op, 0) + 1


@dataclass
class ReplicationStats:
    """A replica's anti-entropy accounting (all zero on a primary).

    ``records_applied`` counts lines that passed the replica's own decode
    gate and were written through; ``stale_rejected``/``corrupt_rejected``
    count lines the gate refused (a primary on a different cost model shows
    up here, loudly, instead of poisoning the replica).  ``offset_resets``
    counts shards replayed from byte 0 after the primary compacted or
    cleared them.
    """

    syncs: int = 0
    sync_failures: int = 0
    records_applied: int = 0
    stale_rejected: int = 0
    corrupt_rejected: int = 0
    offset_resets: int = 0
    last_sync_unix: Optional[float] = None


class _Inflight:
    """One in-progress search: a leader, any number of coalesced waiters."""

    def __init__(self) -> None:
        self.done = threading.Event()
        self.record: Optional[TuningRecord] = None
        self.error: Optional[str] = None
        self.waiters = 0


_SWEEP_TARGETS = {
    # machine short/long name fragments -> compile_model target
    "cascade": "x86",
    "graviton": "arm",
    "v100": "cuda",
}


def expand_sweep(name: str, like: Optional[TuningTask]) -> List[TuningTask]:
    """The task list a sweep name stands for.

    ``"table1"`` (optionally ``"table1[:k]"``) is the Table I layer set;
    any other name is resolved through the model zoo and expanded to the
    distinct tunable operators ``compile_model`` would hit.  ``like`` (the
    task of the request that named the sweep) supplies the machine,
    intrinsic and tuning mode so speculation warms exactly the records the
    requester's siblings will look up; without it the target defaults.
    """
    from ..rewriter.workers import tasks_from_graph

    if name.startswith("table1"):
        from ..workloads.table1 import TABLE1_LAYERS

        layers = TABLE1_LAYERS
        if ":" in name:
            layers = layers[: max(1, int(name.split(":", 1)[1]))]
        if like is not None:
            return tasks_from_layers(
                layers,
                runner=like.runner,
                machine=like.machine,
                intrinsic=like.intrinsic,
                tuning=like.tuning,
            )
        return tasks_from_layers(layers)
    from ..models.zoo import get_model

    target = "x86"
    if like is not None:
        lowered = like.machine.lower()
        for fragment, mapped in _SWEEP_TARGETS.items():
            if fragment in lowered:
                target = mapped
                break
    return tasks_from_graph(get_model(name, fresh=True), target=target)


class TuningService:
    """A long-running tune/compile daemon over one sharded tuning store.

    ``strategy`` must be result-deterministic (``"exhaustive"`` or
    ``"parallel"``) so that server-side winners are bit-identical to local
    sweeps; the approximate ``"early_exit"`` strategy is rejected because
    coalesced clients would receive records a strict client could not
    reproduce.

    Use as a context manager, or call :meth:`start` / :meth:`stop`.
    ``port=0`` binds an ephemeral port (see :attr:`address` after start).

    ``replicate_from`` (an address, ``(host, port)`` or ``"host:port"``)
    runs this daemon as a replica of that primary: a background thread
    pulls appended shard lines every ``sync_interval_s`` seconds through
    the ``sync`` op and ingests them through the decode gate.  A replica
    still serves and tunes like any daemon — replication only keeps its
    corpus converging on the primary's.
    """

    def __init__(
        self,
        store_root,
        host: str = "127.0.0.1",
        port: int = 0,
        shards: int = 8,
        strategy: str = "parallel",
        max_workers: Optional[int] = None,
        speculative: bool = True,
        speculative_idle_s: float = 0.02,
        tune_timeout: float = 300.0,
        replicate_from=None,
        sync_interval_s: float = 0.25,
    ) -> None:
        if strategy not in ("exhaustive", "parallel"):
            raise ValueError(
                "the tuning service requires a result-deterministic strategy "
                "('exhaustive' or 'parallel'); got " + repr(strategy)
            )
        self.store = _LockedStore(ShardedTuningStore(store_root, shards=shards))
        self.session = TuningSession(strategy=strategy, max_workers=max_workers, store=self.store)
        self.host = host
        self.port = port
        self.stats = ServiceStats()
        self.tune_timeout = tune_timeout
        self.started_at: Optional[float] = None
        # Monotonic twin of started_at: uptime_s must never jump when the
        # host clock steps (NTP slew, manual set), so the wire responses
        # derive it from time.monotonic(), not wall-clock arithmetic.
        self.started_monotonic: Optional[float] = None
        self.replicate_from: Optional[Tuple[str, int]] = (
            normalize_addresses(replicate_from)[0] if replicate_from is not None else None
        )
        self.sync_interval_s = sync_interval_s
        self.replication = ReplicationStats()
        self._sync_offsets: Dict[int, int] = {}  # sync-thread-private
        self._gate = threading.Lock()
        self._conns: set = set()
        self._inflight: Dict[TuningKey, _Inflight] = {}
        self._foreground = 0
        self._spec_enabled = speculative
        self._spec_idle = speculative_idle_s
        self._spec_queue: deque = deque()
        self._spec_queued_ids: set = set()
        self._spec_wake = threading.Event()
        self._stop = threading.Event()
        self._stop_lock = threading.Lock()
        self._server: Optional[socketserver.ThreadingTCPServer] = None
        self._bound_address: Optional[Tuple[str, int]] = None
        self._threads: List[threading.Thread] = []

    # -- lifecycle ------------------------------------------------------------
    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)``.  Still answers after :meth:`kill` /
        :meth:`stop` — failover drills need the dead endpoint's address to
        hand to clients — but not before :meth:`start`."""
        if self._server is not None:
            return self._server.server_address[:2]
        if self._bound_address is not None:
            return self._bound_address
        raise RuntimeError("the service is not started")

    def start(self) -> "TuningService":
        if self._server is not None:
            raise RuntimeError("the service is already started")
        service = self

        class Handler(socketserver.BaseRequestHandler):
            def handle(self) -> None:
                service._serve_connection(self.request)

        class Server(socketserver.ThreadingTCPServer):
            allow_reuse_address = True
            daemon_threads = True

        self._server = Server((self.host, self.port), Handler)
        self._bound_address = self._server.server_address[:2]
        self.started_at = time.time()
        self.started_monotonic = time.monotonic()
        # No-ops unless a MetricsRegistry is installed in this process; the
        # dataclasses stay the single source of truth for both views.
        _metrics.register_stats_gauges("service", self.stats)
        with self._gate:
            _metrics.register_stats_gauges("service.replication", self.replication)
        serve = threading.Thread(
            target=self._server.serve_forever,
            kwargs={"poll_interval": 0.05},
            name="tuning-service-accept",
            daemon=True,
        )
        serve.start()
        self._threads.append(serve)
        if self._spec_enabled:
            spec = threading.Thread(
                target=self._speculate_forever, name="tuning-service-speculate", daemon=True
            )
            spec.start()
            self._threads.append(spec)
        if self.replicate_from is not None:
            sync = threading.Thread(
                target=self._replicate_forever, name="tuning-service-sync", daemon=True
            )
            sync.start()
            self._threads.append(sync)
        return self

    def stop(self) -> None:
        """Stop accepting, wake the speculative thread, flush the store.

        Idempotent and thread-safe: the shutdown RPC stops the service from
        a daemon thread while the foreground (CLI ``serve``) may call
        ``stop()`` on its way out — whoever arrives second blocks until the
        first finishes, so the process cannot exit before the last-served
        touch buffer reaches disk.

        Coalesced ``tune`` waiters parked on an in-flight search are woken
        *now* with a clean ``shutting_down`` error — before the stop lock
        is taken (``_gate`` and ``_stop_lock`` must never nest), and
        without waiting for the leader's search, which may outlive us.
        """
        self._stop.set()
        self._spec_wake.set()
        self._abort_inflight()
        with self._stop_lock:
            if self._server is not None:
                self._server.shutdown()
                self._server.server_close()
                self._server = None
            for thread in self._threads:
                thread.join(timeout=10.0)
            self._threads = []
            self.store.flush_touches()

    def kill(self) -> None:
        """Abrupt termination for crash drills: the in-process ``kill -9``.

        No drain, no thread join, no touch flush — the listener closes,
        every live connection is torn down (clients observe a reset, never
        a hang) and coalesced waiters are released.  The store is left
        exactly as the last fsync left it, which is precisely the state
        :meth:`ShardedTuningStore.fsck` and the chaos suite audit.
        """
        self._stop.set()
        self._spec_wake.set()
        self._abort_inflight()
        with self._stop_lock:
            server, self._server = self._server, None
        if server is not None:
            server.shutdown()
            server.server_close()
        with self._gate:
            conns = list(self._conns)
        for sock in conns:
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                sock.close()
            except OSError:
                pass
        self._threads = []

    def _abort_inflight(self) -> None:
        """Release every parked coalesced waiter with the shutdown error.

        The leader's search itself is not interrupted (searches are pure
        compute; its handler thread is a daemon) — but nobody new should
        wait on it, so the inflight table is emptied as well.
        """
        with self._gate:
            entries = list(self._inflight.values())
            self._inflight.clear()
        for entry in entries:
            if not entry.done.is_set():
                entry.error = SHUTTING_DOWN
                entry.done.set()

    def __enter__(self) -> "TuningService":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    def serve_until_stopped(self, poll_s: float = 0.2) -> None:
        """Block the calling thread until a ``shutdown`` request (CLI mode)."""
        while not self._stop.wait(poll_s):
            pass

    # -- connection loop ------------------------------------------------------
    def _serve_connection(self, sock: socket.socket) -> None:
        with self._gate:
            self._conns.add(sock)
        try:
            while not self._stop.is_set():
                try:
                    message = protocol.recv_message(sock)
                except protocol.ConnectionClosed:
                    return
                except protocol.ProtocolError as exc:
                    self.stats.protocol_errors += 1
                    try:
                        protocol.send_message(
                            sock, protocol.error_response(str(exc), "protocol_error")
                        )
                    except OSError:
                        pass
                    return
                except OSError:
                    return  # the connection was torn down under us (kill())
                response = self._dispatch(message)
                try:
                    faults.fire("server.respond", sock=sock, response=response)
                    protocol.send_message(sock, response)
                except OSError:
                    return
        finally:
            with self._gate:
                self._conns.discard(sock)

    def _dispatch(self, message: Dict) -> Dict:
        mismatch = protocol.check_versions(message)
        if mismatch is not None:
            self.stats.version_rejections += 1
            return protocol.error_response(*mismatch)
        if self._stop.is_set():
            # A draining daemon answers every request the same way a woken
            # coalesced waiter is answered: clean, coded, immediately.
            return protocol.error_response(SHUTTING_DOWN, "shutting_down")
        op = message.get("op")
        handler = getattr(self, f"_op_{op}", None)
        if op not in protocol.OPS or handler is None:
            return protocol.error_response(f"unknown op {op!r}", "unknown_op")
        self.stats.count(op)
        _metrics.event("service.requests", str(op))
        registry = _metrics.active()
        started = time.perf_counter() if registry is not None else 0.0
        with self._gate:
            self._foreground += 1
        try:
            with _trace.span("service.request", op=str(op)):
                return handler(message)
        except Exception as exc:  # a bad request must not kill the handler
            return protocol.error_response(f"{type(exc).__name__}: {exc}", "server_error")
        finally:
            with self._gate:
                self._foreground -= 1
            if registry is not None:
                registry.observe("service.request_s", time.perf_counter() - started)

    # -- operations -----------------------------------------------------------
    def _op_ping(self, message: Dict) -> Dict:
        return protocol.ok_response(server="tuning-service", uptime_s=self._uptime())

    def _op_get(self, message: Dict) -> Dict:
        key = TuningKey.from_json(message["key"])
        record = self.session._lookup(key)
        if record is not None:
            # A memory-tier hit must still advance the store's last-served
            # clock, or LRU GC would evict exactly the hottest records.
            self.store.touch(key)
        return protocol.ok_response(
            found=record is not None,
            record=record.to_json() if record is not None else None,
        )

    def _op_put(self, message: Dict) -> Dict:
        # Validate through the same decoder the shard files use, so a stale
        # or malformed record is rejected at the door, not persisted.
        import json as _json

        record, problem = decode_record_line(_json.dumps(message["record"]))
        if record is None:
            return protocol.error_response(
                f"record rejected: {problem}", problem or "corrupt"
            )
        self.session.cache.insert(record)
        self.store.put(record)
        return protocol.ok_response(stored=True)

    def _op_tune(self, message: Dict) -> Dict:
        key = TuningKey.from_json(message["key"])
        record, how = self._tune_key(key)
        if record is None:
            if how == SHUTTING_DOWN:
                return protocol.error_response(SHUTTING_DOWN, "shutting_down")
            self.stats.untunable_keys += 1
            return protocol.error_response(
                how or f"cannot reconstruct a search for {key}", "untunable"
            )
        sweep = message.get("sweep")
        if sweep:
            self._enqueue_sweep(str(sweep), task_from_key(key))
        return protocol.ok_response(record=record.to_json(), how=how)

    def _op_stats(self, message: Dict) -> Dict:
        return protocol.ok_response(**self._snapshot())

    def _op_gc(self, message: Dict) -> Dict:
        report = self.store.evict(
            max_records=message.get("max_records"),
            max_idle=message.get("max_idle"),
        )
        # The memory tier must forget what the store evicted, or this daemon
        # would keep serving records the fleet's GC policy retired.
        for key in report.pop("evicted_keys"):
            self.session.cache.discard(key)
        return protocol.ok_response(**report)

    def _op_warm(self, message: Dict) -> Dict:
        tasks = expand_sweep(str(message["sweep"]), like=None)
        if message.get("background"):
            queued = sum(1 for task in tasks if self._enqueue_task(task))
            return protocol.ok_response(queued=queued, tasks=len(tasks))
        tuned = 0
        hits = 0
        for task in tasks:
            before = self.session.searches_run
            record, how = self._tune_task(task)
            if record is None:
                return protocol.error_response(how or "warm task failed", "untunable")
            if self.session.searches_run > before:
                tuned += 1
            else:
                hits += 1
        return protocol.ok_response(tasks=len(tasks), tuned=tuned, hits=hits)

    def _op_shutdown(self, message: Dict) -> Dict:
        threading.Thread(target=self.stop, name="tuning-service-stop", daemon=True).start()
        return protocol.ok_response(stopping=True)

    def _op_sync(self, message: Dict) -> Dict:
        """Serve the anti-entropy feed: raw lines appended since the
        caller's per-shard byte offsets (see
        :meth:`ShardedTuningStore.read_shard_since`).  Lines travel
        unvalidated on purpose — the *replica's* decode gate is the
        authority on what it ingests."""
        offsets = message.get("offsets") or {}
        shards: Dict[str, Dict] = {}
        for index in range(self.store.num_shards):
            try:
                start = int(offsets.get(str(index), 0))
            except (TypeError, ValueError):
                start = 0
            records, new_offset, reset = self.store.read_shard_since(index, start)
            shards[str(index)] = {
                "records": records,
                "offset": new_offset,
                "reset": reset,
            }
        return protocol.ok_response(shards=shards, role=self._role())

    def _op_health(self, message: Dict) -> Dict:
        """The failover probe: the same unified snapshot ``stats`` serves."""
        return protocol.ok_response(**self._snapshot())

    def _snapshot(self) -> Dict:
        """One consistent view behind both the ``stats`` and ``health`` ops.

        Before this existed the two endpoints gathered overlapping fields
        independently, so the memory-tier counters one returned could
        disagree with the store counters the other returned *within a
        single client call*.  Now everything is collected in one pass —
        the gate is taken exactly once for the gate-guarded fields — and
        both wire ops serve the identical payload, including the monotonic
        ``uptime_s`` and the telemetry counter snapshot.
        """
        cache = self.session.stats
        expr = expr_cache_stats()
        store_stats = self.store.stats.as_dict()
        with self._gate:
            inflight = len(self._inflight)
            queued = len(self._spec_queue)
            foreground = self._foreground
            replication = dataclasses.asdict(self.replication)
        payload: Dict = {
            "role": self._role(),
            "uptime_s": self._uptime(),
            "shutting_down": self._stop.is_set(),
            "service": dataclasses.asdict(self.stats),
            "session": {
                "records": cache.size,
                "hits": cache.hits,
                "misses": cache.misses,
                "hit_rate": cache.hit_rate,
                "store_hits": self.session.store_hits,
                "trials_run": self.session.trials_run,
                "searches_run": self.session.searches_run,
                "strategy": self.session.strategy,
            },
            "store": store_stats,
            "expr_cache": {
                f.name: getattr(expr, f.name) for f in dataclasses.fields(expr)
            },
            "inflight": inflight,
            "foreground": foreground,
            "speculative_queue": queued,
            "telemetry": _metrics.snapshot_counters(),
        }
        if self.replicate_from is not None:
            last = replication.get("last_sync_unix")
            replication["lag_s"] = (time.time() - last) if last else None
            replication["primary"] = list(self.replicate_from)
            payload["replication"] = replication
        return payload

    def _role(self) -> str:
        return "replica" if self.replicate_from is not None else "primary"

    def _uptime(self) -> float:
        if self.started_monotonic is not None:
            return time.monotonic() - self.started_monotonic
        return time.time() - self.started_at if self.started_at else 0.0

    # -- replication (replica role) -------------------------------------------
    def _replicate_forever(self) -> None:
        """The replica's anti-entropy loop: pull, validate, ingest, sleep.

        One pull per ``sync_interval_s``; an unreachable primary counts a
        failure and waits for the next tick (the loop *is* the retry
        schedule, so the client itself runs with no retries).  The loop
        never takes the store's shard locks and the service's ``_gate``
        at the same time — stats updates happen after ingestion.
        """
        client = ServiceClient(self.replicate_from, timeout=5.0, retries=0)
        try:
            while not self._stop.is_set():
                try:
                    self._sync_once(client)
                except (ServiceUnavailable, ServiceError, OSError):
                    with self._gate:
                        self.replication.sync_failures += 1
                self._stop.wait(self.sync_interval_s)
        finally:
            client.close()

    def _sync_once(self, client: ServiceClient) -> None:
        import json as _json

        offsets = {str(index): offset for index, offset in self._sync_offsets.items()}
        response = client.request("sync", offsets=offsets)
        applied = stale = corrupt = resets = 0
        for name, shard in sorted(response.get("shards", {}).items()):
            for data in shard.get("records", ()):
                # The same gate the shard files and `put` use: schema +
                # cost-model fingerprint.  A mismatched primary is counted,
                # not ingested.
                record, problem = decode_record_line(_json.dumps(data))
                if record is None:
                    if problem == "stale":
                        stale += 1
                    else:
                        corrupt += 1
                    continue
                self.session.cache.insert(record)
                self.store.put(record)
                applied += 1
            try:
                index = int(name)
            except ValueError:
                continue
            self._sync_offsets[index] = int(shard.get("offset", 0))
            if shard.get("reset"):
                resets += 1
        with self._gate:
            stats = self.replication
            stats.syncs += 1
            stats.records_applied += applied
            stats.stale_rejected += stale
            stats.corrupt_rejected += corrupt
            stats.offset_resets += resets
            stats.last_sync_unix = time.time()
        _metrics.count("service.replication.syncs")
        if applied:
            _metrics.count("service.replication.records_applied", applied)

    # -- coalesced tuning core ------------------------------------------------
    def _tune_key(self, key: TuningKey) -> Tuple[Optional[TuningRecord], Optional[str]]:
        """The record for ``key``, searching at most once fleet-wide.

        Returns ``(record, how)`` where ``how`` is ``"hit"``, ``"searched"``
        or ``"coalesced"`` — or ``(None, reason)`` when the key cannot be
        tuned server-side.
        """
        with self._gate:
            record = self.session._lookup(key)
            if record is not None:
                self.store.touch(key)  # memory hits feed the GC clock too
                return record, "hit"
            entry = self._inflight.get(key)
            if entry is not None:
                leader = False
                entry.waiters += 1
                self.stats.coalesced_waiters += 1
                _metrics.count("service.coalesced_waiters")
            else:
                entry = self._inflight[key] = _Inflight()
                leader = True
        if not leader:  # joined an existing search
            if not entry.done.wait(self.tune_timeout):
                return None, "coalesced search timed out"
            if entry.error is not None:
                return None, entry.error
            return entry.record, "coalesced"
        return self._lead_search(key, entry)

    def _lead_search(
        self, key: TuningKey, entry: _Inflight
    ) -> Tuple[Optional[TuningRecord], Optional[str]]:
        try:
            faults.fire("server.tune", service=self, key=key)
            task = task_from_key(key)
            if task is None:
                entry.error = f"key does not name a rebuildable search: {key}"
                return None, entry.error
            run_task(task, self.session)
            record = self.session.cache.lookup(key)
            if record is None:
                # The rebuilt runner generated a different space digest —
                # the client used a custom candidate list.  Its extra record
                # is harmless; the requested key stays the client's job.
                entry.error = (
                    "rebuilt search space does not match the requested key "
                    f"(custom candidates?): {key.space}"
                )
                return None, entry.error
            entry.record = record
            self.stats.searches_led += 1
            return record, "searched"
        except Exception as exc:
            entry.error = f"{type(exc).__name__}: {exc}"
            return None, entry.error
        finally:
            with self._gate:
                self._inflight.pop(key, None)
            entry.done.set()

    def _tune_task(self, task: TuningTask) -> Tuple[Optional[TuningRecord], Optional[str]]:
        """Tune a task we already hold (warm/speculative paths), coalescing
        with any in-flight foreground search for the same key."""
        try:
            key = self._key_of(task)
        except Exception as exc:
            return None, f"{type(exc).__name__}: {exc}"
        if key is not None:
            return self._tune_key(key)
        # No cheap key derivation — run it directly through the shared session.
        try:
            run_task(task, self.session)
            return None, "task ran but its key could not be derived"
        except Exception as exc:
            return None, f"{type(exc).__name__}: {exc}"

    @staticmethod
    def _key_of(task: TuningTask) -> Optional[TuningKey]:
        """The :class:`TuningKey` ``task`` will tune under, derived without
        running any search (build the runner, fingerprint its space)."""
        from ..rewriter.records import TuningKey as Key
        from ..rewriter.records import params_fingerprint
        from ..rewriter.workers import build_runner

        probe = TuningSession()
        runner = build_runner(task, probe)
        return Key(
            kind=task.kind,
            params=params_fingerprint(task.params),
            intrinsic=runner.intrin.name,
            machine=runner.machine.name,
            space=runner._space,
        )

    # -- speculation ----------------------------------------------------------
    def _task_identity(self, task: TuningTask):
        from ..rewriter.records import params_fingerprint

        return (
            task.kind,
            params_fingerprint(task.params),
            task.runner,
            task.machine,
            task.intrinsic,
            task.tuning,
        )

    def _enqueue_task(self, task: TuningTask) -> bool:
        identity = self._task_identity(task)
        with self._gate:
            if identity in self._spec_queued_ids:
                return False
            self._spec_queued_ids.add(identity)
            self._spec_queue.append(task)
            self.stats.speculative_queued += 1
        self._spec_wake.set()
        return True

    def _enqueue_sweep(self, sweep: str, like: Optional[TuningTask]) -> int:
        try:
            tasks = expand_sweep(sweep, like)
        except Exception:
            return 0  # an unknown sweep name must not fail the tune request
        return sum(1 for task in tasks if self._enqueue_task(task))

    def _speculate_forever(self) -> None:
        """Drain the speculative queue whenever the foreground is idle.

        Foreground requests always win: a queued task is only started when
        no request handler is active, and each task re-checks the cache
        right before tuning (a foreground client may have caused it to be
        tuned meanwhile — that is a *skip*, not a search).
        """
        while not self._stop.is_set():
            self._spec_wake.wait(timeout=0.2)
            if self._stop.is_set():
                return
            with self._gate:
                busy = self._foreground > 0
                task = self._spec_queue.popleft() if (self._spec_queue and not busy) else None
                if task is not None:
                    # Release the dedup slot: the identity set only guards
                    # the queue itself, so a sweep re-warmed after GC (or a
                    # repeated `warm --background`) enqueues again instead
                    # of no-opping forever.
                    self._spec_queued_ids.discard(self._task_identity(task))
                if not self._spec_queue and task is None:
                    self._spec_wake.clear()
            if task is None:
                if busy:
                    time.sleep(self._spec_idle)
                continue
            key = None
            try:
                key = self._key_of(task)
            except Exception:
                pass
            if key is not None and self.session.cache.lookup(key) is not None:
                self.stats.speculative_skipped += 1
                continue
            before = self.session.searches_run
            record, _ = (
                self._tune_key(key) if key is not None else (None, None)
            )
            if record is not None and self.session.searches_run > before:
                self.stats.speculative_tuned += 1
            else:
                self.stats.speculative_skipped += 1

    def summary(self) -> str:
        s = self.stats
        return (
            f"TuningService[{self.session.strategy}]: "
            f"{sum(s.requests.values())} requests, {s.searches_led} searches led, "
            f"{s.coalesced_waiters} coalesced waiters, "
            f"{s.speculative_tuned} speculative tunes "
            f"({s.speculative_skipped} skipped)"
        )
