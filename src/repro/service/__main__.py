"""The tuning service CLI: ``python -m repro.service <command>``.

========  ====================================================================
serve      run the daemon in the foreground over a store directory; with
           ``--replicate-from HOST:PORT`` it runs as a read-write replica
           that incrementally pulls the primary's shard records
status     print the daemon's stats (requests, coalescing, store, caches)
health     print the daemon's failover probe (role, replication lag, load)
gc         run LRU store eviction on the daemon (``--max-records/--max-idle``)
warm       pre-tune a named sweep into the daemon's store (``table1[:k]`` or
           a model-zoo name such as ``resnet-18``)
ping       liveness probe
fsck       audit a store directory *offline* (no daemon): quarantine torn
           shard lines, sweep leftover compaction temp files
shutdown   stop the daemon after in-flight requests drain
========  ====================================================================

Examples::

    python -m repro.service serve --root tuning_store --port 9461
    python -m repro.service serve --root replica_store --port 9462 \\
        --replicate-from 127.0.0.1:9461
    python -m repro.service warm --sweep table1 --port 9461
    python -m repro.service status --port 9461
    python -m repro.service health --port 9462
    python -m repro.service gc --max-records 500 --max-idle 86400 --port 9461
    python -m repro.service fsck --root tuning_store
    python -m repro.service shutdown --port 9461
"""

from __future__ import annotations

import argparse
import json
import sys

from .client import ServiceClient, ServiceError, ServiceUnavailable
from .server import TuningService

DEFAULT_PORT = 9461


def _add_endpoint(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--host", default="127.0.0.1", help="daemon host")
    parser.add_argument(
        "--port", type=int, default=DEFAULT_PORT, help=f"daemon port (default {DEFAULT_PORT})"
    )


def _client(args) -> ServiceClient:
    return ServiceClient((args.host, args.port))


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Networked tuning service over a sharded tuning store.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    serve = sub.add_parser("serve", help="run the tuning daemon in the foreground")
    _add_endpoint(serve)
    serve.add_argument("--root", default="tuning_store", help="store directory")
    serve.add_argument("--shards", type=int, default=8, help="shard count on creation")
    serve.add_argument(
        "--strategy",
        choices=("parallel", "exhaustive"),
        default="parallel",
        help="search driver (both are result-deterministic)",
    )
    serve.add_argument(
        "--search-workers",
        type=int,
        default=None,
        help="thread-pool width of each parallel search",
    )
    serve.add_argument(
        "--no-speculate",
        action="store_true",
        help="disable idle-time speculative tuning",
    )
    serve.add_argument(
        "--replicate-from",
        default=None,
        metavar="HOST:PORT",
        help="run as a replica of this primary daemon",
    )
    serve.add_argument(
        "--sync-interval",
        type=float,
        default=0.25,
        help="replica pull interval in seconds (default 0.25)",
    )

    status = sub.add_parser("status", help="print daemon stats as JSON")
    _add_endpoint(status)

    health = sub.add_parser(
        "health", help="print the daemon's failover probe (role, lag, load)"
    )
    _add_endpoint(health)

    fsck = sub.add_parser(
        "fsck", help="audit a store directory offline (quarantine torn lines)"
    )
    fsck.add_argument("--root", default="tuning_store", help="store directory")
    fsck.add_argument(
        "--check",
        action="store_true",
        help="report only (no quarantine/cleanup); exit 1 when not clean",
    )

    gc = sub.add_parser("gc", help="evict least-recently-served store records")
    _add_endpoint(gc)
    gc.add_argument("--max-records", type=int, default=None, help="LRU size cap")
    gc.add_argument(
        "--max-idle", type=float, default=None, help="drop records idle this many seconds"
    )

    warm = sub.add_parser("warm", help="pre-tune a named sweep into the store")
    _add_endpoint(warm)
    warm.add_argument(
        "--sweep",
        required=True,
        help="'table1', 'table1:K', or a model-zoo name (e.g. resnet-18)",
    )
    warm.add_argument(
        "--background",
        action="store_true",
        help="queue for idle-time tuning instead of blocking",
    )

    ping = sub.add_parser("ping", help="liveness probe")
    _add_endpoint(ping)

    shutdown = sub.add_parser("shutdown", help="stop the daemon")
    _add_endpoint(shutdown)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "fsck":
        from ..rewriter.store import ShardedTuningStore

        store = ShardedTuningStore(args.root)
        report = store.fsck(quarantine=not args.check)
        print(json.dumps(report, indent=2, sort_keys=True))
        if args.check and not report["clean"]:
            return 1
        return 0

    if args.command == "serve":
        service = TuningService(
            args.root,
            host=args.host,
            port=args.port,
            shards=args.shards,
            strategy=args.strategy,
            max_workers=args.search_workers,
            speculative=not args.no_speculate,
            replicate_from=args.replicate_from,
            sync_interval_s=args.sync_interval,
        )
        service.start()
        host, port = service.address
        role = "replica" if args.replicate_from else "primary"
        print(
            f"tuning service ({role}) listening on {host}:{port} over {args.root!r}",
            flush=True,
        )
        try:
            service.serve_until_stopped()
        finally:
            # Also reached after a shutdown RPC: stop() is idempotent and
            # blocks until the RPC's own stop (touch flush included) is
            # done, so the process never exits with unflushed GC stamps.
            service.stop()
        print(service.summary())
        return 0

    try:
        with _client(args) as client:
            if args.command == "status":
                response = client.stats()
            elif args.command == "health":
                response = client.health()
            elif args.command == "gc":
                if args.max_records is None and args.max_idle is None:
                    print("gc needs --max-records and/or --max-idle", file=sys.stderr)
                    return 2
                response = client.gc(max_records=args.max_records, max_idle=args.max_idle)
            elif args.command == "warm":
                response = client.warm(args.sweep, background=args.background)
            elif args.command == "ping":
                response = client.ping()
            else:  # shutdown
                response = client.shutdown()
    except ServiceUnavailable as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except ServiceError as exc:
        print(f"error [{exc.code}]: {exc}", file=sys.stderr)
        return 1
    response.pop("ok", None)
    response.pop("protocol", None)
    response.pop("schema", None)
    print(json.dumps(response, indent=2, sort_keys=True))
    return 0


if __name__ == "__main__":
    sys.exit(main())
