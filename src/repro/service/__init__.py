"""Tuning-as-a-service: a networked compile/tune daemon over the record store.

PR 3 made the tuning corpus shareable across *processes* on one machine
(:class:`~repro.rewriter.store.ShardedTuningStore` +
:class:`~repro.rewriter.workers.DistributedTuner`); this package makes it
shareable across *machines*:

* :mod:`repro.service.protocol` — the versioned, length-prefixed JSON wire
  protocol (tune / get / put / stats / gc / warm / shutdown);
* :mod:`repro.service.server` — :class:`TuningService`, a threaded TCP
  daemon wrapping one store + session + worker machinery, with in-flight
  request coalescing (each unique :class:`~repro.rewriter.records.TuningKey`
  is searched at most once fleet-wide) and a speculative-tuning queue that
  pre-tunes the remaining layers of a requested sweep during idle time;
* :mod:`repro.service.client` — :class:`RemoteSession`, a drop-in
  :class:`~repro.rewriter.session.TuningSession` that reads through
  memory -> server -> miss, with retries and graceful fallback to a local
  store when the daemon is unreachable.

``python -m repro.service serve|status|gc|warm|shutdown`` is the CLI.
"""

from .client import RemoteSession, ServiceClient, ServiceError, ServiceUnavailable
from .protocol import PROTOCOL_VERSION, ProtocolError
from .server import TuningService

__all__ = [
    "PROTOCOL_VERSION",
    "ProtocolError",
    "RemoteSession",
    "ServiceClient",
    "ServiceError",
    "ServiceUnavailable",
    "TuningService",
]
