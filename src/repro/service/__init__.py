"""Tuning-as-a-service: a networked compile/tune daemon over the record store.

PR 3 made the tuning corpus shareable across *processes* on one machine
(:class:`~repro.rewriter.store.ShardedTuningStore` +
:class:`~repro.rewriter.workers.DistributedTuner`); this package makes it
shareable across *machines*:

* :mod:`repro.service.protocol` — the versioned, length-prefixed JSON wire
  protocol (tune / get / put / stats / gc / warm / shutdown);
* :mod:`repro.service.server` — :class:`TuningService`, a threaded TCP
  daemon wrapping one store + session + worker machinery, with in-flight
  request coalescing (each unique :class:`~repro.rewriter.records.TuningKey`
  is searched at most once fleet-wide) and a speculative-tuning queue that
  pre-tunes the remaining layers of a requested sweep during idle time;
* :mod:`repro.service.client` — :class:`RemoteSession`, a drop-in
  :class:`~repro.rewriter.session.TuningSession` that reads through
  memory -> server -> miss, with retries and graceful fallback to a local
  store when the daemon is unreachable.

This PR adds the fault-tolerance layer on top:

* **replication + failover** — ``serve --replicate-from HOST:PORT`` runs a
  daemon as a read-write *replica* that incrementally pulls the primary's
  shard records over the same wire protocol (``sync``), and
  :class:`ServiceClient`/:class:`RemoteSession` accept address *lists* with
  per-endpoint health tracking, automatic failover/failback, and hedged
  reads — killing the primary mid-sweep costs a reconnect, not the corpus;
* **one retry policy** — :class:`~repro.retry.RetryPolicy` (capped
  exponential backoff, deterministic jitter, per-op deadlines,
  transient-vs-fatal classification) now drives the client transport, the
  worker lock claims, and the store's file-lock polling;
* **degradation + recovery** — :class:`~repro.retry.CircuitBreaker` governs
  :class:`RemoteSession` fallback, the ``health`` op reports role and
  replication lag for probes, and ``python -m repro.service fsck`` audits a
  store offline, quarantining torn shard lines;
* **deterministic fault injection** — :mod:`repro.testing.faults` names the
  failure points in protocol/server/store and drives the seeded chaos suite.

``python -m repro.service serve|status|health|gc|warm|fsck|shutdown`` is
the CLI.
"""

from ..retry import CircuitBreaker, RetryPolicy
from .client import (
    RemoteSession,
    ServiceClient,
    ServiceError,
    ServiceUnavailable,
    normalize_addresses,
)
from .protocol import PROTOCOL_VERSION, ProtocolError
from .server import ReplicationStats, TuningService

__all__ = [
    "PROTOCOL_VERSION",
    "CircuitBreaker",
    "ProtocolError",
    "RemoteSession",
    "ReplicationStats",
    "RetryPolicy",
    "ServiceClient",
    "ServiceError",
    "ServiceUnavailable",
    "TuningService",
    "normalize_addresses",
]
