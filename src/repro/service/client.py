"""The tuning service's client side: RPC transport + a drop-in session.

:class:`ServiceClient` is the transport: persistent TCP connections,
length-prefixed JSON frames, per-request timeout, and version checking on
every response.  It accepts a *list* of daemon addresses — the first is the
preferred (primary) endpoint, the rest are failover replicas — and keeps
per-endpoint health: a transport failure closes that endpoint's connection,
penalises it on the shared :class:`~repro.retry.RetryPolicy` backoff
schedule, and the next attempt goes to the healthiest remaining endpoint,
so losing the primary mid-request costs one reconnect, not the request.
:meth:`ServiceClient.hedged_get` adds latency hedging for reads: every
endpoint is probed (staggered by ``hedge_delay_s``) and the first answer
wins.  Transport failures raise :class:`ServiceUnavailable`;
server-reported failures raise :class:`ServiceError` carrying the
machine-readable ``code`` (e.g. ``"version_mismatch"``, ``"untunable"``).

:class:`RemoteSession` is the drop-in: a
:class:`~repro.rewriter.session.TuningSession` whose lookup tier order is
**memory -> server -> miss**, so ``compile_model(session=RemoteSession(...))``
and every figure driver in :mod:`repro.core.experiments` tune against the
daemon transparently.  On a miss it first asks the server to run the search
(coalesced fleet-wide — see :mod:`repro.service.server`); only if the server
declines (custom candidate lists, approximate strategies) or is unreachable
does it search locally.  Degradation is governed by a
:class:`~repro.retry.CircuitBreaker`: classified-fatal outages open it for
an escalating cooldown, half-open probes test recovery, and a protocol
version mismatch trips it permanently.  While the breaker is open, lookups
and publishes fall back to an optional local
:class:`~repro.rewriter.store.ShardedTuningStore` — a dead daemon costs
availability of the *shared* corpus, never correctness.
"""

from __future__ import annotations

import dataclasses
import queue as queue_module
import socket
import threading
import time
import warnings
from typing import Callable, List, Optional, Sequence, Tuple

from ..hwsim.cost import CostBreakdown
from ..retry import CircuitBreaker, RetryPolicy
from ..telemetry import metrics as _metrics
from ..rewriter.records import TuningCache, TuningKey, TuningRecord, record_staleness
from ..rewriter.session import TuningSession
from ..rewriter.store import ShardedTuningStore
from . import protocol

__all__ = [
    "ServiceClient",
    "ServiceError",
    "ServiceUnavailable",
    "RemoteSession",
    "normalize_addresses",
]

Address = Tuple[str, int]

# What the transport may retry: socket-level trouble (ConnectionClosed is a
# ConnectionError, hence an OSError) and torn/malformed frames.  Server
# verdicts (ServiceError) are never transport-retried.
TRANSPORT_ERRORS = (OSError, protocol.ProtocolError)


class ServiceUnavailable(ConnectionError):
    """No endpoint could be reached (or all died mid-request) after retries."""


class ServiceError(RuntimeError):
    """The daemon answered with an error response."""

    def __init__(self, message: str, code: str = "error") -> None:
        super().__init__(message)
        self.code = code


def _as_endpoint(item) -> Address:
    if isinstance(item, str):
        host, sep, port = item.rpartition(":")
        if not sep:
            raise ValueError(f"address {item!r} is not of the form 'host:port'")
        return (host or "127.0.0.1", int(port))
    return (str(item[0]), int(item[1]))


def normalize_addresses(address) -> List[Address]:
    """Whatever the caller has -> a non-empty ``[(host, port), ...]`` list.

    Accepts one ``(host, port)`` pair, one ``"host:port"`` string, or a
    sequence of either (mixed is fine).  Order is meaning: the first entry
    is the preferred endpoint, the rest are failover replicas.
    """
    if isinstance(address, str):
        return [_as_endpoint(address)]
    items = list(address)
    if not items:
        raise ValueError("need at least one service address")
    if (
        len(items) == 2
        and not isinstance(items[0], (list, tuple))
        and not (isinstance(items[0], str) and ":" in items[0])
        and isinstance(items[1], (int, str))
        and str(items[1]).isdigit()
    ):
        return [(str(items[0]), int(items[1]))]  # one bare (host, port) pair
    return [_as_endpoint(item) for item in items]


class ServiceClient:
    """One logical connection to a tuning-service endpoint *set*.

    ``address`` is anything :func:`normalize_addresses` takes; the first
    endpoint is preferred, later ones are replicas.  ``timeout`` bounds each
    socket operation; ``tune_timeout`` bounds the blocking ``tune``/``warm``
    requests (the server may be running a search on our behalf).

    Failed requests are retried on ``retry_policy`` (default: capped
    exponential backoff with deterministic jitter, ``retries + 1`` total
    attempts) with a fresh endpoint choice per attempt: an endpoint that
    fails is closed and sidelined for an escalating cool-down on the same
    backoff schedule, after which it is re-probed — so when a dead primary
    comes back, traffic fails back to it by itself.  A daemon answering
    ``shutting_down`` is treated exactly like a dead one.  When every
    attempt is exhausted :class:`ServiceUnavailable` carries the last error.

    ``retry_backoff_s`` is a deprecated alias from the linear-backoff days;
    it seeds the policy's ``base_delay_s``.  Not thread-safe: give each
    thread its own client (connections are cheap; records are not).
    """

    def __init__(
        self,
        address,
        timeout: float = 10.0,
        tune_timeout: float = 300.0,
        retries: Optional[int] = None,
        retry_backoff_s: Optional[float] = None,
        retry_policy: Optional[RetryPolicy] = None,
        hedge_delay_s: float = 0.05,
    ) -> None:
        self.addresses = normalize_addresses(address)
        self.address = self.addresses[0]  # the preferred endpoint
        self.timeout = timeout
        self.tune_timeout = tune_timeout
        if retry_backoff_s is not None:
            warnings.warn(
                "ServiceClient(retry_backoff_s=...) is deprecated; pass "
                "retry_policy=RetryPolicy(base_delay_s=...) instead",
                DeprecationWarning,
                stacklevel=2,
            )
        if retry_policy is None:
            retry_policy = RetryPolicy(
                max_attempts=(2 if retries is None else retries) + 1,
                base_delay_s=0.05 if retry_backoff_s is None else retry_backoff_s,
                max_delay_s=2.0,
                transient=TRANSPORT_ERRORS,
            )
        elif retries is not None:
            retry_policy = dataclasses.replace(retry_policy, max_attempts=retries + 1)
        self.retry = retry_policy
        self.hedge_delay_s = hedge_delay_s
        self._socks: List[Optional[socket.socket]] = [None] * len(self.addresses)
        self._down_until = [0.0] * len(self.addresses)
        self._failures = [0] * len(self.addresses)
        self._active = 0
        self.requests_sent = 0
        self.reconnects = 0
        self.failovers = 0
        self.hedged_gets = 0
        self.hedged_wins = 0

    # -- compatibility aliases -------------------------------------------------
    @property
    def retries(self) -> int:
        """Retry count after the first attempt (mirrors the policy)."""
        return (self.retry.max_attempts or 1) - 1

    @property
    def retry_backoff_s(self) -> float:
        """Deprecated: the policy's base delay."""
        return self.retry.base_delay_s

    # -- endpoint health -------------------------------------------------------
    def _pick_endpoint(self, avoid: Optional[int] = None) -> int:
        """The healthiest endpoint, preferred-first.

        Endpoints are scanned in address order and the first one whose
        cool-down has expired wins — so the preferred endpoint is re-probed
        (and traffic fails *back*) as soon as its penalty lapses.  ``avoid``
        names the endpoint that failed *this request's* previous attempt:
        retrying it immediately would just re-time-out, so a sibling is
        preferred even if the failed one's cool-down has already lapsed
        (it has — the retry sleep and the penalty share a schedule).  With
        everything down, the least-recently-penalised endpoint is tried
        anyway: an attempt against a dead endpoint costs one connect
        timeout, giving up costs the request.
        """
        now = time.monotonic()
        for index in range(len(self.addresses)):
            if index != avoid and self._down_until[index] <= now:
                return index
        if avoid is not None and self._down_until[avoid] <= now:
            return avoid
        return min(range(len(self.addresses)), key=lambda i: self._down_until[i])

    def _endpoint_failed(self, index: int) -> None:
        self._close_endpoint(index)
        self._failures[index] += 1
        self._down_until[index] = time.monotonic() + self.retry.backoff_s(
            self._failures[index]
        )

    def _endpoint_ok(self, index: int) -> None:
        self._failures[index] = 0
        self._down_until[index] = 0.0
        if index != self._active:
            self.failovers += 1
            _metrics.count("service.client.failovers")
            self._active = index

    # -- transport ------------------------------------------------------------
    def _connect(self, index: int) -> socket.socket:
        sock = self._socks[index]
        if sock is None:
            sock = socket.create_connection(self.addresses[index], timeout=self.timeout)
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            self._socks[index] = sock
            self.reconnects += 1
        return sock

    def _close_endpoint(self, index: int) -> None:
        sock, self._socks[index] = self._socks[index], None
        if sock is not None:
            try:
                sock.close()
            except OSError:  # pragma: no cover - close() on a dead socket
                pass

    def close(self) -> None:
        for index in range(len(self.addresses)):
            self._close_endpoint(index)

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def request(self, op: str, *, _timeout: Optional[float] = None, **fields) -> dict:
        """Send one request; returns the ``ok`` response payload.

        Raises :class:`ServiceError` for server-reported failures (no
        retry — the server is healthy, the request is not; the exception
        is ``shutting_down``, which penalises the endpoint and fails over
        like an outage) and :class:`ServiceUnavailable` once the retry
        policy's attempts or deadline run out.
        """
        message = protocol.request(op, **fields)
        last: Optional[Exception] = None
        avoid: Optional[int] = None
        for _attempt in self.retry.attempts():
            index = self._pick_endpoint(avoid=avoid)
            try:
                sock = self._connect(index)
                sock.settimeout(_timeout if _timeout is not None else self.timeout)
                protocol.send_message(sock, message)
                response = protocol.recv_message(sock)
                self.requests_sent += 1
            except TRANSPORT_ERRORS as exc:
                self._endpoint_failed(index)
                avoid = index
                last = exc
                if self.retry.classify(exc) != "transient":
                    break
                continue
            mismatch = protocol.check_versions(response)
            if mismatch is not None:
                raise ServiceError(*mismatch)
            if not response.get("ok"):
                code = str(response.get("code", "error"))
                if code == "shutting_down":
                    self._endpoint_failed(index)
                    avoid = index
                    last = ServiceError(
                        str(response.get("error", "shutting down")), code
                    )
                    continue
                raise ServiceError(
                    str(response.get("error", "request failed")), code
                )
            self._endpoint_ok(index)
            return response
        addresses = ", ".join(f"{host}:{port}" for host, port in self.addresses)
        attempts = self.retry.max_attempts
        raise ServiceUnavailable(
            f"tuning service unreachable at [{addresses}] after "
            f"{attempts if attempts is not None else 'deadline-bounded'} "
            f"attempts: {last}"
        ) from last

    # -- typed operations ------------------------------------------------------
    def ping(self) -> dict:
        return self.request("ping")

    def health(self) -> dict:
        """The daemon's failover probe: role, replication lag, load."""
        return self.request("health")

    @staticmethod
    def _decode_record(data: dict) -> TuningRecord:
        """Decode a record off the wire with the same staleness gate the
        shard files apply: a winner tuned under a *different cost model*
        than this client's (the schema version is already envelope-checked)
        is as unservable over TCP as it is from disk."""
        staleness = record_staleness(data)
        if staleness is not None:
            raise ServiceError(f"record rejected: {staleness}", "stale_record")
        return TuningRecord.from_json(data)

    def get(self, key: TuningKey) -> Optional[TuningRecord]:
        response = self.request("get", key=key.to_json())
        if not response.get("found"):
            return None
        return self._decode_record(response["record"])

    def hedged_get(self, key: TuningKey) -> Optional[TuningRecord]:
        """A hedged read: probe every endpoint, first answer wins.

        With one endpoint this is exactly :meth:`get`.  Otherwise each
        endpoint gets its own one-shot probe client on its own thread,
        started healthy-endpoints-first and staggered by ``hedge_delay_s``
        — so a healthy preferred endpoint still serves almost every read
        alone, while a dead or slow one only costs the stagger delay, not
        a timeout.  The first definitive answer (hit *or* miss: endpoints
        replicate from the preferred one, so its miss is authoritative)
        wins; errors only surface when every endpoint fails.
        """
        if len(self.addresses) == 1:
            return self.get(key)
        self.hedged_gets += 1
        now = time.monotonic()
        order = sorted(
            range(len(self.addresses)),
            key=lambda i: (self._down_until[i] > now, i),
        )
        results: "queue_module.Queue" = queue_module.Queue()
        settled = threading.Event()

        def probe(rank: int, index: int) -> None:
            if rank and settled.wait(self.hedge_delay_s * rank):
                results.put((index, "late", None))
                return
            try:
                with ServiceClient(
                    self.addresses[index],
                    timeout=self.timeout,
                    retry_policy=dataclasses.replace(self.retry, max_attempts=1),
                ) as one_shot:
                    results.put((index, "ok", one_shot.get(key)))
            except Exception as exc:
                results.put((index, "error", exc))

        threads = [
            threading.Thread(
                target=probe, args=(rank, index), name=f"hedged-get-{index}", daemon=True
            )
            for rank, index in enumerate(order)
        ]
        for thread in threads:
            thread.start()
        wait_s = self.timeout + self.hedge_delay_s * len(order) + 1.0
        errors: List[BaseException] = []
        for _ in threads:
            try:
                index, kind, value = results.get(timeout=wait_s)
            except queue_module.Empty:  # pragma: no cover - probe thread wedged
                break
            if kind == "ok":
                settled.set()
                self._endpoint_ok(index)
                if index != order[0]:
                    self.hedged_wins += 1
                    _metrics.count("service.client.hedged_wins")
                return value
            if kind == "error":
                self._endpoint_failed(index)
                errors.append(value)
        settled.set()
        last = errors[-1] if errors else None
        raise ServiceUnavailable(
            f"hedged get failed on every endpoint: {last}"
        ) from last

    def put(self, record: TuningRecord) -> None:
        self.request("put", record=record.to_json())

    def tune(self, key: TuningKey, sweep: Optional[str] = None) -> TuningRecord:
        """Have the *server* produce the record for ``key`` (coalesced).

        Raises :class:`ServiceError` with ``code="untunable"`` when the
        server cannot rebuild the search from the key alone.
        """
        fields = {"key": key.to_json()}
        if sweep:
            fields["sweep"] = sweep
        response = self.request("tune", _timeout=self.tune_timeout, **fields)
        return self._decode_record(response["record"])

    def stats(self) -> dict:
        return self.request("stats")

    def gc(
        self, max_records: Optional[int] = None, max_idle: Optional[float] = None
    ) -> dict:
        return self.request("gc", max_records=max_records, max_idle=max_idle)

    def warm(self, sweep: str, background: bool = False) -> dict:
        return self.request(
            "warm", sweep=sweep, background=background, _timeout=self.tune_timeout
        )

    def shutdown(self) -> dict:
        return self.request("shutdown")


class RemoteSession(TuningSession):
    """A tuning session backed by remote daemons: memory -> server -> miss.

    Drop-in for every ``session=`` parameter in the pipeline::

        session = RemoteSession(
            [("tuner.fleet", 9461), ("tuner-replica.fleet", 9461)],
            fallback_store="local_store",
        )
        compile_model(get_model("resnet-18"), session=session)

    ``address`` takes everything :func:`normalize_addresses` does; with
    more than one endpoint, reads are hedged (:meth:`ServiceClient.hedged_get`)
    and any transport failure rolls over to the next endpoint, so killing
    the primary costs a reconnect, not the warm corpus.

    On a cache miss the session asks the daemon for the record; if the
    daemon does not have it, the daemon *searches for it* (request-coalesced
    with every other client asking for the same key) and only keys the
    server cannot rebuild are searched locally.  Fresh local records are
    published back to the server so the fleet's corpus stays warm.

    ``speculate`` optionally names the sweep this session's keys belong to
    (a model-zoo name or ``"table1"``); it rides along on tune requests and
    prompts the daemon to pre-tune the sweep's remaining layers during idle
    time.

    Availability is a :class:`~repro.retry.CircuitBreaker`:
    ``breaker_failures`` consecutive outages (default 1 — one transport
    failure already proves the fleet unreachable *through every endpoint*)
    open it for ``offline_cooldown_s``, escalating on repeated trips; a
    half-open probe then tests recovery.  While open, lookups and publishes
    fall back to ``fallback_store`` (a local :class:`ShardedTuningStore` or
    path, optional).  A protocol version mismatch trips the breaker
    permanently.  ``strategy`` must stay result-deterministic for
    server-tuned records to be interchangeable with local ones; the
    approximate ``early_exit`` namespace is never sent to the server (its
    keys are declined there by construction).
    """

    def __init__(
        self,
        address,
        cache: Optional[TuningCache] = None,
        strategy: str = "exhaustive",
        max_workers: Optional[int] = None,
        early_exit_k: int = 8,
        fallback_store=None,
        timeout: float = 10.0,
        tune_timeout: float = 300.0,
        retries: Optional[int] = None,
        retry_policy: Optional[RetryPolicy] = None,
        offline_cooldown_s: float = 5.0,
        breaker_failures: int = 1,
        speculate: Optional[str] = None,
        server_tune: bool = True,
    ) -> None:
        super().__init__(
            cache=cache,
            strategy=strategy,
            max_workers=max_workers,
            early_exit_k=early_exit_k,
            store=None,
        )
        self.client = ServiceClient(
            address,
            timeout=timeout,
            tune_timeout=tune_timeout,
            retries=retries,
            retry_policy=retry_policy,
        )
        if fallback_store is not None and not isinstance(fallback_store, ShardedTuningStore):
            fallback_store = ShardedTuningStore(fallback_store)
        self.fallback_store = fallback_store
        self.offline_cooldown_s = offline_cooldown_s
        self.breaker = CircuitBreaker(
            failure_threshold=breaker_failures,
            reset_timeout_s=offline_cooldown_s,
        )
        self.speculate = speculate
        self.server_tune = server_tune
        self.server_hits = 0
        self.server_tunes = 0
        self.server_declines = 0
        self.offline_errors = 0
        self.local_fallbacks = 0
        self.incompatible: Optional[str] = None

    # -- availability ----------------------------------------------------------
    @property
    def online(self) -> bool:
        """Whether the session is currently willing to talk to the daemon
        (the breaker is closed, or half-open and due a probe)."""
        return self.breaker.allow()

    def _mark_down(self) -> None:
        self.offline_errors += 1
        self.breaker.record_failure()

    def _mark_up(self) -> None:
        self.breaker.record_success()

    def force_offline(self) -> None:
        """Pin the session to its local tiers (drills, tests): the breaker
        opens permanently, so every lookup and publish uses the fallback
        store from now on."""
        self.breaker.trip(forever=True)

    def _note_error(self, exc: ServiceError) -> None:
        """A server-reported error: most are per-request, but a version
        mismatch can never heal within this process — trip the breaker
        permanently (activating the fallback-store tier) instead of
        silently re-tuning everything locally and persisting nothing."""
        if exc.code == "version_mismatch" and self.incompatible is None:
            self.incompatible = str(exc)
            self.breaker.trip(forever=True)
            warnings.warn(
                f"tuning service at {self.client.address[0]}:"
                f"{self.client.address[1]} is version-incompatible; "
                f"falling back to local tuning permanently: {exc}",
                RuntimeWarning,
                stacklevel=3,
            )

    # -- lookup tiers ----------------------------------------------------------
    def _server_get(self, key: TuningKey) -> Optional[TuningRecord]:
        if len(self.client.addresses) > 1:
            return self.client.hedged_get(key)
        return self.client.get(key)

    def _lookup(self, key: TuningKey) -> Optional[TuningRecord]:
        """Memory -> server (hedged across endpoints) -> (offline: local
        fallback store) -> miss."""
        record = self.cache.lookup(key)
        if record is not None:
            return record
        if self.online:
            record = None
            try:
                record = self._server_get(key)
            except ServiceUnavailable:
                self._mark_down()
            except ServiceError as exc:
                self._note_error(exc)
            else:
                self._mark_up()
            if record is not None:
                self.server_hits += 1
                _metrics.count("service.client.server_hits")
                self.cache.insert(record)
                return record
        if not self.online and self.fallback_store is not None:
            record = self.fallback_store.get(key)
            if record is not None:
                self.local_fallbacks += 1
                self.cache.insert(record)
                return record
        return None

    def _publish(self, record: TuningRecord) -> None:
        """Into memory always; to the server when up, the fallback when not.

        A server refusal (stale/corrupt by *its* rules, version mismatch)
        still writes the fallback store: the record was produced and
        validated under this client's cost model, and the fallback store
        shares that model.
        """
        self.cache.insert(record)
        if self.online:
            try:
                self.client.put(record)
            except ServiceUnavailable:
                self._mark_down()
            except ServiceError as exc:
                self._note_error(exc)
            else:
                self._mark_up()
                return
        if self.fallback_store is not None:
            self.fallback_store.put(record)

    # -- the tune entry point --------------------------------------------------
    def tune(
        self,
        key: TuningKey,
        candidates: Sequence,
        evaluate: Callable[[object], CostBreakdown],
        validate: Optional[Callable[[object], None]] = None,
        precheck: Optional[Callable[[object], None]] = None,
        *,
        oracle: Optional[Callable[[object], None]] = None,
        validation=None,
    ) -> TuningRecord:
        from ..rewriter.session import _apply_validation_policy

        oracle, precheck = _apply_validation_policy(validate, oracle, precheck, validation)
        key = self._record_key(key)
        record = self._lookup(key)
        if record is not None:
            return record
        if self.server_tune and self.online and "!" not in key.space:
            try:
                record = self.client.tune(key, sweep=self.speculate)
            except ServiceUnavailable:
                self._mark_down()
            except ServiceError as exc:
                self.server_declines += 1
                self._note_error(exc)
            else:
                self._mark_up()
                self.server_tunes += 1
                _metrics.count("service.client.server_tunes")
                self.cache.insert(record)
                return record
        return self._search_and_record(key, candidates, evaluate, oracle, precheck)

    # -- accounting ------------------------------------------------------------
    def summary(self) -> str:
        base = super().summary()
        state = "online" if self.online else "OFFLINE"
        endpoints = ",".join(f"{host}:{port}" for host, port in self.client.addresses)
        return (
            f"{base} | remote[{endpoints} {state}, "
            f"breaker {self.breaker.state}]: {self.server_hits} server hits, "
            f"{self.server_tunes} server tunes, {self.server_declines} declines, "
            f"{self.local_fallbacks} local fallbacks, {self.offline_errors} outages, "
            f"{self.client.failovers} failovers"
        )

    def close(self) -> None:
        self.client.close()
