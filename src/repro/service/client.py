"""The tuning service's client side: RPC transport + a drop-in session.

:class:`ServiceClient` is the transport: one persistent TCP connection,
length-prefixed JSON frames, per-request timeout, bounded reconnect-retry,
and version checking on every response.  Transport failures raise
:class:`ServiceUnavailable`; server-reported failures raise
:class:`ServiceError` carrying the machine-readable ``code`` (e.g.
``"version_mismatch"``, ``"untunable"``).

:class:`RemoteSession` is the drop-in: a
:class:`~repro.rewriter.session.TuningSession` whose lookup tier order is
**memory -> server -> miss**, so ``compile_model(session=RemoteSession(...))``
and every figure driver in :mod:`repro.core.experiments` tune against the
daemon transparently.  On a miss it first asks the server to run the search
(coalesced fleet-wide — see :mod:`repro.service.server`); only if the server
declines (custom candidate lists, approximate strategies) or is unreachable
does it search locally.  When the daemon is unreachable the session degrades
gracefully: lookups and publishes fall back to an optional local
:class:`~repro.rewriter.store.ShardedTuningStore` and the server is retried
after a cooldown, so a dead daemon costs availability of the *shared* corpus,
never correctness.
"""

from __future__ import annotations

import socket
import time
import warnings
from typing import Callable, Optional, Sequence, Tuple

from ..hwsim.cost import CostBreakdown
from ..rewriter.records import TuningCache, TuningKey, TuningRecord, record_staleness
from ..rewriter.session import TuningSession
from ..rewriter.store import ShardedTuningStore
from . import protocol

__all__ = ["ServiceClient", "ServiceError", "ServiceUnavailable", "RemoteSession"]


class ServiceUnavailable(ConnectionError):
    """The daemon could not be reached (or died mid-request) after retries."""


class ServiceError(RuntimeError):
    """The daemon answered with an error response."""

    def __init__(self, message: str, code: str = "error") -> None:
        super().__init__(message)
        self.code = code


class ServiceClient:
    """One persistent connection to a :class:`~repro.service.server.TuningService`.

    ``timeout`` bounds each socket operation; ``tune_timeout`` bounds the
    blocking ``tune``/``warm`` requests (the server may be running a search
    on our behalf).  A failed request closes the connection and retries up
    to ``retries`` times (fresh connection each time) before raising
    :class:`ServiceUnavailable`.  Not thread-safe: give each thread its own
    client (connections are cheap; records are not).
    """

    def __init__(
        self,
        address: Tuple[str, int],
        timeout: float = 10.0,
        tune_timeout: float = 300.0,
        retries: int = 2,
        retry_backoff_s: float = 0.05,
    ) -> None:
        self.address = (str(address[0]), int(address[1]))
        self.timeout = timeout
        self.tune_timeout = tune_timeout
        self.retries = retries
        self.retry_backoff_s = retry_backoff_s
        self._sock: Optional[socket.socket] = None
        self.requests_sent = 0
        self.reconnects = 0

    # -- transport ------------------------------------------------------------
    def _connect(self) -> socket.socket:
        if self._sock is None:
            sock = socket.create_connection(self.address, timeout=self.timeout)
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            self._sock = sock
            self.reconnects += 1
        return self._sock

    def close(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            finally:
                self._sock = None

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def request(self, op: str, *, _timeout: Optional[float] = None, **fields) -> dict:
        """Send one request; returns the ``ok`` response payload.

        Raises :class:`ServiceError` for server-reported failures (no
        retry — the server is healthy, the request is not) and
        :class:`ServiceUnavailable` after transport-level retries run out.
        """
        message = protocol.request(op, **fields)
        last: Optional[Exception] = None
        for attempt in range(self.retries + 1):
            if attempt:
                time.sleep(self.retry_backoff_s * attempt)
            try:
                sock = self._connect()
                sock.settimeout(_timeout if _timeout is not None else self.timeout)
                protocol.send_message(sock, message)
                response = protocol.recv_message(sock)
                self.requests_sent += 1
            except (OSError, protocol.ProtocolError, protocol.ConnectionClosed) as exc:
                self.close()
                last = exc
                continue
            mismatch = protocol.check_versions(response)
            if mismatch is not None:
                raise ServiceError(*mismatch)
            if not response.get("ok"):
                raise ServiceError(
                    str(response.get("error", "request failed")),
                    str(response.get("code", "error")),
                )
            return response
        raise ServiceUnavailable(
            f"tuning service at {self.address[0]}:{self.address[1]} "
            f"unreachable after {self.retries + 1} attempts: {last}"
        ) from last

    # -- typed operations ------------------------------------------------------
    def ping(self) -> dict:
        return self.request("ping")

    @staticmethod
    def _decode_record(data: dict) -> TuningRecord:
        """Decode a record off the wire with the same staleness gate the
        shard files apply: a winner tuned under a *different cost model*
        than this client's (the schema version is already envelope-checked)
        is as unservable over TCP as it is from disk."""
        staleness = record_staleness(data)
        if staleness is not None:
            raise ServiceError(f"record rejected: {staleness}", "stale_record")
        return TuningRecord.from_json(data)

    def get(self, key: TuningKey) -> Optional[TuningRecord]:
        response = self.request("get", key=key.to_json())
        if not response.get("found"):
            return None
        return self._decode_record(response["record"])

    def put(self, record: TuningRecord) -> None:
        self.request("put", record=record.to_json())

    def tune(self, key: TuningKey, sweep: Optional[str] = None) -> TuningRecord:
        """Have the *server* produce the record for ``key`` (coalesced).

        Raises :class:`ServiceError` with ``code="untunable"`` when the
        server cannot rebuild the search from the key alone.
        """
        fields = {"key": key.to_json()}
        if sweep:
            fields["sweep"] = sweep
        response = self.request("tune", _timeout=self.tune_timeout, **fields)
        return self._decode_record(response["record"])

    def stats(self) -> dict:
        return self.request("stats")

    def gc(
        self, max_records: Optional[int] = None, max_idle: Optional[float] = None
    ) -> dict:
        return self.request("gc", max_records=max_records, max_idle=max_idle)

    def warm(self, sweep: str, background: bool = False) -> dict:
        return self.request(
            "warm", sweep=sweep, background=background, _timeout=self.tune_timeout
        )

    def shutdown(self) -> dict:
        return self.request("shutdown")


class RemoteSession(TuningSession):
    """A tuning session backed by a remote daemon: memory -> server -> miss.

    Drop-in for every ``session=`` parameter in the pipeline::

        session = RemoteSession(("tuner.fleet", 9461), fallback_store="local_store")
        compile_model(get_model("resnet-18"), session=session)

    On a cache miss the session asks the daemon for the record; if the
    daemon does not have it, the daemon *searches for it* (request-coalesced
    with every other client asking for the same key) and only keys the
    server cannot rebuild are searched locally.  Fresh local records are
    published back to the server so the fleet's corpus stays warm.

    ``speculate`` optionally names the sweep this session's keys belong to
    (a model-zoo name or ``"table1"``); it rides along on tune requests and
    prompts the daemon to pre-tune the sweep's remaining layers during idle
    time.

    When the daemon is unreachable the session keeps working: lookups and
    publishes fall back to ``fallback_store`` (a local
    :class:`ShardedTuningStore` or path, optional) and the server is
    retried after ``offline_cooldown_s``.  ``strategy`` must stay
    result-deterministic for server-tuned records to be interchangeable
    with local ones; the approximate ``early_exit`` namespace is never sent
    to the server (its keys are declined there by construction).
    """

    def __init__(
        self,
        address: Tuple[str, int],
        cache: Optional[TuningCache] = None,
        strategy: str = "exhaustive",
        max_workers: Optional[int] = None,
        early_exit_k: int = 8,
        fallback_store=None,
        timeout: float = 10.0,
        tune_timeout: float = 300.0,
        retries: int = 2,
        offline_cooldown_s: float = 5.0,
        speculate: Optional[str] = None,
        server_tune: bool = True,
    ) -> None:
        super().__init__(
            cache=cache,
            strategy=strategy,
            max_workers=max_workers,
            early_exit_k=early_exit_k,
            store=None,
        )
        self.client = ServiceClient(
            address, timeout=timeout, tune_timeout=tune_timeout, retries=retries
        )
        if fallback_store is not None and not isinstance(fallback_store, ShardedTuningStore):
            fallback_store = ShardedTuningStore(fallback_store)
        self.fallback_store = fallback_store
        self.offline_cooldown_s = offline_cooldown_s
        self.speculate = speculate
        self.server_tune = server_tune
        self._down_until = 0.0
        self.server_hits = 0
        self.server_tunes = 0
        self.server_declines = 0
        self.offline_errors = 0
        self.local_fallbacks = 0
        self.incompatible: Optional[str] = None

    # -- availability ----------------------------------------------------------
    @property
    def online(self) -> bool:
        """Whether the session is currently willing to talk to the daemon."""
        return time.monotonic() >= self._down_until

    def _mark_down(self) -> None:
        self.offline_errors += 1
        self._down_until = time.monotonic() + self.offline_cooldown_s

    def _note_error(self, exc: ServiceError) -> None:
        """A server-reported error: most are per-request, but a version
        mismatch can never heal within this process — go permanently
        offline (activating the fallback-store tier) instead of silently
        re-tuning everything locally and persisting nothing."""
        if exc.code == "version_mismatch" and self.incompatible is None:
            self.incompatible = str(exc)
            self._down_until = float("inf")
            warnings.warn(
                f"tuning service at {self.client.address[0]}:"
                f"{self.client.address[1]} is version-incompatible; "
                f"falling back to local tuning permanently: {exc}",
                RuntimeWarning,
                stacklevel=3,
            )

    # -- lookup tiers ----------------------------------------------------------
    def _lookup(self, key: TuningKey) -> Optional[TuningRecord]:
        """Memory -> server -> (offline: local fallback store) -> miss."""
        record = self.cache.lookup(key)
        if record is not None:
            return record
        if self.online:
            record = None
            try:
                record = self.client.get(key)
            except ServiceUnavailable:
                self._mark_down()
            except ServiceError as exc:
                self._note_error(exc)
            if record is not None:
                self.server_hits += 1
                self.cache.insert(record)
                return record
        if not self.online and self.fallback_store is not None:
            record = self.fallback_store.get(key)
            if record is not None:
                self.local_fallbacks += 1
                self.cache.insert(record)
                return record
        return None

    def _publish(self, record: TuningRecord) -> None:
        """Into memory always; to the server when up, the fallback when not.

        A server refusal (stale/corrupt by *its* rules, version mismatch)
        still writes the fallback store: the record was produced and
        validated under this client's cost model, and the fallback store
        shares that model.
        """
        self.cache.insert(record)
        if self.online:
            try:
                self.client.put(record)
                return
            except ServiceUnavailable:
                self._mark_down()
            except ServiceError as exc:
                self._note_error(exc)
        if self.fallback_store is not None:
            self.fallback_store.put(record)

    # -- the tune entry point --------------------------------------------------
    def tune(
        self,
        key: TuningKey,
        candidates: Sequence,
        evaluate: Callable[[object], CostBreakdown],
        validate: Optional[Callable[[object], None]] = None,
        precheck: Optional[Callable[[object], None]] = None,
    ) -> TuningRecord:
        key = self._record_key(key)
        record = self._lookup(key)
        if record is not None:
            return record
        if self.server_tune and self.online and "!" not in key.space:
            try:
                record = self.client.tune(key, sweep=self.speculate)
            except ServiceUnavailable:
                self._mark_down()
            except ServiceError as exc:
                self.server_declines += 1
                self._note_error(exc)
            else:
                self.server_tunes += 1
                self.cache.insert(record)
                return record
        return self._search_and_record(key, candidates, evaluate, validate, precheck)

    # -- accounting ------------------------------------------------------------
    def summary(self) -> str:
        base = super().summary()
        state = "online" if self.online else "OFFLINE"
        return (
            f"{base} | remote[{self.client.address[0]}:{self.client.address[1]} "
            f"{state}]: {self.server_hits} server hits, "
            f"{self.server_tunes} server tunes, {self.server_declines} declines, "
            f"{self.local_fallbacks} local fallbacks, {self.offline_errors} outages"
        )

    def close(self) -> None:
        self.client.close()
