"""Loop reorganization (Section III-C.1).

Given an Inspector result, tile every mapped operation loop by the trip count
of its instruction loop, reorder the inner tiles to the innermost positions in
the instruction's own loop order, and mark the innermost nest with the
``tensorize`` pragma.  The result is a :class:`TensorizeSpec` carrying the
schedule plus the bookkeeping the replacement pass needs (which inner leaf
variable corresponds to which instruction loop variable).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..dsl.axis import IterAxis
from ..dsl.expr import Var
from ..inspector.access import LoopMapping
from ..inspector.inspector import InspectionResult
from ..schedule.schedule import LoopVar, Schedule, Stage, create_schedule

__all__ = ["TensorizeError", "TensorizeSpec", "reorganize_loops"]


class TensorizeError(Exception):
    """Raised when an operation cannot be (perfectly) tensorized."""


@dataclass
class TensorizeSpec:
    """The reorganized schedule plus the instruction-injection bookkeeping."""

    inspection: InspectionResult
    mapping: LoopMapping
    schedule: Schedule
    stage: Stage
    # Outer (tile) loop for every mapped operation axis.
    outer_loops: Dict[IterAxis, LoopVar] = field(default_factory=dict)
    # Inner (tensorized) loop for every mapped operation axis.
    inner_loops: Dict[IterAxis, LoopVar] = field(default_factory=dict)
    # Inner leaf loop variable -> instruction loop variable.
    leaf_to_intrin_var: Dict[Var, Var] = field(default_factory=dict)

    @property
    def intrinsic(self):
        return self.inspection.intrinsic

    @property
    def operation(self):
        return self.inspection.operation

    @property
    def tensorized_leaves(self) -> List[LoopVar]:
        """The inner loops, in instruction loop order (outermost first)."""
        order = []
        for instr_ax in self.intrinsic.op.all_axes:
            for op_ax, mapped in self.mapping.axis_map.items():
                if mapped is instr_ax:
                    order.append(self.inner_loops[op_ax])
        return order

    @property
    def outer_data_parallel_leaves(self) -> List[LoopVar]:
        inner = set(self.tensorized_leaves)
        return [
            l for l in self.stage.leaf_vars if not l.is_reduce and l not in inner
        ]

    @property
    def outer_reduce_leaves(self) -> List[LoopVar]:
        inner = set(self.tensorized_leaves)
        return [l for l in self.stage.leaf_vars if l.is_reduce and l not in inner]


def reorganize_loops(
    inspection: InspectionResult,
    mapping: Optional[LoopMapping] = None,
    allow_padding: bool = False,
) -> TensorizeSpec:
    """Tile, reorder and mark the loops selected by the Inspector.

    The mapped loops must tile perfectly (their extents divisible by the
    instruction loop trip counts); the paper relies on graph-level tensor
    padding to guarantee this, and :mod:`repro.graph.layout` performs that
    padding.  ``allow_padding`` keeps the error message actionable when the
    caller forgot to pad.
    """
    if not inspection.applicable:
        raise TensorizeError(
            f"operation {inspection.operation.name!r} is not tensorizable with "
            f"{inspection.intrinsic.name!r}: {inspection.reason}"
        )
    mapping = mapping or inspection.mapping
    intrin = inspection.intrinsic
    op = inspection.operation

    schedule = create_schedule(op)
    stage = schedule.stage

    outer_loops: Dict[IterAxis, LoopVar] = {}
    inner_loops: Dict[IterAxis, LoopVar] = {}
    leaf_to_intrin: Dict[Var, Var] = {}

    for op_axis, instr_axis in mapping.axis_map.items():
        factor = instr_axis.extent
        root_loop = stage[op_axis]
        if root_loop.extent % factor != 0:
            message = (
                f"loop {op_axis.name!r} (extent {root_loop.extent}) is not "
                f"divisible by the instruction loop {instr_axis.name!r} "
                f"(extent {factor}); pad the tensor shapes at graph level"
            )
            if not allow_padding:
                raise TensorizeError(message)
        outer, inner = stage.split(root_loop, factor)
        outer_loops[op_axis] = outer
        inner_loops[op_axis] = inner
        leaf_to_intrin[inner.var] = instr_axis.var

    # Reorder: every non-tensorized leaf keeps its relative order and the
    # tensorized inner loops go innermost, in the instruction's loop order.
    inner_in_instr_order: List[LoopVar] = []
    for instr_axis in intrin.op.all_axes:
        for op_axis, mapped in mapping.axis_map.items():
            if mapped is instr_axis:
                inner_in_instr_order.append(inner_loops[op_axis])
    inner_set = set(inner_in_instr_order)
    outer_leaves = [l for l in stage.leaf_vars if l not in inner_set]
    stage.reorder(*(outer_leaves + inner_in_instr_order))

    # Mark the innermost nest for instruction injection.
    stage.tensorize(inner_in_instr_order[0], intrin)

    return TensorizeSpec(
        inspection=inspection,
        mapping=mapping,
        schedule=schedule,
        stage=stage,
        outer_loops=outer_loops,
        inner_loops=inner_loops,
        leaf_to_intrin_var=leaf_to_intrin,
    )
