"""Distributed tuning workers: many processes, one sharded record store.

The paper's tuning loop is embarrassingly parallel across *tuning problems*
(one per distinct workload x instruction x machine x space), and PR 1 already
parallelised the candidate evaluations of a single problem across threads.
This module adds the missing axis: a pool of **processes** that split the
problem space and publish their winners into one
:class:`~repro.rewriter.store.ShardedTuningStore`.

* a :class:`TuningTask` names one tuning problem in picklable, process-
  portable terms (workload params + runner/machine/intrinsic/space names);
* a :class:`LeaseFile` hands out disjoint slices of the task list: every
  claim appends one line under a cross-process lock, so no two workers ever
  tune the same slice and no slice is skipped;
* :class:`DistributedTuner` spawns N worker processes; each builds its own
  runner and a :class:`~repro.rewriter.session.TuningSession` backed by the
  shared store, claims slices until the lease is exhausted, and runs the
  in-process search (``parallel_search`` / ``early_exit_search`` — the
  session's strategy) for each claimed task.

Because every task is searched whole by exactly one worker with a
result-deterministic strategy, reloading the store afterwards yields
bit-identical best configs to a single-process
:meth:`TuningSession.tune <repro.rewriter.session.TuningSession.tune>` sweep
— asserted by the test suite and the CI ``tuning-stress`` job.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..retry import RetryPolicy
from .session import TuningSession
from .store import FileLock, LockTimeout, ShardedTuningStore, StoreStats

__all__ = [
    "TuningTask",
    "LeaseFile",
    "DistributedTuner",
    "WorkerReport",
    "DistributedReport",
    "run_task",
    "tasks_from_layers",
    "tasks_from_graph",
    "task_from_key",
]

_TASK_METHODS = {
    "conv2d": "conv2d_latency",
    "conv3d": "conv3d_latency",
    "dense": "dense_latency",
}

# Per-target runner construction defaults, mirroring ``compile_model``.
_TARGET_RUNNERS = {
    "x86": ("cpu", "cascade-lake", "x86.avx512.vpdpbusd", "full"),
    "arm": ("cpu", "graviton2", "arm.neon.sdot", "full"),
    "cuda": ("gpu", "v100", "nvvm.wmma.m16n16k16.mma.row.row.f32.f32", "tune"),
}


@dataclass(frozen=True)
class TuningTask:
    """One tuning problem, described portably enough to ship to a worker.

    ``params`` is the workload-parameter dataclass (picklable); the rest are
    names resolved inside the worker (``machine`` via
    :func:`repro.hwsim.machine_by_name`).  ``tuning`` is the CPU runner's
    ``tuning=`` mode or the GPU runner's ``mode=``.
    """

    kind: str  # "conv2d" | "conv3d" | "dense"
    params: object
    runner: str = "cpu"  # "cpu" | "gpu"
    machine: str = "cascade-lake"
    intrinsic: str = "x86.avx512.vpdpbusd"
    tuning: str = "full"

    def describe(self) -> str:
        name = getattr(self.params, "describe", lambda: repr(self.params))()
        return f"{self.kind}[{name}] on {self.machine}/{self.intrinsic} ({self.tuning})"


def build_runner(task: TuningTask, session: TuningSession):
    """Construct the operator runner a task tunes through."""
    from ..core.pipeline import UnitCpuRunner, UnitGpuRunner
    from ..hwsim.machine import machine_by_name

    machine = machine_by_name(task.machine)
    if task.runner == "cpu":
        return UnitCpuRunner(machine, task.intrinsic, tuning=task.tuning, session=session)
    if task.runner == "gpu":
        return UnitGpuRunner(machine, task.intrinsic, mode=task.tuning, session=session)
    raise ValueError(f"unknown runner kind {task.runner!r}")


def run_task(task: TuningTask, session: TuningSession):
    """Tune one task through ``session``; returns its best CostBreakdown.

    When the session is store-backed this both *reads* any record another
    worker already published and *publishes* a fresh search's winner.
    """
    if task.kind not in _TASK_METHODS:
        raise ValueError(f"unknown task kind {task.kind!r}")
    runner = build_runner(task, session)
    return getattr(runner, _TASK_METHODS[task.kind])(task.params)


def tasks_from_layers(
    layers: Sequence,
    kind: str = "conv2d",
    runner: str = "cpu",
    machine: str = "cascade-lake",
    intrinsic: str = "x86.avx512.vpdpbusd",
    tuning: str = "full",
) -> List[TuningTask]:
    """One task per workload-parameter object (e.g. the Table I layer set)."""
    return [
        TuningTask(
            kind=kind,
            params=params,
            runner=runner,
            machine=machine,
            intrinsic=intrinsic,
            tuning=tuning,
        )
        for params in layers
    ]


def tasks_from_graph(
    graph, target: str = "x86", quantize: bool = True, fuse: bool = True
) -> List[TuningTask]:
    """The tuning problems ``compile_model(graph, target)`` would hit.

    Applies the same graph passes as ``compile_model`` and collects one task
    per *distinct* tunable operator (convolutions and dense layers — the
    nodes the default UNIT runners search a schedule space for), so a
    distributed pre-tuning pass warms exactly the records the subsequent
    compile will look up.
    """
    if target not in _TARGET_RUNNERS:
        raise ValueError(f"unknown target {target!r}")
    from ..graph.fuse import fuse_elementwise
    from ..graph.ir import Conv2DNode, DenseNode
    from ..graph.quantize import quantize_graph
    from .records import params_fingerprint

    runner, machine, intrinsic, tuning = _TARGET_RUNNERS[target]
    work = graph
    if quantize:
        work = quantize_graph(work, "float16" if target == "cuda" else "int8")
    if fuse:
        work = fuse_elementwise(work)
    work.infer_shapes()
    tasks: List[TuningTask] = []
    seen = set()
    for node in work.nodes:
        if isinstance(node, Conv2DNode):
            kind, params = "conv2d", node.conv_params()
        elif isinstance(node, DenseNode):
            kind, params = "dense", node.dense_params()
        else:
            continue
        identity = (kind, params_fingerprint(params))
        if identity in seen:
            continue
        seen.add(identity)
        tasks.append(
            TuningTask(
                kind=kind,
                params=params,
                runner=runner,
                machine=machine,
                intrinsic=intrinsic,
                tuning=tuning,
            )
        )
    return tasks


_CPU_MODES = ("parallel", "first_pair", "full")
_GPU_MODES = ("generic", "fusedim", "splitk", "tune")


def task_from_key(key) -> Optional[TuningTask]:
    """Reconstruct the :class:`TuningTask` a runner-generated key came from.

    A :class:`~repro.rewriter.records.TuningKey` built by the default UNIT
    runners carries everything a fresh search needs: the workload kind and
    full parameter fingerprint, the intrinsic and machine names, and the
    tuning mode as the label half of its space fingerprint
    (``"<mode>@<digest>"``).  This inverts that construction so a *remote*
    peer holding only the key — the tuning service handling a ``tune``
    request — can run the search itself.

    Returns ``None`` for keys that cannot round-trip: library-baseline
    spaces, approximate-strategy namespaces (``...!early_exit:k``), custom
    candidate lists (their space digest will not match the rebuilt runner's
    — the caller must verify, see :func:`repro.service.server`), unknown
    machines, or parameter tuples that do not rebuild the workload
    dataclass.
    """
    from ..hwsim.machine import GpuSpec, machine_by_name
    from ..workloads.conv2d import Conv2DParams
    from ..workloads.conv3d import Conv3DParams
    from ..workloads.dense import DenseParams

    param_types = {"conv2d": Conv2DParams, "conv3d": Conv3DParams, "dense": DenseParams}
    cls = param_types.get(key.kind)
    if cls is None or "@" not in key.space or "!" in key.space:
        return None
    label = key.space.split("@", 1)[0]
    try:
        machine = machine_by_name(key.machine)
    except KeyError:
        return None
    runner = "gpu" if isinstance(machine, GpuSpec) else "cpu"
    if label not in (_GPU_MODES if runner == "gpu" else _CPU_MODES):
        return None
    try:
        params = cls(**dict(key.params))
    except TypeError:
        return None
    from .records import params_fingerprint

    if params_fingerprint(params) != tuple(key.params):
        return None
    return TuningTask(
        kind=key.kind,
        params=params,
        runner=runner,
        machine=key.machine,
        intrinsic=key.intrinsic,
        tuning=label,
    )


class LeaseFile:
    """Disjoint work claiming across processes, one JSONL line per claim.

    Workers call :meth:`claim` with the total task count; under a
    cross-process lock the claimer reads every existing claim, takes the
    lowest ``batch`` unclaimed indices, and appends its own claim line
    (fsynced before the lock is released).  Claims are therefore disjoint by
    construction and — since a worker keeps claiming until it gets an empty
    slice — jointly exhaustive once all workers finish, which is what makes
    the pool self-balancing: a worker stuck on a slow task simply claims
    fewer slices.
    """

    def __init__(self, path, timeout: float = 30.0) -> None:
        self.path = os.fspath(path)
        self._lock = FileLock(self.path + ".lock", timeout=timeout)

    def claims(self) -> Dict[int, str]:
        """Every claimed index -> claimer id (undecodable lines ignored)."""
        claimed: Dict[int, str] = {}
        if not os.path.exists(self.path):
            return claimed
        with open(self.path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    data = json.loads(line)
                    for index in data["indices"]:
                        claimed[int(index)] = str(data.get("worker", "?"))
                except (ValueError, KeyError, TypeError):
                    continue
        return claimed

    def claim(self, worker: str, total: int, batch: int = 1) -> List[int]:
        """Atomically claim up to ``batch`` unclaimed indices below ``total``."""
        with self._lock:
            claimed = self.claims()
            free = [i for i in range(total) if i not in claimed][: max(1, batch)]
            if free:
                entry = {"worker": worker, "pid": os.getpid(), "indices": free}
                with open(self.path, "a", encoding="utf-8") as handle:
                    handle.write(json.dumps(entry) + "\n")
                    handle.flush()
                    os.fsync(handle.fileno())
            return free


@dataclass
class WorkerReport:
    """What one worker process did, shipped back over the result queue."""

    worker: str
    task_indices: List[int]
    trials: int
    searches: int
    store_hits: int
    seconds: float
    store: StoreStats

    @property
    def tasks_done(self) -> int:
        return len(self.task_indices)


@dataclass
class DistributedReport:
    """The outcome of one :meth:`DistributedTuner.run`."""

    tasks: int
    elapsed_s: float
    workers: List[WorkerReport] = field(default_factory=list)

    @property
    def trials(self) -> int:
        return sum(w.trials for w in self.workers)

    @property
    def searches(self) -> int:
        return sum(w.searches for w in self.workers)

    def claimed_indices(self) -> List[int]:
        return sorted(i for w in self.workers for i in w.task_indices)

    @property
    def complete(self) -> bool:
        """Every task claimed exactly once (disjoint and exhaustive)."""
        return self.claimed_indices() == list(range(self.tasks))

    def store_stats(self) -> StoreStats:
        total = StoreStats()
        for report in self.workers:
            for key, value in report.store.as_dict().items():
                setattr(total, key, getattr(total, key) + value)
        return total

    def summary(self) -> str:
        stats = self.store_stats()
        return (
            f"DistributedTuner: {self.tasks} tasks over {len(self.workers)} workers "
            f"in {self.elapsed_s:.2f}s — {self.trials} trials, "
            f"{self.searches} searches, {stats.appends} store appends, "
            f"{stats.lock_contentions} lock contentions "
            f"({stats.lock_wait_seconds * 1e3:.1f} ms waiting)"
        )


def _worker_main(
    worker_id: str,
    store_root: str,
    shards: int,
    tasks: Sequence[TuningTask],
    lease_path: str,
    strategy: str,
    max_workers: Optional[int],
    early_exit_k: int,
    batch: int,
    lock_timeout: float,
    queue,
) -> None:
    """Worker entry point (module-level so ``spawn`` contexts can pickle it)."""
    start = time.perf_counter()
    store = ShardedTuningStore(store_root, shards=shards, lock_timeout=lock_timeout)
    session = TuningSession(
        store=store,
        strategy=strategy,
        max_workers=max_workers,
        early_exit_k=early_exit_k,
    )
    lease = LeaseFile(lease_path, timeout=lock_timeout)
    # A claim that loses the lease lock to a slow sibling is transient, not
    # a dead worker: retry it on a capped-exponential schedule (seeded by
    # pid, so colliding workers decorrelate) before giving up for real.
    claim_retry = RetryPolicy(
        max_attempts=3,
        base_delay_s=0.05,
        max_delay_s=1.0,
        transient=(LockTimeout,),
        seed=os.getpid(),
    )
    done: List[int] = []
    try:
        while True:
            indices = claim_retry.call(
                lambda: lease.claim(worker_id, len(tasks), batch=batch)
            )
            if not indices:
                break
            for index in indices:
                run_task(tasks[index], session)
                done.append(index)
    finally:
        # Persist this worker's buffered last-served stamps even on the
        # failure path: records published here must not look never-served
        # to a later `evict(max_idle=)` pass.
        store.flush_touches()
    queue.put(
        WorkerReport(
            worker=worker_id,
            task_indices=done,
            trials=session.trials_run,
            searches=session.searches_run,
            store_hits=session.store_hits,
            seconds=time.perf_counter() - start,
            store=store.stats,
        )
    )


class DistributedTuner:
    """A pool of tuning worker processes feeding one sharded store.

    ``strategy``/``max_workers``/``early_exit_k`` configure each worker's
    in-process search (see :class:`TuningSession`); the default ``"parallel"``
    strategy is result-identical to exhaustive search, preserving the
    bit-identical-to-single-process guarantee.  ``batch`` is how many tasks a
    worker leases at a time: 1 maximises balance, larger batches reduce lease
    traffic.

    ``start_method`` picks the :mod:`multiprocessing` context (``"fork"`` on
    POSIX by default, ``"spawn"`` elsewhere — both are supported since the
    worker entry point is a module-level function fed picklable arguments).
    """

    def __init__(
        self,
        store: ShardedTuningStore,
        workers: int = 4,
        strategy: str = "parallel",
        max_workers: Optional[int] = None,
        early_exit_k: int = 8,
        batch: int = 1,
        start_method: Optional[str] = None,
        join_timeout: float = 300.0,
    ) -> None:
        if not isinstance(store, ShardedTuningStore):
            store = ShardedTuningStore(store)
        if workers < 1:
            raise ValueError("DistributedTuner needs at least one worker")
        self.store = store
        self.workers = workers
        self.strategy = strategy
        self.max_workers = max_workers
        self.early_exit_k = early_exit_k
        self.batch = batch
        self.start_method = start_method
        self.join_timeout = join_timeout
        self._runs = 0

    def _fresh_lease_path(self) -> str:
        """A lease path no previous run could have claimed into.

        A recycled PID (or a rerun after a crash) must not collide with a
        stale lease file lingering in a long-lived store directory — its
        claims would make every task look already taken.  Successful runs
        delete their lease; this probes past any crashed run's leftovers.
        """
        suffix = 0
        while True:
            name = f"leases-{os.getpid()}-{self._runs}"
            if suffix:
                name += f"-{suffix}"
            path = os.path.join(self.store.root, name + ".jsonl")
            if not os.path.exists(path) and not os.path.exists(path + ".lock"):
                return path
            suffix += 1

    def run(self, tasks: Sequence[TuningTask]) -> DistributedReport:
        """Tune every task across the worker pool; blocks until done.

        Raises :class:`RuntimeError` if a worker dies without reporting (its
        claimed-but-unfinished tasks would otherwise be silently lost); a
        worker's abnormal exit is detected as soon as it happens, not after
        the join timeout.  The lease file is removed after a successful run
        and kept for inspection after a failed one.
        """
        tasks = list(tasks)
        if not tasks:
            raise ValueError("distributed tuning requires at least one task")
        self._runs += 1
        lease_path = self._fresh_lease_path()
        ctx = multiprocessing.get_context(self.start_method)
        queue = ctx.Queue()
        processes = [
            ctx.Process(
                target=_worker_main,
                args=(
                    f"worker-{index}",
                    self.store.root,
                    self.store.num_shards,
                    tasks,
                    lease_path,
                    self.strategy,
                    self.max_workers,
                    self.early_exit_k,
                    self.batch,
                    self.store.lock_timeout,
                    queue,
                ),
            )
            for index in range(self.workers)
        ]
        start = time.perf_counter()
        for process in processes:
            process.start()
        reports = self._collect_reports(processes, queue)
        report = DistributedReport(
            tasks=len(tasks),
            elapsed_s=time.perf_counter() - start,
            workers=sorted(reports, key=lambda r: r.worker),
        )
        if not report.complete:
            raise RuntimeError(
                "lease coverage is incomplete or overlapping: "
                f"claimed {report.claimed_indices()} of {len(tasks)} tasks"
            )
        for leftover in (lease_path, lease_path + ".lock"):
            try:
                os.unlink(leftover)
            except OSError:
                pass
        return report

    def _collect_reports(self, processes, queue) -> List[WorkerReport]:
        """One report per worker, failing fast on abnormal worker exits.

        Polls the result queue in short slices and checks process liveness
        between them, so a worker that crashes (bad task, import failure,
        OOM-kill) raises within a poll interval instead of blocking the whole
        ``join_timeout`` in ``queue.get``.
        """
        import queue as queue_module

        deadline = time.monotonic() + self.join_timeout
        reports: List[WorkerReport] = []
        try:
            while len(reports) < len(processes):
                try:
                    reports.append(queue.get(timeout=0.2))
                    continue
                except queue_module.Empty:
                    pass
                # The queue stayed empty for a slice: anything a dead worker
                # put is drained by now, so a worker that exited abnormally
                # *without* its report having arrived will never deliver one.
                reported = {report.worker for report in reports}
                lost = [
                    (f"worker-{index}", process.exitcode)
                    for index, process in enumerate(processes)
                    if process.exitcode not in (0, None)
                    and f"worker-{index}" not in reported
                ]
                if lost:
                    raise RuntimeError(
                        f"tuning worker(s) exited abnormally without "
                        f"reporting: {lost} ({len(reports)}/"
                        f"{len(processes)} reports received)"
                    )
                if time.monotonic() > deadline:
                    raise RuntimeError(
                        f"tuning workers produced {len(reports)}/"
                        f"{len(processes)} reports within {self.join_timeout}s"
                    )
        except RuntimeError:
            for process in processes:
                if process.is_alive():
                    process.terminate()
            raise
        finally:
            for process in processes:
                process.join(timeout=self.join_timeout)
        return reports
