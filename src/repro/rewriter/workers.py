"""Distributed tuning workers: many processes, one sharded record store.

The paper's tuning loop is embarrassingly parallel across *tuning problems*
(one per distinct workload x instruction x machine x space), and PR 1 already
parallelised the candidate evaluations of a single problem across threads.
This module adds the missing axis: a pool of **processes** that split the
problem space and publish their winners into one
:class:`~repro.rewriter.store.ShardedTuningStore`.

* a :class:`TuningTask` names one tuning problem in picklable, process-
  portable terms (workload params + runner/machine/intrinsic/space names);
* a :class:`LeaseFile` hands out disjoint slices of the task list: every
  claim appends one line under a cross-process lock, so no two workers ever
  tune the same slice and no slice is skipped;
* :class:`DistributedTuner` spawns N worker processes; each builds its own
  runner and a :class:`~repro.rewriter.session.TuningSession` backed by the
  shared store, claims slices until the lease is exhausted, and runs the
  in-process search (``parallel_search`` / ``early_exit_search`` — the
  session's strategy) for each claimed task.

Because every task is searched whole by exactly one worker with a
result-deterministic strategy, reloading the store afterwards yields
bit-identical best configs to a single-process
:meth:`TuningSession.tune <repro.rewriter.session.TuningSession.tune>` sweep
— asserted by the test suite and the CI ``tuning-stress`` job.

Self-healing (PR 9)
-------------------

A crashed or hung worker no longer kills the run.  Each worker stamps a
:class:`Heartbeat` file beside the lease (atomic ``os.replace``, carrying the
index it is currently searching), and :class:`DistributedTuner` runs a
supervisor loop instead of a bare queue drain:

* a worker that exits abnormally (or is killed for a stale heartbeat /
  overdue task) has its claimed-but-undone lease indices **released** back to
  the pool (:meth:`LeaseFile.release`) and is **respawned** up to
  ``max_restarts`` times per worker slot;
* the index the dead worker was searching — read from its last heartbeat —
  is blamed for the crash; a task that has crashed ``poison_threshold``
  workers is **quarantined** into ``poison.jsonl`` in the store root (left
  claimed by its corpse so no sibling retries it) instead of re-crashing the
  fleet forever;
* tasks are only counted finished through ``done`` lease lines written
  *after* the search completes, so a crash mid-search can never mark work
  done — everything that completes keeps the bit-identical-to-single-process
  guarantee.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Set

from ..retry import RetryPolicy
from ..telemetry import metrics as _metrics, trace as _trace
from ..testing import faults
from .session import TuningSession
from .store import FileLock, LockTimeout, ShardedTuningStore, StoreStats

__all__ = [
    "TuningTask",
    "LeaseFile",
    "Heartbeat",
    "DistributedTuner",
    "WorkerReport",
    "DistributedReport",
    "heartbeat_path",
    "read_heartbeat",
    "run_task",
    "tasks_from_layers",
    "tasks_from_graph",
    "task_from_key",
]

POISON_FILENAME = "poison.jsonl"

_TASK_METHODS = {
    "conv2d": "conv2d_latency",
    "conv3d": "conv3d_latency",
    "dense": "dense_latency",
}

# Per-target runner construction defaults, mirroring ``compile_model``.
_TARGET_RUNNERS = {
    "x86": ("cpu", "cascade-lake", "x86.avx512.vpdpbusd", "full"),
    "arm": ("cpu", "graviton2", "arm.neon.sdot", "full"),
    "cuda": ("gpu", "v100", "nvvm.wmma.m16n16k16.mma.row.row.f32.f32", "tune"),
}


@dataclass(frozen=True)
class TuningTask:
    """One tuning problem, described portably enough to ship to a worker.

    ``params`` is the workload-parameter dataclass (picklable); the rest are
    names resolved inside the worker (``machine`` via
    :func:`repro.hwsim.machine_by_name`).  ``tuning`` is the CPU runner's
    ``tuning=`` mode or the GPU runner's ``mode=``.
    """

    kind: str  # "conv2d" | "conv3d" | "dense"
    params: object
    runner: str = "cpu"  # "cpu" | "gpu"
    machine: str = "cascade-lake"
    intrinsic: str = "x86.avx512.vpdpbusd"
    tuning: str = "full"

    def describe(self) -> str:
        name = getattr(self.params, "describe", lambda: repr(self.params))()
        return f"{self.kind}[{name}] on {self.machine}/{self.intrinsic} ({self.tuning})"


def build_runner(task: TuningTask, session: TuningSession):
    """Construct the operator runner a task tunes through."""
    from ..core.pipeline import UnitCpuRunner, UnitGpuRunner
    from ..hwsim.machine import machine_by_name

    machine = machine_by_name(task.machine)
    if task.runner == "cpu":
        return UnitCpuRunner(machine, task.intrinsic, tuning=task.tuning, session=session)
    if task.runner == "gpu":
        return UnitGpuRunner(machine, task.intrinsic, mode=task.tuning, session=session)
    raise ValueError(f"unknown runner kind {task.runner!r}")


def run_task(task: TuningTask, session: TuningSession):
    """Tune one task through ``session``; returns its best CostBreakdown.

    When the session is store-backed this both *reads* any record another
    worker already published and *publishes* a fresh search's winner.
    """
    if task.kind not in _TASK_METHODS:
        raise ValueError(f"unknown task kind {task.kind!r}")
    runner = build_runner(task, session)
    return getattr(runner, _TASK_METHODS[task.kind])(task.params)


def tasks_from_layers(
    layers: Sequence,
    kind: str = "conv2d",
    runner: str = "cpu",
    machine: str = "cascade-lake",
    intrinsic: str = "x86.avx512.vpdpbusd",
    tuning: str = "full",
) -> List[TuningTask]:
    """One task per workload-parameter object (e.g. the Table I layer set)."""
    return [
        TuningTask(
            kind=kind,
            params=params,
            runner=runner,
            machine=machine,
            intrinsic=intrinsic,
            tuning=tuning,
        )
        for params in layers
    ]


def tasks_from_graph(
    graph, target: str = "x86", quantize: bool = True, fuse: bool = True
) -> List[TuningTask]:
    """The tuning problems ``compile_model(graph, target)`` would hit.

    Applies the same graph passes as ``compile_model`` and collects one task
    per *distinct* tunable operator (convolutions and dense layers — the
    nodes the default UNIT runners search a schedule space for), so a
    distributed pre-tuning pass warms exactly the records the subsequent
    compile will look up.
    """
    if target not in _TARGET_RUNNERS:
        raise ValueError(f"unknown target {target!r}")
    from ..graph.fuse import fuse_elementwise
    from ..graph.ir import Conv2DNode, DenseNode
    from ..graph.quantize import quantize_graph
    from .records import params_fingerprint

    runner, machine, intrinsic, tuning = _TARGET_RUNNERS[target]
    work = graph
    if quantize:
        work = quantize_graph(work, "float16" if target == "cuda" else "int8")
    if fuse:
        work = fuse_elementwise(work)
    work.infer_shapes()
    tasks: List[TuningTask] = []
    seen = set()
    for node in work.nodes:
        if isinstance(node, Conv2DNode):
            kind, params = "conv2d", node.conv_params()
        elif isinstance(node, DenseNode):
            kind, params = "dense", node.dense_params()
        else:
            continue
        identity = (kind, params_fingerprint(params))
        if identity in seen:
            continue
        seen.add(identity)
        tasks.append(
            TuningTask(
                kind=kind,
                params=params,
                runner=runner,
                machine=machine,
                intrinsic=intrinsic,
                tuning=tuning,
            )
        )
    return tasks


_CPU_MODES = ("parallel", "first_pair", "full")
_GPU_MODES = ("generic", "fusedim", "splitk", "tune")


def task_from_key(key) -> Optional[TuningTask]:
    """Reconstruct the :class:`TuningTask` a runner-generated key came from.

    A :class:`~repro.rewriter.records.TuningKey` built by the default UNIT
    runners carries everything a fresh search needs: the workload kind and
    full parameter fingerprint, the intrinsic and machine names, and the
    tuning mode as the label half of its space fingerprint
    (``"<mode>@<digest>"``).  This inverts that construction so a *remote*
    peer holding only the key — the tuning service handling a ``tune``
    request — can run the search itself.

    Returns ``None`` for keys that cannot round-trip: library-baseline
    spaces, approximate-strategy namespaces (``...!early_exit:k``), custom
    candidate lists (their space digest will not match the rebuilt runner's
    — the caller must verify, see :func:`repro.service.server`), unknown
    machines, or parameter tuples that do not rebuild the workload
    dataclass.
    """
    from ..hwsim.machine import GpuSpec, machine_by_name
    from ..workloads.conv2d import Conv2DParams
    from ..workloads.conv3d import Conv3DParams
    from ..workloads.dense import DenseParams

    param_types = {"conv2d": Conv2DParams, "conv3d": Conv3DParams, "dense": DenseParams}
    cls = param_types.get(key.kind)
    if cls is None or "@" not in key.space or "!" in key.space:
        return None
    label = key.space.split("@", 1)[0]
    try:
        machine = machine_by_name(key.machine)
    except KeyError:
        return None
    runner = "gpu" if isinstance(machine, GpuSpec) else "cpu"
    if label not in (_GPU_MODES if runner == "gpu" else _CPU_MODES):
        return None
    try:
        params = cls(**dict(key.params))
    except TypeError:
        return None
    from .records import params_fingerprint

    if params_fingerprint(params) != tuple(key.params):
        return None
    return TuningTask(
        kind=key.kind,
        params=params,
        runner=runner,
        machine=key.machine,
        intrinsic=key.intrinsic,
        tuning=label,
    )


class LeaseFile:
    """Disjoint work claiming across processes, one JSONL line per event.

    Workers call :meth:`claim` with the total task count; under a
    cross-process lock the claimer reads every existing claim, takes the
    lowest ``batch`` unclaimed indices, and appends its own claim line
    (fsynced before the lock is released).  Claims are therefore disjoint by
    construction and — since a worker keeps claiming until it gets an empty
    slice — jointly exhaustive once all workers finish, which is what makes
    the pool self-balancing: a worker stuck on a slow task simply claims
    fewer slices.

    Three line shapes share the file, replayed in append order:

    * ``{"worker", "pid", "indices": [...]}`` — a claim;
    * ``{"worker", "release": [...]}`` — the supervisor handing a dead
      worker's undone indices back to the pool (they become claimable
      again);
    * ``{"worker", "done": [...]}`` — a worker recording a *finished*
      search, written after the winner is in the store.  ``done`` is what
      run completeness is judged on: a crash between claim and done leaves
      the index claimed-but-unfinished, never silently lost.
    """

    def __init__(self, path, timeout: float = 30.0) -> None:
        self.path = os.fspath(path)
        self._lock = FileLock(self.path + ".lock", timeout=timeout)

    def _lines(self) -> Iterator[Dict[str, object]]:
        if not os.path.exists(self.path):
            return
        with open(self.path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    data = json.loads(line)
                except ValueError:
                    continue
                if isinstance(data, dict):
                    yield data

    def claims(self) -> Dict[int, str]:
        """Currently claimed index -> claimer id (released claims drop out)."""
        claimed: Dict[int, str] = {}
        for data in self._lines():
            try:
                if "indices" in data:
                    for index in data["indices"]:
                        claimed[int(index)] = str(data.get("worker", "?"))
                elif "release" in data:
                    for index in data["release"]:
                        claimed.pop(int(index), None)
            except (ValueError, KeyError, TypeError):
                continue
        return claimed

    def done(self) -> Dict[int, str]:
        """Every finished index -> the worker that completed it."""
        finished: Dict[int, str] = {}
        for data in self._lines():
            try:
                if "done" in data:
                    for index in data["done"]:
                        finished[int(index)] = str(data.get("worker", "?"))
            except (ValueError, KeyError, TypeError):
                continue
        return finished

    def claim_counts(self) -> Dict[int, int]:
        """How many times each index has ever been claimed (quarantine audit:
        a poison task must show exactly ``poison_threshold`` claims)."""
        counts: Dict[int, int] = {}
        for data in self._lines():
            try:
                if "indices" in data:
                    for index in data["indices"]:
                        counts[int(index)] = counts.get(int(index), 0) + 1
            except (ValueError, KeyError, TypeError):
                continue
        return counts

    def _append(self, entry: Dict[str, object]) -> None:
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(entry) + "\n")
            handle.flush()
            os.fsync(handle.fileno())

    def claim(self, worker: str, total: int, batch: int = 1) -> List[int]:
        """Atomically claim up to ``batch`` unclaimed indices below ``total``."""
        with self._lock:
            claimed = self.claims()
            free = [i for i in range(total) if i not in claimed][: max(1, batch)]
            if free:
                self._append({"worker": worker, "pid": os.getpid(), "indices": free})
            return free

    def release(self, worker: str, indices: Sequence[int]) -> None:
        """Hand ``indices`` (claimed by a dead ``worker``) back to the pool."""
        cleaned = sorted(int(index) for index in indices)
        if not cleaned:
            return
        with self._lock:
            self._append({"worker": worker, "release": cleaned})

    def mark_done(self, worker: str, index: int) -> None:
        """Record that ``worker`` finished searching ``index``."""
        with self._lock:
            self._append({"worker": worker, "done": [int(index)]})


# ---------------------------------------------------------------------------
# Heartbeats
# ---------------------------------------------------------------------------


def heartbeat_path(lease_path: str, worker: str) -> str:
    """Where ``worker`` stamps its liveness, beside the run's lease file."""
    return f"{os.fspath(lease_path)}.hb-{worker}.json"


def read_heartbeat(path: str) -> Optional[Dict[str, object]]:
    """The last stamp at ``path``, or None (missing/torn stamps read as
    absent — the stamp is written via ``os.replace`` so a torn read means
    the worker never stamped at all)."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
    except (OSError, ValueError):
        return None
    return data if isinstance(data, dict) else None


class Heartbeat:
    """A worker's liveness stamp: ``{worker, pid, t, current, started}``.

    A background thread re-stamps every ``interval`` seconds; :meth:`begin`
    and :meth:`finish` stamp synchronously around each task so the
    supervisor can blame the exact index a corpse was searching.  Stamps are
    written to a temp file and ``os.replace``d, so readers never see a torn
    stamp.  Stamping is best-effort by design — a worker must never crash
    because its *liveness file* hit an I/O error; it just goes stale and the
    supervisor treats it as hung.
    """

    def __init__(self, path: str, worker: str, interval: float = 0.5) -> None:
        self.path = os.fspath(path)
        self.worker = worker
        self.interval = max(0.05, float(interval))
        self._lock = threading.Lock()
        self._current: Optional[int] = None
        self._started: float = 0.0
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    def start(self) -> None:
        self._safe_stamp()
        self._thread = threading.Thread(
            target=self._beat, name=f"heartbeat-{self.worker}", daemon=True
        )
        self._thread.start()

    def begin(self, index: int) -> None:
        """Stamp that the worker is now searching ``index``."""
        with self._lock:
            self._current = int(index)
            self._started = time.time()
        self._safe_stamp()

    def finish(self) -> None:
        """Stamp that the worker is between tasks (nothing to blame)."""
        with self._lock:
            self._current = None
        self._safe_stamp()

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=2.0)

    def _beat(self) -> None:
        while not self._stop.wait(self.interval):
            try:
                self._stamp()
            except Exception:
                # A beat that cannot write looks stale to the supervisor,
                # which is the correct failure mode; don't spin on errors.
                break

    def _safe_stamp(self) -> None:
        try:
            self._stamp()
        except Exception:
            pass

    def _stamp(self) -> None:
        with self._lock:
            current, started = self._current, self._started
        faults.fire("worker.heartbeat", worker=self.worker, path=self.path)
        _metrics.count("workers.heartbeat_stamps")
        entry = {
            "worker": self.worker,
            "pid": os.getpid(),
            "t": time.time(),
            "current": current,
            "started": started,
        }
        tmp = f"{self.path}.tmp.{os.getpid()}"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(entry, handle)
        os.replace(tmp, self.path)


@dataclass
class WorkerReport:
    """What one worker process did, shipped back over the result queue."""

    worker: str
    task_indices: List[int]
    trials: int
    searches: int
    store_hits: int
    seconds: float
    store: StoreStats

    @property
    def tasks_done(self) -> int:
        return len(self.task_indices)


@dataclass
class DistributedReport:
    """The outcome of one :meth:`DistributedTuner.run`.

    ``completed`` comes from the lease file's ``done`` lines (authoritative:
    a crash can lose a worker's report but not its fsynced done markers);
    ``quarantined`` lists poison task indices the run gave up on after they
    crashed ``poison_threshold`` workers — their diagnostic records are in
    ``poison_records`` and persisted to ``poison.jsonl`` in the store root.
    """

    tasks: int
    elapsed_s: float
    workers: List[WorkerReport] = field(default_factory=list)
    completed: List[int] = field(default_factory=list)
    quarantined: List[int] = field(default_factory=list)
    crashes: int = 0
    worker_restarts: int = 0
    tasks_reclaimed: int = 0
    poison_records: List[Dict[str, object]] = field(default_factory=list)

    @property
    def trials(self) -> int:
        return sum(w.trials for w in self.workers)

    @property
    def searches(self) -> int:
        return sum(w.searches for w in self.workers)

    def claimed_indices(self) -> List[int]:
        """Indices finished by surviving workers' reports (pre-PR-9 shape)."""
        return sorted(i for w in self.workers for i in w.task_indices)

    @property
    def complete(self) -> bool:
        """Every task either finished exactly once or quarantined."""
        finished = set(self.completed)
        poisoned = set(self.quarantined)
        if finished & poisoned:
            return False
        return sorted(finished | poisoned) == list(range(self.tasks))

    def store_stats(self) -> StoreStats:
        total = StoreStats()
        for report in self.workers:
            for key, value in report.store.as_dict().items():
                setattr(total, key, getattr(total, key) + value)
        return total

    def summary(self) -> str:
        stats = self.store_stats()
        healing = ""
        if self.crashes or self.worker_restarts or self.quarantined:
            healing = (
                f", {self.crashes} worker crashes healed "
                f"({self.worker_restarts} restarts, {self.tasks_reclaimed} "
                f"tasks reclaimed, {len(self.quarantined)} quarantined)"
            )
        return (
            f"DistributedTuner: {self.tasks} tasks over {len(self.workers)} workers "
            f"in {self.elapsed_s:.2f}s — {self.trials} trials, "
            f"{self.searches} searches, {stats.appends} store appends, "
            f"{stats.lock_contentions} lock contentions "
            f"({stats.lock_wait_seconds * 1e3:.1f} ms waiting)" + healing
        )


def _worker_main(
    worker_id: str,
    store_root: str,
    shards: int,
    tasks: Sequence[TuningTask],
    lease_path: str,
    strategy: str,
    max_workers: Optional[int],
    early_exit_k: int,
    batch: int,
    lock_timeout: float,
    queue,
    heartbeat_interval: float = 0.5,
) -> None:
    """Worker entry point (module-level so ``spawn`` contexts can pickle it)."""
    start = time.perf_counter()
    store = ShardedTuningStore(store_root, shards=shards, lock_timeout=lock_timeout)
    session = TuningSession(
        store=store,
        strategy=strategy,
        max_workers=max_workers,
        early_exit_k=early_exit_k,
    )
    lease = LeaseFile(lease_path, timeout=lock_timeout)
    heartbeat = Heartbeat(
        heartbeat_path(lease_path, worker_id), worker_id, interval=heartbeat_interval
    )
    heartbeat.start()
    # A claim that loses the lease lock to a slow sibling is transient, not
    # a dead worker: retry it on a capped-exponential schedule (seeded by
    # pid, so colliding workers decorrelate) before giving up for real.
    claim_retry = RetryPolicy(
        max_attempts=3,
        base_delay_s=0.05,
        max_delay_s=1.0,
        transient=(LockTimeout,),
        seed=os.getpid(),
    )
    done: List[int] = []
    try:
        while True:
            indices = claim_retry.call(
                lambda: lease.claim(worker_id, len(tasks), batch=batch)
            )
            if not indices:
                break
            for index in indices:
                # Stamp before the search (and before the injection point):
                # if this task kills the process, the supervisor must find
                # the right index in the corpse's heartbeat.
                heartbeat.begin(index)
                faults.fire(
                    "worker.task", worker=worker_id, index=index, task=tasks[index]
                )
                run_task(tasks[index], session)
                # Done markers go through the lease file (fsynced) rather
                # than the report queue: the winner is already in the store,
                # so this must survive even if the worker dies right after.
                lease.mark_done(worker_id, index)
                heartbeat.finish()
                done.append(index)
    finally:
        # Persist this worker's buffered last-served stamps even on the
        # failure path: records published here must not look never-served
        # to a later `evict(max_idle=)` pass.
        store.flush_touches()
        heartbeat.stop()
    queue.put(
        WorkerReport(
            worker=worker_id,
            task_indices=done,
            trials=session.trials_run,
            searches=session.searches_run,
            store_hits=session.store_hits,
            seconds=time.perf_counter() - start,
            store=store.stats,
        )
    )


class _Supervisor:
    """One run's worker fleet: spawn, watch, reclaim, respawn, quarantine.

    Single-threaded — it lives on the caller's thread inside
    :meth:`DistributedTuner.run` and owns all fleet bookkeeping, so nothing
    here needs a lock.  Liveness decisions are only made after a result-queue
    poll came back empty: anything a dead worker managed to enqueue has been
    drained by then, so "exited abnormally without a report" really means
    the worker died mid-task.
    """

    def __init__(self, tuner: "DistributedTuner", tasks, lease: LeaseFile, ctx, queue):
        self.tuner = tuner
        self.tasks = tasks
        self.lease = lease
        self.ctx = ctx
        self.queue = queue
        self.reports: List[WorkerReport] = []
        self.procs: Dict[str, object] = {}
        self.slot_of: Dict[str, int] = {}
        self.spawned_at: Dict[str, float] = {}
        self.restarts: Dict[int, int] = {slot: 0 for slot in range(tuner.workers)}
        self.handled: Set[str] = set()
        self.kill_reasons: Dict[str, str] = {}
        self.crash_counts: Dict[int, int] = {}
        self.quarantined: List[int] = []
        self.poison_records: List[Dict[str, object]] = []
        self.crashes = 0
        self.worker_restarts = 0
        self.tasks_reclaimed = 0

    # -- fleet management -----------------------------------------------------

    def _spawn(self, slot: int) -> str:
        generation = self.restarts[slot]
        name = f"worker-{slot}" if generation == 0 else f"worker-{slot}r{generation}"
        tuner = self.tuner
        process = self.ctx.Process(
            target=_worker_main,
            name=name,
            args=(
                name,
                tuner.store.root,
                tuner.store.num_shards,
                self.tasks,
                self.lease.path,
                tuner.strategy,
                tuner.max_workers,
                tuner.early_exit_k,
                tuner.batch,
                tuner.store.lock_timeout,
                self.queue,
                tuner.heartbeat_interval,
            ),
        )
        self.procs[name] = process
        self.slot_of[name] = slot
        process.start()
        self.spawned_at[name] = time.time()
        return name

    def _respawn(self, slot: int) -> None:
        self.restarts[slot] += 1
        self.worker_restarts += 1
        _metrics.count("workers.restarts")
        _metrics.event("workers.restarts", f"slot{slot}")
        self._spawn(slot)

    # -- failure handling -----------------------------------------------------

    def _kill_hung_workers(self) -> None:
        """SIGKILL workers whose heartbeat went stale or whose task overran.

        The heartbeat thread keeps beating even when the worker's main
        thread is wedged inside a search, so the two checks are distinct:
        a stale stamp means the *process* is frozen (or its beat died), an
        overdue ``started`` means the *task* is stuck while the process
        still looks alive.  Either way the corpse is handled by the normal
        crash path on the next empty slice.
        """
        tuner = self.tuner
        if tuner.heartbeat_timeout is None and tuner.task_timeout is None:
            return
        now = time.time()
        for name, process in self.procs.items():
            if name in self.handled or not process.is_alive():
                continue
            stamp = read_heartbeat(heartbeat_path(self.lease.path, name))
            if stamp is None:
                # Never stamped: measure from spawn (startup is not a hang
                # until it has outlived the heartbeat budget).
                age = now - self.spawned_at[name]
                if tuner.heartbeat_timeout is not None and age > tuner.heartbeat_timeout:
                    self.kill_reasons[name] = (
                        f"no heartbeat within {tuner.heartbeat_timeout:g}s of spawn"
                    )
                    process.kill()
                continue
            stamped = float(stamp.get("t", 0.0))
            if tuner.heartbeat_timeout is not None and now - stamped > tuner.heartbeat_timeout:
                self.kill_reasons[name] = (
                    f"heartbeat stale for {now - stamped:.1f}s "
                    f"(timeout {tuner.heartbeat_timeout:g}s)"
                )
                process.kill()
                continue
            current = stamp.get("current")
            started = float(stamp.get("started", now) or now)
            if (
                tuner.task_timeout is not None
                and current is not None
                and now - started > tuner.task_timeout
            ):
                self.kill_reasons[name] = (
                    f"task {current} running for {now - started:.1f}s "
                    f"(task_timeout {tuner.task_timeout:g}s)"
                )
                process.kill()

    def _handle_exits(self) -> bool:
        """Process newly dead workers; True if any were handled."""
        progressed = False
        for name, process in list(self.procs.items()):
            if name in self.handled or process.exitcode in (0, None):
                continue
            self._handle_crash(name, process)
            progressed = True
        return progressed

    def _handle_crash(self, name: str, process) -> None:
        self.crashes += 1
        _metrics.count("workers.crashes")
        self.handled.add(name)
        reason = self.kill_reasons.get(name, f"exitcode {process.exitcode}")
        undone = self._undone_claims(name)
        blamed = self._blame(name, undone)
        if blamed is not None:
            count = self.crash_counts.get(blamed, 0) + 1
            self.crash_counts[blamed] = count
            if count >= self.tuner.poison_threshold:
                # Leave the poison index claimed by its corpse — an index
                # that is claimed but never done and never released is
                # invisible to sibling claims, which is exactly the
                # "never searched again" guarantee.
                self._quarantine(blamed, name, process.exitcode, reason)
                undone.remove(blamed)
        if undone:
            self.lease.release(name, undone)
            self.tasks_reclaimed += len(undone)
            _metrics.count("workers.tasks_reclaimed", len(undone))
        slot = self.slot_of[name]
        if self.restarts[slot] < self.tuner.max_restarts:
            self._respawn(slot)

    def _undone_claims(self, name: str) -> List[int]:
        done = self.lease.done()
        return sorted(
            index
            for index, worker in self.lease.claims().items()
            if worker == name and index not in done
        )

    def _blame(self, name: str, undone: List[int]) -> Optional[int]:
        """The index the corpse was searching, from its last heartbeat."""
        stamp = read_heartbeat(heartbeat_path(self.lease.path, name))
        if stamp is None:
            return None
        current = stamp.get("current")
        try:
            blamed = int(current)  # type: ignore[arg-type]
        except (TypeError, ValueError):
            return None
        return blamed if blamed in undone else None

    def _quarantine(self, index: int, worker: str, exitcode, reason: str) -> None:
        self.quarantined.append(index)
        _metrics.count("workers.quarantined")
        record = {
            "index": index,
            "task": self.tasks[index].describe(),
            "crashes": self.crash_counts[index],
            "last_worker": worker,
            "exitcode": exitcode,
            "reason": reason,
            "quarantined_at": time.time(),
        }
        self.poison_records.append(record)
        path = os.path.join(self.tuner.store.root, POISON_FILENAME)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(record, sort_keys=True) + "\n")
            handle.flush()
            os.fsync(handle.fileno())

    def _respawn_for_orphans(self) -> bool:
        """Cover released-but-unclaimed tasks after the whole fleet exited.

        Rare but real: the last live worker crashes, its tasks are released,
        and nobody is left to claim them.  Spawn a sweeper on any slot with
        restart budget; with the budget exhausted the run must fail loudly
        rather than report an incomplete sweep.
        """
        claims = self.lease.claims()
        done = self.lease.done()
        pending = [
            index
            for index in range(len(self.tasks))
            if index not in claims and index not in done
        ]
        if not pending:
            return False
        tuner = self.tuner
        slot = next(
            (s for s in range(tuner.workers) if self.restarts[s] < tuner.max_restarts),
            None,
        )
        if slot is None:
            raise RuntimeError(
                f"tuning fleet lost: {len(pending)} task(s) unclaimed "
                f"(indices {pending}) and every worker slot has exhausted "
                f"its restart budget (max_restarts={tuner.max_restarts})"
            )
        self._respawn(slot)
        return True

    # -- main loop ------------------------------------------------------------

    def _all_handled(self) -> bool:
        """Every worker either reported or was handled as a crash, and died.

        A worker that exited cleanly but has not reported yet is *not*
        handled — its report is still in flight and the next queue poll will
        deliver it (or the join deadline will call the silence out).
        """
        return all(
            name in self.handled and process.exitcode is not None
            for name, process in self.procs.items()
        )

    def collect(self) -> List[WorkerReport]:
        """Run the fleet to completion, healing crashes along the way.

        Raises :class:`RuntimeError` only for unrecoverable states: no
        restart budget left for orphaned tasks, or no report progress within
        ``join_timeout`` (the deadline refreshes on every report and every
        healed crash — a fleet that is making progress is never killed).
        """
        import queue as queue_module

        for slot in range(self.tuner.workers):
            self._spawn(slot)
        deadline = time.monotonic() + self.tuner.join_timeout
        try:
            while True:
                try:
                    report = self.queue.get(timeout=0.2)
                except queue_module.Empty:
                    pass
                else:
                    self.reports.append(report)
                    self.handled.add(report.worker)
                    deadline = time.monotonic() + self.tuner.join_timeout
                    continue
                # The queue stayed empty for a slice: anything a dead worker
                # put is drained by now, so liveness checks are sound here.
                self._kill_hung_workers()
                if self._handle_exits():
                    deadline = time.monotonic() + self.tuner.join_timeout
                    continue
                if self._all_handled():
                    if self._respawn_for_orphans():
                        deadline = time.monotonic() + self.tuner.join_timeout
                        continue
                    break
                if time.monotonic() > deadline:
                    raise RuntimeError(
                        f"tuning workers produced {len(self.reports)}/"
                        f"{len(self.procs)} reports within "
                        f"{self.tuner.join_timeout}s"
                    )
        except RuntimeError:
            for process in self.procs.values():
                if process.is_alive():
                    process.terminate()
            raise
        finally:
            for process in self.procs.values():
                process.join(timeout=self.tuner.join_timeout)
        return self.reports


class DistributedTuner:
    """A pool of tuning worker processes feeding one sharded store.

    ``strategy``/``max_workers``/``early_exit_k`` configure each worker's
    in-process search (see :class:`TuningSession`); the default ``"parallel"``
    strategy is result-identical to exhaustive search, preserving the
    bit-identical-to-single-process guarantee.  ``batch`` is how many tasks a
    worker leases at a time: 1 maximises balance, larger batches reduce lease
    traffic.

    ``start_method`` picks the :mod:`multiprocessing` context (``"fork"`` on
    POSIX by default, ``"spawn"`` elsewhere — both are supported since the
    worker entry point is a module-level function fed picklable arguments).

    Self-healing knobs: ``max_restarts`` is the per-worker-slot respawn
    budget; ``poison_threshold`` is how many workers one task may crash
    before it is quarantined; ``heartbeat_interval``/``heartbeat_timeout``
    bound how stale a live worker's stamp may go before it is presumed
    frozen and killed; ``task_timeout`` (off by default) additionally caps
    how long a single search may run.
    """

    def __init__(
        self,
        store: ShardedTuningStore,
        workers: int = 4,
        strategy: str = "parallel",
        max_workers: Optional[int] = None,
        early_exit_k: int = 8,
        batch: int = 1,
        start_method: Optional[str] = None,
        join_timeout: float = 300.0,
        max_restarts: int = 2,
        poison_threshold: int = 2,
        heartbeat_interval: float = 0.5,
        heartbeat_timeout: Optional[float] = 30.0,
        task_timeout: Optional[float] = None,
    ) -> None:
        if not isinstance(store, ShardedTuningStore):
            store = ShardedTuningStore(store)
        if workers < 1:
            raise ValueError("DistributedTuner needs at least one worker")
        if max_restarts < 0:
            raise ValueError("max_restarts must be non-negative")
        if poison_threshold < 1:
            raise ValueError("poison_threshold must be at least 1")
        self.store = store
        self.workers = workers
        self.strategy = strategy
        self.max_workers = max_workers
        self.early_exit_k = early_exit_k
        self.batch = batch
        self.start_method = start_method
        self.join_timeout = join_timeout
        self.max_restarts = max_restarts
        self.poison_threshold = poison_threshold
        self.heartbeat_interval = heartbeat_interval
        self.heartbeat_timeout = heartbeat_timeout
        self.task_timeout = task_timeout
        self._runs = 0

    def _fresh_lease_path(self) -> str:
        """A lease path no previous run could have claimed into.

        A recycled PID (or a rerun after a crash) must not collide with a
        stale lease file lingering in a long-lived store directory — its
        claims would make every task look already taken.  Successful runs
        delete their lease; this probes past any crashed run's leftovers.
        """
        suffix = 0
        while True:
            name = f"leases-{os.getpid()}-{self._runs}"
            if suffix:
                name += f"-{suffix}"
            path = os.path.join(self.store.root, name + ".jsonl")
            if not os.path.exists(path) and not os.path.exists(path + ".lock"):
                return path
            suffix += 1

    def run(self, tasks: Sequence[TuningTask]) -> DistributedReport:
        """Tune every task across the worker pool; blocks until done.

        Worker crashes are *healed*, not fatal: the supervisor reclaims a
        corpse's unfinished lease indices, respawns up to ``max_restarts``
        per slot, and quarantines a task that crashes ``poison_threshold``
        workers (recorded in ``poison.jsonl``).  Raises
        :class:`RuntimeError` only when the run cannot complete: restart
        budget exhausted with tasks still orphaned, no progress within
        ``join_timeout``, or incomplete/overlapping lease coverage.  The
        lease and heartbeat files are removed after a successful run and
        kept for inspection after a failed one; ``poison.jsonl`` always
        persists.
        """
        tasks = list(tasks)
        if not tasks:
            raise ValueError("distributed tuning requires at least one task")
        self._runs += 1
        lease_path = self._fresh_lease_path()
        ctx = multiprocessing.get_context(self.start_method)
        queue = ctx.Queue()
        lease = LeaseFile(lease_path, timeout=self.store.lock_timeout)
        supervisor = _Supervisor(self, tasks, lease, ctx, queue)
        start = time.perf_counter()
        with _trace.span(
            "workers.run", tasks=len(tasks), workers=self.workers
        ) as run_span:
            reports = supervisor.collect()
            run_span.set(
                crashes=supervisor.crashes,
                worker_restarts=supervisor.worker_restarts,
                tasks_reclaimed=supervisor.tasks_reclaimed,
            )
        _metrics.count("workers.runs")
        _metrics.count(
            "workers.tasks_completed", len(lease.done()) - len(supervisor.quarantined)
        )
        report = DistributedReport(
            tasks=len(tasks),
            elapsed_s=time.perf_counter() - start,
            workers=sorted(reports, key=lambda r: r.worker),
            completed=sorted(lease.done()),
            quarantined=sorted(supervisor.quarantined),
            crashes=supervisor.crashes,
            worker_restarts=supervisor.worker_restarts,
            tasks_reclaimed=supervisor.tasks_reclaimed,
            poison_records=list(supervisor.poison_records),
        )
        _metrics.register_stats_gauges("workers.report", report)
        if not report.complete:
            raise RuntimeError(
                "lease coverage is incomplete or overlapping: "
                f"finished {report.completed} and quarantined "
                f"{report.quarantined} of {len(tasks)} tasks"
            )
        prefix = os.path.basename(lease_path)
        for name in os.listdir(self.store.root):
            if name.startswith(prefix):
                try:
                    os.unlink(os.path.join(self.store.root, name))
                except OSError:
                    pass
        return report
