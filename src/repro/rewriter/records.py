"""Persistent tuning records: the Rewriter's experiment store.

The paper's Rewriter profiles a small schedule space per tensorized operator.
Re-running that search for every runner instance is wasted work — the best
configuration for a (workload, instruction, machine, search-space) quadruple
never changes between runs.  This module provides the storage layer that lets
every runner, experiment and benchmark share one warm store:

* :class:`TuningKey` — the identity of one tuning problem;
* :class:`TuningRecord` — the outcome of solving it (best config, best cost,
  the full cost breakdown, and how many candidates were profiled);
* :class:`TuningCache` — an in-memory index with JSON-lines persistence and
  hit/miss accounting.

:class:`~repro.rewriter.session.TuningSession` builds the search driver on
top of this store.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from ..hwsim.cost import CostBreakdown
from .cpu_tuner import CpuTuningConfig
from .gpu_tuner import GpuTuningConfig
from .tuner import TuningResult

__all__ = [
    "TuningKey",
    "TuningRecord",
    "TuningCache",
    "CacheStats",
    "params_fingerprint",
    "space_fingerprint",
    "SCHEMA_VERSION",
    "cost_model_fingerprint",
    "record_staleness",
    "decode_record_line",
]

# Version of the persisted record format.  Bump on any change to the JSON
# envelope so old stores are invalidated wholesale instead of misread.
SCHEMA_VERSION = 2

# The modules whose behaviour determines every stored cost: a record tuned
# under one cost model must not be served once the model changes.
_COST_MODEL_MODULES = ("cost", "cpu", "gpu", "machine")

_cost_model_fingerprint: Optional[str] = None


def cost_model_fingerprint(refresh: bool = False) -> str:
    """A digest of the ``hwsim`` cost-model sources, baked into every
    persisted record.

    Tuning records are only as good as the analytical machine models that
    produced them: editing ``hwsim/cost.py`` (or the CPU/GPU kernel models)
    silently changes every stored ``best_cost`` and possibly every winner.
    Loaders compare this fingerprint and drop records tuned under a
    different model instead of serving stale winners.
    """
    global _cost_model_fingerprint
    if _cost_model_fingerprint is None or refresh:
        from .. import hwsim

        digest = hashlib.md5()
        root = os.path.dirname(os.path.abspath(hwsim.__file__))
        for module in _COST_MODEL_MODULES:
            with open(os.path.join(root, module + ".py"), "rb") as handle:
                digest.update(handle.read())
        _cost_model_fingerprint = digest.hexdigest()[:12]
    return _cost_model_fingerprint


def record_staleness(data: Dict) -> Optional[str]:
    """Why a decoded record line must not be served, or ``None`` if current.

    A line is stale when it predates record versioning entirely, was written
    under a different schema version, or was tuned under a different cost
    model.  The reason string feeds the loader's :class:`CacheStats`
    accounting and error messages.
    """
    schema = data.get("schema")
    if schema != SCHEMA_VERSION:
        return f"schema version {schema!r} != {SCHEMA_VERSION}"
    fingerprint = data.get("cost_model")
    if fingerprint != cost_model_fingerprint():
        return f"cost model {fingerprint!r} != {cost_model_fingerprint()!r}"
    return None


def decode_record_line(line: str):
    """Decode one persisted JSONL line: ``(record, None)`` on success,
    ``(None, "corrupt")`` for undecodable bytes (torn tails, interleaved
    writes, JSON-valid non-objects), ``(None, "stale")`` for well-formed
    records from another schema version or cost model.

    The single definition of "valid line" shared by :meth:`TuningCache.load`
    and the sharded store, so both loaders always agree on what is servable.
    """
    try:
        data = json.loads(line)
        if not isinstance(data, dict):
            return None, "corrupt"
        if record_staleness(data) is not None:
            return None, "stale"
        return TuningRecord.from_json(data), None
    except (ValueError, KeyError, TypeError):
        return None, "corrupt"


def params_fingerprint(params) -> Tuple[Tuple[str, object], ...]:
    """A hashable, JSON-safe identity for a workload-parameter object.

    The ``name`` field is excluded on purpose: two layers with identical
    shapes tune identically regardless of what the model builder called them,
    and sharing their record is the whole point of the cache.
    """
    if dataclasses.is_dataclass(params) and not isinstance(params, type):
        items = sorted(dataclasses.asdict(params).items())
        return tuple((k, v) for k, v in items if k != "name")
    if isinstance(params, dict):
        return tuple(sorted((str(k), v) for k, v in params.items() if k != "name"))
    raise TypeError(f"cannot fingerprint workload params of type {type(params)!r}")


def space_fingerprint(label: str, candidates: Iterable[object]) -> str:
    """Identify a search space: a human-readable label plus a content digest.

    Two runners share records only when they explore the *same* candidate
    list; the digest guards against a custom candidate list colliding with
    the default one under the same label.
    """
    blob = ";".join(repr(c) for c in candidates)
    digest = hashlib.md5(blob.encode("utf-8")).hexdigest()[:8]
    return f"{label}@{digest}"


@dataclass(frozen=True)
class TuningKey:
    """The identity of one tuning problem."""

    kind: str  # workload kind: "conv2d", "conv3d", "dense", ...
    params: Tuple[Tuple[str, object], ...]  # params_fingerprint() of the workload
    intrinsic: str  # tensorized-instruction name ("" for library baselines)
    machine: str  # machine-spec name ("cascade-lake", "v100", ...)
    space: str  # space_fingerprint() of the candidate list, or "library:<name>"

    def to_json(self) -> Dict:
        return {
            "kind": self.kind,
            "params": [[k, v] for k, v in self.params],
            "intrinsic": self.intrinsic,
            "machine": self.machine,
            "space": self.space,
        }

    @classmethod
    def from_json(cls, data: Dict) -> "TuningKey":
        return cls(
            kind=data["kind"],
            params=tuple((k, v) for k, v in data["params"]),
            intrinsic=data["intrinsic"],
            machine=data["machine"],
            space=data["space"],
        )


# -- config (de)serialisation -------------------------------------------------

_CONFIG_TYPES = {"cpu": CpuTuningConfig, "gpu": GpuTuningConfig}


def _encode_config(config) -> Optional[Dict]:
    if config is None:
        return None
    for tag, cls in _CONFIG_TYPES.items():
        if isinstance(config, cls):
            return {"type": tag, **dataclasses.asdict(config)}
    raise TypeError(f"cannot serialise tuning config of type {type(config)!r}")


def _decode_config(data: Optional[Dict]):
    if data is None:
        return None
    data = dict(data)
    cls = _CONFIG_TYPES[data.pop("type")]
    return cls(**data)


def _encode_breakdown(cost: CostBreakdown) -> Dict:
    return {
        "seconds": cost.seconds,
        "compute_seconds": cost.compute_seconds,
        "memory_seconds": cost.memory_seconds,
        "overhead_seconds": cost.overhead_seconds,
        "detail": dict(cost.detail),
    }


def _decode_breakdown(data: Dict) -> CostBreakdown:
    return CostBreakdown(
        seconds=data["seconds"],
        compute_seconds=data["compute_seconds"],
        memory_seconds=data["memory_seconds"],
        overhead_seconds=data["overhead_seconds"],
        detail=dict(data.get("detail", {})),
    )


@dataclass
class TuningRecord:
    """The stored outcome of one tuning problem.

    ``result`` holds the in-memory :class:`TuningResult` when this record was
    produced by a live search in the current process; it is *not* persisted
    (trial-by-trial data is cheap to regenerate and expensive to store).
    """

    key: TuningKey
    best_config: object  # CpuTuningConfig | GpuTuningConfig | None (memoised)
    best_cost: float  # seconds
    num_trials: int
    breakdown: CostBreakdown
    result: Optional[TuningResult] = field(default=None, repr=False, compare=False)

    def to_json(self) -> Dict:
        return {
            "schema": SCHEMA_VERSION,
            "cost_model": cost_model_fingerprint(),
            "key": self.key.to_json(),
            "config": _encode_config(self.best_config),
            "cost": self.best_cost,
            "trials": self.num_trials,
            "breakdown": _encode_breakdown(self.breakdown),
        }

    @classmethod
    def from_json(cls, data: Dict) -> "TuningRecord":
        return cls(
            key=TuningKey.from_json(data["key"]),
            best_config=_decode_config(data["config"]),
            best_cost=data["cost"],
            num_trials=data["trials"],
            breakdown=_decode_breakdown(data["breakdown"]),
        )


@dataclass
class CacheStats:
    """Hit/miss accounting for one :class:`TuningCache`.

    ``corrupt`` counts persisted lines that could not be decoded at all
    (truncated tails, interleaved writes); ``stale`` counts well-formed lines
    dropped by version/cost-model checks (:func:`record_staleness`).
    """

    hits: int = 0
    misses: int = 0
    size: int = 0
    corrupt: int = 0
    stale: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


class TuningCache:
    """An in-memory index of tuning records with JSON-lines persistence.

    Lookups count hits and misses; repeated lookups of the same key return the
    *same* record object, so downstream consumers keep the cheap identity
    semantics the per-runner dicts used to provide.
    """

    def __init__(self) -> None:
        self._records: Dict[TuningKey, TuningRecord] = {}
        self._hits = 0
        self._misses = 0
        self._corrupt = 0
        self._stale = 0

    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, key: TuningKey) -> bool:
        return key in self._records

    def lookup(self, key: TuningKey) -> Optional[TuningRecord]:
        record = self._records.get(key)
        if record is None:
            self._misses += 1
        else:
            self._hits += 1
        return record

    def insert(self, record: TuningRecord) -> None:
        self._records[record.key] = record

    def discard(self, key: TuningKey) -> bool:
        """Drop the record for ``key`` if present; returns whether it was.

        The memory-side half of store GC: a long-running process backed by
        an evicted store must also forget the evicted keys, or its memory
        tier would keep serving records the store no longer vouches for.
        """
        return self._records.pop(key, None) is not None

    def records(self) -> List[TuningRecord]:
        return list(self._records.values())

    def clear(self) -> None:
        self._records.clear()
        self.reset_stats()

    def reset_stats(self) -> None:
        self._hits = 0
        self._misses = 0
        self._corrupt = 0
        self._stale = 0

    @property
    def stats(self) -> CacheStats:
        return CacheStats(
            hits=self._hits,
            misses=self._misses,
            size=len(self._records),
            corrupt=self._corrupt,
            stale=self._stale,
        )

    # -- persistence ----------------------------------------------------------
    def save(self, path) -> int:
        """Write every record to ``path`` as JSON lines; returns the count."""
        records = self.records()
        with open(path, "w", encoding="utf-8") as handle:
            for record in records:
                handle.write(json.dumps(record.to_json(), sort_keys=True) + "\n")
        return len(records)

    def load(self, path, strict: bool = False) -> int:
        """Merge records from ``path`` into this cache; returns the count read.

        Loaded records overwrite in-memory records with the same key, so a
        cache file is authoritative over whatever was tuned before the load.

        A reader may race a writer that has appended only part of a line, or
        inherit a file truncated by a crash; such undecodable lines are
        skipped and counted (``stats.corrupt``) rather than raised, so the
        valid prefix of the file is always usable.  Well-formed records
        written under a different schema version or cost-model fingerprint
        are likewise skipped and counted (``stats.stale``).  Pass
        ``strict=True`` to raise on the first corrupt line instead.
        """
        count = 0
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                record, problem = decode_record_line(line)
                if record is None:
                    if problem == "stale":
                        self._stale += 1
                    elif strict:
                        raise ValueError(f"corrupt tuning-record line: {line[:80]!r}")
                    else:
                        self._corrupt += 1
                    continue
                self.insert(record)
                count += 1
        return count

    @classmethod
    def from_file(cls, path) -> "TuningCache":
        cache = cls()
        cache.load(path)
        return cache
