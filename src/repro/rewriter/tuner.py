"""The tuning driver: enumerate schedule configurations, profile, keep the best.

The paper's Rewriter does not model performance analytically — it enumerates
the (small) tuning space and profiles each candidate (Section III-C.3).  Here
"profiling" means evaluating the candidate on the analytical machine model of
the target platform, which plays the role of the physical machine.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Generic, Iterable, List, Optional, Sequence, Tuple, TypeVar

__all__ = [
    "TuningTrial",
    "TuningResult",
    "exhaustive_search",
    "first_k_search",
    "parallel_search",
    "early_exit_search",
]

ConfigT = TypeVar("ConfigT")


@dataclass
class TuningTrial(Generic[ConfigT]):
    """One profiled candidate."""

    config: ConfigT
    cost: float
    index: int


@dataclass
class TuningResult(Generic[ConfigT]):
    """The outcome of a tuning run."""

    best_config: ConfigT
    best_cost: float
    trials: List[TuningTrial] = field(default_factory=list)

    @property
    def num_trials(self) -> int:
        return len(self.trials)

    def best_rank(self, tolerance: float = 0.0) -> int:
        """The 1-based position of the first candidate within ``tolerance``
        (relative) of the best cost.

        This is what the paper's "more than half of the kernels get the
        optimal performance on the first tuning pair" claim is about; a small
        tolerance plays the role of profiling noise on real hardware.

        Raises :class:`ValueError` when the result carries no trials (e.g. a
        result reconstructed from a persisted tuning record): a rank computed
        from nothing would silently claim first-pair optimality.
        """
        if not self.trials:
            raise ValueError("best_rank requires a result with recorded trials")
        threshold = self.best_cost * (1.0 + max(0.0, tolerance))
        for trial in self.trials:
            if trial.cost <= threshold:
                return trial.index + 1
        return self.trials[-1].index + 1

    def cost_of(self, index: int) -> float:
        return self.trials[index].cost


def exhaustive_search(
    candidates: Sequence[ConfigT],
    evaluate: Callable[[ConfigT], float],
) -> TuningResult:
    """Profile every candidate and return the best one."""
    if not candidates:
        raise ValueError("tuning requires at least one candidate configuration")
    trials: List[TuningTrial] = []
    best: Optional[TuningTrial] = None
    for index, config in enumerate(candidates):
        cost = float(evaluate(config))
        trial = TuningTrial(config=config, cost=cost, index=index)
        trials.append(trial)
        if best is None or cost < best.cost:
            best = trial
    assert best is not None
    return TuningResult(best_config=best.config, best_cost=best.cost, trials=trials)


def first_k_search(
    candidates: Sequence[ConfigT],
    evaluate: Callable[[ConfigT], float],
    k: int,
) -> TuningResult:
    """Profile only the first ``k`` candidates (budgeted tuning)."""
    return exhaustive_search(list(candidates)[: max(1, k)], evaluate)


def parallel_search(
    candidates: Sequence[ConfigT],
    evaluate: Callable[[ConfigT], float],
    max_workers: Optional[int] = None,
) -> TuningResult:
    """Profile every candidate on a thread pool.

    Candidate evaluation order is nondeterministic but the outcome is not:
    trials are re-assembled in candidate order and ties break toward the
    lowest index, so the returned :class:`TuningResult` is identical to what
    :func:`exhaustive_search` produces on the same inputs.
    """
    candidates = list(candidates)
    if not candidates:
        raise ValueError("tuning requires at least one candidate configuration")
    with ThreadPoolExecutor(max_workers=max_workers) as pool:
        costs = list(pool.map(lambda cfg: float(evaluate(cfg)), candidates))
    trials = [
        TuningTrial(config=config, cost=cost, index=index)
        for index, (config, cost) in enumerate(zip(candidates, costs))
    ]
    best = min(trials, key=lambda t: (t.cost, t.index))
    return TuningResult(best_config=best.config, best_cost=best.cost, trials=trials)


def early_exit_search(
    candidates: Sequence[ConfigT],
    evaluate: Callable[[ConfigT], float],
    k: int = 8,
) -> TuningResult:
    """Profile candidates in order, stopping after ``k`` consecutive
    non-improving trials.

    The candidate orderings in this repo place likely-best configurations
    first (the paper's ">95% optimal within the first eight pairs"
    observation), so a small ``k`` recovers nearly all of the exhaustive
    result at a fraction of the trials.
    """
    candidates = list(candidates)
    if not candidates:
        raise ValueError("tuning requires at least one candidate configuration")
    k = max(1, k)
    trials: List[TuningTrial] = []
    best: Optional[TuningTrial] = None
    since_improvement = 0
    for index, config in enumerate(candidates):
        cost = float(evaluate(config))
        trial = TuningTrial(config=config, cost=cost, index=index)
        trials.append(trial)
        if best is None or cost < best.cost:
            best = trial
            since_improvement = 0
        else:
            since_improvement += 1
            if since_improvement >= k:
                break
    assert best is not None
    return TuningResult(best_config=best.config, best_cost=best.cost, trials=trials)
