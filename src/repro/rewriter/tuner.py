"""The tuning driver: enumerate schedule configurations, profile, keep the best.

The paper's Rewriter does not model performance analytically — it enumerates
the (small) tuning space and profiles each candidate (Section III-C.3).  Here
"profiling" means evaluating the candidate on the analytical machine model of
the target platform, which plays the role of the physical machine.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Generic, Iterable, List, Optional, Sequence, Tuple, TypeVar

__all__ = [
    "TuningTrial",
    "TuningResult",
    "exhaustive_search",
    "first_k_search",
    "parallel_search",
    "early_exit_search",
]

ConfigT = TypeVar("ConfigT")


@dataclass
class TuningTrial(Generic[ConfigT]):
    """One profiled candidate."""

    config: ConfigT
    cost: float
    index: int


@dataclass
class TuningResult(Generic[ConfigT]):
    """The outcome of a tuning run.

    ``rejected`` counts the candidates the search's ``precheck`` oracle
    refused before the cost model saw them (e.g. the static verification
    tier rejecting an unsound rewrite); rejected candidates produce no
    trial and cannot win.
    """

    best_config: ConfigT
    best_cost: float
    trials: List[TuningTrial] = field(default_factory=list)
    rejected: int = 0

    @property
    def num_trials(self) -> int:
        return len(self.trials)

    def best_rank(self, tolerance: float = 0.0) -> int:
        """The 1-based position of the first candidate within ``tolerance``
        (relative) of the best cost.

        This is what the paper's "more than half of the kernels get the
        optimal performance on the first tuning pair" claim is about; a small
        tolerance plays the role of profiling noise on real hardware.

        Raises :class:`ValueError` when the result carries no trials (e.g. a
        result reconstructed from a persisted tuning record): a rank computed
        from nothing would silently claim first-pair optimality.
        """
        if not self.trials:
            raise ValueError("best_rank requires a result with recorded trials")
        threshold = self.best_cost * (1.0 + max(0.0, tolerance))
        for trial in self.trials:
            if trial.cost <= threshold:
                return trial.index + 1
        return self.trials[-1].index + 1

    def cost_of(self, index: int) -> float:
        return self.trials[index].cost


PrecheckT = Callable[[ConfigT], None]


def _prefilter(
    candidates: Sequence[ConfigT], precheck: Optional[PrecheckT]
) -> Tuple[List[Tuple[int, ConfigT]], int]:
    """Partition candidates through the precheck oracle.

    ``precheck`` is invoked with each candidate and must raise to reject it;
    survivors keep their original candidate index (so ``best_rank`` still
    reports positions in the advertised tuning-pair ordering).  Returns the
    kept ``(index, config)`` pairs plus the reject count.
    """
    if precheck is None:
        return list(enumerate(candidates)), 0
    kept: List[Tuple[int, ConfigT]] = []
    rejected = 0
    for index, config in enumerate(candidates):
        try:
            precheck(config)
        except Exception:
            rejected += 1
        else:
            kept.append((index, config))
    return kept, rejected


def exhaustive_search(
    candidates: Sequence[ConfigT],
    evaluate: Callable[[ConfigT], float],
    precheck: Optional[PrecheckT] = None,
) -> TuningResult:
    """Profile every candidate and return the best one.

    ``precheck`` (raise-to-reject) screens each candidate before it is
    evaluated: rejected candidates are skipped, counted in
    :attr:`TuningResult.rejected` and never reach the cost model.
    """
    if not candidates:
        raise ValueError("tuning requires at least one candidate configuration")
    kept, rejected = _prefilter(candidates, precheck)
    if not kept:
        raise ValueError("the precheck rejected every candidate configuration")
    trials: List[TuningTrial] = []
    best: Optional[TuningTrial] = None
    for index, config in kept:
        cost = float(evaluate(config))
        trial = TuningTrial(config=config, cost=cost, index=index)
        trials.append(trial)
        if best is None or cost < best.cost:
            best = trial
    assert best is not None
    return TuningResult(
        best_config=best.config, best_cost=best.cost, trials=trials, rejected=rejected
    )


def first_k_search(
    candidates: Sequence[ConfigT],
    evaluate: Callable[[ConfigT], float],
    k: int,
    precheck: Optional[PrecheckT] = None,
) -> TuningResult:
    """Profile only the first ``k`` candidates (budgeted tuning)."""
    return exhaustive_search(list(candidates)[: max(1, k)], evaluate, precheck=precheck)


def parallel_search(
    candidates: Sequence[ConfigT],
    evaluate: Callable[[ConfigT], float],
    max_workers: Optional[int] = None,
    precheck: Optional[PrecheckT] = None,
) -> TuningResult:
    """Profile every candidate on a thread pool.

    Candidate evaluation order is nondeterministic but the outcome is not:
    trials are re-assembled in candidate order and ties break toward the
    lowest index, so the returned :class:`TuningResult` is identical to what
    :func:`exhaustive_search` produces on the same inputs.  The precheck runs
    serially up front (it is a cheap static pass) so rejection is
    deterministic too.
    """
    candidates = list(candidates)
    if not candidates:
        raise ValueError("tuning requires at least one candidate configuration")
    kept, rejected = _prefilter(candidates, precheck)
    if not kept:
        raise ValueError("the precheck rejected every candidate configuration")
    with ThreadPoolExecutor(max_workers=max_workers) as pool:
        costs = list(pool.map(lambda pair: float(evaluate(pair[1])), kept))
    trials = [
        TuningTrial(config=config, cost=cost, index=index)
        for (index, config), cost in zip(kept, costs)
    ]
    best = min(trials, key=lambda t: (t.cost, t.index))
    return TuningResult(
        best_config=best.config, best_cost=best.cost, trials=trials, rejected=rejected
    )


def early_exit_search(
    candidates: Sequence[ConfigT],
    evaluate: Callable[[ConfigT], float],
    k: int = 8,
    precheck: Optional[PrecheckT] = None,
) -> TuningResult:
    """Profile candidates in order, stopping after ``k`` consecutive
    non-improving trials.

    The candidate orderings in this repo place likely-best configurations
    first (the paper's ">95% optimal within the first eight pairs"
    observation), so a small ``k`` recovers nearly all of the exhaustive
    result at a fraction of the trials.  Rejected candidates (``precheck``
    raised) produce no trial and do not count toward the exit window.
    """
    candidates = list(candidates)
    if not candidates:
        raise ValueError("tuning requires at least one candidate configuration")
    k = max(1, k)
    trials: List[TuningTrial] = []
    best: Optional[TuningTrial] = None
    rejected = 0
    since_improvement = 0
    for index, config in enumerate(candidates):
        if precheck is not None:
            try:
                precheck(config)
            except Exception:
                rejected += 1
                continue
        cost = float(evaluate(config))
        trial = TuningTrial(config=config, cost=cost, index=index)
        trials.append(trial)
        if best is None or cost < best.cost:
            best = trial
            since_improvement = 0
        else:
            since_improvement += 1
            if since_improvement >= k:
                break
    if best is None:
        raise ValueError("the precheck rejected every candidate configuration")
    return TuningResult(
        best_config=best.config, best_cost=best.cost, trials=trials, rejected=rejected
    )
