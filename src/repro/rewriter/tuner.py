"""The tuning driver: enumerate schedule configurations, profile, keep the best.

The paper's Rewriter does not model performance analytically — it enumerates
the (small) tuning space and profiles each candidate (Section III-C.3).  Here
"profiling" means evaluating the candidate on the analytical machine model of
the target platform, which plays the role of the physical machine.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Generic, Iterable, List, Optional, Sequence, Tuple, TypeVar

__all__ = ["TuningTrial", "TuningResult", "exhaustive_search", "first_k_search"]

ConfigT = TypeVar("ConfigT")


@dataclass
class TuningTrial(Generic[ConfigT]):
    """One profiled candidate."""

    config: ConfigT
    cost: float
    index: int


@dataclass
class TuningResult(Generic[ConfigT]):
    """The outcome of a tuning run."""

    best_config: ConfigT
    best_cost: float
    trials: List[TuningTrial] = field(default_factory=list)

    @property
    def num_trials(self) -> int:
        return len(self.trials)

    def best_rank(self, tolerance: float = 0.0) -> int:
        """The 1-based position of the first candidate within ``tolerance``
        (relative) of the best cost.

        This is what the paper's "more than half of the kernels get the
        optimal performance on the first tuning pair" claim is about; a small
        tolerance plays the role of profiling noise on real hardware.
        """
        threshold = self.best_cost * (1.0 + max(0.0, tolerance))
        for trial in self.trials:
            if trial.cost <= threshold:
                return trial.index + 1
        return 1

    def cost_of(self, index: int) -> float:
        return self.trials[index].cost


def exhaustive_search(
    candidates: Sequence[ConfigT],
    evaluate: Callable[[ConfigT], float],
) -> TuningResult:
    """Profile every candidate and return the best one."""
    if not candidates:
        raise ValueError("tuning requires at least one candidate configuration")
    trials: List[TuningTrial] = []
    best: Optional[TuningTrial] = None
    for index, config in enumerate(candidates):
        cost = float(evaluate(config))
        trial = TuningTrial(config=config, cost=cost, index=index)
        trials.append(trial)
        if best is None or cost < best.cost:
            best = trial
    assert best is not None
    return TuningResult(best_config=best.config, best_cost=best.cost, trials=trials)


def first_k_search(
    candidates: Sequence[ConfigT],
    evaluate: Callable[[ConfigT], float],
    k: int,
) -> TuningResult:
    """Profile only the first ``k`` candidates (budgeted tuning)."""
    return exhaustive_search(list(candidates)[: max(1, k)], evaluate)
