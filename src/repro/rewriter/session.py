"""The shared tuning session: one cache, one search policy, many runners.

A :class:`TuningSession` is what the operator runners (``UnitCpuRunner``,
``UnitGpuRunner``) and the baseline library runners share so that identical
(workload, instruction, machine, search-space) problems are tuned exactly
once per process — and, via :meth:`TuningSession.save` / :meth:`load`, once
per *machine*.  The session also selects the search driver (exhaustive,
thread-parallel or early-exit) and accounts for every profiling trial it
performs, which is how the experiment suite verifies that a warm cache does
zero tuning work.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Optional, Sequence

from ..hwsim.cost import CostBreakdown
from ..telemetry import metrics as _metrics, trace as _trace
from .records import TuningCache, TuningKey, TuningRecord
from .tuner import (
    TuningResult,
    early_exit_search,
    exhaustive_search,
    parallel_search,
)

__all__ = ["TuningSession", "SEARCH_STRATEGIES"]

SEARCH_STRATEGIES = ("exhaustive", "parallel", "early_exit")

# Strategies that may return a different (approximate) result than profiling
# every candidate.  Their records must not be served to — or persisted for —
# sessions expecting the exhaustive optimum, so they tune under their own key
# namespace.  "parallel" is absent on purpose: it profiles every candidate
# with deterministic tie-breaking and is result-identical to "exhaustive".
_APPROXIMATE_STRATEGIES = ("early_exit",)


def _apply_validation_policy(validate, oracle, precheck, validation):
    """Normalise the legacy/unified validation kwargs of :meth:`tune`.

    Returns the effective ``(oracle, precheck)`` pair for the requested
    :class:`~repro.tir.ValidationPolicy`: ``OFF`` drops the oracle, ``SPOT``
    keeps it winner-only (the historical behaviour), ``FULL`` merges it into
    the per-candidate precheck.  The deprecated ``validate=`` callable keeps
    working with one :class:`DeprecationWarning`.
    """
    from ..tir.executor import ValidationPolicy, warn_once

    if validate is not None:
        if oracle is not None:
            raise TypeError("pass either oracle= or the deprecated validate=")
        warn_once(
            "TuningSession.tune:validate",
            "TuningSession.tune(validate=...) is deprecated; pass oracle=... "
            "(and validation=ValidationPolicy.SPOT/FULL/OFF)",
        )
        oracle = validate
    policy = ValidationPolicy.coerce(
        validation,
        default=ValidationPolicy.SPOT,
        bool_true=ValidationPolicy.FULL,
        owner="TuningSession.tune",
    )
    if policy is ValidationPolicy.OFF:
        return None, precheck
    if policy is ValidationPolicy.FULL and oracle is not None:
        base_precheck, winner_oracle = precheck, oracle

        def full_precheck(cfg):
            if base_precheck is not None:
                base_precheck(cfg)
            winner_oracle(cfg)

        # Every candidate (the winner included) is validated up front, so
        # the winner-only pass would be redundant work.
        return None, full_precheck
    return oracle, precheck


class TuningSession:
    """Shared tuning state: a record cache plus a search strategy.

    ``strategy`` selects the driver used on a cache miss: ``"exhaustive"``
    profiles every candidate, ``"parallel"`` profiles them on a thread pool
    (same result, deterministic tie-breaking), ``"early_exit"`` stops after
    ``early_exit_k`` consecutive candidates fail to improve the best cost.

    ``store`` optionally backs the session with a
    :class:`~repro.rewriter.store.ShardedTuningStore`: lookups read through
    (memory -> shard -> miss) and every fresh search's record is written
    through to the store, so concurrent sessions in other processes — e.g.
    :class:`~repro.rewriter.workers.DistributedTuner` workers — see each
    other's winners.
    """

    def __init__(
        self,
        cache: Optional[TuningCache] = None,
        strategy: str = "exhaustive",
        max_workers: Optional[int] = None,
        early_exit_k: int = 8,
        store=None,
    ) -> None:
        if strategy not in SEARCH_STRATEGIES:
            raise ValueError(f"strategy must be one of {SEARCH_STRATEGIES}")
        self.cache = cache if cache is not None else TuningCache()
        self.strategy = strategy
        self.max_workers = max_workers
        self.early_exit_k = early_exit_k
        self.store = store
        self.store_hits = 0
        self.trials_run = 0
        self.searches_run = 0
        self.candidates_rejected = 0

    # -- search dispatch ------------------------------------------------------
    def _record_key(self, key: TuningKey) -> TuningKey:
        if self.strategy in _APPROXIMATE_STRATEGIES:
            space = f"{key.space}!{self.strategy}:{self.early_exit_k}"
            return dataclasses.replace(key, space=space)
        return key

    def _search(
        self,
        candidates: Sequence,
        evaluate_cost: Callable[[object], float],
        precheck: Optional[Callable[[object], None]] = None,
    ) -> TuningResult:
        if self.strategy == "parallel":
            return parallel_search(
                candidates, evaluate_cost, max_workers=self.max_workers, precheck=precheck
            )
        if self.strategy == "early_exit":
            return early_exit_search(
                candidates, evaluate_cost, k=self.early_exit_k, precheck=precheck
            )
        return exhaustive_search(candidates, evaluate_cost, precheck=precheck)

    # -- the two entry points -------------------------------------------------
    def tune(
        self,
        key: TuningKey,
        candidates: Sequence,
        evaluate: Callable[[object], CostBreakdown],
        validate: Optional[Callable[[object], None]] = None,
        precheck: Optional[Callable[[object], None]] = None,
        *,
        oracle: Optional[Callable[[object], None]] = None,
        validation=None,
    ) -> TuningRecord:
        """Return the record for ``key``, searching ``candidates`` on a miss.

        ``evaluate`` maps a candidate config to its :class:`CostBreakdown`;
        the search minimises ``evaluate(cfg).seconds``.  On a hit no candidate
        is evaluated at all.

        ``oracle`` is the trial-validation callable (raise-to-reject); how
        much of the search it covers is the ``validation``
        :class:`~repro.tir.ValidationPolicy`:

        * ``SPOT`` (the default) — winner-only: the oracle runs on the
          winning configuration of a fresh search (never on a cache hit — a
          cached record was validated when it was created), so a record never
          enters the cache unvalidated.  The operator runners pass a
          functional check that tensorizes the workload with the winning
          config and compares the engine's output against the reference
          lowering (bit-identical for integer kernels, tight tolerance for
          float).
        * ``FULL`` — the oracle additionally screens every candidate before
          it is costed (merged into ``precheck``).
        * ``OFF`` — the oracle is not invoked at all.

        ``precheck`` screens *every* candidate before the cost model sees it
        (also raise-to-reject): the operator runners pass the static
        verification tier here, so a candidate whose rewrite cannot be proved
        sound is never costed, never profiled and never wins.  Rejections are
        counted in ``TuningResult.rejected`` and the session's
        ``candidates_rejected``.

        ``validate`` is the deprecated spelling of ``oracle`` and keeps
        working with a :class:`DeprecationWarning`.
        """
        oracle, precheck = _apply_validation_policy(validate, oracle, precheck, validation)
        key = self._record_key(key)
        record = self._lookup(key)
        if record is not None:
            return record
        return self._search_and_record(key, candidates, evaluate, oracle, precheck)

    def _search_and_record(
        self,
        key: TuningKey,
        candidates: Sequence,
        evaluate: Callable[[object], CostBreakdown],
        validate: Optional[Callable[[object], None]] = None,
        precheck: Optional[Callable[[object], None]] = None,
    ) -> TuningRecord:
        """Run the miss path of :meth:`tune`: search, validate, publish.

        Split out so sessions with extra lookup tiers (the service's
        :class:`~repro.service.client.RemoteSession`) can interpose between
        the lookup and the local search without duplicating this body.
        """
        with _trace.span("tuner.search", kind=key.kind) as sp:
            result = self._search(
                candidates, lambda cfg: evaluate(cfg).seconds, precheck
            )
            sp.set(trials=result.num_trials, rejected=result.rejected)
        _metrics.count("tuner.searches")
        _metrics.count("tuner.trials", result.num_trials)
        if validate is not None:
            validate(result.best_config)
        best = evaluate(result.best_config)
        record = TuningRecord(
            key=key,
            best_config=result.best_config,
            best_cost=best.seconds,
            num_trials=result.num_trials,
            breakdown=best,
            result=result,
        )
        self._publish(record)
        self.trials_run += result.num_trials
        self.searches_run += 1
        self.candidates_rejected += result.rejected
        return record

    def memoize(
        self, key: TuningKey, compute: Callable[[], CostBreakdown]
    ) -> CostBreakdown:
        """Cache a single cost with no search (library-baseline latencies)."""
        record = self._lookup(key)
        if record is None:
            cost = compute()
            record = TuningRecord(
                key=key,
                best_config=None,
                best_cost=cost.seconds,
                num_trials=0,
                breakdown=cost,
            )
            self._publish(record)
        return record.breakdown

    # -- the store tier -------------------------------------------------------
    def _lookup(self, key: TuningKey) -> Optional[TuningRecord]:
        """Memory -> shard -> miss.  A shard hit is promoted into memory so
        subsequent lookups keep the cheap identity semantics (and stop paying
        the store read)."""
        record = self.cache.lookup(key)
        if record is not None:
            _metrics.count("tuner.memory_hits")
            return record
        if self.store is not None:
            record = self.store.get(key)
            if record is not None:
                self.store_hits += 1
                _metrics.count("tuner.store_hits")
                self.cache.insert(record)
        return record

    def _publish(self, record: TuningRecord) -> None:
        self.cache.insert(record)
        if self.store is not None:
            self.store.put(record)

    # -- persistence + accounting --------------------------------------------
    def save(self, path) -> int:
        return self.cache.save(path)

    def load(self, path) -> int:
        return self.cache.load(path)

    @property
    def stats(self):
        return self.cache.stats

    def summary(self) -> str:
        s = self.stats
        store = f", {self.store_hits} store hits" if self.store is not None else ""
        rejected = (
            f", {self.candidates_rejected} rejected" if self.candidates_rejected else ""
        )
        return (
            f"TuningSession[{self.strategy}]: {s.size} records, "
            f"{s.hits} hits / {s.misses} misses ({s.hit_rate:.0%}){store}, "
            f"{self.trials_run} trials in {self.searches_run} searches{rejected}"
        )
