"""CPU scheduling strategy and tuning space (Sections III-C.3 and IV-B).

The tuned CPU code has the shape of Figure 7(b): the outermost data-parallel
loops are fused and parallelised across threads, a middle band is executed
serially, the reduction loops follow, and a small band of data-parallel loops
is reordered *below* the innermost reduction loop and unrolled so that
independent tensorized instructions fill the RAW-hazard latency of the
accumulator dependence chain.

The two *breaking points* (each a loop level plus a tiling factor) that
separate the three bands are the tuning knobs.  They are parameterised here by
``parallel_extent`` (how many iterations the fused parallel loop should carry,
< 3000 in the paper's first tuning pair) and ``unroll_limit`` (product of the
unrolled loop extents, < 8 in the first tuning pair).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple

from ..schedule.schedule import LoopVar, Stage
from .loop_reorg import TensorizeSpec

__all__ = [
    "CpuTuningConfig",
    "apply_cpu_schedule",
    "cpu_tuning_candidates",
    "DEFAULT_PARALLEL_EXTENT",
    "DEFAULT_UNROLL_LIMIT",
]

DEFAULT_PARALLEL_EXTENT = 3000
DEFAULT_UNROLL_LIMIT = 8


@dataclass(frozen=True)
class CpuTuningConfig:
    """One point of the CPU tuning space (one "tuning pair")."""

    parallel_extent: int = DEFAULT_PARALLEL_EXTENT
    unroll_limit: int = DEFAULT_UNROLL_LIMIT
    # Ablation switches: the Figure 10 experiment measures Parallel (no
    # unrolling) and +Unroll (fixed first pair) before opening the search.
    enable_parallel: bool = True
    enable_unroll: bool = True

    def describe(self) -> str:
        return (
            f"parallel<{self.parallel_extent}"
            f"{'+unroll<' + str(self.unroll_limit) if self.enable_unroll else ''}"
        )


@dataclass
class CpuScheduleReport:
    """What the scheduling strategy actually did (consumed by the cost model)."""

    parallel_loop: Optional[LoopVar]
    parallel_iterations: int
    serial_loops: List[LoopVar]
    unrolled_loops: List[LoopVar]
    unroll_factor: int
    reduce_loops: List[LoopVar]
    has_residue_guard: bool


def apply_cpu_schedule(spec: TensorizeSpec, config: CpuTuningConfig) -> CpuScheduleReport:
    """Organise the non-tensorized loops of ``spec`` per the CPU strategy.

    Mutates the spec's schedule in place and returns a report of the resulting
    loop structure.
    """
    stage = spec.stage
    tensorized = list(spec.tensorized_leaves)
    dp_outer = [l for l in stage.leaf_vars if not l.is_reduce and l not in tensorized]
    reduce_outer = [l for l in stage.leaf_vars if l.is_reduce and l not in tensorized]

    # ---- choose the unroll band (from the innermost data-parallel loops) ----
    unrolled: List[LoopVar] = []
    unroll_factor = 1
    remaining_dp = list(dp_outer)
    if config.enable_unroll and config.unroll_limit > 1:
        while remaining_dp:
            candidate = remaining_dp[-1]
            if unroll_factor * candidate.extent <= config.unroll_limit:
                unrolled.insert(0, candidate)
                unroll_factor *= candidate.extent
                remaining_dp.pop()
                continue
            # Breaking point inside a loop: tile it so the inner part fits the
            # unroll budget.  Prefer a perfect tile; when the extent is poorly
            # divisible (e.g. the prime output widths of Table I layers 1 and
            # 4) fall back to an imperfect split, which inherits TVM's
            # ``likely`` residue guard — the exact effect the paper blames for
            # those layers losing to oneDNN.
            budget = config.unroll_limit // unroll_factor
            factor = _largest_divisor_at_most(candidate.extent, budget)
            if factor <= max(1, budget // 2) and budget > 1 and candidate.extent > budget:
                factor = budget
            if factor > 1:
                outer, inner = stage.split(candidate, factor)
                remaining_dp[-1] = outer
                unrolled.insert(0, inner)
                unroll_factor *= factor
            break

    # ---- choose the parallel band (from the outermost data-parallel loops) --
    parallel_loop: Optional[LoopVar] = None
    parallel_iterations = 1
    serial_loops: List[LoopVar] = []
    if config.enable_parallel and remaining_dp:
        fuse_band: List[LoopVar] = []
        product = 1
        for loop in remaining_dp:
            if product * loop.extent <= config.parallel_extent or not fuse_band:
                fuse_band.append(loop)
                product *= loop.extent
            else:
                break
        serial_loops = [l for l in remaining_dp if l not in fuse_band]
        # Fusing requires adjacency; establish the final order first.
        stage.reorder(*(fuse_band + serial_loops + reduce_outer + unrolled + tensorized))
        parallel_loop = stage.fuse_many(fuse_band) if len(fuse_band) > 1 else fuse_band[0]
        stage.parallel(parallel_loop)
        parallel_iterations = product
    else:
        serial_loops = list(remaining_dp)
        stage.reorder(*(serial_loops + reduce_outer + unrolled + tensorized))

    for loop in unrolled:
        stage.unroll(loop)

    return CpuScheduleReport(
        parallel_loop=parallel_loop,
        parallel_iterations=parallel_iterations,
        serial_loops=serial_loops,
        unrolled_loops=unrolled,
        unroll_factor=unroll_factor,
        reduce_loops=reduce_outer,
        has_residue_guard=stage.has_imperfect_split,
    )


def _largest_divisor_at_most(n: int, bound: int) -> int:
    bound = max(1, min(n, bound))
    for d in range(bound, 0, -1):
        if n % d == 0:
            return d
    return 1


def cpu_tuning_candidates(
    max_pairs: int = 24,
    parallel_extents: Iterable[int] = (3000, 1536, 6144, 768, 12288, 384),
    unroll_limits: Iterable[int] = (8, 4, 16, 12, 2, 6),
) -> List[CpuTuningConfig]:
    """The ordered list of tuning pairs explored by the Rewriter's tuner.

    The first pair is (3000, 8) — the paper reports that more than half of
    the convolution kernels are already optimal at this pair and more than
    95 % within the first eight pairs, which the tuning-convergence ablation
    benchmark verifies against this ordering.
    """
    pairs: List[CpuTuningConfig] = []
    parallel_extents = list(parallel_extents)
    unroll_limits = list(unroll_limits)
    # Order by "distance" from the default pair, exploring unroll degrees
    # before parallel-fusion targets (the unroll degree is by far the more
    # sensitive knob), so early candidates stay close to the recommendation.
    for rank in range(2 * len(parallel_extents) + len(unroll_limits)):
        for pi, p in enumerate(parallel_extents):
            for ui, u in enumerate(unroll_limits):
                if 2 * pi + ui == rank:
                    pairs.append(CpuTuningConfig(parallel_extent=p, unroll_limit=u))
    seen = set()
    ordered = []
    for cfg in pairs:
        key = (cfg.parallel_extent, cfg.unroll_limit)
        if key not in seen:
            seen.add(key)
            ordered.append(cfg)
        if len(ordered) >= max_pairs:
            break
    return ordered
