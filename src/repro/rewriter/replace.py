"""Tensorized-instruction replacement (Section III-C.2 / IV-B step 3).

The lowered tensor IR contains a loop nest annotated with the ``tensorize``
pragma.  This pass replaces that nest with an :class:`IntrinsicCall` whose
operand bindings encode the operand-generation rules: for every register
operand of the instruction, which program buffer feeds it and at which
addresses (as index expressions over the instruction's loop variables and the
remaining outer loop variables).  Broadcasts and unroll-and-concatenate
patterns fall out of these bindings — a register lane whose program address
does not involve some instruction loop simply repeats along it.
"""

from __future__ import annotations

from typing import Dict, List

from ..dsl.expr import Expr, Var, simplify, substitute
from ..tir.lower import PrimFunc
from ..tir.stmt import AttrStmt, For, ForKind, IntrinsicCall, OperandBinding, Stmt
from ..tir.visitor import StmtMutator, collect
from .loop_reorg import TensorizeError, TensorizeSpec

__all__ = ["build_intrinsic_call", "replace_tensorize", "has_tensorize_pragma"]


def build_intrinsic_call(spec: TensorizeSpec) -> IntrinsicCall:
    """Construct the IntrinsicCall for a tensorize spec.

    Program-side index expressions are obtained by rewriting the operation's
    original access expressions through the schedule's index map (original
    axis variables → leaf-variable expressions) and then renaming the
    tensorized inner leaf variables to the instruction's own loop variables.
    """
    iso = spec.inspection.isomorphism
    if iso is None or not iso.matched:
        raise TensorizeError("cannot build an intrinsic call from a failed match")
    index_map: Dict[Var, Expr] = spec.stage.index_expressions()
    leaf_to_intrin: Dict[Var, Var] = spec.leaf_to_intrin_var

    def program_indices(load) -> List[Expr]:
        out = []
        for idx in load.indices:
            rewritten = substitute(idx, index_map)
            rewritten = substitute(rewritten, leaf_to_intrin)
            out.append(simplify(rewritten))
        return out

    intrin = spec.intrinsic
    pairs = iso.load_pairs
    if not pairs:
        raise TensorizeError("match produced no operand correspondences")

    # The first recorded pair is always the store-target correspondence
    # (destination register ↔ program output element).
    store_pair = pairs[0]
    output_binding = OperandBinding(
        intrin_tensor=store_pair[0].tensor,
        intrin_indices=tuple(store_pair[0].indices),
        program_tensor=store_pair[1].tensor,
        program_indices=tuple(program_indices(store_pair[1])),
    )

    input_bindings: List[OperandBinding] = []
    for instr_load, prog_load in pairs[1:]:
        input_bindings.append(
            OperandBinding(
                intrin_tensor=instr_load.tensor,
                intrin_indices=tuple(instr_load.indices),
                program_tensor=prog_load.tensor,
                program_indices=tuple(program_indices(prog_load)),
            )
        )

    return IntrinsicCall(
        intrin=intrin,
        inputs=input_bindings,
        output=output_binding,
        axes=intrin.op.all_axes,
        reads_output=True,
    )


def has_tensorize_pragma(stmt: Stmt) -> bool:
    """Whether a tensorize pragma survives anywhere in the statement tree."""
    return bool(
        collect(
            stmt,
            lambda s: isinstance(s, AttrStmt)
            and s.key == "pragma_tensorize"
            or (isinstance(s, For) and s.kind == ForKind.TENSORIZE),
        )
    )


class _Replacer(StmtMutator):
    def __init__(self, call: IntrinsicCall) -> None:
        self.call = call
        self.replaced = 0

    def mutate_attrstmt(self, stmt: AttrStmt) -> Stmt:
        if stmt.key == "pragma_tensorize":
            self.replaced += 1
            return self._wrap_with_guards(stmt.body)
        return self.generic_mutate(stmt)

    def _wrap_with_guards(self, region: Stmt) -> Stmt:
        """Re-apply residue (``likely``) guards from outer imperfect splits.

        Guards produced by imperfect splits of *non-tensorized* loops are
        emitted around the innermost store and would otherwise be dropped when
        the tensorized nest is replaced; they are hoisted around the intrinsic
        call instead.  (Guards over the tensorized loops themselves cannot
        occur — reorganize_loops enforces perfect tiling there.)
        """
        from ..tir.stmt import IfThenElse
        from ..tir.visitor import collect

        guards = collect(region, lambda s: isinstance(s, IfThenElse) and s.likely)
        intrin_axis_vars = {ax.var for ax in self.call.axes}
        tensorized_vars = set()
        for node in collect(region, lambda s: isinstance(s, For)):
            tensorized_vars.add(node.var)
        result: Stmt = self.call
        from ..dsl.expr import free_vars

        for guard in reversed(guards):
            if any(v in tensorized_vars for v in free_vars(guard.condition)):
                raise TensorizeError(
                    "residue guard over a tensorized loop; the mapped axes must "
                    "tile perfectly (pad the tensor shapes at graph level)"
                )
            result = IfThenElse(guard.condition, result, likely=True)
        return result


def replace_tensorize(
    func: PrimFunc, spec: TensorizeSpec, verify: bool = True
) -> PrimFunc:
    """Replace every tensorize-pragma region of ``func`` with the intrinsic call.

    By default the rewritten candidate is pushed through the static
    verification tier (:func:`repro.analysis.verify_rewrite`) before it is
    returned — bounds, tile-disjointness and dtype errors raise
    :class:`~repro.analysis.AnalysisError` here, so an unsound rewrite never
    reaches the cost model or the engine.  Pass ``verify=False`` to skip the
    gate (e.g. when deliberately constructing a broken candidate in tests).
    """
    call = build_intrinsic_call(spec)
    replacer = _Replacer(call)
    new_body = replacer.mutate(func.body)
    if replacer.replaced == 0:
        raise TensorizeError(
            "the lowered function contains no tensorize pragma; was the "
            "schedule produced by reorganize_loops()?"
        )
    new_func = PrimFunc(func.name, func.params, new_body, func.op)
    if verify:
        from ..analysis import verify_rewrite

        verify_rewrite(new_func)
    return new_func
