"""Sharded on-disk tuning store: many concurrent writers, one warm cache.

:class:`~repro.rewriter.records.TuningCache` persists as a single JSONL file
written wholesale, which is perfect for one process and fatal for two — the
second ``save`` silently clobbers the first.  This module is the multi-writer
storage layer underneath it:

* records are partitioned across N JSONL *shard* files by a stable hash of
  their :class:`~repro.rewriter.records.TuningKey`, so concurrent writers of
  different keys usually touch different files;
* every shard write is an **append** of one complete line performed under a
  per-shard cross-process :class:`FileLock` (``fcntl``/``msvcrt`` where
  available, an exclusive-create lockfile otherwise), so two processes
  publishing into the same shard serialise instead of interleaving bytes;
* duplicate appends for one key are resolved *last-wins* at read time, and
  :meth:`ShardedTuningStore.compact` folds each shard down to one line per
  key via a crash-safe write-to-temp-then-``os.replace`` — a reader or a
  crash mid-compaction sees either the old file or the new one, never a
  partial file;
* every persisted line carries the record schema version and the cost-model
  fingerprint (:func:`~repro.rewriter.records.cost_model_fingerprint`), so a
  store tuned under an edited ``hwsim`` cost model invalidates itself instead
  of serving stale winners;
* every ``get`` hit and ``put`` *touches* its key with a last-served
  timestamp (buffered in memory, persisted to per-shard ``served-XX.jsonl``
  sidecars by :meth:`ShardedTuningStore.flush_touches` and through
  :meth:`~ShardedTuningStore.compact`), which drives the store's GC policy:
  :meth:`ShardedTuningStore.evict` drops records least-recently-served
  first (``max_records=``) and records idle longer than ``max_idle=``.

:class:`~repro.rewriter.session.TuningSession` reads through this store
(memory -> shard -> miss) and writes fresh records through to it;
:class:`~repro.rewriter.workers.DistributedTuner` points many worker
processes at one store directory.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from ..retry import RetryPolicy
from ..telemetry import metrics as _metrics
from ..testing import faults
from .records import (
    SCHEMA_VERSION,
    TuningCache,
    TuningKey,
    TuningRecord,
    cost_model_fingerprint,
    decode_record_line,
)

__all__ = ["FileLock", "LockTimeout", "ShardedTuningStore", "StoreStats"]

try:  # POSIX
    import fcntl

    _HAVE_FCNTL = True
except ImportError:  # pragma: no cover - platform dependent
    _HAVE_FCNTL = False

try:  # Windows
    import msvcrt

    _HAVE_MSVCRT = True
except ImportError:  # pragma: no cover - platform dependent
    _HAVE_MSVCRT = False


class LockTimeout(TimeoutError):
    """A :class:`FileLock` could not be acquired within its timeout."""


class FileLock:
    """An advisory cross-process mutex backed by a lock file.

    Uses ``fcntl.flock`` on POSIX and ``msvcrt.locking`` on Windows; on
    platforms with neither it falls back to spinning on an
    ``O_CREAT | O_EXCL`` sentinel file (with stale-sentinel breaking, so a
    crashed holder delays waiters by at most ``timeout`` rather than
    deadlocking them).  Not reentrant: a process must release before
    re-acquiring.

    The lock keeps contention accounting — how often and for how long
    acquisition had to wait — which :class:`ShardedTuningStore` aggregates
    into its :class:`StoreStats`.

    Contention is waited out on a :class:`~repro.retry.RetryPolicy`:
    capped-exponential polling (starting at ``poll_interval``) with
    deterministic jitter seeded by this process's pid, so N workers that
    collide on one shard decorrelate instead of re-polling in phase, and
    ``timeout`` is the policy deadline.  Pass ``retry=`` to override the
    whole schedule; its ``deadline_s`` then *is* the timeout.
    """

    def __init__(
        self,
        path,
        timeout: float = 30.0,
        poll_interval: float = 0.002,
        retry: Optional[RetryPolicy] = None,
    ) -> None:
        self.path = os.fspath(path)
        if retry is None:
            retry = RetryPolicy(
                max_attempts=None,
                base_delay_s=poll_interval,
                max_delay_s=max(poll_interval * 25.0, 0.05),
                multiplier=1.5,
                jitter=0.5,
                deadline_s=timeout,
                seed=os.getpid(),
            )
        elif retry.deadline_s is not None:
            timeout = retry.deadline_s
        self.retry = retry
        self.timeout = timeout
        self.poll_interval = poll_interval
        self._fd: Optional[int] = None
        self.acquisitions = 0
        self.contentions = 0
        self.wait_seconds = 0.0

    @property
    def held(self) -> bool:
        return self._fd is not None

    def acquire(self) -> None:
        if self._fd is not None:
            raise RuntimeError(f"lock {self.path!r} is not reentrant")
        faults.fire("store.lock", path=self.path)
        start = time.perf_counter()
        if _HAVE_FCNTL or _HAVE_MSVCRT:
            self._fd = self._acquire_os_lock()
        else:  # pragma: no cover - exercised only where fcntl/msvcrt are absent
            self._fd = self._acquire_sentinel()
        self.acquisitions += 1
        self.wait_seconds += time.perf_counter() - start

    def _acquire_os_lock(self) -> int:
        fd = os.open(self.path, os.O_CREAT | os.O_RDWR, 0o644)
        contended = False
        for _ in self.retry.attempts():
            try:
                if _HAVE_FCNTL:
                    fcntl.flock(fd, fcntl.LOCK_EX | fcntl.LOCK_NB)
                else:
                    msvcrt.locking(fd, msvcrt.LK_NBLCK, 1)
                return fd
            except OSError:
                if not contended:
                    contended = True
                    self.contentions += 1
        os.close(fd)
        raise LockTimeout(f"could not lock {self.path!r} within {self.timeout}s")

    def _acquire_sentinel(self) -> int:
        # Exclusive-create fallback: whoever creates the sentinel holds the
        # lock.  A sentinel older than the timeout is treated as leaked by a
        # crashed holder and broken.
        contended = False
        for _ in self.retry.attempts():
            try:
                fd = os.open(self.path, os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o644)
                os.write(fd, f"{os.getpid()}\n".encode("ascii"))
                return fd
            except FileExistsError:
                if not contended:
                    contended = True
                    self.contentions += 1
                try:
                    if time.time() - os.path.getmtime(self.path) > self.timeout:
                        # Break the stale sentinel via rename-then-unlink:
                        # exactly one waiter wins the rename, so two waiters
                        # can never each unlink a *different* (fresh) sentinel
                        # and both believe they hold the lock.
                        breaker = f"{self.path}.break.{os.getpid()}"
                        os.rename(self.path, breaker)
                        os.unlink(breaker)
                except OSError:
                    pass  # holder released / another waiter broke it first
        raise LockTimeout(f"could not lock {self.path!r} within {self.timeout}s")

    def release(self) -> None:
        if self._fd is None:
            raise RuntimeError(f"lock {self.path!r} is not held")
        fd, self._fd = self._fd, None
        if _HAVE_FCNTL:
            fcntl.flock(fd, fcntl.LOCK_UN)
            os.close(fd)
        elif _HAVE_MSVCRT:  # pragma: no cover - platform dependent
            msvcrt.locking(fd, msvcrt.LK_UNLCK, 1)
            os.close(fd)
        else:  # pragma: no cover - platform dependent
            os.close(fd)
            try:
                os.unlink(self.path)
            except OSError:
                pass

    def __enter__(self) -> "FileLock":
        self.acquire()
        return self

    def __exit__(self, *exc) -> None:
        self.release()


@dataclass
class _ShardView:
    """One handle's incremental view of a shard file.

    ``offset`` is the byte position up to which lines have been decoded into
    ``records`` (last-wins per key).  Shards are append-only between
    compactions, so a lookup only ever decodes the bytes appended since the
    previous read instead of rescanning the whole file; a shrunken file
    (compaction or ``clear`` by another process) resets the view.
    """

    offset: int = 0
    records: Dict[TuningKey, TuningRecord] = dataclasses.field(default_factory=dict)

    def reset(self) -> None:
        self.offset = 0
        self.records = {}


@dataclass
class StoreStats:
    """Operation and contention accounting for one :class:`ShardedTuningStore`.

    Lock counters aggregate over every shard lock this store handle has used:
    ``lock_contentions`` counts acquisitions that found the lock held by
    someone else, ``lock_wait_seconds`` the total time spent waiting — the
    store-contention numbers the distributed-tuning benchmark reports.
    """

    appends: int = 0
    reads: int = 0
    hits: int = 0
    misses: int = 0
    records_scanned: int = 0
    corrupt_lines: int = 0
    stale_records: int = 0
    compactions: int = 0
    compacted_away: int = 0
    touches: int = 0
    gc_runs: int = 0
    evicted_records: int = 0
    lock_acquisitions: int = 0
    lock_contentions: int = 0
    lock_wait_seconds: float = 0.0

    def as_dict(self) -> Dict:
        return dataclasses.asdict(self)


class ShardedTuningStore:
    """Tuning records partitioned across N append-only JSONL shard files.

    ``root`` is a directory (created if missing) holding ``store.json``
    (shard-count metadata, so every opener agrees on the partitioning),
    ``shard-XX.jsonl`` data files and ``shard-XX.lock`` lock files.  The
    shard count is fixed at creation; a later opener's ``shards`` argument is
    ignored in favour of the stored one.

    All methods are safe against concurrent use from other processes; one
    store *handle* is not itself thread-safe (give each thread or worker its
    own handle, as :class:`~repro.rewriter.workers.DistributedTuner` does).
    """

    META_NAME = "store.json"

    def __init__(self, root, shards: int = 8, lock_timeout: float = 30.0) -> None:
        if shards < 1:
            raise ValueError("a sharded store needs at least one shard")
        self.root = os.fspath(root)
        os.makedirs(self.root, exist_ok=True)
        self.lock_timeout = lock_timeout
        self.num_shards = self._init_meta(int(shards))
        self._locks = [
            FileLock(self._lock_path(index), timeout=lock_timeout)
            for index in range(self.num_shards)
        ]
        self._views = [_ShardView() for _ in range(self.num_shards)]
        self._counters = StoreStats()
        self._touched: Dict[TuningKey, float] = {}

    # -- layout ---------------------------------------------------------------
    def _meta_path(self) -> str:
        return os.path.join(self.root, self.META_NAME)

    def shard_path(self, index: int) -> str:
        return os.path.join(self.root, f"shard-{index:02d}.jsonl")

    def _lock_path(self, index: int) -> str:
        return os.path.join(self.root, f"shard-{index:02d}.lock")

    def served_path(self, index: int) -> str:
        return os.path.join(self.root, f"served-{index:02d}.jsonl")

    def quarantine_path(self, index: int) -> str:
        return os.path.join(self.root, f"quarantine-{index:02d}.jsonl")

    def _init_meta(self, shards: int) -> int:
        """Create or read ``store.json``; returns the authoritative shard count.

        Creation races between processes are settled under a store-level lock:
        the first creator wins, later openers adopt its shard count.
        """
        with FileLock(os.path.join(self.root, "store.lock"), timeout=self.lock_timeout):
            path = self._meta_path()
            if os.path.exists(path):
                with open(path, "r", encoding="utf-8") as handle:
                    return int(json.load(handle)["shards"])
            meta = {
                "shards": shards,
                "schema": SCHEMA_VERSION,
                "cost_model": cost_model_fingerprint(),
            }
            tmp = path + f".tmp.{os.getpid()}"
            with open(tmp, "w", encoding="utf-8") as handle:
                json.dump(meta, handle, indent=2)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, path)
            return shards

    def shard_of(self, key: TuningKey) -> int:
        """The shard a key lives in: a stable content hash, identical across
        processes and Python invocations (``hash()`` is salted; this is not).
        """
        blob = json.dumps(key.to_json(), sort_keys=True)
        return int.from_bytes(
            hashlib.md5(blob.encode("utf-8")).digest()[:8], "big"
        ) % self.num_shards

    @contextmanager
    def _locked(self, index: int) -> Iterator[None]:
        lock = self._locks[index]
        with lock:
            yield

    # -- reads and writes -----------------------------------------------------
    def put(self, record: TuningRecord) -> int:
        """Append ``record`` to its shard; returns the shard index.

        The line is written, flushed and fsynced while the shard lock is
        held, so a concurrent reader never observes a torn line from a
        *completed* put (a crash mid-write can still truncate the tail, which
        readers tolerate and count).  If a previous writer crashed mid-append
        and left the file without a trailing newline, one is inserted first —
        otherwise this record would merge into the torn bytes and become
        unreadable.
        """
        line = json.dumps(record.to_json(), sort_keys=True) + "\n"
        _metrics.count("store.puts")
        index = self.shard_of(record.key)
        path = self.shard_path(index)
        with self._locked(index):
            if self._has_torn_tail(path):
                line = "\n" + line
            with open(path, "a", encoding="utf-8") as handle:
                faults.fire("store.append", path=path, handle=handle, line=line)
                handle.write(line)
                handle.flush()
                os.fsync(handle.fileno())
        self._counters.appends += 1
        self._touch(record.key)  # a fresh record was produced for a requester
        return index

    @staticmethod
    def _has_torn_tail(path: str) -> bool:
        """True when the file exists, is non-empty and lacks a trailing
        newline — the signature of a writer that crashed mid-append (a live
        writer cannot be mid-append here: appends happen under the shard
        lock this caller already holds)."""
        try:
            size = os.path.getsize(path)
        except OSError:
            return False
        if size == 0:
            return False
        with open(path, "rb") as handle:
            handle.seek(size - 1)
            return handle.read(1) != b"\n"

    def _decode_lines(self, lines: List[str]) -> Iterator[TuningRecord]:
        for raw in lines:
            raw = raw.strip()
            if not raw:
                continue
            self._counters.records_scanned += 1
            record, problem = decode_record_line(raw)
            if record is not None:
                yield record
            elif problem == "stale":
                self._counters.stale_records += 1
            else:
                self._counters.corrupt_lines += 1

    def _scan_shard(self, index: int) -> Dict[TuningKey, TuningRecord]:
        """This handle's up-to-date last-wins view of one shard.

        Only bytes appended since the previous scan are read and decoded
        (the shard is append-only between compactions); a file that shrank —
        compacted or cleared by another process — resets the view and is
        re-read from the start.  An unterminated tail can only come from a
        writer that crashed mid-append (completed puts are flushed before
        the shard lock is released, and we read under that lock), so it is
        counted corrupt and skipped; a later append then starts a fresh,
        decodable line after it.
        """
        path = self.shard_path(index)
        view = self._views[index]
        if not os.path.exists(path):
            view.reset()
            return view.records
        with self._locked(index):
            size = os.path.getsize(path)
            if size < view.offset:
                view.reset()
            if size == view.offset:
                return view.records
            with open(path, "rb") as handle:
                handle.seek(view.offset)
                chunk = handle.read()
            view.offset += len(chunk)
        text = chunk.decode("utf-8", errors="replace")
        lines = text.split("\n")
        if text and not text.endswith("\n") and lines[-1].strip():
            self._counters.records_scanned += 1
            self._counters.corrupt_lines += 1  # a crashed writer's torn tail
        for record in self._decode_lines(lines[:-1]):
            view.records[record.key] = record  # later appends win
        return view.records

    def get(self, key: TuningKey) -> Optional[TuningRecord]:
        """The most recently appended valid record for ``key``, or ``None``."""
        self._counters.reads += 1
        found = self._scan_shard(self.shard_of(key)).get(key)
        if found is None:
            self._counters.misses += 1
            _metrics.count("store.misses")
        else:
            self._counters.hits += 1
            _metrics.count("store.hits")
            self._touch(key)
        return found

    def load_into(self, cache: TuningCache) -> int:
        """Merge every valid record into ``cache``; returns distinct keys read."""
        for index in range(self.num_shards):
            for record in self._scan_shard(index).values():
                cache.insert(record)
        return len(cache)

    def load(self) -> TuningCache:
        cache = TuningCache()
        self.load_into(cache)
        return cache

    def records(self) -> List[TuningRecord]:
        return self.load().records()

    def __len__(self) -> int:
        """Distinct keys currently stored (reads every shard)."""
        return len(self.load())

    # -- replication feed -----------------------------------------------------
    def read_shard_since(
        self, index: int, offset: int, max_bytes: int = 4 * 1024 * 1024
    ) -> Tuple[List[Dict], int, bool]:
        """The raw record dicts appended to one shard at/after byte ``offset``.

        The anti-entropy feed for :class:`~repro.service.server.TuningService`
        replication: returns ``(dicts, new_offset, reset)``.  Only *complete*
        lines are consumed — ``new_offset`` always lands on a line boundary,
        so a torn tail is simply re-offered once a later append heals it.  A
        file smaller than ``offset`` (compacted or cleared since the last
        pull) resets the scan to byte 0 and reports ``reset=True``; replaying
        the whole shard is harmless because consumers apply lines last-wins.

        Lines travel as parsed-but-unvalidated dicts: validation (schema +
        cost-model fingerprint) belongs to the *consumer's* decode gate, so a
        replica re-checks everything it ingests rather than trusting the
        primary's opinion.  Undecodable line fragments are skipped here (the
        consumer could do nothing with them anyway).
        """
        path = self.shard_path(index)
        reset = False
        offset = max(0, int(offset))
        with self._locked(index):
            if not os.path.exists(path):
                return [], 0, offset > 0
            size = os.path.getsize(path)
            if size < offset:
                offset = 0
                reset = True
            if size == offset:
                return [], offset, reset
            with open(path, "rb") as handle:
                handle.seek(offset)
                chunk = handle.read(max_bytes)
        end = chunk.rfind(b"\n")
        if end < 0:
            return [], offset, reset  # no complete line yet (torn tail)
        complete, new_offset = chunk[: end + 1], offset + end + 1
        dicts: List[Dict] = []
        for raw in complete.decode("utf-8", errors="replace").split("\n"):
            raw = raw.strip()
            if not raw:
                continue
            try:
                data = json.loads(raw)
            except ValueError:
                continue  # a healed torn line; its replacement follows
            if isinstance(data, dict):
                dicts.append(data)
        return dicts, new_offset, reset

    # -- last-served tracking (the GC clock) ----------------------------------

    # Auto-flush the touch buffer past this size: touches are buffered so a
    # get never pays a disk append, but an unbounded buffer means a process
    # that exits without flushing silently loses its whole service history.
    TOUCH_FLUSH_THRESHOLD = 256

    def _touch(self, key: TuningKey, when: Optional[float] = None) -> None:
        """Buffer a last-served timestamp for ``key`` (flushed lazily)."""
        self._touched[key] = time.time() if when is None else when
        self._counters.touches += 1
        if len(self._touched) >= self.TOUCH_FLUSH_THRESHOLD:
            self.flush_touches()

    def touch(self, key: TuningKey, when: Optional[float] = None) -> None:
        """Record that ``key`` was served by a tier *above* this store.

        A long-running daemon promotes hot records into an in-memory cache
        and stops calling :meth:`get` for them; without this, the store's
        last-served clock would freeze at promotion time and LRU GC would
        evict exactly the hottest records.  Callers with a memory tier must
        touch through on their own cache hits.
        """
        self._touch(key, when)

    def flush_touches(self) -> int:
        """Persist buffered last-served timestamps to the shard sidecars.

        Touches accumulate in memory (a ``get`` must not pay a disk append)
        and are appended — one JSON line per key, under the shard lock — to
        ``served-XX.jsonl`` here, from :meth:`compact` and from
        :meth:`evict`.  Returns the number of entries written.
        """
        if not self._touched:
            return 0
        buffered, self._touched = self._touched, {}
        by_shard: Dict[int, List[TuningKey]] = {}
        for key in buffered:
            by_shard.setdefault(self.shard_of(key), []).append(key)
        for index, keys in by_shard.items():
            with self._locked(index):
                with open(self.served_path(index), "a", encoding="utf-8") as handle:
                    for key in keys:
                        entry = {"served": key.to_json(), "t": buffered[key]}
                        handle.write(json.dumps(entry, sort_keys=True) + "\n")
                    handle.flush()
                    os.fsync(handle.fileno())
        return sum(len(keys) for keys in by_shard.values())

    def _read_served(self, index: int) -> Dict[TuningKey, float]:
        """The persisted last-served map of one shard (latest timestamp wins).

        Call with the shard lock held (or on a quiesced store): the sidecar
        is append-only between rewrites.  Undecodable lines are skipped —
        losing a timestamp only makes its record *older* to the GC, never
        corrupts a record.
        """
        served: Dict[TuningKey, float] = {}
        path = self.served_path(index)
        if not os.path.exists(path):
            return served
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    data = json.loads(line)
                    key = TuningKey.from_json(data["served"])
                    stamp = float(data["t"])
                except (ValueError, KeyError, TypeError):
                    continue
                if stamp >= served.get(key, float("-inf")):
                    served[key] = stamp
        return served

    def last_served(self, key: TuningKey) -> Optional[float]:
        """When ``key`` was last served (buffered or persisted), or ``None``."""
        buffered = self._touched.get(key)
        index = self.shard_of(key)
        with self._locked(index):
            persisted = self._read_served(index).get(key)
        stamps = [s for s in (buffered, persisted) if s is not None]
        return max(stamps) if stamps else None

    def _rewrite_shard(
        self,
        index: int,
        records: Dict[TuningKey, TuningRecord],
        served: Dict[TuningKey, float],
    ) -> None:
        """Atomically replace one shard (and its served sidecar) with exactly
        ``records`` / ``served``.  Call with the shard lock held."""
        path = self.shard_path(index)
        tmp = path + f".tmp.{os.getpid()}"
        faults.fire("store.compact", path=path, tmp=tmp)
        with open(tmp, "w", encoding="utf-8") as handle:
            for record in records.values():
                handle.write(json.dumps(record.to_json(), sort_keys=True) + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
        served_path = self.served_path(index)
        tmp = served_path + f".tmp.{os.getpid()}"
        with open(tmp, "w", encoding="utf-8") as handle:
            for key, stamp in served.items():
                entry = {"served": key.to_json(), "t": stamp}
                handle.write(json.dumps(entry, sort_keys=True) + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, served_path)
        self._fsync_dir()

    # -- maintenance ----------------------------------------------------------
    def compact(self) -> Dict[str, int]:
        """Fold every shard down to one line per key, dropping dead lines.

        Per shard, under its lock: read everything, keep the last valid
        record per key, write them to a temporary file in the same directory
        (flush + fsync) and atomically ``os.replace`` it over the shard.  A
        crash at any point leaves either the old shard or the new one — never
        a half-written file — and the shard lock keeps concurrent appenders
        out of the window between read and replace.

        Last-served timestamps survive compaction: buffered touches are
        flushed first, then each shard's ``served-XX.jsonl`` sidecar is
        folded down to one line per surviving key alongside the shard
        itself.
        """
        self.flush_touches()
        kept = 0
        dropped = 0
        for index in range(self.num_shards):
            path = self.shard_path(index)
            if not os.path.exists(path):
                continue
            with self._locked(index):
                with open(path, "r", encoding="utf-8") as handle:
                    lines = handle.readlines()
                latest: Dict[TuningKey, TuningRecord] = {}
                for record in self._decode_lines(lines):
                    latest[record.key] = record
                served = {
                    key: stamp
                    for key, stamp in self._read_served(index).items()
                    if key in latest
                }
                self._rewrite_shard(index, latest, served)
            self._views[index].reset()  # rewritten: our byte offsets are void
            kept += len(latest)
            dropped += len([l for l in lines if l.strip()]) - len(latest)
            self._counters.compactions += 1
        self._counters.compacted_away += dropped
        return {"kept": kept, "dropped": dropped}

    def fsck(self, quarantine: bool = True) -> Dict[str, int]:
        """Audit every shard after a crash; optionally repair in place.

        Per shard, under its lock, every line is pushed through the same
        decode gate that serving uses and sorted into three piles:

        * **valid** records — kept (and counted);
        * **stale** records — valid lines from another schema or cost-model
          fingerprint: counted but *left in place* (they are data, not
          damage; :meth:`compact` is the pass that folds them away);
        * **corrupt** lines — torn tails from a crashed append, bit rot,
          foreign garbage: with ``quarantine=True`` they are moved verbatim
          to ``quarantine-XX.jsonl`` (append + fsync, so nothing is ever
          destroyed by the repair itself) and the shard is rewritten with
          the surviving lines in their original order.

        Leftover ``*.tmp.*`` files from a crashed compaction are deleted —
        their ``os.replace`` never happened, so the shard beside them is
        intact and the temp is pure garbage.  With ``quarantine=False``
        nothing is modified (the ``--check`` dry run).

        Returns ``{"shards", "records", "stale", "corrupt", "quarantined",
        "tmp_files", "tmp_removed", "clean"}``; ``clean`` means no corrupt
        lines and no leftover temps — the state a second ``fsck`` right
        after a repairing one must always report.
        """
        report: Dict[str, int] = {
            "shards": self.num_shards,
            "records": 0,
            "stale": 0,
            "corrupt": 0,
            "quarantined": 0,
            "tmp_files": 0,
            "tmp_removed": 0,
        }
        for index in range(self.num_shards):
            path = self.shard_path(index)
            if not os.path.exists(path):
                continue
            repaired = False
            with self._locked(index):
                with open(path, "r", encoding="utf-8") as handle:
                    content = handle.read()
                good: List[str] = []
                bad: List[str] = []
                for raw in content.split("\n"):
                    raw = raw.strip()
                    if not raw:
                        continue
                    record, problem = decode_record_line(raw)
                    if record is not None:
                        good.append(raw)
                        report["records"] += 1
                    elif problem == "stale":
                        good.append(raw)
                        report["stale"] += 1
                    else:
                        bad.append(raw)
                        report["corrupt"] += 1
                if bad and quarantine:
                    with open(
                        self.quarantine_path(index), "a", encoding="utf-8"
                    ) as handle:
                        for raw in bad:
                            handle.write(raw + "\n")
                        handle.flush()
                        os.fsync(handle.fileno())
                    tmp = path + f".tmp.{os.getpid()}"
                    with open(tmp, "w", encoding="utf-8") as handle:
                        for raw in good:
                            handle.write(raw + "\n")
                        handle.flush()
                        os.fsync(handle.fileno())
                    os.replace(tmp, path)
                    self._fsync_dir()
                    report["quarantined"] += len(bad)
                    repaired = True
            if repaired:
                self._views[index].reset()
        for name in sorted(os.listdir(self.root)):
            if ".tmp." not in name:
                continue
            report["tmp_files"] += 1
            if quarantine:
                try:
                    os.unlink(os.path.join(self.root, name))
                    report["tmp_removed"] += 1
                except OSError:  # pragma: no cover - racing cleanup
                    pass
        report["clean"] = int(report["corrupt"] == 0 and report["tmp_files"] == 0)
        return report

    def evict(
        self,
        max_records: Optional[int] = None,
        max_idle: Optional[float] = None,
        now: Optional[float] = None,
    ) -> Dict[str, int]:
        """GC the store: LRU eviction by last-served timestamp.

        ``max_idle`` (seconds) first drops every record whose last service
        is older than ``now - max_idle``; ``max_records`` then drops the
        least-recently-served survivors until at most that many remain.
        A record that was never touched through a flushing handle has no
        timestamp and counts as *least* recently served — the store cannot
        justify keeping what nobody is reading.  Eviction rewrites each
        affected shard with the same crash-safe replace as :meth:`compact`
        (so it also folds duplicates away) and keeps the served sidecars in
        sync.  Returns ``{"kept", "evicted", "by_idle", "by_count",
        "evicted_keys"}`` — the keys so a caller with a memory tier above
        this store (the tuning daemon) can forget them too.
        """
        if max_records is not None and max_records < 0:
            raise ValueError("max_records must be non-negative")
        self.flush_touches()
        now = time.time() if now is None else now
        shard_records: List[Dict[TuningKey, TuningRecord]] = []
        shard_served: List[Dict[TuningKey, float]] = []
        for index in range(self.num_shards):
            with self._locked(index):
                path = self.shard_path(index)
                if os.path.exists(path):
                    with open(path, "r", encoding="utf-8") as handle:
                        lines = handle.readlines()
                else:
                    lines = []
                latest: Dict[TuningKey, TuningRecord] = {}
                for record in self._decode_lines(lines):
                    latest[record.key] = record
                shard_records.append(latest)
                shard_served.append(self._read_served(index))

        never = float("-inf")
        stamp_of = lambda index, key: shard_served[index].get(key, never)
        evicted: List[Tuple[int, TuningKey]] = []
        by_idle = 0
        if max_idle is not None:
            for index, latest in enumerate(shard_records):
                for key in list(latest):
                    if now - stamp_of(index, key) > max_idle:
                        evicted.append((index, key))
                        del latest[key]
                        by_idle += 1
        by_count = 0
        total = sum(len(latest) for latest in shard_records)
        if max_records is not None and total > max_records:
            ranked = sorted(
                ((index, key) for index, latest in enumerate(shard_records) for key in latest),
                key=lambda pair: stamp_of(*pair),
            )
            for index, key in ranked[: total - max_records]:
                evicted.append((index, key))
                del shard_records[index][key]
                by_count += 1

        # Rewrite phase: re-read each *affected* shard under its lock and
        # drop exactly the evicted keys from the fresh contents, so a record
        # another process appended between the scan and this rewrite
        # survives.  Shards that lost nothing are left untouched — a no-op
        # GC must not rewrite and fsync the whole store under its locks
        # (compact() is the explicit fold-duplicates pass).
        dead: Dict[int, set] = {}
        for index, key in evicted:
            dead.setdefault(index, set()).add(key)
        survivors = {index: len(latest) for index, latest in enumerate(shard_records)}
        for index in sorted(dead):
            path = self.shard_path(index)
            if not os.path.exists(path):
                continue
            with self._locked(index):
                with open(path, "r", encoding="utf-8") as handle:
                    lines = handle.readlines()
                latest = {}
                for record in self._decode_lines(lines):
                    latest[record.key] = record
                for key in dead[index]:
                    latest.pop(key, None)
                served = {
                    key: stamp
                    for key, stamp in self._read_served(index).items()
                    if key in latest
                }
                self._rewrite_shard(index, latest, served)
            self._views[index].reset()
            survivors[index] = len(latest)
        kept = sum(survivors.values())
        self._counters.gc_runs += 1
        self._counters.evicted_records += len(evicted)
        return {
            "kept": kept,
            "evicted": len(evicted),
            "by_idle": by_idle,
            "by_count": by_count,
            "evicted_keys": [key for _, key in evicted],
        }

    def _fsync_dir(self) -> None:
        # Make the rename itself durable where the platform allows it.
        try:
            fd = os.open(self.root, os.O_RDONLY)
        except OSError:  # pragma: no cover - e.g. Windows
            return
        try:
            os.fsync(fd)
        finally:
            os.close(fd)

    def clear(self) -> None:
        """Delete every shard's data (the store layout and metadata remain)."""
        for index in range(self.num_shards):
            with self._locked(index):
                for path in (self.shard_path(index), self.served_path(index)):
                    if os.path.exists(path):
                        os.unlink(path)
            self._views[index].reset()
        self._touched.clear()

    # -- accounting -----------------------------------------------------------
    @property
    def stats(self) -> StoreStats:
        """A snapshot of this handle's counters plus its locks' contention."""
        snapshot = dataclasses.replace(self._counters)
        for lock in self._locks:
            snapshot.lock_acquisitions += lock.acquisitions
            snapshot.lock_contentions += lock.contentions
            snapshot.lock_wait_seconds += lock.wait_seconds
        return snapshot

    def summary(self) -> str:
        s = self.stats
        return (
            f"ShardedTuningStore[{self.num_shards} shards]: "
            f"{s.appends} appends, {s.hits} hits / {s.misses} misses, "
            f"{s.corrupt_lines} corrupt / {s.stale_records} stale lines, "
            f"{s.lock_contentions} lock contentions "
            f"({s.lock_wait_seconds * 1e3:.1f} ms waiting)"
        )
