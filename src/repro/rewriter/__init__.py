"""``repro.rewriter`` — code transformation (Section III-C).

Loop reorganization tiles and reorders the loops selected by the Inspector so
the innermost nest performs exactly the instruction's semantics; the
replacement pass swaps that nest for an :class:`~repro.tir.stmt.IntrinsicCall`
with explicit operand-generation bindings; the CPU and GPU tuners organise the
remaining loops for parallelism, unrolling and data reuse, and the tuning
driver profiles candidate configurations on the machine models.

Tuning cache
------------

Tuning outcomes are memoised in a persistent record store so that identical
(workload, instruction, machine, search-space) problems are searched once.
Create one :class:`TuningSession` and hand it to every runner (or experiment
driver) that should share records::

    from repro.core import UnitCpuRunner, compile_model_batch
    from repro.rewriter import TuningSession

    session = TuningSession()                  # strategy="exhaustive" default
    runner = UnitCpuRunner(session=session)    # tunes through the session
    compile_model_batch(["resnet-18", "resnet-50"], session=session)

    session.save("tuning.jsonl")               # persist the records...
    warm = TuningSession()
    warm.load("tuning.jsonl")                  # ...and reload them later:
    # every lookup now hits; zero tuning trials are performed.

``TuningSession(strategy="parallel")`` evaluates candidates on a thread pool
(identical results, deterministic tie-breaking) and ``strategy="early_exit"``
stops a search after ``early_exit_k`` non-improving candidates.  Hit/miss
counters live on ``session.stats``; ``session.trials_run`` counts every
profiled candidate, which is how tests assert that a warm cache does no work.

Sharded store and distributed workers
-------------------------------------

For *concurrent* writers — several processes tuning into one cache — back the
session with a :class:`ShardedTuningStore` (records partitioned across
lock-protected append-only JSONL shards, versioned by schema and cost-model
fingerprint) and optionally fan the tuning problems out across worker
processes with :class:`DistributedTuner`::

    from repro.rewriter import DistributedTuner, ShardedTuningStore, TuningSession
    from repro.rewriter.workers import tasks_from_layers
    from repro.workloads.table1 import TABLE1_LAYERS

    store = ShardedTuningStore("tuning_store", shards=8)
    DistributedTuner(store, workers=4).run(tasks_from_layers(TABLE1_LAYERS))

    session = TuningSession(store=store)   # reads through: memory -> shard
    # ... every Table-1 record now hits without a single tuning trial.
"""

from .cpu_tuner import (
    DEFAULT_PARALLEL_EXTENT,
    DEFAULT_UNROLL_LIMIT,
    CpuScheduleReport,
    CpuTuningConfig,
    apply_cpu_schedule,
    cpu_tuning_candidates,
)
from .gpu_tuner import (
    GpuScheduleReport,
    GpuTuningConfig,
    apply_gpu_schedule,
    gpu_tuning_candidates,
)
from .loop_reorg import TensorizeError, TensorizeSpec, reorganize_loops
from .records import (
    SCHEMA_VERSION,
    CacheStats,
    TuningCache,
    TuningKey,
    TuningRecord,
    cost_model_fingerprint,
    decode_record_line,
    params_fingerprint,
    record_staleness,
    space_fingerprint,
)
from .replace import build_intrinsic_call, has_tensorize_pragma, replace_tensorize
from .session import TuningSession
from .store import FileLock, LockTimeout, ShardedTuningStore, StoreStats
from .workers import (
    DistributedReport,
    DistributedTuner,
    LeaseFile,
    TuningTask,
    WorkerReport,
    task_from_key,
    tasks_from_graph,
    tasks_from_layers,
)
from .tuner import (
    TuningResult,
    TuningTrial,
    early_exit_search,
    exhaustive_search,
    first_k_search,
    parallel_search,
)

__all__ = [
    "TensorizeError",
    "TensorizeSpec",
    "reorganize_loops",
    "build_intrinsic_call",
    "replace_tensorize",
    "has_tensorize_pragma",
    "CpuTuningConfig",
    "CpuScheduleReport",
    "apply_cpu_schedule",
    "cpu_tuning_candidates",
    "DEFAULT_PARALLEL_EXTENT",
    "DEFAULT_UNROLL_LIMIT",
    "GpuTuningConfig",
    "GpuScheduleReport",
    "apply_gpu_schedule",
    "gpu_tuning_candidates",
    "TuningResult",
    "TuningTrial",
    "exhaustive_search",
    "first_k_search",
    "parallel_search",
    "early_exit_search",
    "TuningKey",
    "TuningRecord",
    "TuningCache",
    "TuningSession",
    "CacheStats",
    "params_fingerprint",
    "space_fingerprint",
    "SCHEMA_VERSION",
    "cost_model_fingerprint",
    "record_staleness",
    "decode_record_line",
    "FileLock",
    "LockTimeout",
    "ShardedTuningStore",
    "StoreStats",
    "DistributedTuner",
    "DistributedReport",
    "LeaseFile",
    "TuningTask",
    "WorkerReport",
    "task_from_key",
    "tasks_from_graph",
    "tasks_from_layers",
]
