"""``repro.rewriter`` — code transformation (Section III-C).

Loop reorganization tiles and reorders the loops selected by the Inspector so
the innermost nest performs exactly the instruction's semantics; the
replacement pass swaps that nest for an :class:`~repro.tir.stmt.IntrinsicCall`
with explicit operand-generation bindings; the CPU and GPU tuners organise the
remaining loops for parallelism, unrolling and data reuse, and the tuning
driver profiles candidate configurations on the machine models.
"""

from .cpu_tuner import (
    DEFAULT_PARALLEL_EXTENT,
    DEFAULT_UNROLL_LIMIT,
    CpuScheduleReport,
    CpuTuningConfig,
    apply_cpu_schedule,
    cpu_tuning_candidates,
)
from .gpu_tuner import (
    GpuScheduleReport,
    GpuTuningConfig,
    apply_gpu_schedule,
    gpu_tuning_candidates,
)
from .loop_reorg import TensorizeError, TensorizeSpec, reorganize_loops
from .replace import build_intrinsic_call, has_tensorize_pragma, replace_tensorize
from .tuner import TuningResult, TuningTrial, exhaustive_search, first_k_search

__all__ = [
    "TensorizeError",
    "TensorizeSpec",
    "reorganize_loops",
    "build_intrinsic_call",
    "replace_tensorize",
    "has_tensorize_pragma",
    "CpuTuningConfig",
    "CpuScheduleReport",
    "apply_cpu_schedule",
    "cpu_tuning_candidates",
    "DEFAULT_PARALLEL_EXTENT",
    "DEFAULT_UNROLL_LIMIT",
    "GpuTuningConfig",
    "GpuScheduleReport",
    "apply_gpu_schedule",
    "gpu_tuning_candidates",
    "TuningResult",
    "TuningTrial",
    "exhaustive_search",
    "first_k_search",
]
