"""GPU scheduling strategy and tuning space (Sections III-C.3 and IV-B).

Three optimisations drive Tensor Core performance in the paper:

* **Generic** coarse/fine-grained parallelism: data-parallel tile loops are
  distributed over streaming multiprocessors (blockIdx) and a ``p × p``
  outer-product accumulation (Figure 6(b)) is unrolled inside each block so
  that buffered sub-matrices are reused ``p`` times and the loop-carried
  accumulation dependence is hidden by ``p²`` independent accumulators.
* **FuseDim**: layers with small height/width fuse those two dimensions into
  one to avoid redundant padding and wasted memory traffic.
* **SplitK**: layers with deep channels split the reduction loop and
  parallelise the segments across ``threadIdx``, followed by a shared-memory
  reduction — more parallelism at the cost of synchronisation and register
  pressure.

The loop-level reorganisation is applied to the schedule where it is
expressible (fusion, tiling, binding, unrolling); the thread-level split
reduction is recorded as a pragma because its shared-memory epilogue belongs
to the code generator, and the GPU machine model accounts for its cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional

from ..schedule.schedule import LoopVar, Stage
from .loop_reorg import TensorizeSpec

__all__ = ["GpuTuningConfig", "apply_gpu_schedule", "gpu_tuning_candidates"]


@dataclass(frozen=True)
class GpuTuningConfig:
    """One point of the GPU tuning space."""

    outer_product_p: int = 2  # the p of the p×p accumulation window
    fuse_spatial: bool = False  # fuse the H and W dimensions
    split_k: int = 1  # reduction split factor (1 = no split reduction)

    def describe(self) -> str:
        parts = [f"p={self.outer_product_p}"]
        if self.fuse_spatial:
            parts.append("fuse_hw")
        if self.split_k > 1:
            parts.append(f"split_k={self.split_k}")
        return ",".join(parts)


@dataclass
class GpuScheduleReport:
    """The resulting block/thread structure (consumed by the GPU cost model)."""

    block_loops: List[LoopVar]
    blocks: int
    outer_product_p: int
    accumulators_per_block: int
    fused_spatial: bool
    split_k: int
    reduce_iterations: int
    has_residue_guard: bool


def apply_gpu_schedule(spec: TensorizeSpec, config: GpuTuningConfig) -> GpuScheduleReport:
    """Organise the non-tensorized loops of ``spec`` per the GPU strategy."""
    stage = spec.stage
    tensorized = list(spec.tensorized_leaves)
    dp_outer = [l for l in stage.leaf_vars if not l.is_reduce and l not in tensorized]
    reduce_outer = [l for l in stage.leaf_vars if l.is_reduce and l not in tensorized]

    # ---- FuseDim: collapse small spatial dimensions --------------------------
    fused_spatial = False
    if config.fuse_spatial and len(dp_outer) >= 3:
        # Spatial loops are the leading data-parallel loops that were *not*
        # produced by tiling a tensorized axis (i.e. not an ``.o`` tile loop).
        spatial = [l for l in dp_outer if not l.name.endswith(".o")]
        if len(spatial) >= 2:
            first, second = spatial[0], spatial[1]
            rest = [l for l in dp_outer if l not in (first, second)]
            stage.reorder(*([first, second] + rest + reduce_outer + tensorized))
            fused = stage.fuse(first, second)
            dp_outer = [fused] + rest
            fused_spatial = True

    # ---- p×p outer-product accumulation --------------------------------------
    p = max(1, config.outer_product_p)
    unrolled: List[LoopVar] = []
    block_loops: List[LoopVar] = []
    accumulators = 1
    # Tile loops produced for the instruction's data-parallel axes are the
    # natural candidates for the p×p window (they index 16×16 sub-matrices).
    tile_loops = [
        spec.outer_loops[ax]
        for ax in spec.mapping.axis_map
        if not ax.is_reduce and spec.outer_loops[ax] in dp_outer
    ]
    for loop in dp_outer:
        if loop in tile_loops and p > 1 and loop.extent % p == 0 and loop.extent > 1:
            outer, inner = stage.split(loop, p)
            block_loops.append(outer)
            unrolled.append(inner)
            accumulators *= p
        else:
            block_loops.append(loop)

    # ---- SplitK: parallelise the reduction across threadIdx ------------------
    split_k = max(1, config.split_k)
    reduce_iterations = 1
    for loop in reduce_outer:
        reduce_iterations *= loop.extent
    if split_k > 1 and reduce_outer:
        # Split the outermost reduction loop; the outer segment count is what
        # gets distributed over threadIdx (bounded by the loop's extent).
        target = reduce_outer[0]
        factor = max(1, min(split_k, target.extent))
        divisor = _largest_divisor_at_most(target.extent, max(1, target.extent // factor))
        if divisor < target.extent:
            outer, inner = stage.split(target, divisor)
            reduce_outer = [outer, inner] + reduce_outer[1:]
        stage.pragma(reduce_outer[0], "split_reduction", split_k)

    # ---- final order + bindings ----------------------------------------------
    stage.reorder(*(block_loops + reduce_outer + unrolled + tensorized))
    if block_loops:
        stage.bind(block_loops[0], "blockIdx.x")
        if len(block_loops) > 1:
            stage.bind(block_loops[1], "blockIdx.y")
    for loop in unrolled:
        stage.unroll(loop)

    blocks = 1
    for loop in block_loops:
        blocks *= loop.extent
    return GpuScheduleReport(
        block_loops=block_loops,
        blocks=blocks,
        outer_product_p=p,
        accumulators_per_block=accumulators,
        fused_spatial=fused_spatial,
        split_k=split_k,
        reduce_iterations=reduce_iterations,
        has_residue_guard=stage.has_imperfect_split,
    )


def _largest_divisor_at_most(n: int, bound: int) -> int:
    bound = max(1, min(n, bound))
    for d in range(bound, 0, -1):
        if n % d == 0:
            return d
    return 1


def gpu_tuning_candidates(
    ps: Iterable[int] = (2, 1, 4),
    split_ks: Iterable[int] = (1, 64, 32, 16),
) -> List[GpuTuningConfig]:
    """The tuning space explored for GPU kernels.

    Unrolling degrees above 2 tend to exhaust the register file (the paper's
    observation), so p=2 comes first; SplitK=64 is the fixed value used in the
    Figure 11 ablation before the full search.
    """
    out: List[GpuTuningConfig] = []
    for p in ps:
        for fuse in (False, True):
            for sk in split_ks:
                out.append(GpuTuningConfig(outer_product_p=p, fuse_spatial=fuse, split_k=sk))
    return out
