"""Low-level code generation: tensor IR → a virtual vector ISA.

The paper's pipeline hands the transformed tensor IR to LLVM for machine-code
generation (Section II-C.4).  In this reproduction the "machine" is the
analytical simulator, so code generation targets a small *virtual vector ISA*:
a textual, register-based program whose instructions are scalar ALU ops,
vector loads/stores/broadcasts, and the tensorized intrinsics themselves.  It
exists for three reasons:

* it demonstrates that the rewritten tensor IR is fully lowerable (every
  operand-generation rule materialises into loads/broadcasts/concatenations);
* it provides instruction statistics (tensorized ops, loads, loop overhead)
  that can be cross-checked against the analytical cost models;
* it renders readable "assembly" listings for the examples and docs.
"""

from __future__ import annotations

import numpy as np

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..dsl import expr as E
from ..dsl.dtype import DType, from_string
from ..dsl.printer import expr_to_str
from ..tir.lower import PrimFunc
from ..tir.stmt import (
    Allocate,
    AttrStmt,
    Evaluate,
    For,
    ForKind,
    IfThenElse,
    IntrinsicCall,
    SeqStmt,
    Stmt,
    Store,
)

__all__ = [
    "Instruction",
    "CodegenResult",
    "generate",
    "REGISTER_PREFIX",
    "LoweringError",
    "NativeSource",
    "generate_c",
    "generate_numba_source",
    "native_support_reason",
]

REGISTER_PREFIX = {
    "x86": "zmm",
    "arm": "v",
    "cuda": "frag",
    "generic": "r",
}


@dataclass
class Instruction:
    """One virtual-ISA instruction."""

    opcode: str
    operands: List[str] = field(default_factory=list)
    comment: str = ""

    def render(self) -> str:
        # The conditional must select only the operand suffix: spelled as one
        # ternary the condition binds the whole concatenation, which is easy
        # to regress into a trailing-space (or operand-dropping) rendering for
        # zero-operand opcodes like ``.else``/``.endif``.
        if self.operands:
            text = f"{self.opcode} " + ", ".join(self.operands)
        else:
            text = self.opcode
        if self.comment:
            text = f"{text:<60s} ; {self.comment}"
        return text


@dataclass
class CodegenResult:
    """The emitted program plus summary statistics."""

    func_name: str
    target: str
    instructions: List[Instruction] = field(default_factory=list)

    @property
    def text(self) -> str:
        lines = [f".func {self.func_name} (target={self.target})"]
        indent = 1
        for instr in self.instructions:
            if instr.opcode in (".endloop", ".endif"):
                indent -= 1
            lines.append("  " * indent + instr.render())
            if instr.opcode in (".loop", ".parallel_loop", ".unrolled_loop", ".if"):
                indent += 1
        lines.append(".endfunc")
        return "\n".join(lines)

    @property
    def stats(self) -> Dict[str, int]:
        counts: Dict[str, int] = {
            "tensorized": 0,
            "vector_load": 0,
            "vector_store": 0,
            "broadcast": 0,
            "scalar_store": 0,
            "loops": 0,
            "guards": 0,
        }
        for instr in self.instructions:
            if instr.opcode.startswith("tensor."):
                counts["tensorized"] += 1
            elif instr.opcode == "vload":
                counts["vector_load"] += 1
            elif instr.opcode == "vstore":
                counts["vector_store"] += 1
            elif instr.opcode == "vbcast":
                counts["broadcast"] += 1
            elif instr.opcode == "store":
                counts["scalar_store"] += 1
            elif instr.opcode in (".loop", ".parallel_loop", ".unrolled_loop"):
                counts["loops"] += 1
            elif instr.opcode == ".if":
                counts["guards"] += 1
        return counts

    @property
    def dynamic_stats(self) -> Dict[str, int]:
        """Dynamic instruction counts: each instruction weighted by the
        product of its enclosing static loop extents.

        This is the executed-instruction count of the listing (``likely``
        residue guards are *not* folded — guarded-off iterations still issue
        their instructions, exactly as the cost models charge them), which is
        what the analytical cost models' ``instructions`` detail can be
        cross-checked against.
        """
        counts: Dict[str, int] = {
            "tensorized": 0,
            "vector_load": 0,
            "vector_store": 0,
            "broadcast": 0,
            "scalar_store": 0,
            "loop_iterations": 0,
        }
        trip = 1
        stack: List[int] = []
        for instr in self.instructions:
            if instr.opcode in (".loop", ".parallel_loop", ".unrolled_loop"):
                extent = int(instr.operands[1])
                stack.append(extent)
                trip *= extent
                counts["loop_iterations"] += trip
            elif instr.opcode == ".endloop":
                trip //= stack.pop()
            elif instr.opcode.startswith("tensor."):
                counts["tensorized"] += trip
            elif instr.opcode == "vload":
                counts["vector_load"] += trip
            elif instr.opcode == "vstore":
                counts["vector_store"] += trip
            elif instr.opcode == "vbcast":
                counts["broadcast"] += trip
            elif instr.opcode == "store":
                counts["scalar_store"] += trip
        return counts

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return self.text


class _Emitter:
    def __init__(self, target: str) -> None:
        self.target = target
        self.prefix = REGISTER_PREFIX.get(target, REGISTER_PREFIX["generic"])
        self.instructions: List[Instruction] = []
        self._next_register = 0

    def fresh_register(self) -> str:
        name = f"{self.prefix}{self._next_register}"
        self._next_register += 1
        return name

    def emit(self, opcode: str, operands: Optional[List[str]] = None, comment: str = "") -> None:
        self.instructions.append(Instruction(opcode, operands or [], comment))

    # -- statements ---------------------------------------------------------
    def visit(self, stmt: Stmt) -> None:
        if isinstance(stmt, SeqStmt):
            for s in stmt.stmts:
                self.visit(s)
        elif isinstance(stmt, For):
            opcode = {
                ForKind.PARALLEL: ".parallel_loop",
                ForKind.UNROLL: ".unrolled_loop",
            }.get(stmt.kind, ".loop")
            tag = f" bound={stmt.thread_tag}" if stmt.thread_tag else ""
            self.emit(opcode, [stmt.var.name, str(stmt.extent)], comment=stmt.kind.value + tag)
            self.visit(stmt.body)
            self.emit(".endloop", [stmt.var.name])
        elif isinstance(stmt, IfThenElse):
            self.emit(".if", [expr_to_str(stmt.condition)],
                      comment="likely residue guard" if stmt.likely else "")
            self.visit(stmt.then_case)
            if stmt.else_case is not None:
                self.emit(".else")
                self.visit(stmt.else_case)
            self.emit(".endif")
        elif isinstance(stmt, AttrStmt):
            self.emit(".attr", [stmt.key, str(stmt.value)])
            self.visit(stmt.body)
        elif isinstance(stmt, Allocate):
            shape = "x".join(str(s) for s in stmt.tensor.shape)
            self.emit("alloca", [stmt.tensor.name, shape, stmt.tensor.dtype.name],
                      comment=f"scope={stmt.scope}")
            self.visit(stmt.body)
        elif isinstance(stmt, Store):
            value = self._scalar(stmt.value)
            address = self._address(stmt.tensor.name, stmt.indices)
            self.emit("store", [address, value], comment=f"{stmt.tensor.dtype.name}")
        elif isinstance(stmt, Evaluate):
            self.emit("eval", [expr_to_str(stmt.expr)])
        elif isinstance(stmt, IntrinsicCall):
            self._emit_intrinsic(stmt)
        else:
            raise TypeError(f"cannot generate code for {type(stmt).__name__}")

    # -- intrinsic operand materialisation -----------------------------------
    def _emit_intrinsic(self, call: IntrinsicCall) -> None:
        intrin = call.intrin
        intrin_axis_vars = {ax.var for ax in call.axes}
        registers: List[str] = []
        for binding in call.inputs:
            reg = self.fresh_register()
            varying = set()
            for idx in binding.program_indices:
                varying.update(v for v in E.free_vars(idx) if v in intrin_axis_vars)
            address = self._address(binding.program_tensor.name, binding.program_indices)
            lanes = binding.intrin_tensor.num_elements
            if not varying:
                self.emit("vbcast", [reg, address, str(lanes)],
                          comment=f"{binding.intrin_tensor.name}: broadcast to {lanes} lanes")
            else:
                self.emit("vload", [reg, address, str(lanes)],
                          comment=f"{binding.intrin_tensor.name}: gather over "
                                  + ",".join(sorted(v.name for v in varying)))
            registers.append(reg)
        dst = self.fresh_register()
        self.emit(f"tensor.{intrin.name}", [dst] + registers,
                  comment=f"{intrin.macs_per_call} MACs")
        out_address = self._address(call.output.program_tensor.name, call.output.program_indices)
        self.emit("vstore", [out_address, dst, str(call.output.intrin_tensor.num_elements)])

    # -- scalars ---------------------------------------------------------------
    def _scalar(self, value: E.Expr) -> str:
        return expr_to_str(value)

    def _address(self, buffer: str, indices) -> str:
        return f"{buffer}[" + ", ".join(expr_to_str(i) for i in indices) + "]"


def generate(func: PrimFunc, target: str = "generic") -> CodegenResult:
    """Generate virtual-ISA code for a lowered (and possibly tensorized) function."""
    emitter = _Emitter(target)
    emitter.visit(func.body)
    return CodegenResult(func_name=func.name, target=target, instructions=emitter.instructions)


# ---------------------------------------------------------------------------
# Native source generation (the "LLVM step" of the paper, Section II-C.4).
#
# The emitters below lower a tensorized PrimFunc all the way to *executable*
# source: C (compiled by the host toolchain, loaded through ctypes) or Python
# (numba ``@njit``-able, and runnable un-jitted for testing).  Both mirror the
# scalar interpreter's semantics bit for bit:
#
# * index expressions are evaluated the way the interpreter evaluates them —
#   over Python ints, i.e. effectively unbounded integers.  In C these render
#   as ``int64_t`` arithmetic with *no* per-node truncation (all in-bounds
#   index math fits in 64 bits).
# * value expressions follow numpy's NEP-50 promotion: Python-literal
#   constants and loop variables are "weak", tensor loads and casts are
#   "strong" (carry a concrete dtype), and every strong binary op truncates
#   to the promoted dtype.  In C this renders as a cast on every node so that
#   e.g. int8 adds wrap exactly like ``np.int8 + np.int8``.
# * reductions fold sequentially in source order starting from zero — the
#   exact fold order the interpreter's ``sum(values)`` performs — so float
#   results are bit-identical (compile with ``-ffp-contract=off``; no FMA
#   contraction, no reassociation).
# * intrinsic calls expand to the interpreter's gather → execute → scatter
#   register dance, with fixed-size stack arrays for the registers.
# ---------------------------------------------------------------------------


class LoweringError(Exception):
    """A function (or one of its nests) cannot be lowered to native code."""


@dataclass(frozen=True)
class NativeSource:
    """Generated native source for one PrimFunc.

    ``language`` is ``"c"`` (compile with a C toolchain, call through ctypes)
    or ``"python"`` (exec, optionally wrap with ``numba.njit``).  ``params``
    records the buffer order of the entry point — identical to
    ``func.params``.
    """

    func_name: str
    language: str
    source: str
    entry: str
    params: Tuple = ()


_C_TYPES = {
    "int8": "int8_t",
    "uint8": "uint8_t",
    "int16": "int16_t",
    "uint16": "uint16_t",
    "int32": "int32_t",
    "int64": "int64_t",
    "float32": "float",
    "float64": "double",
    "bool": "uint8_t",
}

_NP_CTORS = {
    "int8": "np.int8",
    "uint8": "np.uint8",
    "int16": "np.int16",
    "uint16": "np.uint16",
    "int32": "np.int32",
    "int64": "np.int64",
    "float32": "np.float32",
    "float64": "np.float64",
    "bool": "np.bool_",
}

# Weak kinds (NEP-50 "python scalar" operands): weak int, weak float, weak
# bool.  Strong operands carry their DType.
_WI, _WF, _WB = "wi", "wf", "wb"


def _kind_of(expr: E.Expr):
    """Infer the promotion kind of a value expression.

    Returns a :class:`DType` for "strong" expressions (loads, casts, and any
    op touching one) or one of the weak markers for pure python-scalar math.
    Mirrors how the interpreter's operands behave under NEP-50.
    """
    if isinstance(expr, (E.TensorLoad, E.Cast)):
        return expr.dtype
    if isinstance(expr, E.Var):
        return _WI
    if isinstance(expr, E.Const):
        if isinstance(expr.value, bool):
            return _WB
        return _WI if isinstance(expr.value, int) else _WF
    if isinstance(expr, E.Compare):
        return _WB
    if isinstance(expr, E.Select):
        return _combine_kinds(_kind_of(expr.true_value), _kind_of(expr.false_value))
    if isinstance(expr, E.Reduce):
        return _kind_of(expr.source)
    if isinstance(expr, E.BinaryOp):
        return _combine_kinds(_kind_of(expr.a), _kind_of(expr.b))
    raise LoweringError(f"cannot infer promotion kind of {type(expr).__name__}")


def _combine_kinds(ka, kb):
    if isinstance(ka, DType) and isinstance(kb, DType):
        return from_string(np.promote_types(ka.np_dtype, kb.np_dtype).name)
    if isinstance(ka, DType):
        return ka
    if isinstance(kb, DType):
        return kb
    if _WF in (ka, kb):
        return _WF
    return _WI


def _c_type_for(kind) -> str:
    if isinstance(kind, DType):
        ctype = _C_TYPES.get(kind.name)
        if ctype is None:
            raise LoweringError(f"dtype {kind.name} has no native lowering")
        return ctype
    return {"wi": "int64_t", "wf": "double", "wb": "int64_t"}[kind]


def _py_ctor_for(kind) -> Optional[str]:
    """numpy scalar constructor for strong kinds; None for weak (python) math."""
    if isinstance(kind, DType):
        ctor = _NP_CTORS.get(kind.name)
        if ctor is None:
            raise LoweringError(f"dtype {kind.name} has no native lowering")
        return ctor
    return None


def _c_float_literal(value: float, single: bool) -> str:
    value = float(value)
    if value != value or value in (float("inf"), float("-inf")):
        raise LoweringError("non-finite float constant in native lowering")
    # Hex float literals are exact; the default %r round-trips only for repr
    # parsing, which C does not do.
    text = value.hex()
    return f"{text}f" if single else text


def _row_major_strides(shape) -> List[int]:
    strides = [1] * len(shape)
    for i in range(len(shape) - 2, -1, -1):
        strides[i] = strides[i + 1] * shape[i + 1]
    return strides


# -- native eligibility -------------------------------------------------------

_UNSUPPORTED_EXPRS = (E.Ramp, E.Broadcast, E.Shuffle, E.Call)


def _intrinsic_native_reason(intrin) -> Optional[str]:
    """Why an intrinsic cannot be natively expanded, or None if it can.

    Native expansion executes the intrinsic's DSL body point by point, which
    matches the *hardware* model (einsum and friends) bit-for-bit only when
    the accumulation is order-free.  We accept exactly the structural class
    the engine already trusts for round stacking (`_round_stackable`): an
    integer accumulator plus an integer sum-reduction that does not read the
    accumulator or the output — int wraparound addition is associative, so
    any evaluation order agrees.
    """
    op = intrin.op
    out = op.output
    if not out.dtype.is_integer:
        return f"intrinsic {intrin.name}: non-integer accumulator"
    body = op.body
    if not isinstance(body, E.Add):
        return f"intrinsic {intrin.name}: body is not acc + reduce"
    axis_vars = [ax.var for ax in op.axes]
    for load, rest in ((body.a, body.b), (body.b, body.a)):
        if not isinstance(load, E.TensorLoad):
            continue
        if not isinstance(rest, E.Reduce) or rest.combiner != "sum":
            continue
        if len(load.indices) != len(axis_vars):
            continue
        if not all(idx is var for idx, var in zip(load.indices, axis_vars)):
            continue
        acc_tensor = load.tensor
        reads_forbidden = False
        for node in E.post_order(rest):
            if isinstance(node, E.TensorLoad) and node.tensor in (acc_tensor, out):
                reads_forbidden = True
            if isinstance(node, E.TensorLoad) and not node.tensor.dtype.is_integer:
                reads_forbidden = True
            if isinstance(node, _UNSUPPORTED_EXPRS):
                reads_forbidden = True
        if reads_forbidden:
            return f"intrinsic {intrin.name}: reduction reads accumulator/output or non-integer lanes"
        return None
    return f"intrinsic {intrin.name}: body is not acc + sum-reduction over its axes"


def _expr_native_reason(expr: E.Expr) -> Optional[str]:
    for node in E.post_order(expr):
        if isinstance(node, _UNSUPPORTED_EXPRS):
            return f"{type(node).__name__} expressions have no native lowering"
        if node.dtype is not None and node.dtype.name not in _C_TYPES:
            return f"dtype {node.dtype.name} has no native lowering"
    return None


def native_support_reason(func: PrimFunc) -> Optional[str]:
    """Return why ``func`` cannot be natively compiled, or None if it can."""
    for tensor in func.params:
        if tensor.dtype.name not in _C_TYPES:
            return f"parameter {tensor.name}: dtype {tensor.dtype.name} has no native lowering"

    def walk(stmt: Stmt) -> Optional[str]:
        if isinstance(stmt, SeqStmt):
            for s in stmt.stmts:
                reason = walk(s)
                if reason:
                    return reason
            return None
        if isinstance(stmt, For):
            return walk(stmt.body)
        if isinstance(stmt, IfThenElse):
            reason = _expr_native_reason(stmt.condition)
            if reason:
                return reason
            reason = walk(stmt.then_case)
            if reason:
                return reason
            return walk(stmt.else_case) if stmt.else_case is not None else None
        if isinstance(stmt, AttrStmt):
            return walk(stmt.body)
        if isinstance(stmt, Allocate):
            if stmt.tensor.dtype.name not in _C_TYPES:
                return f"allocation {stmt.tensor.name}: dtype {stmt.tensor.dtype.name} has no native lowering"
            return walk(stmt.body)
        if isinstance(stmt, Store):
            reason = _expr_native_reason(stmt.value)
            if reason:
                return reason
            for idx in stmt.indices:
                reason = _expr_native_reason(idx)
                if reason:
                    return reason
            return None
        if isinstance(stmt, Evaluate):
            return None
        if isinstance(stmt, IntrinsicCall):
            reason = _intrinsic_native_reason(stmt.intrin)
            if reason:
                return reason
            for binding in list(stmt.inputs) + [stmt.output]:
                for idx in list(binding.program_indices) + list(binding.intrin_indices):
                    r = _expr_native_reason(idx)
                    if r:
                        return r
            return None
        return f"statement {type(stmt).__name__} has no native lowering"

    return walk(func.body)


# -- C emitter ----------------------------------------------------------------

_C_PRELUDE = """\
#include <stdint.h>
#include <stdlib.h>
#include <math.h>

/* Python floor-division / floor-modulo over int64, with numpy's div-by-zero
 * convention (result 0). */
static inline int64_t repro_fdiv(int64_t a, int64_t b) {
    if (b == 0) return 0;
    int64_t q = a / b;
    if ((a % b != 0) && ((a < 0) != (b < 0))) q -= 1;
    return q;
}
static inline int64_t repro_fmod(int64_t a, int64_t b) {
    if (b == 0) return 0;
    int64_t r = a % b;
    if (r != 0 && ((r < 0) != (b < 0))) r += b;
    return r;
}
static inline float repro_fmodf(float a, float b) {
    float r = fmodf(a, b);
    if (r != 0.0f && ((r < 0.0f) != (b < 0.0f))) r += b;
    return r;
}
static inline double repro_fmodd(double a, double b) {
    double r = fmod(a, b);
    if (r != 0.0 && ((r < 0.0) != (b < 0.0))) r += b;
    return r;
}
"""


class _NameTable:
    """Identity-keyed unique C/Python identifiers for Vars and Tensors."""

    def __init__(self) -> None:
        self._names: Dict[int, str] = {}
        self._used = set()

    def name(self, obj, hint: str, prefix: str) -> str:
        key = id(obj)
        if key in self._names:
            return self._names[key]
        base = "".join(ch if ch.isalnum() or ch == "_" else "_" for ch in hint)
        if not base or base[0].isdigit():
            base = "_" + base
        candidate = f"{prefix}{base}"
        serial = 0
        while candidate in self._used:
            serial += 1
            candidate = f"{prefix}{base}_{serial}"
        self._used.add(candidate)
        self._names[key] = candidate
        return candidate


class _CEmitter:
    def __init__(self, func: PrimFunc, parallel: bool = True) -> None:
        self.func = func
        self.parallel = parallel
        self.lines: List[str] = []
        self.depth = 1
        self.names = _NameTable()
        self._tmp = 0

    # -- plumbing ----------------------------------------------------------
    def line(self, text: str) -> None:
        self.lines.append("    " * self.depth + text)

    def fresh(self, prefix: str) -> str:
        self._tmp += 1
        return f"{prefix}{self._tmp}"

    def var_name(self, var: E.Var) -> str:
        return self.names.name(var, var.name, "v_")

    def tensor_name(self, tensor) -> str:
        return self.names.name(tensor, tensor.name, "t_")

    # -- index expressions: python-int semantics, rendered as int64 --------
    def index(self, expr: E.Expr) -> str:
        if isinstance(expr, E.Var):
            return self.var_name(expr)
        if isinstance(expr, E.Const):
            value = int(expr.value)
            return f"{value}LL" if abs(value) > 2**31 - 1 else str(value)
        if isinstance(expr, E.Add):
            return f"(({self.index(expr.a)}) + ({self.index(expr.b)}))"
        if isinstance(expr, E.Sub):
            return f"(({self.index(expr.a)}) - ({self.index(expr.b)}))"
        if isinstance(expr, E.Mul):
            return f"(({self.index(expr.a)}) * ({self.index(expr.b)}))"
        if isinstance(expr, E.FloorDiv):
            return f"repro_fdiv({self.index(expr.a)}, {self.index(expr.b)})"
        if isinstance(expr, E.Mod):
            return f"repro_fmod({self.index(expr.a)}, {self.index(expr.b)})"
        if isinstance(expr, E.Min):
            a, b = self.index(expr.a), self.index(expr.b)
            return f"(({b}) < ({a}) ? ({b}) : ({a}))"
        if isinstance(expr, E.Max):
            a, b = self.index(expr.a), self.index(expr.b)
            return f"(({b}) > ({a}) ? ({b}) : ({a}))"
        if isinstance(expr, E.Select):
            cond, _ = self.value(expr.cond, {})
            return f"(({cond}) ? ({self.index(expr.true_value)}) : ({self.index(expr.false_value)}))"
        if isinstance(expr, E.Cast):
            # Index-position casts stay exact in the interpreter's range of
            # interest; int64 holds every in-bounds index.
            return f"(int64_t)({self.index(expr.value)})"
        code, _ = self.value(expr, {})
        return f"(int64_t)({code})"

    def flat_index(self, indices, shape) -> str:
        strides = _row_major_strides(shape)
        terms = []
        for idx, stride in zip(indices, strides):
            code = self.index(idx)
            terms.append(code if stride == 1 else f"({code}) * {stride}")
        return " + ".join(terms) if terms else "0"

    # -- value expressions: NEP-50 weak/strong semantics -------------------
    def value(self, expr: E.Expr, subs: Dict[int, Tuple[str, object]]) -> Tuple[str, object]:
        """Render a value expression; returns (code, kind)."""
        if id(expr) in subs:
            return subs[id(expr)]
        if isinstance(expr, E.Var):
            return self.var_name(expr), _WI
        if isinstance(expr, E.Const):
            if isinstance(expr.value, bool):
                return ("1" if expr.value else "0"), _WB
            if isinstance(expr.value, int):
                value = expr.value
                return (f"{value}LL" if abs(value) > 2**31 - 1 else str(value)), _WI
            return _c_float_literal(expr.value, single=False), _WF
        if isinstance(expr, E.TensorLoad):
            name = self.tensor_name(expr.tensor)
            return f"{name}[{self.flat_index(expr.indices, expr.tensor.shape)}]", expr.dtype
        if isinstance(expr, E.Cast):
            code, _ = self.value(expr.value, subs)
            ctype = _c_type_for(expr.dtype)
            return f"(({ctype})({code}))", expr.dtype
        if isinstance(expr, E.Compare):
            ca, ka = self.value(expr.a, subs)
            cb, kb = self.value(expr.b, subs)
            ct = _c_type_for(_combine_kinds(ka, kb))
            return f"((({ct})({ca})) {expr.op} (({ct})({cb})))", _WB
        if isinstance(expr, E.Select):
            cc, _ = self.value(expr.cond, subs)
            ct_code, tk = self.value(expr.true_value, subs)
            cf_code, fk = self.value(expr.false_value, subs)
            kind = _combine_kinds(tk, fk)
            ct = _c_type_for(kind)
            return f"(({cc}) ? (({ct})({ct_code})) : (({ct})({cf_code})))", kind
        if isinstance(expr, E.Reduce):
            raise LoweringError("Reduce must be hoisted before rendering")
        if isinstance(expr, E.BinaryOp):
            return self._binary(expr, subs)
        raise LoweringError(f"cannot lower {type(expr).__name__} to C")

    def _binary(self, expr: E.BinaryOp, subs) -> Tuple[str, object]:
        ca, ka = self.value(expr.a, subs)
        cb, kb = self.value(expr.b, subs)
        kind = _combine_kinds(ka, kb)
        ct = _c_type_for(kind)
        is_float = (kind == _WF) or (isinstance(kind, DType) and not kind.is_integer)
        if isinstance(expr, (E.Add, E.Sub, E.Mul)):
            op = {"Add": "+", "Sub": "-", "Mul": "*"}[type(expr).__name__]
            return f"(({ct})((({ct})({ca})) {op} (({ct})({cb}))))", kind
        if isinstance(expr, E.FloorDiv):
            if is_float:
                if ct == "float":
                    return f"floorf((({ct})({ca})) / (({ct})({cb})))", kind
                return f"floor((({ct})({ca})) / (({ct})({cb})))", kind
            return f"(({ct})repro_fdiv((int64_t)(({ct})({ca})), (int64_t)(({ct})({cb}))))", kind
        if isinstance(expr, E.Mod):
            if is_float:
                helper = "repro_fmodf" if ct == "float" else "repro_fmodd"
                return f"{helper}((({ct})({ca})), (({ct})({cb})))", kind
            return f"(({ct})repro_fmod((int64_t)(({ct})({ca})), (int64_t)(({ct})({cb}))))", kind
        if isinstance(expr, E.Min):
            a, b = f"(({ct})({ca}))", f"(({ct})({cb}))"
            return f"(({b}) < ({a}) ? ({b}) : ({a}))", kind
        if isinstance(expr, E.Max):
            a, b = f"(({ct})({ca}))", f"(({ct})({cb}))"
            return f"(({b}) > ({a}) ? ({b}) : ({a}))", kind
        raise LoweringError(f"cannot lower {type(expr).__name__} to C")

    def hoist_reduces(self, expr: E.Expr, subs: Dict[int, Tuple[str, object]]) -> None:
        """Emit loop code for every Reduce in ``expr``, registering temps."""
        if isinstance(expr, E.Reduce):
            kind = _kind_of(expr.source)
            ct = _c_type_for(kind)
            tmp = self.fresh("red")
            if expr.combiner == "sum":
                self.line(f"{ct} {tmp} = 0;")
                self._open_reduce_loops(expr.axes)
                self.hoist_reduces(expr.source, subs)
                code, _ = self.value(expr.source, subs)
                # Sequential left fold from zero, truncating every step —
                # exactly the interpreter's sum(values).
                self.line(f"{tmp} = ({ct})({tmp} + ({ct})({code}));")
                self._close_reduce_loops(expr.axes)
            else:
                cmp = "<" if expr.combiner == "min" else ">"
                self.line(f"{ct} {tmp} = 0;")
                self.line(f"int {tmp}_first = 1;")
                self._open_reduce_loops(expr.axes)
                self.hoist_reduces(expr.source, subs)
                code, _ = self.value(expr.source, subs)
                self.line(f"{ct} {tmp}_v = ({ct})({code});")
                self.line(f"if ({tmp}_first) {{ {tmp} = {tmp}_v; {tmp}_first = 0; }}")
                self.line(f"else if ({tmp}_v {cmp} {tmp}) {{ {tmp} = {tmp}_v; }}")
                self._close_reduce_loops(expr.axes)
            subs[id(expr)] = (tmp, kind)
            return
        for child in expr.children:
            self.hoist_reduces(child, subs)

    def _open_reduce_loops(self, axes) -> None:
        for axis in axes:
            name = self.var_name(axis.var)
            self.line(f"for (int64_t {name} = 0; {name} < {axis.extent}; ++{name}) {{")
            self.depth += 1

    def _close_reduce_loops(self, axes) -> None:
        for _ in axes:
            self.depth -= 1
            self.line("}")

    # -- statements --------------------------------------------------------
    def visit(self, stmt: Stmt) -> None:
        if isinstance(stmt, SeqStmt):
            for s in stmt.stmts:
                self.visit(s)
        elif isinstance(stmt, For):
            name = self.var_name(stmt.var)
            if stmt.kind is ForKind.PARALLEL and self.parallel:
                # Iterations of a parallel nest write disjoint locations
                # (verified by the engine's planner), so a static schedule is
                # bit-exact; without -fopenmp the pragma is ignored.
                self.line("#pragma omp parallel for schedule(static)")
            self.line(f"for (int64_t {name} = 0; {name} < {stmt.extent}; ++{name}) {{")
            self.depth += 1
            self.visit(stmt.body)
            self.depth -= 1
            self.line("}")
        elif isinstance(stmt, IfThenElse):
            subs: Dict[int, Tuple[str, object]] = {}
            self.hoist_reduces(stmt.condition, subs)
            cond, _ = self.value(stmt.condition, subs)
            self.line(f"if ({cond}) {{")
            self.depth += 1
            self.visit(stmt.then_case)
            self.depth -= 1
            if stmt.else_case is not None:
                self.line("} else {")
                self.depth += 1
                self.visit(stmt.else_case)
                self.depth -= 1
            self.line("}")
        elif isinstance(stmt, AttrStmt):
            self.visit(stmt.body)
        elif isinstance(stmt, Allocate):
            name = self.tensor_name(stmt.tensor)
            ctype = _c_type_for(stmt.tensor.dtype)
            count = stmt.tensor.num_elements
            self.line("{")
            self.depth += 1
            # calloc matches the interpreter's np.zeros initialisation.
            self.line(f"{ctype}* {name} = ({ctype}*)calloc({count}, sizeof({ctype}));")
            self.visit(stmt.body)
            self.line(f"free({name});")
            self.depth -= 1
            self.line("}")
        elif isinstance(stmt, Store):
            subs = {}
            self.hoist_reduces(stmt.value, subs)
            code, _ = self.value(stmt.value, subs)
            name = self.tensor_name(stmt.tensor)
            flat = self.flat_index(stmt.indices, stmt.tensor.shape)
            dtype = stmt.tensor.dtype
            if dtype.name == "bool":
                self.line(f"{name}[{flat}] = (uint8_t)(({code}) != 0);")
            else:
                self.line(f"{name}[{flat}] = ({_c_type_for(dtype)})({code});")
        elif isinstance(stmt, Evaluate):
            pass  # pure expression; no effect
        elif isinstance(stmt, IntrinsicCall):
            self._intrinsic(stmt)
        else:
            raise LoweringError(f"cannot lower {type(stmt).__name__} to C")

    def _intrinsic(self, call: IntrinsicCall) -> None:
        reason = _intrinsic_native_reason(call.intrin)
        if reason:
            raise LoweringError(reason)
        op = call.intrin.op
        self.line("{")
        self.depth += 1
        # Materialise the intrinsic's register operands as stack arrays,
        # zero-filled like the interpreter's np.zeros registers.
        for binding in list(call.inputs) + [call.output]:
            reg = binding.intrin_tensor
            name = self.tensor_name(reg)
            ctype = _c_type_for(reg.dtype)
            self.line(f"{ctype} {name}[{reg.num_elements}] = {{0}};")
        # Gather: lane-by-lane over the call's axes, in order (last write
        # wins, matching the interpreter's itertools.product walk).
        self._open_reduce_loops(call.axes)
        for binding in call.inputs:
            reg = binding.intrin_tensor
            src = self.tensor_name(binding.program_tensor)
            dst = self.tensor_name(reg)
            src_flat = self.flat_index(binding.program_indices, binding.program_tensor.shape)
            dst_flat = self.flat_index(binding.intrin_indices, reg.shape)
            self.line(f"{dst}[{dst_flat}] = ({_c_type_for(reg.dtype)})({src}[{src_flat}]);")
        self._close_reduce_loops(call.axes)
        # Execute: evaluate the intrinsic's DSL body point by point.
        out_reg = op.output
        out_name = self.tensor_name(call.output.intrin_tensor)
        self._open_reduce_loops(op.axes)
        subs: Dict[int, Tuple[str, object]] = {}
        self.hoist_reduces(op.body, subs)
        code, _ = self.value(op.body, subs)
        out_flat = self.flat_index([ax.var for ax in op.axes], out_reg.shape)
        self.line(f"{out_name}[{out_flat}] = ({_c_type_for(out_reg.dtype)})({code});")
        self._close_reduce_loops(op.axes)
        # Scatter the output register back to the program tensor.
        out_binding = call.output
        dst = self.tensor_name(out_binding.program_tensor)
        self._open_reduce_loops(call.axes)
        dst_flat = self.flat_index(out_binding.program_indices, out_binding.program_tensor.shape)
        src_flat = self.flat_index(out_binding.intrin_indices, out_binding.intrin_tensor.shape)
        cast = _c_type_for(out_binding.program_tensor.dtype)
        self.line(f"{dst}[{dst_flat}] = ({cast})({out_name}[{src_flat}]);")
        self._close_reduce_loops(call.axes)
        self.depth -= 1
        self.line("}")


def generate_c(func: PrimFunc, parallel: bool = True) -> NativeSource:
    """Lower ``func`` to a self-contained C translation unit.

    The entry point takes one pointer per ``func.params`` tensor (row-major,
    C-contiguous) and mirrors the scalar interpreter bit for bit; compile
    with ``-O3 -fwrapv -ffp-contract=off`` (plus ``-fopenmp`` to honour
    parallel nests).
    """
    reason = native_support_reason(func)
    if reason:
        raise LoweringError(reason)
    emitter = _CEmitter(func, parallel=parallel)
    # Reserve parameter names before the body references them.
    params = []
    for tensor in func.params:
        params.append((emitter.tensor_name(tensor), _c_type_for(tensor.dtype)))
    emitter.visit(func.body)
    entry = "repro_kernel"
    sig = ", ".join(f"{ctype}* restrict {name}" for name, ctype in params)
    lines = [_C_PRELUDE]
    lines.append(f"void {entry}({sig}) {{")
    lines.extend(emitter.lines)
    lines.append("}")
    return NativeSource(
        func_name=func.name,
        language="c",
        source="\n".join(lines) + "\n",
        entry=entry,
        params=tuple(func.params),
    )


# -- Python / numba emitter ---------------------------------------------------


class _PyEmitter:
    """Emit the same kernel as Python source.

    Weak math is plain python ints (exactly the interpreter), strong math is
    numpy scalar constructors (which numba compiles to native truncating
    ops).  The result runs un-jitted for testing and under ``numba.njit``
    for speed.
    """

    def __init__(self, func: PrimFunc) -> None:
        self.func = func
        self.lines: List[str] = []
        self.depth = 1
        self.names = _NameTable()
        self._tmp = 0

    def line(self, text: str) -> None:
        self.lines.append("    " * self.depth + text)

    def fresh(self, prefix: str) -> str:
        self._tmp += 1
        return f"{prefix}{self._tmp}"

    def var_name(self, var: E.Var) -> str:
        return self.names.name(var, var.name, "v_")

    def tensor_name(self, tensor) -> str:
        return self.names.name(tensor, tensor.name, "t_")

    def _wrap(self, kind, code: str) -> str:
        ctor = _py_ctor_for(kind)
        return f"{ctor}({code})" if ctor else f"({code})"

    def index(self, expr: E.Expr) -> str:
        if isinstance(expr, E.Var):
            return self.var_name(expr)
        if isinstance(expr, E.Const):
            return repr(expr.value)
        if isinstance(expr, E.Add):
            return f"(({self.index(expr.a)}) + ({self.index(expr.b)}))"
        if isinstance(expr, E.Sub):
            return f"(({self.index(expr.a)}) - ({self.index(expr.b)}))"
        if isinstance(expr, E.Mul):
            return f"(({self.index(expr.a)}) * ({self.index(expr.b)}))"
        if isinstance(expr, E.FloorDiv):
            a, b = self.index(expr.a), self.index(expr.b)
            return f"(({a}) // ({b}) if ({b}) != 0 else 0)"
        if isinstance(expr, E.Mod):
            a, b = self.index(expr.a), self.index(expr.b)
            return f"(({a}) % ({b}) if ({b}) != 0 else 0)"
        if isinstance(expr, E.Min):
            return f"min({self.index(expr.a)}, {self.index(expr.b)})"
        if isinstance(expr, E.Max):
            return f"max({self.index(expr.a)}, {self.index(expr.b)})"
        if isinstance(expr, E.Select):
            cond, _ = self.value(expr.cond, {})
            return f"(({self.index(expr.true_value)}) if ({cond}) else ({self.index(expr.false_value)}))"
        if isinstance(expr, E.Cast):
            return f"int({self.index(expr.value)})"
        code, _ = self.value(expr, {})
        return f"int({code})"

    def subscript(self, indices) -> str:
        return ", ".join(self.index(i) for i in indices)

    def value(self, expr: E.Expr, subs: Dict[int, Tuple[str, object]]) -> Tuple[str, object]:
        if id(expr) in subs:
            return subs[id(expr)]
        if isinstance(expr, E.Var):
            return self.var_name(expr), _WI
        if isinstance(expr, E.Const):
            return repr(expr.value), _kind_of(expr)
        if isinstance(expr, E.TensorLoad):
            name = self.tensor_name(expr.tensor)
            return f"{name}[{self.subscript(expr.indices)}]", expr.dtype
        if isinstance(expr, E.Cast):
            code, _ = self.value(expr.value, subs)
            return self._wrap(expr.dtype, code), expr.dtype
        if isinstance(expr, E.Compare):
            ca, _ = self.value(expr.a, subs)
            cb, _ = self.value(expr.b, subs)
            return f"(({ca}) {expr.op} ({cb}))", _WB
        if isinstance(expr, E.Select):
            cc, _ = self.value(expr.cond, subs)
            tc, tk = self.value(expr.true_value, subs)
            fc, fk = self.value(expr.false_value, subs)
            return f"(({tc}) if ({cc}) else ({fc}))", _combine_kinds(tk, fk)
        if isinstance(expr, E.Reduce):
            raise LoweringError("Reduce must be hoisted before rendering")
        if isinstance(expr, E.BinaryOp):
            ca, ka = self.value(expr.a, subs)
            cb, kb = self.value(expr.b, subs)
            kind = _combine_kinds(ka, kb)
            name = type(expr).__name__
            if name in ("Add", "Sub", "Mul"):
                op = {"Add": "+", "Sub": "-", "Mul": "*"}[name]
                return self._wrap(kind, f"({ca}) {op} ({cb})"), kind
            if name == "FloorDiv":
                return self._wrap(kind, f"({ca}) // ({cb})"), kind
            if name == "Mod":
                return self._wrap(kind, f"({ca}) % ({cb})"), kind
            if name == "Min":
                return self._wrap(kind, f"min({ca}, {cb})"), kind
            if name == "Max":
                return self._wrap(kind, f"max({ca}, {cb})"), kind
        raise LoweringError(f"cannot lower {type(expr).__name__} to Python")

    def hoist_reduces(self, expr: E.Expr, subs: Dict[int, Tuple[str, object]]) -> None:
        if isinstance(expr, E.Reduce):
            kind = _kind_of(expr.source)
            tmp = self.fresh("red")
            ctor = _py_ctor_for(kind)
            if expr.combiner == "sum":
                self.line(f"{tmp} = {ctor}(0)" if ctor else f"{tmp} = 0")
                self._open_loops(expr.axes)
                self.hoist_reduces(expr.source, subs)
                code, _ = self.value(expr.source, subs)
                self.line(f"{tmp} = {self._wrap(kind, f'{tmp} + ({code})')}")
                self._close_loops(expr.axes)
            else:
                cmp = "<" if expr.combiner == "min" else ">"
                self.line(f"{tmp} = {ctor}(0)" if ctor else f"{tmp} = 0")
                self.line(f"{tmp}_first = True")
                self._open_loops(expr.axes)
                self.hoist_reduces(expr.source, subs)
                code, _ = self.value(expr.source, subs)
                self.line(f"{tmp}_v = {self._wrap(kind, code)}")
                self.line(f"if {tmp}_first or {tmp}_v {cmp} {tmp}:")
                self.depth += 1
                self.line(f"{tmp} = {tmp}_v")
                self.depth -= 1
                self.line(f"{tmp}_first = False")
                self._close_loops(expr.axes)
            subs[id(expr)] = (tmp, kind)
            return
        for child in expr.children:
            self.hoist_reduces(child, subs)

    def _open_loops(self, axes) -> None:
        for axis in axes:
            name = self.var_name(axis.var)
            self.line(f"for {name} in range({axis.extent}):")
            self.depth += 1

    def _close_loops(self, axes) -> None:
        self.depth -= len(list(axes))

    def visit(self, stmt: Stmt) -> None:
        if isinstance(stmt, SeqStmt):
            for s in stmt.stmts:
                self.visit(s)
        elif isinstance(stmt, For):
            name = self.var_name(stmt.var)
            self.line(f"for {name} in range({stmt.extent}):")
            self.depth += 1
            self.visit(stmt.body)
            self.depth -= 1
        elif isinstance(stmt, IfThenElse):
            subs: Dict[int, Tuple[str, object]] = {}
            self.hoist_reduces(stmt.condition, subs)
            cond, _ = self.value(stmt.condition, subs)
            self.line(f"if {cond}:")
            self.depth += 1
            self.visit(stmt.then_case)
            self.depth -= 1
            if stmt.else_case is not None:
                self.line("else:")
                self.depth += 1
                self.visit(stmt.else_case)
                self.depth -= 1
        elif isinstance(stmt, AttrStmt):
            self.visit(stmt.body)
        elif isinstance(stmt, Allocate):
            name = self.tensor_name(stmt.tensor)
            shape = ", ".join(str(s) for s in stmt.tensor.shape)
            ctor = _NP_CTORS[stmt.tensor.dtype.name]
            self.line(f"{name} = np.zeros(({shape},), dtype={ctor})")
            self.visit(stmt.body)
        elif isinstance(stmt, Store):
            subs = {}
            self.hoist_reduces(stmt.value, subs)
            code, _ = self.value(stmt.value, subs)
            name = self.tensor_name(stmt.tensor)
            ctor = _NP_CTORS[stmt.tensor.dtype.name]
            self.line(f"{name}[{self.subscript(stmt.indices)}] = {ctor}({code})")
        elif isinstance(stmt, Evaluate):
            pass
        elif isinstance(stmt, IntrinsicCall):
            self._intrinsic(stmt)
        else:
            raise LoweringError(f"cannot lower {type(stmt).__name__} to Python")

    def _intrinsic(self, call: IntrinsicCall) -> None:
        reason = _intrinsic_native_reason(call.intrin)
        if reason:
            raise LoweringError(reason)
        op = call.intrin.op
        for binding in list(call.inputs) + [call.output]:
            reg = binding.intrin_tensor
            name = self.tensor_name(reg)
            shape = ", ".join(str(s) for s in reg.shape)
            ctor = _NP_CTORS[reg.dtype.name]
            self.line(f"{name} = np.zeros(({shape},), dtype={ctor})")
        self._open_loops(call.axes)
        for binding in call.inputs:
            reg = binding.intrin_tensor
            src = self.tensor_name(binding.program_tensor)
            dst = self.tensor_name(reg)
            self.line(
                f"{dst}[{self.subscript(binding.intrin_indices)}] = "
                f"{src}[{self.subscript(binding.program_indices)}]"
            )
        self._close_loops(call.axes)
        out_reg = call.output.intrin_tensor
        out_name = self.tensor_name(out_reg)
        self._open_loops(op.axes)
        subs: Dict[int, Tuple[str, object]] = {}
        self.hoist_reduces(op.body, subs)
        code, _ = self.value(op.body, subs)
        out_sub = self.subscript([ax.var for ax in op.axes])
        ctor = _NP_CTORS[out_reg.dtype.name]
        self.line(f"{out_name}[{out_sub}] = {ctor}({code})")
        self._close_loops(op.axes)
        out_binding = call.output
        dst = self.tensor_name(out_binding.program_tensor)
        ctor = _NP_CTORS[out_binding.program_tensor.dtype.name]
        self._open_loops(call.axes)
        self.line(
            f"{dst}[{self.subscript(out_binding.program_indices)}] = "
            f"{ctor}({out_name}[{self.subscript(out_binding.intrin_indices)}])"
        )
        self._close_loops(call.axes)


def generate_numba_source(func: PrimFunc) -> NativeSource:
    """Lower ``func`` to Python source suitable for ``numba.njit``.

    The emitted module defines ``repro_kernel(<one array per func.params>)``.
    It is plain Python/numpy, so it also runs (slowly) without numba — which
    is how the tests verify it when numba is not installed.
    """
    reason = native_support_reason(func)
    if reason:
        raise LoweringError(reason)
    emitter = _PyEmitter(func)
    params = [emitter.tensor_name(tensor) for tensor in func.params]
    emitter.visit(func.body)
    entry = "repro_kernel"
    lines = ["import numpy as np", "", "", f"def {entry}({', '.join(params)}):"]
    body = emitter.lines or ["    pass"]
    lines.extend(body)
    return NativeSource(
        func_name=func.name,
        language="python",
        source="\n".join(lines) + "\n",
        entry=entry,
        params=tuple(func.params),
    )
