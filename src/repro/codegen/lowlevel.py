"""Low-level code generation: tensor IR → a virtual vector ISA.

The paper's pipeline hands the transformed tensor IR to LLVM for machine-code
generation (Section II-C.4).  In this reproduction the "machine" is the
analytical simulator, so code generation targets a small *virtual vector ISA*:
a textual, register-based program whose instructions are scalar ALU ops,
vector loads/stores/broadcasts, and the tensorized intrinsics themselves.  It
exists for three reasons:

* it demonstrates that the rewritten tensor IR is fully lowerable (every
  operand-generation rule materialises into loads/broadcasts/concatenations);
* it provides instruction statistics (tensorized ops, loads, loop overhead)
  that can be cross-checked against the analytical cost models;
* it renders readable "assembly" listings for the examples and docs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..dsl import expr as E
from ..dsl.printer import expr_to_str
from ..tir.lower import PrimFunc
from ..tir.stmt import (
    Allocate,
    AttrStmt,
    Evaluate,
    For,
    ForKind,
    IfThenElse,
    IntrinsicCall,
    SeqStmt,
    Stmt,
    Store,
)

__all__ = ["Instruction", "CodegenResult", "generate", "REGISTER_PREFIX"]

REGISTER_PREFIX = {
    "x86": "zmm",
    "arm": "v",
    "cuda": "frag",
    "generic": "r",
}


@dataclass
class Instruction:
    """One virtual-ISA instruction."""

    opcode: str
    operands: List[str] = field(default_factory=list)
    comment: str = ""

    def render(self) -> str:
        text = f"{self.opcode} " + ", ".join(self.operands) if self.operands else self.opcode
        if self.comment:
            text = f"{text:<60s} ; {self.comment}"
        return text


@dataclass
class CodegenResult:
    """The emitted program plus summary statistics."""

    func_name: str
    target: str
    instructions: List[Instruction] = field(default_factory=list)

    @property
    def text(self) -> str:
        lines = [f".func {self.func_name} (target={self.target})"]
        indent = 1
        for instr in self.instructions:
            if instr.opcode in (".endloop", ".endif"):
                indent -= 1
            lines.append("  " * indent + instr.render())
            if instr.opcode in (".loop", ".parallel_loop", ".unrolled_loop", ".if"):
                indent += 1
        lines.append(".endfunc")
        return "\n".join(lines)

    @property
    def stats(self) -> Dict[str, int]:
        counts: Dict[str, int] = {
            "tensorized": 0,
            "vector_load": 0,
            "vector_store": 0,
            "broadcast": 0,
            "scalar_store": 0,
            "loops": 0,
            "guards": 0,
        }
        for instr in self.instructions:
            if instr.opcode.startswith("tensor."):
                counts["tensorized"] += 1
            elif instr.opcode == "vload":
                counts["vector_load"] += 1
            elif instr.opcode == "vstore":
                counts["vector_store"] += 1
            elif instr.opcode == "vbcast":
                counts["broadcast"] += 1
            elif instr.opcode == "store":
                counts["scalar_store"] += 1
            elif instr.opcode in (".loop", ".parallel_loop", ".unrolled_loop"):
                counts["loops"] += 1
            elif instr.opcode == ".if":
                counts["guards"] += 1
        return counts

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return self.text


class _Emitter:
    def __init__(self, target: str) -> None:
        self.target = target
        self.prefix = REGISTER_PREFIX.get(target, REGISTER_PREFIX["generic"])
        self.instructions: List[Instruction] = []
        self._next_register = 0

    def fresh_register(self) -> str:
        name = f"{self.prefix}{self._next_register}"
        self._next_register += 1
        return name

    def emit(self, opcode: str, operands: Optional[List[str]] = None, comment: str = "") -> None:
        self.instructions.append(Instruction(opcode, operands or [], comment))

    # -- statements ---------------------------------------------------------
    def visit(self, stmt: Stmt) -> None:
        if isinstance(stmt, SeqStmt):
            for s in stmt.stmts:
                self.visit(s)
        elif isinstance(stmt, For):
            opcode = {
                ForKind.PARALLEL: ".parallel_loop",
                ForKind.UNROLL: ".unrolled_loop",
            }.get(stmt.kind, ".loop")
            tag = f" bound={stmt.thread_tag}" if stmt.thread_tag else ""
            self.emit(opcode, [stmt.var.name, str(stmt.extent)], comment=stmt.kind.value + tag)
            self.visit(stmt.body)
            self.emit(".endloop", [stmt.var.name])
        elif isinstance(stmt, IfThenElse):
            self.emit(".if", [expr_to_str(stmt.condition)],
                      comment="likely residue guard" if stmt.likely else "")
            self.visit(stmt.then_case)
            if stmt.else_case is not None:
                self.emit(".else")
                self.visit(stmt.else_case)
            self.emit(".endif")
        elif isinstance(stmt, AttrStmt):
            self.emit(".attr", [stmt.key, str(stmt.value)])
            self.visit(stmt.body)
        elif isinstance(stmt, Allocate):
            shape = "x".join(str(s) for s in stmt.tensor.shape)
            self.emit("alloca", [stmt.tensor.name, shape, stmt.tensor.dtype.name],
                      comment=f"scope={stmt.scope}")
            self.visit(stmt.body)
        elif isinstance(stmt, Store):
            value = self._scalar(stmt.value)
            address = self._address(stmt.tensor.name, stmt.indices)
            self.emit("store", [address, value], comment=f"{stmt.tensor.dtype.name}")
        elif isinstance(stmt, Evaluate):
            self.emit("eval", [expr_to_str(stmt.expr)])
        elif isinstance(stmt, IntrinsicCall):
            self._emit_intrinsic(stmt)
        else:
            raise TypeError(f"cannot generate code for {type(stmt).__name__}")

    # -- intrinsic operand materialisation -----------------------------------
    def _emit_intrinsic(self, call: IntrinsicCall) -> None:
        intrin = call.intrin
        intrin_axis_vars = {ax.var for ax in call.axes}
        registers: List[str] = []
        for binding in call.inputs:
            reg = self.fresh_register()
            varying = set()
            for idx in binding.program_indices:
                varying.update(v for v in E.free_vars(idx) if v in intrin_axis_vars)
            address = self._address(binding.program_tensor.name, binding.program_indices)
            lanes = binding.intrin_tensor.num_elements
            if not varying:
                self.emit("vbcast", [reg, address, str(lanes)],
                          comment=f"{binding.intrin_tensor.name}: broadcast to {lanes} lanes")
            else:
                self.emit("vload", [reg, address, str(lanes)],
                          comment=f"{binding.intrin_tensor.name}: gather over "
                                  + ",".join(sorted(v.name for v in varying)))
            registers.append(reg)
        dst = self.fresh_register()
        self.emit(f"tensor.{intrin.name}", [dst] + registers,
                  comment=f"{intrin.macs_per_call} MACs")
        out_address = self._address(call.output.program_tensor.name, call.output.program_indices)
        self.emit("vstore", [out_address, dst, str(call.output.intrin_tensor.num_elements)])

    # -- scalars ---------------------------------------------------------------
    def _scalar(self, value: E.Expr) -> str:
        return expr_to_str(value)

    def _address(self, buffer: str, indices) -> str:
        return f"{buffer}[" + ", ".join(expr_to_str(i) for i in indices) + "]"


def generate(func: PrimFunc, target: str = "generic") -> CodegenResult:
    """Generate virtual-ISA code for a lowered (and possibly tensorized) function."""
    emitter = _Emitter(target)
    emitter.visit(func.body)
    return CodegenResult(func_name=func.name, target=target, instructions=emitter.instructions)
