"""``repro.codegen`` — lowering tensor IR to a virtual vector ISA.

The stand-in for the paper's LLVM backend: emits a textual register-based
program (loads, broadcasts, stores, tensorized intrinsic calls) from the
rewritten tensor IR, together with instruction statistics used to sanity-check
the analytical cost models.
"""

from .lowlevel import CodegenResult, Instruction, REGISTER_PREFIX, generate

__all__ = ["CodegenResult", "Instruction", "REGISTER_PREFIX", "generate"]
