"""Layout transformation and padding pass (Section V-C).

The CPU models use the blocked ``NCHW[x]c`` activation layout and the
``KCRS[y]k[x]c`` weight layout, where ``[x]`` equals the instruction's output
lane count and ``[y]`` its reduction width; channel counts are padded up to
multiples of the block sizes so the tensorized loops tile perfectly (the
Inspector/Rewriter rely on this — Section II-C.1 notes the analysis depends on
graph-level tensor padding).

The pass records, per convolution/dense node, the padded channel counts and
the resulting fraction of wasted lanes, which the cost models account for.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from .ir import Conv2DNode, DenseNode, Graph

__all__ = ["LayoutDecision", "plan_layout", "padding_waste"]


@dataclass(frozen=True)
class LayoutDecision:
    """The blocked layout chosen for one operator."""

    node_name: str
    lanes: int  # [x]: output-channel block = instruction output lanes
    reduction: int  # [y]: input-channel block = instruction reduction width
    in_channels: int
    out_channels: int
    padded_in_channels: int
    padded_out_channels: int

    @property
    def layout(self) -> str:
        return f"NCHW{self.lanes}c"

    @property
    def weight_layout(self) -> str:
        return f"KCRS{self.reduction}k{self.lanes}c"

    @property
    def wasted_output_fraction(self) -> float:
        return 1.0 - self.out_channels / self.padded_out_channels

    @property
    def wasted_input_fraction(self) -> float:
        return 1.0 - self.in_channels / self.padded_in_channels


def plan_layout(graph: Graph, lanes: int = 16, reduction: int = 4) -> Dict[str, LayoutDecision]:
    """Choose the blocked layout for every convolution/dense node of ``graph``."""
    graph.infer_shapes()
    decisions: Dict[str, LayoutDecision] = {}
    for node in graph.nodes:
        if isinstance(node, Conv2DNode):
            params = node.conv_params()
            decisions[node.name] = LayoutDecision(
                node_name=node.name,
                lanes=lanes,
                reduction=reduction,
                in_channels=params.in_channels,
                out_channels=params.out_channels,
                padded_in_channels=_round_up(params.in_channels, reduction),
                padded_out_channels=_round_up(params.out_channels, lanes),
            )
        elif isinstance(node, DenseNode):
            params = node.dense_params()
            decisions[node.name] = LayoutDecision(
                node_name=node.name,
                lanes=lanes,
                reduction=reduction,
                in_channels=params.in_features,
                out_channels=params.out_features,
                padded_in_channels=_round_up(params.in_features, reduction),
                padded_out_channels=_round_up(params.out_features, lanes),
            )
    return decisions


def padding_waste(decisions: Dict[str, LayoutDecision]) -> float:
    """Aggregate fraction of padded (wasted) output lanes across the graph."""
    if not decisions:
        return 0.0
    total = sum(d.padded_out_channels for d in decisions.values())
    useful = sum(d.out_channels for d in decisions.values())
    return 1.0 - useful / total


def _round_up(value: int, multiple: int) -> int:
    return ((value + multiple - 1) // multiple) * multiple
