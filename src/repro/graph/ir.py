"""Graph-level IR: a deep-learning model as a DAG of operators.

This is the stand-in for TVM's Relay (Section II-C.1): enough structure to
express the nine evaluated models, to run the graph-level passes the paper
relies on (quantization, layout transformation / padding, operator fusion),
and to drive end-to-end latency estimation by dispatching every node to an
operator implementation (UNIT-compiled or a baseline library).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..workloads.conv2d import Conv2DParams
from ..workloads.dense import DenseParams

__all__ = [
    "TensorShape",
    "GraphNode",
    "InputNode",
    "Conv2DNode",
    "DepthwiseConv2DNode",
    "DenseNode",
    "PoolNode",
    "GlobalPoolNode",
    "ElementwiseNode",
    "ConcatNode",
    "FlattenNode",
    "SoftmaxNode",
    "Graph",
    "rescale_input",
]


@dataclass(frozen=True)
class TensorShape:
    """An activation shape in CHW layout (batch size is always 1)."""

    channels: int
    height: int
    width: int

    @property
    def elements(self) -> int:
        return self.channels * self.height * self.width


@dataclass
class GraphNode:
    """Base class of graph operators."""

    name: str
    inputs: List[str] = field(default_factory=list)
    dtype: str = "float32"
    fused_activations: List[str] = field(default_factory=list)

    @property
    def is_compute_intensive(self) -> bool:
        return False

    def output_shape(self, input_shapes: Sequence[TensorShape]) -> TensorShape:
        raise NotImplementedError

    @property
    def macs(self) -> int:
        return 0


@dataclass
class InputNode(GraphNode):
    shape: TensorShape = TensorShape(3, 224, 224)

    def output_shape(self, input_shapes):
        return self.shape


@dataclass
class Conv2DNode(GraphNode):
    out_channels: int = 0
    kernel: int = 1
    stride: int = 1
    padding: int = 0
    groups: int = 1
    in_shape: Optional[TensorShape] = None  # filled in by Graph.infer_shapes

    @property
    def is_compute_intensive(self) -> bool:
        return True

    def output_shape(self, input_shapes):
        s = input_shapes[0]
        oh = (s.height + 2 * self.padding - self.kernel) // self.stride + 1
        ow = (s.width + 2 * self.padding - self.kernel) // self.stride + 1
        return TensorShape(self.out_channels, oh, ow)

    def conv_params(self) -> Conv2DParams:
        if self.in_shape is None:
            raise ValueError(f"node {self.name!r}: run Graph.infer_shapes() first")
        return Conv2DParams(
            in_channels=self.in_shape.channels // self.groups,
            in_height=self.in_shape.height,
            in_width=self.in_shape.width,
            out_channels=self.out_channels // self.groups,
            kernel=self.kernel,
            stride=self.stride,
            padding=self.padding,
            name=self.name,
        )

    @property
    def macs(self) -> int:
        # Grouped convolutions run ``groups`` independent smaller convolutions.
        return self.conv_params().macs * self.groups


@dataclass
class DepthwiseConv2DNode(GraphNode):
    """Depthwise convolution (MobileNet); one filter per channel.

    It has no channel reduction, so the mixed-precision dot-product
    instructions do not apply — UNIT leaves it to the vectorised fallback.
    """

    kernel: int = 3
    stride: int = 1
    padding: int = 1
    in_shape: Optional[TensorShape] = None

    @property
    def is_compute_intensive(self) -> bool:
        return True

    def output_shape(self, input_shapes):
        s = input_shapes[0]
        oh = (s.height + 2 * self.padding - self.kernel) // self.stride + 1
        ow = (s.width + 2 * self.padding - self.kernel) // self.stride + 1
        return TensorShape(s.channels, oh, ow)

    @property
    def macs(self) -> int:
        if self.in_shape is None:
            return 0
        out = self.output_shape([self.in_shape])
        return out.elements * self.kernel * self.kernel


@dataclass
class DenseNode(GraphNode):
    out_features: int = 1000
    in_shape: Optional[TensorShape] = None

    @property
    def is_compute_intensive(self) -> bool:
        return True

    def output_shape(self, input_shapes):
        return TensorShape(self.out_features, 1, 1)

    def dense_params(self) -> DenseParams:
        if self.in_shape is None:
            raise ValueError(f"node {self.name!r}: run Graph.infer_shapes() first")
        return DenseParams(
            batch=1,
            in_features=self.in_shape.elements,
            out_features=self.out_features,
            name=self.name,
        )

    @property
    def macs(self) -> int:
        return self.dense_params().macs


@dataclass
class PoolNode(GraphNode):
    kind: str = "max"  # or "avg"
    kernel: int = 3
    stride: int = 2
    padding: int = 0

    def output_shape(self, input_shapes):
        s = input_shapes[0]
        oh = (s.height + 2 * self.padding - self.kernel) // self.stride + 1
        ow = (s.width + 2 * self.padding - self.kernel) // self.stride + 1
        return TensorShape(s.channels, max(oh, 1), max(ow, 1))


@dataclass
class GlobalPoolNode(GraphNode):
    def output_shape(self, input_shapes):
        s = input_shapes[0]
        return TensorShape(s.channels, 1, 1)


@dataclass
class ElementwiseNode(GraphNode):
    kind: str = "relu"  # relu, add, batch_norm, clip, sigmoid ...

    def output_shape(self, input_shapes):
        return input_shapes[0]


@dataclass
class ConcatNode(GraphNode):
    def output_shape(self, input_shapes):
        channels = sum(s.channels for s in input_shapes)
        first = input_shapes[0]
        return TensorShape(channels, first.height, first.width)


@dataclass
class FlattenNode(GraphNode):
    def output_shape(self, input_shapes):
        s = input_shapes[0]
        return TensorShape(s.elements, 1, 1)


@dataclass
class SoftmaxNode(GraphNode):
    def output_shape(self, input_shapes):
        return input_shapes[0]


class Graph:
    """A DAG of operators in topological order."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.nodes: List[GraphNode] = []
        self._by_name: Dict[str, GraphNode] = {}
        self._shapes: Dict[str, TensorShape] = {}

    # -- construction ----------------------------------------------------------
    def add(self, node: GraphNode) -> str:
        if node.name in self._by_name:
            raise ValueError(f"duplicate node name {node.name!r} in graph {self.name!r}")
        for dep in node.inputs:
            if dep not in self._by_name:
                raise ValueError(
                    f"node {node.name!r} depends on unknown node {dep!r} "
                    f"(nodes must be added in topological order)"
                )
        self.nodes.append(node)
        self._by_name[node.name] = node
        return node.name

    def node(self, name: str) -> GraphNode:
        return self._by_name[name]

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def __len__(self) -> int:
        return len(self.nodes)

    # -- analysis ---------------------------------------------------------------
    def infer_shapes(self) -> Dict[str, TensorShape]:
        """Propagate activation shapes and fill each node's ``in_shape``."""
        shapes: Dict[str, TensorShape] = {}
        for node in self.nodes:
            input_shapes = [shapes[i] for i in node.inputs]
            if input_shapes and hasattr(node, "in_shape"):
                node.in_shape = input_shapes[0]
            shapes[node.name] = node.output_shape(input_shapes)
        self._shapes = shapes
        return shapes

    def output_shape(self, name: str) -> TensorShape:
        if name not in self._shapes:
            self.infer_shapes()
        return self._shapes[name]

    def compute_nodes(self) -> List[GraphNode]:
        """The compute-intensive operators (convolutions and dense layers)."""
        return [n for n in self.nodes if n.is_compute_intensive]

    def conv_nodes(self) -> List[Conv2DNode]:
        return [n for n in self.nodes if isinstance(n, Conv2DNode)]

    @property
    def total_macs(self) -> int:
        self.infer_shapes()
        return sum(n.macs for n in self.nodes)

    def rebuild(self, nodes: Iterable[GraphNode]) -> "Graph":
        """A new graph (same name) with the given nodes, re-validated."""
        g = Graph(self.name)
        for node in nodes:
            g.add(node)
        g.infer_shapes()
        return g

    def __repr__(self) -> str:
        convs = len(self.conv_nodes())
        return f"Graph({self.name}, {len(self.nodes)} nodes, {convs} convolutions)"


def rescale_input(graph: Graph, height: int, width: Optional[int] = None) -> Graph:
    """A copy of ``graph`` with its input activations resized to H×W.

    Channel counts (and therefore every layer's parameter shapes) are
    unchanged; only the spatial extents shrink or grow through the network.
    Useful for running whole models functionally at tractable sizes — the
    engine-backed :func:`repro.graph.executor.run_model` path — while keeping
    every layer structurally identical to the full-size model.  Nodes are
    shallow-copied, so the original graph's inferred shapes are untouched.
    """
    width = width if width is not None else height
    nodes: List[GraphNode] = []
    for node in graph.nodes:
        node = replace(node)
        if isinstance(node, InputNode):
            node = replace(
                node, shape=TensorShape(node.shape.channels, height, width)
            )
        nodes.append(node)
    return graph.rebuild(nodes)
