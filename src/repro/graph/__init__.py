"""``repro.graph`` — the Relay-like graph IR and its passes.

A model is a DAG of operators; the quantization, layout/padding and operator
fusion passes prepare it for tensorization, and the executor aggregates
per-operator latencies into the end-to-end inference latency.
"""

from .executor import (
    GraphLatencyReport,
    MemoryPlan,
    ModelRun,
    estimate_graph_latency,
    execute_graph,
    plan_memory,
    run_model,
)
from .fuse import FUSABLE_KINDS, fuse_elementwise
from .ir import (
    ConcatNode,
    Conv2DNode,
    DenseNode,
    DepthwiseConv2DNode,
    ElementwiseNode,
    FlattenNode,
    GlobalPoolNode,
    Graph,
    GraphNode,
    InputNode,
    PoolNode,
    SoftmaxNode,
    TensorShape,
    rescale_input,
)
from .layout import LayoutDecision, padding_waste, plan_layout
from .quantize import quantize_graph

__all__ = [
    "Graph",
    "GraphNode",
    "TensorShape",
    "InputNode",
    "Conv2DNode",
    "DepthwiseConv2DNode",
    "DenseNode",
    "PoolNode",
    "GlobalPoolNode",
    "ElementwiseNode",
    "ConcatNode",
    "FlattenNode",
    "SoftmaxNode",
    "quantize_graph",
    "plan_layout",
    "LayoutDecision",
    "padding_waste",
    "fuse_elementwise",
    "FUSABLE_KINDS",
    "estimate_graph_latency",
    "execute_graph",
    "GraphLatencyReport",
    "MemoryPlan",
    "plan_memory",
    "ModelRun",
    "run_model",
    "rescale_input",
]
