"""End-to-end graph latency estimation.

The executor walks a (quantized, fused) graph in topological order and asks an
*operator runner* for the latency of every node: UNIT's compiled operators
(``repro.core``) or one of the baseline libraries (``repro.baselines``).  The
sum is the model-inference latency reported in the end-to-end figures; batch
size is always 1 (Section V-C).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..hwsim.cost import CostBreakdown
from .ir import (
    ConcatNode,
    Conv2DNode,
    DenseNode,
    DepthwiseConv2DNode,
    ElementwiseNode,
    FlattenNode,
    GlobalPoolNode,
    Graph,
    GraphNode,
    InputNode,
    PoolNode,
    SoftmaxNode,
)

__all__ = ["GraphLatencyReport", "estimate_graph_latency"]

# Fallback sustained MAC rate for operators no runner specialises (depthwise
# convolutions, pooling): a vectorised but non-tensorized loop.
_FALLBACK_MACS_PER_SECOND = 2.0e11
_FALLBACK_ELEMENTWISE_US = 4.0


@dataclass
class GraphLatencyReport:
    """Per-node and total latency of one model."""

    graph_name: str
    total: CostBreakdown
    per_node: Dict[str, CostBreakdown] = field(default_factory=dict)

    @property
    def total_seconds(self) -> float:
        return self.total.seconds

    @property
    def total_milliseconds(self) -> float:
        return self.total.seconds * 1e3

    def slowest_nodes(self, k: int = 5) -> List[str]:
        ranked = sorted(self.per_node.items(), key=lambda kv: kv[1].seconds, reverse=True)
        return [name for name, _ in ranked[:k]]


def estimate_graph_latency(graph: Graph, runner) -> GraphLatencyReport:
    """Estimate the end-to-end inference latency of ``graph`` under ``runner``.

    ``runner`` must provide ``conv2d_latency(Conv2DParams)``,
    ``dense_latency(DenseParams)`` and ``elementwise_latency()``; it may
    optionally provide ``depthwise_conv2d_latency(node)`` and
    ``pool_latency(node, shape)`` for more faithful handling of those
    operators.
    """
    graph.infer_shapes()
    per_node: Dict[str, CostBreakdown] = {}
    total = CostBreakdown(seconds=0.0)
    for node in graph.nodes:
        cost = _node_latency(node, graph, runner)
        per_node[node.name] = cost
        total = total + cost
    return GraphLatencyReport(graph_name=graph.name, total=total, per_node=per_node)


def _node_latency(node: GraphNode, graph: Graph, runner) -> CostBreakdown:
    if isinstance(node, InputNode):
        return CostBreakdown(seconds=0.0)
    if isinstance(node, Conv2DNode):
        params = node.conv_params()
        cost = runner.conv2d_latency(params)
        if node.groups > 1:
            cost = cost.scaled(node.groups)
        return cost
    if isinstance(node, DenseNode):
        return runner.dense_latency(node.dense_params())
    if isinstance(node, DepthwiseConv2DNode):
        if hasattr(runner, "depthwise_conv2d_latency"):
            return runner.depthwise_conv2d_latency(node)
        seconds = node.macs / _FALLBACK_MACS_PER_SECOND + _FALLBACK_ELEMENTWISE_US * 1e-6
        return CostBreakdown(seconds=seconds, compute_seconds=seconds)
    if isinstance(node, (PoolNode, GlobalPoolNode)):
        if hasattr(runner, "pool_latency"):
            return runner.pool_latency(node, graph.output_shape(node.name))
        out = graph.output_shape(node.name)
        work = out.elements * (node.kernel**2 if isinstance(node, PoolNode) else 1)
        seconds = work / _FALLBACK_MACS_PER_SECOND + _FALLBACK_ELEMENTWISE_US * 1e-6
        return CostBreakdown(seconds=seconds, compute_seconds=seconds)
    if isinstance(node, (ElementwiseNode, ConcatNode, FlattenNode, SoftmaxNode)):
        return runner.elementwise_latency()
    raise TypeError(f"unknown graph node type {type(node).__name__}")
